#!/usr/bin/env python
"""Figure 3 live: why out-of-core tiling leaves the innermost loop
untiled.

Reproduces the paper's exact counts (4 I/O calls for a 4x4 tile of the
column-major array vs. 2 calls for an 8x2 tile, same 32-element memory),
then sweeps the memory budget to show the rule's effect at scale.
"""

from repro import MachineParams, OOCExecutor, ProgramBuilder, col_major, row_major
from repro.experiments.figure3 import figure3
from repro.transforms import ooc_tiling, traditional_tiling


def sweep(n=64):
    print(f"\nmemory-budget sweep on nest1 (N={n}): total I/O calls")
    print(f"{'memory':>8} {'traditional':>12} {'all-but-innermost':>18}")
    b = ProgramBuilder("sweep", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    with b.nest("nest1") as nest:
        i, j = nest.loop("i", 1, N), nest.loop("j", 1, N)
        nest.assign(U[i, j], V[j, i] + 1.0)
    program = b.build()
    params = MachineParams(io_latency_s=0.01, max_request_bytes=64 * 8)
    layouts = {"U": row_major(2), "V": col_major(2)}
    for budget in (64, 256, 1024, 4096):
        calls = {}
        for label, tiling in (
            ("trad", traditional_tiling),
            ("ooc", ooc_tiling),
        ):
            ex = OOCExecutor(
                program, layouts, params=params, real=False,
                tiling=tiling, memory_budget=budget,
            )
            calls[label] = ex.run().stats.calls
        print(f"{budget:>8} {calls['trad']:>12} {calls['ooc']:>18}")


if __name__ == "__main__":
    text, result = figure3()
    print(text)
    assert result.calls_per_tile_traditional == 4  # the paper's count
    assert result.calls_per_tile_ooc == 2          # the paper's count
    sweep()
