#!/usr/bin/env python
"""Quickstart: the paper's worked example (Section 3.1/3.2.3), end to end.

Builds the two-nest U/V/W fragment, runs the combined loop + file-layout
optimizer, shows the derived layouts and loop transformation, generates
the tiled out-of-core code, executes both the original and the optimized
program on the simulated parallel file system, and verifies they compute
identical results.
"""

import numpy as np

from repro import (
    MachineParams,
    OOCExecutor,
    ProgramBuilder,
    col_major,
    generate_tiled_code,
    interpret_program,
    optimize_program,
)
from repro.engine.interpreter import initial_arrays


def build_program(n=64):
    b = ProgramBuilder("motivating", params=("N",), default_binding={"N": n})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    W = b.array("W", (N, N))
    with b.nest("nest1") as nest:
        i, j = nest.loop("i", 1, N), nest.loop("j", 1, N)
        nest.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("nest2") as nest:
        i, j = nest.loop("i", 1, N), nest.loop("j", 1, N)
        nest.assign(V[i, j], W[j, i] + 2.0)
    return b.build()


def main():
    program = build_program()
    print("=== input program ===")
    print(program.pretty())

    print("\n=== running the combined optimizer (paper Section 3) ===")
    decision = optimize_program(program)
    for line in decision.report:
        print(" ", line)
    print("\nchosen file layouts (hyperplane form, Figure 2 notation):")
    for arr, g in sorted(decision.layouts.items()):
        print(f"  {arr}: g = {g}")
    print("\nloop transformations:")
    for nest, t in decision.transforms.items():
        print(f"  {nest}: T = {t!r}")

    print("\n=== generated out-of-core code (Section 3.3 form) ===")
    print(generate_tiled_code(decision.program, decision.layout_objects()))

    # run both versions for real on the simulated PFS and compare;
    # memory = 8 rows per array — enough for all-but-innermost tiles
    params = MachineParams(io_latency_s=0.002)
    n = program.binding()["N"]
    budget = 2 * 8 * n
    init = initial_arrays(program, program.binding())
    expected = interpret_program(program, initial=init)

    baseline = OOCExecutor(
        program,
        {a.name: col_major(a.rank) for a in program.arrays},
        params=params,
        memory_budget=budget,
        initial=init,
    )
    base_result = baseline.run()

    optimized = OOCExecutor(
        decision.program,
        decision.layout_objects(),
        params=params,
        memory_budget=budget,
        initial=init,
    )
    opt_result = optimized.run()

    print("\n=== execution on the simulated parallel file system ===")
    print(f"column-major baseline: {base_result.stats}")
    print(f"optimized:             {opt_result.stats}")
    ratio = base_result.stats.io_time_s / opt_result.stats.io_time_s
    print(f"I/O time improvement:  {ratio:.1f}x")

    for name in ("U", "V", "W"):
        np.testing.assert_allclose(
            optimized.array_data(name), expected[name]
        )
    print("results verified: optimized program computes identical arrays")


if __name__ == "__main__":
    main()
