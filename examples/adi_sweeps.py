#!/usr/bin/env python
"""ADI alternating-direction sweeps: the loop-transformation showcase.

``adi``'s x-sweep and y-sweep traverse the *same* arrays along different
dimensions.  A fixed file layout cannot serve both (pure data
transformations leave one sweep unoptimized), but per-nest loop
transformations reconcile them — the paper's Table 2 shows l-opt and
c-opt tied at 22.8% of col while d-opt only reaches 46.5%.

This example dissects why: it prints each sweep's access matrices, the
optimizer's per-nest reasoning, and per-nest I/O for the three
strategies.
"""

from repro import IMat, build_version, run_version_parallel
from repro.experiments.harness import ExperimentSettings
from repro.workloads import build_workload


def main(n=128, nodes=16):
    settings = ExperimentSettings(n=n)
    program = build_workload("adi", n)

    print("the conflicting access patterns (access matrices of U1):")
    from repro.transforms import normalize_program

    norm = normalize_program(program)
    for nest in norm.nests:
        for _, ref, is_write in nest.refs():
            if ref.array.name == "U1" and is_write:
                print(f"  {nest.name}: {ref} -> L = "
                      f"{ref.access_matrix(nest.loop_vars)!r}")

    print("\nper-version outcome:")
    for version in ("col", "l-opt", "d-opt", "c-opt"):
        cfg = build_version(
            version, program, params=settings.params, n_nodes=nodes
        )
        run = run_version_parallel(cfg, nodes, params=settings.params)
        transforms = ""
        if cfg.decision is not None:
            changed = [
                name
                for name, t in cfg.decision.transforms.items()
                if t != IMat.identity(t.nrows)
            ]
            transforms = f" (loop transforms applied to: {changed or 'none'})"
        print(f"  {version:>6}: {run.time_s:8.2f}s{transforms}")
        for nr in run.node_results[0].nest_runs:
            print(f"          {nr.nest_name:10s} calls={nr.stats.calls:6d} "
                  f"io={nr.stats.io_time_s:7.3f}s")


if __name__ == "__main__":
    main()
