#!/usr/bin/env python
"""Out-of-core transpose: the file-layout showcase (the ``trans`` code).

``B(i,j) = A(j,i)`` has spatial reuse in orthogonal directions — no loop
transformation can fix both references (Table 2: l-opt = col = row =
100), but giving A and B *different* file layouts fixes everything
(d-opt = c-opt = 48.2 in the paper).

The example also demonstrates exotic layouts from the paper's Figure 2:
a diagonal file layout, and the general hyperplane (7, 4).
"""

import numpy as np

from repro import (
    LinearLayout,
    MachineParams,
    OOCExecutor,
    build_version,
    col_major,
    diagonal,
    row_major,
    run_version_parallel,
)
from repro.experiments.harness import ExperimentSettings
from repro.runtime import IOContext, OutOfCoreArray, ParallelFileSystem
from repro.workloads import build_workload


def version_comparison(n=128, nodes=16):
    settings = ExperimentSettings(n=n)
    program = build_workload("trans", n)
    print(f"trans (N={n}, {nodes} nodes): B(i,j) = A(j,i)")
    base = None
    for version in ("col", "row", "l-opt", "d-opt"):
        cfg = build_version(
            version, program, params=settings.params, n_nodes=nodes
        )
        run = run_version_parallel(cfg, nodes, params=settings.params)
        base = base or run.time_s
        lay = {
            name: l.hyperplane.name
            for name, l in cfg.layouts.items()
            if hasattr(l, "hyperplane")
        }
        print(f"  {version:>6}: {100 * run.time_s / base:6.1f}% of col  "
              f"layouts {lay}")


def exotic_layouts(n=32):
    """Tile-read cost of one array under the Figure-2 layout family."""
    print(f"\nreading a {n//4}x{n} tile of an {n}x{n} array under "
          "different layouts (calls / elements):")
    params = MachineParams(io_latency_s=0.001)
    for name, layout in [
        ("row-major (1,0)", row_major(2)),
        ("column-major (0,1)", col_major(2)),
        ("diagonal (1,-1)", diagonal()),
        ("hyperplane (7,4)", LinearLayout.from_hyperplane((7, 4))),
    ]:
        pfs = ParallelFileSystem(params)
        arr = OutOfCoreArray.create("X", (n, n), layout, pfs, real=False)
        ctx = IOContext(params)
        calls = arr.count_tile_io(((0, n // 4 - 1), (0, n - 1)), ctx, False)
        print(f"  {name:22s} {calls:5d} calls, "
              f"{ctx.stats.elements_read} elements")


if __name__ == "__main__":
    version_comparison()
    exotic_layouts()
