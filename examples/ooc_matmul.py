#!/usr/bin/env python
"""Out-of-core matrix multiplication under all six versions of the
paper's evaluation (the ``mat`` workload of Table 1/2).

Shows, per version: the file layout of each array, the tile plan, I/O
calls / volume / simulated time on 16 compute nodes — the anatomy of one
row of Table 2.
"""

from repro import VERSION_NAMES, build_version, run_version_parallel
from repro.experiments.harness import ExperimentSettings
from repro.workloads import build_workload


def main(n=128, nodes=16):
    settings = ExperimentSettings(n=n)
    program = build_workload("mat", n)
    print(f"mat: C = C + A*B, N={n}, {nodes} compute nodes, "
          f"{settings.params.n_io_nodes} I/O nodes")
    print(f"memory per node: 1/{settings.params.memory_fraction} "
          f"of the {program.total_array_bytes() // 1024} KB of data\n")

    results = {}
    for version in VERSION_NAMES:
        cfg = build_version(
            version, program, params=settings.params, n_nodes=nodes
        )
        run = run_version_parallel(cfg, nodes, params=settings.params)
        results[version] = run
        stats = run.total_stats
        layouts = ", ".join(
            f"{name}={lay.hyperplane.name}"
            for name, lay in sorted(cfg.layouts.items())
            if hasattr(lay, "hyperplane") and lay.rank > 1
        )
        plan = run.node_results[0].nest_runs[-1].plan
        print(f"{version:>6}: time {run.time_s:8.2f}s  "
              f"calls {stats.calls:7d}  "
              f"moved {stats.elements_moved * 8 // 1024:7d} KB  "
              f"tiling {plan.spec.describe()} B={plan.tile_size}")
        print(f"        layouts: {layouts}")

    base = results["col"].time_s
    print("\nnormalized (col = 100, the paper's Table 2 presentation):")
    print("  " + "  ".join(
        f"{v}={100 * results[v].time_s / base:.1f}" for v in VERSION_NAMES
    ))


if __name__ == "__main__":
    main()
