"""Command-line interface: ``python -m repro.obs <command>``.

``report <trace.json>``
    Print the per-nest × per-array I/O breakdown table of an exported
    trace, the redistribution lines, the cost-model drift section, and
    the cross-check against the run's folded
    :class:`~repro.runtime.stats.IOStats`.

``capture``
    Run one workload version on the simulated machine with observability
    enabled and export the trace — the quickest way to get a
    Perfetto-loadable file (and the file CI uploads as an artifact)::

        python -m repro.obs capture --workload adi --collective \\
            --out trace.json
        python -m repro.obs report trace.json

``profile``
    Run one workload version with the hotspot profiler on and print the
    ``top``-style report: instrumented sites by self time, the
    pricing-stack share, and the deterministic work counters.
    ``--folded`` adds a cProfile capture and writes flamegraph
    collapsed-stack lines; ``--journal`` streams the run's telemetry to
    a JSONL journal; ``--openmetrics`` writes the metrics registry in
    Prometheus/OpenMetrics text exposition::

        python -m repro.obs profile --workload adi --folded prof.folded \\
            --journal run.jsonl

``top <trace.json>``
    Print the hotspot section of a previously exported trace (one that
    was captured with profiling enabled).

``journal <events.jsonl>``
    Inspect a streamed JSONL journal: event-count summary by default,
    ``--report`` replays it into the I/O report renderer,
    ``--openmetrics`` re-renders the final metrics snapshot as
    OpenMetrics text, ``--emit-doc`` folds ``result`` events into a
    regression-gate document.

``regress capture|check|report``
    The benchmark regression observatory (:mod:`repro.obs.baselines`,
    :mod:`repro.obs.regress`): snapshot the benchmark suite's
    deterministic results into a schema-versioned baseline, diff a
    later run against it with per-metric tolerance policies, and
    summarize stored baselines.  ``check`` is CI's perf gate::

        python -m repro.obs regress capture --smoke \\
            --out benchmarks/baselines/BENCH_smoke.json
        python -m pytest benchmarks -q --smoke --json current.json
        python -m repro.obs regress check \\
            benchmarks/baselines/BENCH_smoke.json current.json

    Exit codes: 0 pass, 1 regression detected, 2 usage / missing file /
    malformed document.
"""

from __future__ import annotations

import argparse
import sys

from . import Observability, _payload_report, load_trace


def cmd_report(args: argparse.Namespace) -> int:
    import json

    try:
        if args.trace == "-":
            # stdin payload: pipe a fresh capture straight into a report
            payload = json.load(sys.stdin)
        else:
            payload = load_trace(args.trace)
    except FileNotFoundError:
        print(f"error: trace file not found: {args.trace}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        source = "stdin" if args.trace == "-" else args.trace
        print(
            f"error: malformed trace JSON in {source}: {e}",
            file=sys.stderr,
        )
        return 2
    if not isinstance(payload, dict):
        print(
            f"error: {args.trace} is not a trace payload "
            "(top level is not an object)",
            file=sys.stderr,
        )
        return 2
    print(_payload_report(payload, include_metrics=args.metrics))
    sim = payload.get("sim")
    if sim:
        print(
            f"event sim: makespan={sim['makespan_s']:.3f}s "
            f"waited={sim['waited_requests']} "
            f"(queue delay {sim['wait_time_s']:.3f}s)"
        )
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    # local imports: the CLI must not drag the whole system into every
    # `python -m repro.obs report` invocation
    from ..collective import CollectiveConfig
    from ..experiments.harness import _scaled_params
    from ..optimizer import build_version
    from ..parallel import run_version_parallel
    from ..workloads import build_workload

    obs = Observability(journal=getattr(args, "journal", None))
    program = build_workload(args.workload, args.n)
    cfg = build_version(args.version, program)
    collective = (
        CollectiveConfig(mode=args.mode) if args.collective else None
    )
    run = run_version_parallel(
        cfg,
        args.nodes,
        params=_scaled_params(args.n),
        collective=collective,
        obs=obs,
    )
    obs.export(args.out)
    print(
        f"{args.workload}/{args.version} on {args.nodes} node(s): "
        f"time={run.time_s:.3f}s calls={run.total_io_calls} -> {args.out}"
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from ..collective import CollectiveConfig
    from ..experiments.harness import _scaled_params
    from ..optimizer import build_version
    from ..parallel import run_version_parallel
    from ..workloads import build_workload
    from .profile import ProfileConfig, validate_collapsed

    try:
        program = build_workload(args.workload, args.n)
    except KeyError as e:
        print(f"error: {e.args[0]}", file=sys.stderr)
        return 2
    try:
        cfg = build_version(args.version, program)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    obs = Observability(journal=args.journal)
    collective = (
        CollectiveConfig(mode=args.mode) if args.collective else None
    )
    run = run_version_parallel(
        cfg,
        args.nodes,
        params=_scaled_params(args.n),
        collective=collective,
        obs=obs,
        profile=ProfileConfig(cprofile=bool(args.folded), top=args.top),
    )
    prof = run.profile
    print(
        f"{args.workload}/{args.version} on {args.nodes} node(s): "
        f"time={run.time_s:.3f}s calls={run.total_io_calls}"
    )
    print(prof.render_top())
    if args.folded:
        lines = prof.collapsed()
        validate_collapsed(lines)
        with open(args.folded, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"collapsed stacks ({len(lines)} line(s)) -> {args.folded}")
    if args.openmetrics:
        from .export import render_openmetrics

        with open(args.openmetrics, "w") as fh:
            fh.write(render_openmetrics(obs.metrics))
        print(f"openmetrics -> {args.openmetrics}")
    if args.out:
        obs.export(args.out)
        print(f"trace -> {args.out}")
    elif args.journal:
        # no trace export: flush the journal explicitly so the file is
        # complete when the process exits
        obs.journal.flush()
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import json

    from .profile import render_profile

    try:
        if args.trace == "-":
            payload = json.load(sys.stdin)
        else:
            payload = load_trace(args.trace)
    except FileNotFoundError:
        print(f"error: trace file not found: {args.trace}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        source = "stdin" if args.trace == "-" else args.trace
        print(
            f"error: malformed trace JSON in {source}: {e}",
            file=sys.stderr,
        )
        return 2
    prof = payload.get("profile") if isinstance(payload, dict) else None
    if not isinstance(prof, dict):
        print(
            f"error: {args.trace} has no profile section "
            "(captured without profiling?)",
            file=sys.stderr,
        )
        return 2
    print(render_profile(prof, top=args.top))
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    import json

    from .journal import (
        JournalError,
        doc_from_journal,
        payload_from_journal,
        read_journal,
    )

    try:
        events = read_journal(args.path)
    except FileNotFoundError:
        print(
            f"error: journal file not found: {args.path}", file=sys.stderr
        )
        return 2
    except JournalError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.emit_doc:
        try:
            doc = doc_from_journal(events)
        except JournalError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    payload = payload_from_journal(events)
    if args.openmetrics:
        from .export import render_openmetrics
        from .metrics import registry_from_snapshot

        metrics = payload.get("metrics")
        print(
            render_openmetrics(
                registry_from_snapshot(
                    metrics if isinstance(metrics, dict) else {}
                )
            ),
            end="",
        )
        return 0
    if args.report:
        print(_payload_report(payload, include_metrics=args.metrics))
        return 0
    kinds: dict[str, int] = {}
    for ev in events:
        kinds[ev["kind"]] = kinds.get(ev["kind"], 0) + 1
    print(f"{args.path}: {len(events)} event(s)")
    for kind in sorted(kinds):
        print(f"  {kind:<12} {kinds[kind]}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    from ..bounds import program_bounds
    from ..collective import CollectiveConfig
    from ..experiments.harness import _scaled_params
    from ..optimizer import build_version
    from ..parallel import run_version_parallel
    from ..workloads import build_analytics, build_workload
    from .report import _render_optimality

    try:
        program = build_workload(args.workload, args.n)
    except KeyError:
        try:
            program = build_analytics(args.workload, args.n)
        except KeyError as e:
            print(f"error: {e.args[0]}", file=sys.stderr)
            return 2
    if args.static:
        bounds = program_bounds(
            program, memory_elements=args.memory, n_nodes=args.nodes
        )
        header = (
            f"{'nest':<16} {'rule':<22} {'bound':>10} "
            f"{'reads>=':>10} {'writes>=':>10}  detail"
        )
        print(header)
        print("-" * len(header))
        for nb in bounds:
            print(
                f"{nb.nest:<16} {nb.rule:<22} {nb.bound_elements:>10.0f} "
                f"{nb.read_elements:>10.0f} {nb.write_elements:>10.0f}  "
                f"{nb.detail}"
            )
        print(
            f"M={bounds[0].memory_elements if bounds else args.memory} "
            f"elements/node, {args.nodes} node(s)"
        )
        return 0
    obs = Observability()
    cfg = build_version(args.version, program)
    collective = CollectiveConfig(mode=args.mode) if args.collective else None
    run = run_version_parallel(
        cfg,
        args.nodes,
        params=_scaled_params(args.n),
        memory_per_node=args.memory,
        collective=collective,
        obs=obs,
    )
    stats = run.total_stats.to_dict()
    print(
        f"{args.workload}/{args.version} on {args.nodes} node(s), "
        f"path={'two-phase' if args.collective else 'independent'}"
    )
    print("\n".join(_render_optimality(obs.report.optimality, stats)))
    if args.out:
        obs.export(args.out)
        print(f"trace -> {args.out}")
    return 0


def cmd_regress_capture(args: argparse.Namespace) -> int:
    from .baselines import BaselineError, capture

    try:
        doc = capture(args.out, args.bench or None, smoke=args.smoke)
    except BaselineError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(
        f"captured {len(doc['results'])} benchmark result(s) "
        f"(smoke={doc['smoke']}, rev={str(doc['git_rev'])[:12]}) "
        f"-> {args.out}"
    )
    return 0


def cmd_regress_check(args: argparse.Namespace) -> int:
    from .baselines import BaselineError
    from .regress import TolerancePolicy, check_paths, render_regress

    try:
        report = check_paths(
            args.baseline, args.current,
            TolerancePolicy(rel_tol=args.rel_tol),
        )
    except BaselineError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(render_regress(report))
    return 0 if report.ok else 1


def cmd_regress_report(args: argparse.Namespace) -> int:
    from .baselines import BaselineError, load_baseline
    from .regress import summarize_baseline

    try:
        doc = load_baseline(args.baseline)
    except BaselineError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(summarize_baseline(doc))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="tracing / metrics / profiling for the repro system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="per-nest x per-array I/O table from a trace file"
    )
    p_report.add_argument(
        "trace", help="trace JSON written by obs.export(), or '-' for stdin"
    )
    p_report.add_argument(
        "--metrics", action="store_true", help="also dump the metrics registry"
    )
    p_report.set_defaults(func=cmd_report)

    p_cap = sub.add_parser(
        "capture", help="run a workload with observability on, export trace"
    )
    p_cap.add_argument("--workload", default="adi")
    p_cap.add_argument("--version", default="c-opt")
    p_cap.add_argument("--n", type=int, default=24)
    p_cap.add_argument("--nodes", type=int, default=4)
    p_cap.add_argument(
        "--collective", action="store_true",
        help="run through the two-phase collective layer + event sim",
    )
    p_cap.add_argument(
        "--mode", default="auto", choices=("auto", "always", "never"),
        help="collective mode (with --collective)",
    )
    p_cap.add_argument("--out", default="trace.json")
    p_cap.add_argument(
        "--journal", default=None, metavar="PATH",
        help="also stream events to an append-only JSONL journal",
    )
    p_cap.set_defaults(func=cmd_capture)

    p_prof = sub.add_parser(
        "profile",
        help="run a workload with the hotspot profiler, print top report",
    )
    p_prof.add_argument("--workload", default="adi")
    p_prof.add_argument("--version", default="c-opt")
    p_prof.add_argument("--n", type=int, default=24)
    p_prof.add_argument("--nodes", type=int, default=4)
    p_prof.add_argument(
        "--collective", action="store_true",
        help="run through the two-phase collective layer + event sim",
    )
    p_prof.add_argument(
        "--mode", default="auto", choices=("auto", "always", "never"),
        help="collective mode (with --collective)",
    )
    p_prof.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="hotspot rows to show (default 20)",
    )
    p_prof.add_argument(
        "--folded", default=None, metavar="PATH",
        help="enable cProfile, write flamegraph collapsed-stack lines",
    )
    p_prof.add_argument(
        "--journal", default=None, metavar="PATH",
        help="stream telemetry to an append-only JSONL journal",
    )
    p_prof.add_argument(
        "--openmetrics", default=None, metavar="PATH",
        help="write the metrics registry as OpenMetrics text",
    )
    p_prof.add_argument(
        "--out", default=None, metavar="PATH",
        help="also export the obs trace JSON (includes the profile)",
    )
    p_prof.set_defaults(func=cmd_profile)

    p_top = sub.add_parser(
        "top", help="hotspot section of a profiled trace file"
    )
    p_top.add_argument(
        "trace", help="trace JSON from a profiled capture, '-' for stdin"
    )
    p_top.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="hotspot rows to show (default 20)",
    )
    p_top.set_defaults(func=cmd_top)

    p_jr = sub.add_parser(
        "journal", help="inspect / replay a streamed JSONL event journal"
    )
    p_jr.add_argument("path", help="JSONL journal written with --journal")
    p_jr.add_argument(
        "--report", action="store_true",
        help="replay the journal into the I/O report renderer",
    )
    p_jr.add_argument(
        "--metrics", action="store_true",
        help="with --report: also dump the metrics registry",
    )
    p_jr.add_argument(
        "--openmetrics", action="store_true",
        help="re-render the final metrics snapshot as OpenMetrics text",
    )
    p_jr.add_argument(
        "--emit-doc", action="store_true", dest="emit_doc",
        help="fold result events into a regression-gate document (JSON)",
    )
    p_jr.set_defaults(func=cmd_journal)

    p_bounds = sub.add_parser(
        "bounds",
        help="static I/O lower bounds + achieved-vs-bound optimality",
    )
    p_bounds.add_argument("--workload", default="adi")
    p_bounds.add_argument("--version", default="c-opt")
    p_bounds.add_argument("--n", type=int, default=24)
    p_bounds.add_argument("--nodes", type=int, default=4)
    p_bounds.add_argument(
        "--memory", type=int, default=None, metavar="ELEMENTS",
        help="per-node memory capacity M (default: executor's budget)",
    )
    p_bounds.add_argument(
        "--static", action="store_true",
        help="print the static bounds only, without running",
    )
    p_bounds.add_argument(
        "--collective", action="store_true",
        help="run through the two-phase collective layer",
    )
    p_bounds.add_argument(
        "--mode", default="auto", choices=("auto", "always", "never"),
        help="collective mode (with --collective)",
    )
    p_bounds.add_argument(
        "--out", default=None, metavar="PATH",
        help="also export the obs trace JSON",
    )
    p_bounds.set_defaults(func=cmd_bounds)

    p_reg = sub.add_parser(
        "regress",
        help="benchmark baseline store + regression gate",
    )
    reg_sub = p_reg.add_subparsers(dest="regress_command", required=True)

    p_rc = reg_sub.add_parser(
        "capture", help="run the benchmark suite, snapshot a baseline"
    )
    p_rc.add_argument(
        "--out", required=True, metavar="PATH",
        help="baseline JSON to write (e.g. BENCH_tables.json)",
    )
    p_rc.add_argument(
        "--smoke", action="store_true",
        help="capture in --smoke mode (CI gate baselines)",
    )
    p_rc.add_argument(
        "--bench", action="append", default=[], metavar="ARG",
        help="pytest selection arg (repeatable; default: benchmarks/)",
    )
    p_rc.set_defaults(func=cmd_regress_capture)

    p_rk = reg_sub.add_parser(
        "check", help="diff current results against a baseline (CI gate)"
    )
    p_rk.add_argument("baseline", help="stored baseline JSON")
    p_rk.add_argument(
        "current",
        help="current results (pytest --json doc or baseline), '-' for stdin",
    )
    p_rk.add_argument(
        "--rel-tol", type=float, default=0.01, metavar="FRAC",
        help="relative tolerance for modeled float values (default 0.01)",
    )
    p_rk.set_defaults(func=cmd_regress_check)

    p_rr = reg_sub.add_parser(
        "report", help="summarize a stored baseline file"
    )
    p_rr.add_argument("baseline", help="stored baseline JSON")
    p_rr.set_defaults(func=cmd_regress_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
