"""Command-line interface: ``python -m repro.obs <command>``.

``report <trace.json>``
    Print the per-nest × per-array I/O breakdown table of an exported
    trace, the redistribution lines, and the cross-check against the
    run's folded :class:`~repro.runtime.stats.IOStats`.

``capture``
    Run one workload version on the simulated machine with observability
    enabled and export the trace — the quickest way to get a
    Perfetto-loadable file (and the file CI uploads as an artifact)::

        python -m repro.obs capture --workload adi --collective \\
            --out trace.json
        python -m repro.obs report trace.json
"""

from __future__ import annotations

import argparse
import sys

from . import Observability, _payload_report, load_trace


def cmd_report(args: argparse.Namespace) -> int:
    payload = load_trace(args.trace)
    print(_payload_report(payload))
    sim = payload.get("sim")
    if sim:
        print(
            f"event sim: makespan={sim['makespan_s']:.3f}s "
            f"waited={sim['waited_requests']} "
            f"(queue delay {sim['wait_time_s']:.3f}s)"
        )
    if args.metrics:
        for key, inst in sorted(payload.get("metrics", {}).items()):
            if inst["type"] == "histogram":
                print(
                    f"metric {key}: count={inst['count']} "
                    f"mean={inst['mean']:.3g} min={inst['min']} "
                    f"max={inst['max']}"
                )
            else:
                print(f"metric {key}: {inst['value']}")
    return 0


def cmd_capture(args: argparse.Namespace) -> int:
    # local imports: the CLI must not drag the whole system into every
    # `python -m repro.obs report` invocation
    from ..collective import CollectiveConfig
    from ..experiments.harness import _scaled_params
    from ..optimizer import build_version
    from ..parallel import run_version_parallel
    from ..workloads import build_workload

    obs = Observability()
    program = build_workload(args.workload, args.n)
    cfg = build_version(args.version, program)
    collective = (
        CollectiveConfig(mode=args.mode) if args.collective else None
    )
    run = run_version_parallel(
        cfg,
        args.nodes,
        params=_scaled_params(args.n),
        collective=collective,
        obs=obs,
    )
    obs.export(args.out)
    print(
        f"{args.workload}/{args.version} on {args.nodes} node(s): "
        f"time={run.time_s:.3f}s calls={run.total_io_calls} -> {args.out}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="tracing / metrics / profiling for the repro system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", help="per-nest x per-array I/O table from a trace file"
    )
    p_report.add_argument("trace", help="trace JSON written by obs.export()")
    p_report.add_argument(
        "--metrics", action="store_true", help="also dump the metrics registry"
    )
    p_report.set_defaults(func=cmd_report)

    p_cap = sub.add_parser(
        "capture", help="run a workload with observability on, export trace"
    )
    p_cap.add_argument("--workload", default="adi")
    p_cap.add_argument("--version", default="c-opt")
    p_cap.add_argument("--n", type=int, default=24)
    p_cap.add_argument("--nodes", type=int, default=4)
    p_cap.add_argument(
        "--collective", action="store_true",
        help="run through the two-phase collective layer + event sim",
    )
    p_cap.add_argument(
        "--mode", default="auto", choices=("auto", "always", "never"),
        help="collective mode (with --collective)",
    )
    p_cap.add_argument("--out", default="trace.json")
    p_cap.set_defaults(func=cmd_capture)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
