"""Streaming telemetry: an append-only JSONL event journal.

The trace JSON written by :meth:`Observability.export` is a *snapshot*
— nothing exists until the run ends and the whole payload is dumped.
Long sweeps and the serving layer want the opposite: telemetry that
hits disk **while the run is in flight**, survives a crash mid-run, and
can be tailed / shipped line-by-line.  The journal is that path:

- one JSON object per line (JSON Lines), each carrying a monotonically
  increasing ``seq`` and a ``kind`` tag (``nest_io``, ``redist``,
  ``stats``, ``metrics``, ``sim``, ``serve``, ``profile``,
  ``autotune``, ``result``, ``doc_meta``, …) plus the event's payload
  fields;
- incremental flush (``flush_every=1`` by default — every event reaches
  the OS before ``emit`` returns), append mode so restarted runs extend
  the same file;
- replay: :func:`payload_from_journal` folds a journal back into a
  trace-shaped payload for ``python -m repro.obs report``/``top``, and
  :func:`doc_from_journal` folds ``result``/``doc_meta`` events into a
  regress-checkable document, so ``regress check baseline run.jsonl``
  gates a run that only ever streamed.

Journaling is opt-in (``Observability(journal=...)``) and bit-identical
off: with no journal attached, the emission hooks are a single ``is
None`` test and every payload byte is unchanged.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping


class JournalError(ValueError):
    """A journal file violates the JSONL contract (carries the offending
    1-based line number when raised by :func:`read_journal`)."""


class Journal:
    """Append-only JSONL event sink with incremental flush."""

    def __init__(
        self, path_or_file: str | IO[str], *, flush_every: int = 1
    ):
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if hasattr(path_or_file, "write"):
            self._f: IO[str] = path_or_file
            self._owns = False
        else:
            self._f = open(path_or_file, "a")
            self._owns = True
        self.flush_every = flush_every
        self.seq = 0
        self._pending = 0

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event line.  ``kind`` and ``seq`` are reserved
        field names; everything else passes through as-is (values must
        already be JSON-serializable — run results go through
        :func:`~repro.obs.export.sanitize` before they get here)."""
        event = {"seq": self.seq, "kind": kind}
        event.update(fields)
        self._f.write(json.dumps(event, sort_keys=True) + "\n")
        self.seq += 1
        self._pending += 1
        if self._pending >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        self._f.flush()
        self._pending = 0

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._f.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_journal(path_or_file: str | IO[str]) -> list[dict[str, object]]:
    """Parse a journal into its event dicts, validating the contract:
    every non-blank line is a JSON object with a string ``kind``.
    Raises :class:`JournalError` naming the first offending line."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as f:
            lines = f.read().splitlines()
    events: list[dict[str, object]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            raise JournalError(
                f"journal line {lineno} is not valid JSON: {e}"
            ) from None
        if not isinstance(event, dict):
            raise JournalError(
                f"journal line {lineno} is not a JSON object "
                f"(got {type(event).__name__})"
            )
        if not isinstance(event.get("kind"), str):
            raise JournalError(
                f"journal line {lineno} has no string 'kind' field"
            )
        events.append(event)
    return events


def _strip(event: Mapping[str, object]) -> dict[str, object]:
    return {k: v for k, v in event.items() if k not in ("seq", "kind")}


def payload_from_journal(
    events: Iterable[Mapping[str, object]],
) -> dict[str, object]:
    """Fold journal events back into a trace-shaped payload renderable
    by ``python -m repro.obs report`` / ``top``.

    Record-shaped kinds (``nest_io``, ``redist``) accumulate in arrival
    order; snapshot kinds (``stats``, ``metrics``, ``sim``, ``serve``,
    ``profile``, ``autotune``) are last-wins, matching how the live
    objects overwrite
    on re-finalization.  Unknown kinds are ignored — journals may carry
    application events the report does not render.
    """
    payload: dict[str, object] = {
        "traceEvents": [],
        "io_report": {"records": [], "redist": []},
        "metrics": {},
    }
    report = payload["io_report"]
    for event in events:
        kind = event.get("kind")
        if kind == "nest_io":
            report["records"].append(_strip(event))
        elif kind == "redist":
            report["redist"].append(_strip(event))
        elif kind in (
            "stats", "metrics", "sim", "serve", "profile", "autotune"
        ):
            data = event.get("data")
            payload[kind] = data if isinstance(data, (dict, list)) \
                else _strip(event)
    return payload


def doc_from_journal(
    events: Iterable[Mapping[str, object]],
) -> dict[str, object]:
    """Fold ``result`` / ``doc_meta`` events into a regress-checkable
    document (the ``{"results", "meta", "smoke", ...}`` shape the PR-4
    gate diffs).  ``result`` events carry ``name``/``payload``/optional
    ``meta``; ``doc_meta`` events merge envelope fields (``smoke``,
    ``machine``, …) last-wins."""
    doc: dict[str, object] = {"results": {}, "meta": {}, "smoke": False}
    results: dict[str, object] = doc["results"]
    meta: dict[str, object] = doc["meta"]
    for event in events:
        kind = event.get("kind")
        if kind == "result":
            name = event.get("name")
            if not isinstance(name, str):
                raise JournalError(
                    f"result event seq={event.get('seq')} has no "
                    "string 'name'"
                )
            results[name] = event.get("payload")
            if event.get("meta") is not None:
                meta[name] = event["meta"]
        elif kind == "doc_meta":
            doc.update(_strip(event))
    return doc
