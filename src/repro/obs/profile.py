"""Hotspot profiling and deterministic work counters (``repro.obs.profile``).

The ROADMAP's batched-pricing-kernel item starts with "find the
hotspots" — this module is the measurement layer that makes that (and
every later optimization claim) evidence instead of anecdote.  Three
instruments, each with a different determinism contract:

- **Work counters** (:data:`WORK`) — always-on integer counts of the
  pricing stack's actual work: ``plan_runs`` invocations, priced runs
  coming out of the sieve/split planner, event-simulator events, cache
  probes, and interpreted Python loop iterations per phase.  Plain int
  increments, bit-identical across repeat runs, published per run as
  *deltas* into the :class:`~repro.obs.metrics.MetricsRegistry` (keys
  ``work.*``) — integers, so the PR-4 regression gate holds them to
  exact equality.  A future batched kernel must keep ``priced_runs``
  conserved while wall time drops; these counters are how that is
  checked.
- **Hotspot sites** (:class:`HotspotRecorder`) — wall-clock attribution
  of the named hot paths (``pricing.plan_runs``, ``io.record_runs``,
  ``sim.event_loop``, ``cache.probe``, …) with self/cumulative time and
  call counts, aggregated into a :class:`HotspotTable` and rendered as
  a ``top``-style section.  Off by default; activated only inside a
  :class:`ProfileSession`, so unprofiled runs never touch the clock.
- **cProfile capture** — optional interpreter-level profile with
  collapsed-stack (flamegraph ``folded``) export, for the hotspots the
  hand-placed sites do not name.

Everything is opt-in via ``profile=ProfileConfig(...)`` on
:class:`~repro.engine.executor.OOCExecutor` /
:func:`~repro.parallel.spmd.run_version_parallel` and bit-identical
when off — the same contract as ``obs=None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

#: the four unlabeled work counters, in publication order
WORK_KEYS = ("plan_runs_calls", "priced_runs", "sim_events", "cache_probes")

#: hotspot-site name fragments counted as the *pricing stack* (the
#: ISSUE-9 acceptance share: plan_runs + IOContext record paths + the
#: event-sim loop)
PRICING_PREFIXES = ("pricing.", "io.record", "sim.event")


class WorkCounters:
    """Deterministic counts of the pricing stack's work.

    A single module-level instance (:data:`WORK`) accumulates for the
    whole process — increments are bare int adds, cheap enough to stay
    always-on.  Runs take a :meth:`snapshot` before and compute the
    :meth:`delta` after, so per-run published values are independent of
    process history and bit-identical across repeats.
    """

    __slots__ = WORK_KEYS + ("python_loop_iters",)

    def __init__(self) -> None:
        self.plan_runs_calls = 0
        self.priced_runs = 0
        self.sim_events = 0
        self.cache_probes = 0
        #: interpreted Python loop iterations per phase ("element" for
        #: the element loops / iteration estimate, "tile" for tile-space
        #: steps)
        self.python_loop_iters: dict[str, int] = {}

    def add_loop_iters(self, phase: str, n: int) -> None:
        d = self.python_loop_iters
        d[phase] = d.get(phase, 0) + n

    def snapshot(self) -> dict[str, object]:
        return {
            "plan_runs_calls": self.plan_runs_calls,
            "priced_runs": self.priced_runs,
            "sim_events": self.sim_events,
            "cache_probes": self.cache_probes,
            "python_loop_iters": dict(self.python_loop_iters),
        }

    @staticmethod
    def delta(
        before: Mapping[str, object], after: Mapping[str, object]
    ) -> dict[str, object]:
        """What happened between two snapshots.  Phase keys appear only
        when their delta is nonzero, so serialized deltas are identical
        for runs that never touch a phase."""
        out: dict[str, object] = {
            k: after[k] - before[k] for k in WORK_KEYS
        }
        b = before["python_loop_iters"]
        phases = {
            phase: n - b.get(phase, 0)
            for phase, n in sorted(after["python_loop_iters"].items())
            if n - b.get(phase, 0)
        }
        out["python_loop_iters"] = phases
        return out


#: the process-wide work counters every instrumented site increments
WORK = WorkCounters()


def publish_work(registry, delta: Mapping[str, object]) -> None:
    """Fold one run's work delta into a metrics registry as ``work.*``
    counters.  Values stay ints end to end, so the regression gate
    treats them as exact-match deterministic counters."""
    for key in WORK_KEYS:
        registry.counter(f"work.{key}").inc(int(delta.get(key, 0)))
    for phase, n in (delta.get("python_loop_iters") or {}).items():
        registry.counter("work.python_loop_iters", phase=phase).inc(int(n))


# -- hotspot sites ----------------------------------------------------------


class HotspotRecorder:
    """Wall-time attribution per named site, nesting-aware.

    ``begin``/``end`` time a site; a nested site's duration is credited
    to the parent's *children* total, so every row separates self time
    from cumulative time.  :meth:`add` records an externally measured
    leaf duration with the same parent crediting.  The recorder is only
    consulted through the module attribute :data:`ACTIVE` — ``None``
    (the default) means instrumented sites skip the clock entirely.
    """

    __slots__ = ("sites", "_stack", "_clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: site name -> [count, cumulative_s, self_s]
        self.sites: dict[str, list] = {}
        self._stack: list[list] = []

    def begin(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0.0])

    def end(self, count: int = 1) -> None:
        name, start, child_s = self._stack.pop()
        dt = self._clock() - start
        if self._stack:
            self._stack[-1][2] += dt
        row = self.sites.get(name)
        if row is None:
            row = self.sites[name] = [0, 0.0, 0.0]
        row[0] += count
        row[1] += dt
        row[2] += dt - child_s

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record a leaf site measured by the caller (no nesting under
        it); still credits the enclosing site's children total."""
        if self._stack:
            self._stack[-1][2] += seconds
        row = self.sites.get(name)
        if row is None:
            row = self.sites[name] = [0, 0.0, 0.0]
        row[0] += count
        row[1] += seconds
        row[2] += seconds


#: the live recorder instrumented sites consult; rebound only by
#: :class:`ProfileSession` activation (``None`` = profiling off)
ACTIVE: HotspotRecorder | None = None


def timed(name: str, fn: Callable, *args, **kwargs):
    """Call ``fn`` under a hotspot site when profiling is active, or
    directly (no clock read) when it is not."""
    rec = ACTIVE
    if rec is None:
        return fn(*args, **kwargs)
    rec.begin(name)
    try:
        return fn(*args, **kwargs)
    finally:
        rec.end()


@dataclass(frozen=True)
class HotspotRow:
    """One aggregated site (or span name) of the hotspot table."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def per_call_us(self) -> float:
        return 1e6 * self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "per_call_us": self.per_call_us,
        }


@dataclass
class HotspotTable:
    """Hotspot attribution of one profiled run: fine-grained site rows
    (the recorder's pricing instrumentation) plus the tracer's wall
    spans aggregated by name — two sections, never summed together, so
    a span enclosing an instrumented site cannot double-count."""

    sites: list[HotspotRow] = field(default_factory=list)
    spans: list[HotspotRow] = field(default_factory=list)

    @classmethod
    def from_recorder(cls, recorder: HotspotRecorder | None) -> "HotspotTable":
        if recorder is None:
            return cls()
        rows = [
            HotspotRow(name, count, total, self_s)
            for name, (count, total, self_s) in recorder.sites.items()
        ]
        rows.sort(key=lambda r: (-r.self_s, r.name))
        return cls(sites=rows)

    def add_spans(self, tracer) -> None:
        """Aggregate a tracer's closed wall spans by name: self time is
        the span's duration minus its direct children's durations."""
        spans = [s for s in tracer.wall_spans if s.closed]
        child_s: dict[int, float] = {}
        for s in spans:
            if s.parent_id is not None:
                child_s[s.parent_id] = (
                    child_s.get(s.parent_id, 0.0) + s.duration_s
                )
        agg: dict[str, list] = {}
        for s in spans:
            row = agg.setdefault(s.name, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += s.duration_s
            row[2] += s.duration_s - child_s.get(s.span_id, 0.0)
        rows = [
            HotspotRow(name, c, t, self_s)
            for name, (c, t, self_s) in agg.items()
        ]
        rows.sort(key=lambda r: (-r.self_s, r.name))
        self.spans = rows

    @property
    def total_self_s(self) -> float:
        return sum(r.self_s for r in self.sites)

    def pricing_share(
        self, prefixes: Iterable[str] = PRICING_PREFIXES
    ) -> float:
        """Fraction of instrumented self time attributed to the pricing
        stack (0.0 when nothing was recorded)."""
        total = self.total_self_s
        if total <= 0.0:
            return 0.0
        prefixes = tuple(prefixes)
        pricing = sum(
            r.self_s for r in self.sites
            if r.name.startswith(prefixes)
        )
        return pricing / total

    def to_dict(self) -> dict[str, object]:
        return {
            "sites": [r.to_dict() for r in self.sites],
            "spans": [r.to_dict() for r in self.spans],
        }


# -- the profile session ----------------------------------------------------


@dataclass(frozen=True)
class ProfileConfig:
    """Switches for one profiling capture.

    ``enabled``
        master switch; disabled behaves exactly like ``profile=None``.
    ``hotspots``
        activate the site recorder (the hotspot table).
    ``cprofile``
        additionally run :mod:`cProfile` for interpreter-level stacks
        and the collapsed-stack (flamegraph) export.  Off by default —
        it multiplies wall time and only one capture can be active per
        process.
    ``top``
        rows shown by the rendered ``top``-style report section.
    """

    enabled: bool = True
    hotspots: bool = True
    cprofile: bool = False
    top: int = 20


@dataclass
class ProfileResult:
    """One finished capture: the hotspot table, the run's deterministic
    work delta, and (with ``cprofile``) the raw :mod:`pstats` data."""

    hotspots: HotspotTable
    work: dict[str, object]
    #: pstats.Stats of the cProfile capture; None without ``cprofile``
    #: (and after deserialization — stacks live in the folded export)
    pstats: object | None = None
    top: int = 20

    def to_dict(self) -> dict[str, object]:
        return {
            "hotspots": self.hotspots.to_dict(),
            "work": dict(self.work),
        }

    def collapsed(self) -> list[str]:
        """Collapsed-stack (flamegraph ``folded``) lines from the
        cProfile capture: ``caller;callee <self_microseconds>`` per
        caller edge, root functions as single frames.  Empty without
        ``cprofile``."""
        if self.pstats is None:
            return []
        return collapsed_stacks(self.pstats)

    def render_top(self) -> str:
        return render_profile(self.to_dict(), top=self.top)


class ProfileSession:
    """Owns one capture across one or more executor runs.

    ``activate``/``deactivate`` are re-entrant (the SPMD driver holds
    the session open across per-rank executors); the recorder and the
    cProfile capture bind on the outermost activation only.
    :meth:`finish` computes the work delta and freezes the result.
    """

    def __init__(
        self,
        config: ProfileConfig | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.config = config or ProfileConfig()
        self.recorder = (
            HotspotRecorder(clock) if self.config.hotspots else None
        )
        self._cprofile = None
        if self.config.cprofile:
            import cProfile

            self._cprofile = cProfile.Profile()
        self._depth = 0
        self._prev: HotspotRecorder | None = None
        self.work_before = WORK.snapshot()

    def activate(self) -> None:
        global ACTIVE
        self._depth += 1
        if self._depth == 1:
            if self.recorder is not None:
                self._prev = ACTIVE
                ACTIVE = self.recorder
            if self._cprofile is not None:
                self._cprofile.enable()

    def deactivate(self) -> None:
        global ACTIVE
        self._depth -= 1
        if self._depth == 0:
            if self._cprofile is not None:
                self._cprofile.disable()
            if self.recorder is not None:
                ACTIVE = self._prev
                self._prev = None

    def __enter__(self) -> "ProfileSession":
        self.activate()
        return self

    def __exit__(self, *exc) -> bool:
        self.deactivate()
        return False

    def finish(self, tracer=None) -> ProfileResult:
        """Freeze the capture into a :class:`ProfileResult`; ``tracer``
        (a live :class:`~repro.obs.tracer.Tracer`) adds the span-level
        aggregation section."""
        table = HotspotTable.from_recorder(self.recorder)
        if tracer is not None:
            table.add_spans(tracer)
        stats = None
        if self._cprofile is not None:
            import pstats

            stats = pstats.Stats(self._cprofile)
        return ProfileResult(
            hotspots=table,
            work=WorkCounters.delta(self.work_before, WORK.snapshot()),
            pstats=stats,
            top=self.config.top,
        )


# -- collapsed stacks (flamegraph folded format) ----------------------------


def _frame(func: tuple[str, int, str]) -> str:
    """One folded-format frame label.  Frames are ``;``-separated and
    the sample count follows the last space, so both characters are
    scrubbed from the label."""
    filename, lineno, name = func
    if filename == "~":           # built-in: ('~', 0, "<built-in ...>")
        label = name
    else:
        base = filename.rsplit("/", 1)[-1]
        label = f"{base}:{name}:{lineno}"
    return label.replace(";", "_").replace(" ", "_")


def collapsed_stacks(stats) -> list[str]:
    """Flamegraph folded lines from a :class:`pstats.Stats`.

    cProfile keeps caller *edges*, not full stacks, so the export is the
    standard two-level approximation: each function's self time is
    attributed under each recorded caller (``caller;callee n``), and
    functions without callers emit a single frame.  Counts are integer
    microseconds; zero-weight edges are dropped (the folded format
    requires positive counts)."""
    lines: list[str] = []
    for func, (_cc, _nc, tt, _ct, callers) in sorted(stats.stats.items()):
        label = _frame(func)
        if not callers:
            us = int(round(tt * 1e6))
            if us > 0:
                lines.append(f"{label} {us}")
            continue
        for caller, edge in sorted(callers.items()):
            # per-edge tuple: (callcount, ncalls, tottime, cumtime)
            edge_tt = edge[2] if isinstance(edge, tuple) else tt
            us = int(round(edge_tt * 1e6))
            if us > 0:
                lines.append(f"{_frame(caller)};{label} {us}")
    return lines


def validate_collapsed(lines: Iterable[str]) -> None:
    """Raise ``ValueError`` unless every line is valid folded format:
    non-empty ``;``-separated frames, one space, a positive integer."""
    for i, line in enumerate(lines):
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(
                f"folded line {i} has no 'stack count' split: {line!r}"
            )
        if not count.isdigit() or int(count) <= 0:
            raise ValueError(
                f"folded line {i} count is not a positive int: {line!r}"
            )
        if any(not frame for frame in stack.split(";")):
            raise ValueError(f"folded line {i} has an empty frame: {line!r}")
        if " " in stack:
            raise ValueError(
                f"folded line {i} has a space inside the stack: {line!r}"
            )


# -- rendering --------------------------------------------------------------


def render_profile(profile: Mapping[str, object], *, top: int = 20) -> str:
    """The ``top``-style hotspot section from a serialized profile
    payload (``ProfileResult.to_dict()`` / a trace's ``profile`` key):
    site rows by self time, the pricing-stack share, the span
    aggregation, and the deterministic work counters."""
    lines: list[str] = []
    hotspots = profile.get("hotspots") or {}
    sites = list(hotspots.get("sites") or [])
    spans = list(hotspots.get("spans") or [])
    header = (
        f"{'site':<24} {'count':>10} {'self_s':>10} "
        f"{'total_s':>10} {'us/call':>10}"
    )
    if sites:
        lines.append("hotspots (repro.obs.profile) — self-time top")
        lines.append(header)
        lines.append("-" * len(header))
        total_self = sum(float(r.get("self_s", 0.0)) for r in sites)
        for r in sites[:top]:
            lines.append(
                f"{r['name']:<24} {r['count']:>10} "
                f"{float(r['self_s']):>10.6f} {float(r['total_s']):>10.6f} "
                f"{float(r.get('per_call_us', 0.0)):>10.2f}"
            )
        if len(sites) > top:
            lines.append(f"  ... ({len(sites) - top} more site(s))")
        pricing = sum(
            float(r.get("self_s", 0.0))
            for r in sites
            if str(r.get("name", "")).startswith(PRICING_PREFIXES)
        )
        if total_self > 0.0:
            lines.append(
                f"pricing stack share: {100.0 * pricing / total_self:.1f}% "
                f"of {total_self:.6f}s instrumented self time"
            )
    if spans:
        lines.append("")
        lines.append("span aggregates (wall spans by name)")
        lines.append(header)
        lines.append("-" * len(header))
        for r in spans[:top]:
            lines.append(
                f"{r['name']:<24} {r['count']:>10} "
                f"{float(r['self_s']):>10.6f} {float(r['total_s']):>10.6f} "
                f"{float(r.get('per_call_us', 0.0)):>10.2f}"
            )
        if len(spans) > top:
            lines.append(f"  ... ({len(spans) - top} more span name(s))")
    work = profile.get("work") or {}
    if work:
        lines.append("")
        lines.append("work counters (deterministic, exact-match gated)")
        for key in WORK_KEYS:
            lines.append(f"  work.{key:<18} {int(work.get(key, 0)):>14}")
        for phase, n in sorted(
            (work.get("python_loop_iters") or {}).items()
        ):
            lines.append(
                f"  work.python_loop_iters{{phase={phase}}} {int(n):>6}"
            )
    return "\n".join(lines) if lines else "profile: empty capture"
