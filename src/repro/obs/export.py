"""Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
plus the shared result sanitizer every JSON artifact goes through.

One exported file carries both clocks as separate trace processes:

- ``pid 0`` — *wall time*: the compiler pipeline and executor spans as
  actually measured on the host;
- ``pid 1`` — *simulated time*: the discrete-event simulator's per-node
  execution and per-I/O-node queue occupancy, placed at the cost
  model's deterministic timestamps.

The file is the standard JSON-object form (``{"traceEvents": [...]}``)
so Perfetto and ``chrome://tracing`` load it directly; the extra
top-level keys (``metrics``, ``io_report``, ``stats``) are ignored by
the viewers and consumed by ``python -m repro.obs report``.

:func:`sanitize` converts benchmark/experiment results (numpy scalars
and arrays, dataclasses, ``to_dict()`` carriers, tuple dict keys, sets)
into plain JSON values.  Non-string dict keys are encoded with
:func:`encode_key` — a stable, *reversible* encoding (the key's JSON
text), so ``("adi", "col", 4, 8)`` becomes ``'["adi", "col", 4, 8]'``
and :func:`decode_key` recovers the tuple exactly.  Baseline diffs key
on these strings; the old ``repr()`` encoding was neither stable across
value types nor decodable.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Mapping

import numpy as np

from .tracer import Tracer

#: trace-event process ids for the two clocks
WALL_PID = 0
SIM_PID = 1

#: keys every emitted event must carry (the trace-event schema's
#: required subset; asserted by the unit tests)
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def _meta(pid: int, tid: int, name: str, kind: str) -> dict[str, object]:
    return {
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "name": kind,
        "args": {"name": name},
    }


def chrome_trace_events(tracer: Tracer) -> list[dict[str, object]]:
    """Render a tracer's spans and instants as trace-event dicts."""
    events: list[dict[str, object]] = [
        _meta(WALL_PID, 0, "wall time (compiler + runtime)", "process_name"),
        _meta(WALL_PID, 0, "pipeline", "thread_name"),
    ]
    tracks: dict[str, int] = {}
    have_sim = False
    for span in tracer.spans:
        if span.track is None:
            events.append(
                {
                    "ph": "X",
                    "ts": _us(span.start_s),
                    "dur": _us(span.duration_s),
                    "pid": WALL_PID,
                    "tid": 0,
                    "name": span.name,
                    "cat": span.cat or "span",
                    "args": dict(span.args),
                }
            )
        else:
            if not have_sim:
                events.append(
                    _meta(SIM_PID, 0, "simulated time (event sim)",
                          "process_name")
                )
                have_sim = True
            tid = tracks.get(span.track)
            if tid is None:
                tid = len(tracks)
                tracks[span.track] = tid
                events.append(_meta(SIM_PID, tid, span.track, "thread_name"))
            events.append(
                {
                    "ph": "X",
                    "ts": _us(span.start_s),
                    "dur": _us(span.duration_s),
                    "pid": SIM_PID,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.cat or "sim",
                    "args": dict(span.args),
                }
            )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "ts": _us(inst.ts_s),
                "pid": WALL_PID,
                "tid": 0,
                "name": inst.name,
                "cat": inst.cat or "instant",
                "s": "t",
                "args": dict(inst.args),
            }
        )
    return events


def validate_trace_events(events: list[Mapping[str, object]]) -> None:
    """Raise if any event misses the schema's required keys."""
    for i, ev in enumerate(events):
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in ev]
        if missing:
            raise ValueError(
                f"trace event {i} ({ev.get('name')!r}) missing {missing}"
            )


def write_trace(path_or_file: str | IO[str], payload: Mapping[str, object]) -> None:
    """Write a trace payload (``{"traceEvents": [...], ...}``) as JSON."""
    validate_trace_events(payload.get("traceEvents", []))
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file, indent=1)
    else:
        with open(path_or_file, "w") as f:
            json.dump(payload, f, indent=1)


def load_trace(path: str) -> dict[str, object]:
    with open(path) as f:
        return json.load(f)


# -- result sanitization ----------------------------------------------------


def encode_key(key: object) -> str:
    """Encode one dict key as a stable string.

    Strings pass through unchanged; everything else becomes the JSON
    text of its sanitized value (``(1, 0)`` → ``'[1, 0]'``, ``2.5`` →
    ``'2.5'``).  The encoding is deterministic — equal keys always
    produce equal strings — and reversible via :func:`decode_key`.
    """
    if isinstance(key, str):
        return key
    return json.dumps(sanitize(key))


def decode_key(encoded: str) -> object:
    """Inverse of :func:`encode_key`: JSON-decode the key text, turning
    lists back into tuples (dict keys were hashable, so any sequence
    key was a tuple).  Plain strings come back unchanged."""
    try:
        value = json.loads(encoded)
    except (json.JSONDecodeError, TypeError):
        return encoded

    def tuplify(v: object) -> object:
        if isinstance(v, list):
            return tuple(tuplify(x) for x in v)
        return v

    return tuplify(value)


def sanitize(obj: object) -> object:
    """Make a result JSON-serializable: numpy scalars/arrays,
    dataclasses and ``to_dict()`` carriers, tuple dict keys, sets."""
    if isinstance(obj, dict):
        return {encode_key(k): sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        # iteration order is arbitrary: sort by JSON text so equal sets
        # always serialize identically (baselines diff on the output)
        return sorted(
            (sanitize(v) for v in obj),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(obj, (list, tuple)):
        return [sanitize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if hasattr(obj, "to_dict"):
        return sanitize(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sanitize(dataclasses.asdict(obj))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)
