"""Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
plus the shared result sanitizer every JSON artifact goes through.

One exported file carries both clocks as separate trace processes:

- ``pid 0`` — *wall time*: the compiler pipeline and executor spans as
  actually measured on the host;
- ``pid 1`` — *simulated time*: the discrete-event simulator's per-node
  execution and per-I/O-node queue occupancy, placed at the cost
  model's deterministic timestamps.

The file is the standard JSON-object form (``{"traceEvents": [...]}``)
so Perfetto and ``chrome://tracing`` load it directly; the extra
top-level keys (``metrics``, ``io_report``, ``stats``) are ignored by
the viewers and consumed by ``python -m repro.obs report``.

:func:`sanitize` converts benchmark/experiment results (numpy scalars
and arrays, dataclasses, ``to_dict()`` carriers, tuple dict keys, sets)
into plain JSON values.  Non-string dict keys are encoded with
:func:`encode_key` — a stable, *reversible* encoding (the key's JSON
text), so ``("adi", "col", 4, 8)`` becomes ``'["adi", "col", 4, 8]'``
and :func:`decode_key` recovers the tuple exactly.  Baseline diffs key
on these strings; the old ``repr()`` encoding was neither stable across
value types nor decodable.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Mapping

import numpy as np

from .tracer import Tracer

#: trace-event process ids for the two clocks
WALL_PID = 0
SIM_PID = 1

#: keys every emitted event must carry (the trace-event schema's
#: required subset; asserted by the unit tests)
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def _meta(pid: int, tid: int, name: str, kind: str) -> dict[str, object]:
    return {
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "name": kind,
        "args": {"name": name},
    }


def chrome_trace_events(tracer: Tracer) -> list[dict[str, object]]:
    """Render a tracer's spans and instants as trace-event dicts."""
    events: list[dict[str, object]] = [
        _meta(WALL_PID, 0, "wall time (compiler + runtime)", "process_name"),
        _meta(WALL_PID, 0, "pipeline", "thread_name"),
    ]
    tracks: dict[str, int] = {}
    have_sim = False
    for span in tracer.spans:
        if span.track is None:
            events.append(
                {
                    "ph": "X",
                    "ts": _us(span.start_s),
                    "dur": _us(span.duration_s),
                    "pid": WALL_PID,
                    "tid": 0,
                    "name": span.name,
                    "cat": span.cat or "span",
                    "args": dict(span.args),
                }
            )
        else:
            if not have_sim:
                events.append(
                    _meta(SIM_PID, 0, "simulated time (event sim)",
                          "process_name")
                )
                have_sim = True
            tid = tracks.get(span.track)
            if tid is None:
                tid = len(tracks)
                tracks[span.track] = tid
                events.append(_meta(SIM_PID, tid, span.track, "thread_name"))
            events.append(
                {
                    "ph": "X",
                    "ts": _us(span.start_s),
                    "dur": _us(span.duration_s),
                    "pid": SIM_PID,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.cat or "sim",
                    "args": dict(span.args),
                }
            )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "ts": _us(inst.ts_s),
                "pid": WALL_PID,
                "tid": 0,
                "name": inst.name,
                "cat": inst.cat or "instant",
                "s": "t",
                "args": dict(inst.args),
            }
        )
    return events


def validate_trace_events(events: list[Mapping[str, object]]) -> None:
    """Raise if any event misses the schema's required keys."""
    for i, ev in enumerate(events):
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in ev]
        if missing:
            raise ValueError(
                f"trace event {i} ({ev.get('name')!r}) missing {missing}"
            )


def write_trace(path_or_file: str | IO[str], payload: Mapping[str, object]) -> None:
    """Write a trace payload (``{"traceEvents": [...], ...}``) as JSON."""
    validate_trace_events(payload.get("traceEvents", []))
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file, indent=1)
    else:
        with open(path_or_file, "w") as f:
            json.dump(payload, f, indent=1)


def load_trace(path: str) -> dict[str, object]:
    with open(path) as f:
        return json.load(f)


# -- result sanitization ----------------------------------------------------


def encode_key(key: object) -> str:
    """Encode one dict key as a stable string.

    Strings pass through unchanged; everything else becomes the JSON
    text of its sanitized value (``(1, 0)`` → ``'[1, 0]'``, ``2.5`` →
    ``'2.5'``).  The encoding is deterministic — equal keys always
    produce equal strings — and reversible via :func:`decode_key`.
    """
    if isinstance(key, str):
        return key
    return json.dumps(sanitize(key))


def decode_key(encoded: str) -> object:
    """Inverse of :func:`encode_key`: JSON-decode the key text, turning
    lists back into tuples (dict keys were hashable, so any sequence
    key was a tuple).  Plain strings come back unchanged."""
    try:
        value = json.loads(encoded)
    except (json.JSONDecodeError, TypeError):
        return encoded

    def tuplify(v: object) -> object:
        if isinstance(v, list):
            return tuple(tuplify(x) for x in v)
        return v

    return tuplify(value)


def sanitize(obj: object) -> object:
    """Make a result JSON-serializable: numpy scalars/arrays,
    dataclasses and ``to_dict()`` carriers, tuple dict keys, sets."""
    if isinstance(obj, dict):
        return {encode_key(k): sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        # iteration order is arbitrary: sort by JSON text so equal sets
        # always serialize identically (baselines diff on the output)
        return sorted(
            (sanitize(v) for v in obj),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(obj, (list, tuple)):
        return [sanitize(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if hasattr(obj, "to_dict"):
        return sanitize(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sanitize(dataclasses.asdict(obj))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


# -- OpenMetrics / Prometheus text exposition -------------------------------


class OpenMetricsError(ValueError):
    """An OpenMetrics document violates the exposition format (carries
    the offending 1-based line number when raised by the parser)."""


def _om_name(name: str) -> str:
    """A valid Prometheus metric name: the registry's dotted names map
    to underscores (``io.read_calls`` → ``io_read_calls``)."""
    out = "".join(
        c if c.isalnum() or c in "_:" else "_" for c in str(name)
    )
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _om_escape(value: object) -> str:
    """Label-value escaping per the exposition format: backslash,
    double-quote and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _om_labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_om_name(k)}="{_om_escape(labels[k])}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


def _om_number(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry) -> str:
    """Prometheus/OpenMetrics text exposition of a live
    :class:`~repro.obs.metrics.MetricsRegistry`.

    One ``# TYPE`` line per metric family, counter samples with the
    ``_total`` suffix, histograms as cumulative ``_bucket{le=...}``
    series (``+Inf`` last) plus ``_sum``/``_count``, label values
    escaped per the format, and the ``# EOF`` terminator.  Two dotted
    names that collide after sanitization with different instrument
    types raise :class:`OpenMetricsError`.
    """
    from .metrics import Counter, Gauge, Histogram

    families: dict[str, str] = {}
    grouped: dict[str, list[tuple[Mapping[str, object], object]]] = {}
    meta = getattr(registry, "_meta", {})
    for key, inst in sorted(registry.items()):
        name, labels = meta.get(key, (key, {}))
        fam = _om_name(name)
        if isinstance(inst, Counter):
            typ = "counter"
        elif isinstance(inst, Gauge):
            typ = "gauge"
        elif isinstance(inst, Histogram):
            typ = "histogram"
        else:
            raise OpenMetricsError(
                f"metric {key!r} has unknown instrument type "
                f"{type(inst).__name__}"
            )
        prev = families.get(fam)
        if prev is not None and prev != typ:
            raise OpenMetricsError(
                f"metric family {fam!r} is both {prev} and {typ}"
            )
        families[fam] = typ
        grouped.setdefault(fam, []).append((labels, inst))
    lines: list[str] = []
    for fam in sorted(grouped):
        typ = families[fam]
        lines.append(f"# TYPE {fam} {typ}")
        for labels, inst in grouped[fam]:
            if typ == "counter":
                lines.append(
                    f"{fam}_total{_om_labels(labels)} "
                    f"{_om_number(inst.value)}"
                )
            elif typ == "gauge":
                lines.append(
                    f"{fam}{_om_labels(labels)} {_om_number(inst.value)}"
                )
            else:
                cumulative = 0
                for bound, n in zip(inst.bounds, inst.bucket_counts):
                    cumulative += n
                    le = dict(labels)
                    le["le"] = format(float(bound), "g")
                    lines.append(
                        f"{fam}_bucket{_om_labels(le)} {cumulative}"
                    )
                le = dict(labels)
                le["le"] = "+Inf"
                lines.append(f"{fam}_bucket{_om_labels(le)} {inst.count}")
                lines.append(
                    f"{fam}_sum{_om_labels(labels)} {_om_number(inst.total)}"
                )
                lines.append(
                    f"{fam}_count{_om_labels(labels)} {inst.count}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _om_parse_labels(s: str, lineno: int) -> tuple[dict[str, str], int]:
    """Parse a ``key="value",...}`` label block (``s`` starts just after
    the ``{``); returns the labels and the index just past the ``}``."""
    labels: dict[str, str] = {}
    i = 0
    try:
        while True:
            if s[i] == "}":
                return labels, i + 1
            eq = s.index("=", i)
            key = s[i:eq]
            if not key or s[eq + 1] != '"':
                raise OpenMetricsError(
                    f"line {lineno}: malformed label near {s[i:]!r}"
                )
            i = eq + 2
            buf: list[str] = []
            while True:
                c = s[i]
                if c == "\\":
                    nxt = s[i + 1]
                    buf.append(
                        {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt)
                    )
                    i += 2
                elif c == '"':
                    i += 1
                    break
                else:
                    buf.append(c)
                    i += 1
            labels[key] = "".join(buf)
            if s[i] == ",":
                i += 1
            elif s[i] != "}":
                raise OpenMetricsError(
                    f"line {lineno}: expected ',' or '}}' after label "
                    f"{key!r}"
                )
    except (IndexError, ValueError):
        raise OpenMetricsError(
            f"line {lineno}: unterminated label block"
        ) from None


def parse_openmetrics(text: str) -> dict[str, object]:
    """Validate an exposition document and decode it into
    ``{"types": {family: type}, "samples": {(name, labels...): value}}``
    — the structured form the round-trip tests compare.  Raises
    :class:`OpenMetricsError` on format violations: unknown or
    duplicate ``# TYPE``, malformed samples, text after (or a missing)
    ``# EOF`` terminator."""
    types: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    saw_eof = False
    for lineno, line in enumerate(text.split("\n"), start=1):
        if saw_eof:
            if line:
                raise OpenMetricsError(
                    f"line {lineno}: content after the # EOF terminator"
                )
            continue
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise OpenMetricsError(
                    f"line {lineno}: malformed # TYPE line: {line!r}"
                )
            fam, typ = parts[2], parts[3]
            if typ not in ("counter", "gauge", "histogram"):
                raise OpenMetricsError(
                    f"line {lineno}: unknown metric type {typ!r}"
                )
            if fam in types:
                raise OpenMetricsError(
                    f"line {lineno}: duplicate # TYPE for {fam!r}"
                )
            types[fam] = typ
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments pass through unvalidated
        if "{" in line:
            name, rest = line.split("{", 1)
            labels, end = _om_parse_labels(rest, lineno)
            value_text = rest[end:].strip()
        else:
            name, sep, value_text = line.partition(" ")
            labels = {}
            if not sep:
                raise OpenMetricsError(
                    f"line {lineno}: sample has no value: {line!r}"
                )
            value_text = value_text.strip()
        if not name:
            raise OpenMetricsError(
                f"line {lineno}: sample has no metric name: {line!r}"
            )
        try:
            value = float(value_text)
        except ValueError:
            raise OpenMetricsError(
                f"line {lineno}: sample value is not a number: "
                f"{value_text!r}"
            ) from None
        samples[(name,) + tuple(sorted(labels.items()))] = value
    if not saw_eof:
        raise OpenMetricsError("missing # EOF terminator")
    return {"types": types, "samples": samples}
