"""Per-nest × per-array I/O breakdown records and their text report.

The records are emitted at the exact points the run's
:class:`~repro.runtime.stats.IOStats` are built — the executor's per-nest
accounting and the collective layer's independent / two-phase pricing —
so summing the records reproduces the folded stats *exactly*, call for
call and element for element.  That invariant is what makes the report
trustworthy: the table is the stats, just attributed.

``render_report`` prints the per-nest × per-array table (Tables 1–3 of
the paper live on exactly this attribution); ``report_totals`` sums the
records for cross-checking against :meth:`IOStats.to_dict` output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass
class NestIORecord:
    """I/O attributed to one (nest, array/file) pair, all ranks of one
    compute node (``node``) or aggregated (``node=None``)."""

    nest: str
    array: str
    read_calls: int = 0
    write_calls: int = 0
    elements_read: int = 0
    elements_written: int = 0
    #: estimated serial seconds for these calls (recomputed from the cost
    #: model; informational — the exact equality contract covers calls
    #: and elements only, float addition order differs)
    io_time_s: float = 0.0
    node: int | None = None
    #: "independent" | "two-phase" (collective runs) | "direct"
    path: str = "direct"

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "NestIORecord":
        return cls(**d)


@dataclass
class RedistRecord:
    """Redistribution-phase traffic of one two-phase collective nest."""

    nest: str
    messages: int = 0
    elements: int = 0
    time_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RedistRecord":
        return cls(**d)


@dataclass
class IOReport:
    """The report section of an exported trace."""

    records: list[NestIORecord] = field(default_factory=list)
    redist: list[RedistRecord] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "records": [r.to_dict() for r in self.records],
            "redist": [r.to_dict() for r in self.redist],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "IOReport":
        return cls(
            [NestIORecord.from_dict(r) for r in d.get("records", [])],
            [RedistRecord.from_dict(r) for r in d.get("redist", [])],
        )


def report_totals(records: Iterable[NestIORecord]) -> dict[str, int]:
    """Exact call/element totals over the records — must equal the run's
    folded :class:`IOStats` counters."""
    out = {
        "read_calls": 0,
        "write_calls": 0,
        "elements_read": 0,
        "elements_written": 0,
    }
    for r in records:
        out["read_calls"] += r.read_calls
        out["write_calls"] += r.write_calls
        out["elements_read"] += r.elements_read
        out["elements_written"] += r.elements_written
    return out


def _aggregate(
    records: Sequence[NestIORecord],
) -> dict[tuple[str, str], NestIORecord]:
    """Collapse per-rank records into (nest, array) rows, issue order."""
    rows: dict[tuple[str, str], NestIORecord] = {}
    for r in records:
        key = (r.nest, r.array)
        row = rows.get(key)
        if row is None:
            rows[key] = NestIORecord(
                r.nest, r.array, r.read_calls, r.write_calls,
                r.elements_read, r.elements_written, r.io_time_s,
                node=None, path=r.path,
            )
        else:
            row.read_calls += r.read_calls
            row.write_calls += r.write_calls
            row.elements_read += r.elements_read
            row.elements_written += r.elements_written
            row.io_time_s += r.io_time_s
            if row.path != r.path:
                row.path = "mixed"
    return rows


def render_report(
    report: IOReport, stats: Mapping[str, object] | None = None
) -> str:
    """The per-nest × per-array breakdown table, plus the redistribution
    lines and — when the run's folded stats are available — an explicit
    totals cross-check."""
    rows = _aggregate(report.records)
    header = (
        f"{'nest':<16} {'array':<12} {'path':<11} "
        f"{'reads':>8} {'writes':>8} {'elems read':>12} {'elems written':>14}"
    )
    lines = [header, "-" * len(header)]
    for (nest, array), r in rows.items():
        lines.append(
            f"{nest:<16} {array:<12} {r.path:<11} "
            f"{r.read_calls:>8} {r.write_calls:>8} "
            f"{r.elements_read:>12} {r.elements_written:>14}"
        )
    totals = report_totals(report.records)
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':<16} {'':<12} {'':<11} "
        f"{totals['read_calls']:>8} {totals['write_calls']:>8} "
        f"{totals['elements_read']:>12} {totals['elements_written']:>14}"
    )
    for rd in report.redist:
        lines.append(
            f"redist {rd.nest}: {rd.messages} messages, "
            f"{rd.elements} elements, {rd.time_s:.3f}s"
        )
    if stats is not None:
        match = all(
            totals[k] == stats.get(k) for k in totals
        )
        lines.append(
            "cross-check vs folded IOStats: "
            + ("exact match" if match else f"MISMATCH (stats={stats})")
        )
    return "\n".join(lines)
