"""Per-nest × per-array I/O breakdown records and their text report.

The records are emitted at the exact points the run's
:class:`~repro.runtime.stats.IOStats` are built — the executor's per-nest
accounting and the collective layer's independent / two-phase pricing —
so summing the records reproduces the folded stats *exactly*, call for
call and element for element.  That invariant is what makes the report
trustworthy: the table is the stats, just attributed.

``render_report`` prints the per-nest × per-array table (Tables 1–3 of
the paper live on exactly this attribution); ``report_totals`` sums the
records for cross-checking against :meth:`IOStats.to_dict` output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass
class NestIORecord:
    """I/O attributed to one (nest, array/file) pair, all ranks of one
    compute node (``node``) or aggregated (``node=None``)."""

    nest: str
    array: str
    read_calls: int = 0
    write_calls: int = 0
    elements_read: int = 0
    elements_written: int = 0
    #: estimated serial seconds for these calls (recomputed from the cost
    #: model; informational — the exact equality contract covers calls
    #: and elements only, float addition order differs)
    io_time_s: float = 0.0
    node: int | None = None
    #: "independent" | "two-phase" (collective runs) | "direct"
    path: str = "direct"

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "NestIORecord":
        return cls(**d)


@dataclass
class RedistRecord:
    """Redistribution-phase traffic of one two-phase collective nest."""

    nest: str
    messages: int = 0
    elements: int = 0
    time_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RedistRecord":
        return cls(**d)


@dataclass
class CostDriftRecord:
    """Predicted-vs-measured I/O for one (nest, array) pair.

    ``predicted_calls`` is the optimizer's relative I/O estimate
    (:func:`repro.optimizer.cost.estimate_nest_io_breakdown`) for the
    nest *as executed* — transformed iteration space, concrete file
    layouts.  The measured side is the exact aggregation of the run's
    :class:`NestIORecord` entries, so summing drift records reproduces
    the folded :class:`~repro.runtime.stats.IOStats` call for call.
    ``predicted_calls`` is ``None`` when the cost model has no estimate
    for the pair (e.g. chunked group files the linear model cannot
    attribute) — such rows still carry their measured totals.
    """

    nest: str
    array: str
    predicted_calls: float | None
    read_calls: int = 0
    write_calls: int = 0
    elements_read: int = 0
    elements_written: int = 0
    io_time_s: float = 0.0
    path: str = "direct"

    @property
    def measured_calls(self) -> int:
        return self.read_calls + self.write_calls

    @property
    def error(self) -> float | None:
        """Signed relative model error, ``(predicted - measured) /
        measured`` — negative when the model under-predicts.  ``None``
        without a prediction or without measured calls to compare to."""
        if self.predicted_calls is None or self.measured_calls == 0:
            return None
        return (self.predicted_calls - self.measured_calls) / self.measured_calls

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "CostDriftRecord":
        return cls(**d)


@dataclass
class OptimalityRecord:
    """Achieved-vs-optimal telemetry for one nest.

    Pairs the static I/O lower bound from :mod:`repro.bounds` (and the
    cost model's element estimate) with the nest's measured transfers,
    aggregated over *all* of the nest's records — every rank, array and
    path — so :func:`optimality_totals` equals :func:`report_totals`
    (and hence the folded :class:`IOStats`) exactly.
    """

    nest: str
    #: derivation rule tag from :mod:`repro.bounds.model`, None when the
    #: run carried no bound for this nest
    rule: str | None = None
    bound_elements: float | None = None
    modeled_elements: float | None = None
    read_calls: int = 0
    write_calls: int = 0
    elements_read: int = 0
    elements_written: int = 0
    path: str = "direct"
    detail: str = ""

    @property
    def measured_elements(self) -> int:
        return self.elements_read + self.elements_written

    @property
    def ratio(self) -> float | None:
        """Achieved/bound — >= 1 by the bound's soundness; 1 is optimal."""
        if not self.bound_elements or self.bound_elements <= 0:
            return None
        return self.measured_elements / self.bound_elements

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "OptimalityRecord":
        return cls(**d)


@dataclass
class IOReport:
    """The report section of an exported trace."""

    records: list[NestIORecord] = field(default_factory=list)
    redist: list[RedistRecord] = field(default_factory=list)
    #: cost-model validation: one row per (nest, array), built by
    #: :func:`build_drift` once the run's records are complete
    drift: list[CostDriftRecord] = field(default_factory=list)
    #: achieved-vs-lower-bound telemetry: one row per nest, built by
    #: :func:`build_optimality` from the ``repro.bounds`` pass
    optimality: list[OptimalityRecord] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "records": [r.to_dict() for r in self.records],
            "redist": [r.to_dict() for r in self.redist],
            "drift": [r.to_dict() for r in self.drift],
            "optimality": [r.to_dict() for r in self.optimality],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "IOReport":
        return cls(
            [NestIORecord.from_dict(r) for r in d.get("records", [])],
            [RedistRecord.from_dict(r) for r in d.get("redist", [])],
            [CostDriftRecord.from_dict(r) for r in d.get("drift", [])],
            [OptimalityRecord.from_dict(r) for r in d.get("optimality", [])],
        )


def report_totals(records: Iterable[object]) -> dict[str, int]:
    """Exact call/element totals over the records — must equal the run's
    folded :class:`IOStats` counters.

    Accepts mixed iterables: anything without the call counters (e.g. a
    :class:`RedistRecord` — redistribution traffic is interconnect
    messages, not file I/O) is skipped rather than crashing, so callers
    can pass a report's full record soup."""
    out = {
        "read_calls": 0,
        "write_calls": 0,
        "elements_read": 0,
        "elements_written": 0,
    }
    for r in records:
        if not hasattr(r, "read_calls"):
            continue
        out["read_calls"] += r.read_calls
        out["write_calls"] += r.write_calls
        out["elements_read"] += r.elements_read
        out["elements_written"] += r.elements_written
    return out


def build_drift(
    records: Sequence[NestIORecord],
    predictions: Mapping[str, Mapping[str, float]],
) -> list[CostDriftRecord]:
    """Pair the run's measured per-(nest, array) I/O with the cost
    model's predictions.

    Every aggregated (nest, array) row of ``records`` yields exactly one
    drift record — predicted or not — so the drift table's measured
    totals equal :func:`report_totals` (and hence the folded stats)
    *exactly* on every path.  Predictions with no measured counterpart
    (a nest the run never executed) are appended with zero measured
    I/O so the divergence is visible rather than silently dropped.
    """
    rows = _aggregate(records)
    out: list[CostDriftRecord] = []
    seen: set[tuple[str, str]] = set()
    for (nest, array), row in rows.items():
        predicted = predictions.get(nest, {}).get(array)
        seen.add((nest, array))
        out.append(
            CostDriftRecord(
                nest=nest,
                array=array,
                predicted_calls=predicted,
                read_calls=row.read_calls,
                write_calls=row.write_calls,
                elements_read=row.elements_read,
                elements_written=row.elements_written,
                io_time_s=row.io_time_s,
                path=row.path,
            )
        )
    for nest, per_array in predictions.items():
        for array, predicted in per_array.items():
            if (nest, array) not in seen:
                out.append(
                    CostDriftRecord(
                        nest=nest, array=array,
                        predicted_calls=predicted, path="unexecuted",
                    )
                )
    return out


def drift_totals(drift: Iterable[CostDriftRecord]) -> dict[str, int]:
    """Measured call/element totals of the drift table — the acceptance
    contract pins these equal to the run's folded :class:`IOStats`."""
    return report_totals(drift)


def build_optimality(
    records: Sequence[NestIORecord],
    bounds: Mapping[str, Mapping[str, object]],
    modeled: Mapping[str, float] | None = None,
) -> list[OptimalityRecord]:
    """Pair the run's measured per-nest transfers with the static lower
    bounds (``bounds``: nest → :meth:`repro.bounds.NestBound.to_dict`
    payload) and the cost model's element estimates.

    Aggregation is per *nest* (not per array): ``h-opt`` group files
    surface as ``group:<g>`` pseudo-arrays, and the bound is a per-nest
    quantity anyway.  Every record contributes to some row, so
    :func:`optimality_totals` equals :func:`report_totals` exactly;
    bounds for nests the run never executed are appended with zero
    measured transfers and ``path="unexecuted"``.
    """
    modeled = modeled or {}
    rows: dict[str, OptimalityRecord] = {}
    for r in records:
        row = rows.get(r.nest)
        if row is None:
            b = bounds.get(r.nest, {})
            bound = b.get("bound_elements")
            rows[r.nest] = row = OptimalityRecord(
                nest=r.nest,
                rule=b.get("rule"),
                bound_elements=None if bound is None else float(bound),
                modeled_elements=modeled.get(r.nest),
                path=r.path,
                detail=str(b.get("detail", "")),
            )
        row.read_calls += r.read_calls
        row.write_calls += r.write_calls
        row.elements_read += r.elements_read
        row.elements_written += r.elements_written
        if row.path != r.path:
            row.path = "mixed"
    for nest, b in bounds.items():
        if nest not in rows:
            bound = b.get("bound_elements")
            rows[nest] = OptimalityRecord(
                nest=nest,
                rule=b.get("rule"),
                bound_elements=None if bound is None else float(bound),
                modeled_elements=modeled.get(nest),
                path="unexecuted",
                detail=str(b.get("detail", "")),
            )
    return list(rows.values())


def optimality_totals(optimality: Iterable[OptimalityRecord]) -> dict[str, int]:
    """Measured call/element totals of the optimality table — pinned
    equal to the run's folded :class:`IOStats`, like the other views."""
    return report_totals(optimality)


def _aggregate(
    records: Sequence[NestIORecord],
) -> dict[tuple[str, str], NestIORecord]:
    """Collapse per-rank records into (nest, array) rows, issue order."""
    rows: dict[tuple[str, str], NestIORecord] = {}
    for r in records:
        key = (r.nest, r.array)
        row = rows.get(key)
        if row is None:
            rows[key] = NestIORecord(
                r.nest, r.array, r.read_calls, r.write_calls,
                r.elements_read, r.elements_written, r.io_time_s,
                node=None, path=r.path,
            )
        else:
            row.read_calls += r.read_calls
            row.write_calls += r.write_calls
            row.elements_read += r.elements_read
            row.elements_written += r.elements_written
            row.io_time_s += r.io_time_s
            if row.path != r.path:
                row.path = "mixed"
    return rows


def render_report(
    report: IOReport,
    stats: Mapping[str, object] | None = None,
    metrics: Mapping[str, Mapping[str, object]] | None = None,
    *,
    serve: Mapping[str, object] | None = None,
    profile: Mapping[str, object] | None = None,
    autotune: Mapping[str, object] | None = None,
) -> str:
    """The per-nest × per-array breakdown table, plus the redistribution
    lines, the cost-model drift section (when the report carries drift
    records), an optional metrics dump with percentile summaries, a
    per-tenant serving section (``serve``, a
    :meth:`repro.serve.ServeResult.summary_dict` payload), an
    autotuning section (``autotune``, a
    :meth:`repro.autotune.Autotuner.summary` payload), a hotspot
    section (``profile``, a
    :meth:`repro.obs.profile.ProfileResult.to_dict` payload), and —
    when the run's folded stats are available — an explicit totals
    cross-check."""
    rows = _aggregate(report.records)
    header = (
        f"{'nest':<16} {'array':<12} {'path':<11} "
        f"{'reads':>8} {'writes':>8} {'elems read':>12} {'elems written':>14}"
    )
    lines = [header, "-" * len(header)]
    for (nest, array), r in rows.items():
        lines.append(
            f"{nest:<16} {array:<12} {r.path:<11} "
            f"{r.read_calls:>8} {r.write_calls:>8} "
            f"{r.elements_read:>12} {r.elements_written:>14}"
        )
    totals = report_totals(report.records)
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':<16} {'':<12} {'':<11} "
        f"{totals['read_calls']:>8} {totals['write_calls']:>8} "
        f"{totals['elements_read']:>12} {totals['elements_written']:>14}"
    )
    for rd in report.redist:
        lines.append(
            f"redist {rd.nest}: {rd.messages} messages, "
            f"{rd.elements} elements, {rd.time_s:.3f}s"
        )
    if stats is not None:
        match = all(
            totals[k] == stats.get(k) for k in totals
        )
        lines.append(
            "cross-check vs folded IOStats: "
            + ("exact match" if match else f"MISMATCH (stats={stats})")
        )
    if stats is not None and "retries" in stats:
        # IOStats serializes its fault counters only when something
        # fired, so this section appears exactly for fault-active runs
        lines.append("")
        lines.extend(_render_resilience(stats))
    if report.drift:
        lines.append("")
        lines.extend(_render_drift(report.drift, stats))
    if report.optimality:
        lines.append("")
        lines.extend(_render_optimality(report.optimality, stats))
    if serve:
        lines.append("")
        lines.extend(_render_serve(serve))
    if autotune:
        lines.append("")
        lines.extend(_render_autotune(autotune))
    if profile:
        lines.append("")
        lines.extend(_render_profile(profile))
    if metrics:
        lines.append("")
        lines.extend(_render_metrics(metrics))
    return "\n".join(lines)


def _render_profile(profile: Mapping[str, object]) -> list[str]:
    """The hotspot section: delegated to the profiler's own ``top``
    renderer so the report and ``python -m repro.obs top`` agree."""
    from .profile import render_profile

    return render_profile(profile).splitlines()


def _render_autotune(autotune: Mapping[str, object]) -> list[str]:
    """The autotuning section: loop state, solver provenance, the
    predicted-vs-measured drift signal that drives recalibration, and
    one line per knob with the modeled cost of reverting it."""
    lines = [
        "autotuning (repro.autotune) — "
        f"state={autotune.get('state', '?')} "
        f"solver={autotune.get('solver', '?')}"
    ]
    pred = autotune.get("predicted_cost_s")
    if pred is not None:
        lines.append(f"predicted cost: {float(pred):.4f}s/node")
    meas = autotune.get("measured_io_s")
    if meas is not None:
        lines.append(f"measured I/O:   {float(meas):.4f}s/node")
    drift = autotune.get("cost_drift")
    if drift is not None:
        thr = autotune.get("drift_threshold")
        flag = ""
        if thr is not None:
            flag = " (over threshold)" if float(drift) > float(thr) \
                else " (within threshold)"
        lines.append(f"cost drift:     {float(drift):.3f}{flag}")
    err = autotune.get("max_call_error")
    if err is not None:
        lines.append(f"max call error: {float(err):.3f}")
    lines.append(
        f"recalibrations: {autotune.get('recalibrations', 0)}  "
        f"re-solves: {autotune.get('resolves', 0)}  "
        f"drift events: {autotune.get('drift_events', 0)}"
    )
    knobs = autotune.get("knobs") or []
    if knobs:
        header = f"{'knob':<14} {'chosen':<40} {'revert costs':>12}"
        lines += [header, "-" * len(header)]
        for k in knobs:
            chosen = str(k.get("chosen"))
            if len(chosen) > 40:
                chosen = chosen[:37] + "..."
            lines.append(
                f"{str(k.get('knob')):<14} {chosen:<40} "
                f"{float(k.get('delta_s', 0.0)):>+11.4f}s"
            )
    for ev in autotune.get("history") or []:
        lines.append(
            f"event: {ev.get('event', '?')} — {ev.get('detail', '')}"
        )
    return lines


def _render_serve(serve: Mapping[str, object]) -> list[str]:
    """The multi-tenant serving section: one row per tenant with job
    outcomes, queueing delay and the tenant's folded I/O counters.
    Every number is read straight from the scheduler's summary payload,
    whose per-tenant stats are the exact fold of the tenant's per-job
    :class:`~repro.runtime.stats.IOStats` — the same exactness contract
    as the nest table above."""
    header = (
        f"{'tenant':<12} {'jobs':>5} {'done':>5} {'failed':>6} "
        f"{'queued_s':>9} {'calls':>8} {'elements':>12}"
    )
    policy = serve.get("policy")
    if isinstance(policy, Mapping):
        policy = " ".join(f"{k}={v}" for k, v in sorted(policy.items()))
    lines = [
        "serving (repro.serve)" + (f" — {policy}" if policy else ""),
        header,
        "-" * len(header),
    ]
    tenants = serve.get("tenants") or {}
    total_calls = total_elems = 0
    for name, t in tenants.items():
        st = t.get("stats") or {}
        calls = int(st.get("read_calls", 0)) + int(st.get("write_calls", 0))
        elems = int(st.get("elements_read", 0)) + int(
            st.get("elements_written", 0)
        )
        total_calls += calls
        total_elems += elems
        lines.append(
            f"{name:<12} {t.get('submitted', 0):>5} "
            f"{t.get('completed', 0):>5} {t.get('failed', 0):>6} "
            f"{float(t.get('queue_delay_s', 0.0)):>9.3f} "
            f"{calls:>8} {elems:>12}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':<12} {'':>5} {'':>5} {'':>6} {'':>9} "
        f"{total_calls:>8} {total_elems:>12}"
    )
    if serve.get("makespan_s") is not None:
        lines.append(f"served makespan: {float(serve['makespan_s']):.3f}s")
    cache = serve.get("cache")
    if cache:
        lines.append(
            f"shared cache: hits={cache.get('hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"evictions={cache.get('evictions', 0)} "
            f"saved={float(cache.get('saved_io_s', 0.0)):.3f}s"
        )
    return lines


def _render_resilience(stats: Mapping[str, object]) -> list[str]:
    """The fault/resilience summary.  Every number is read straight from
    the folded :class:`~repro.runtime.stats.IOStats` dict, so the
    section's totals match the stats by construction (the same exactness
    contract as the call/element cross-check above)."""
    return [
        "resilience (repro.faults)",
        f"  retries:        {stats.get('retries', 0)}",
        f"  failed calls:   {stats.get('failed_calls', 0)}",
        f"  hedged reads:   {stats.get('hedged_calls', 0)}",
        f"  degraded nests: {stats.get('degraded_nests', 0)}",
        f"  retry delay:    {float(stats.get('retry_delay_s', 0.0)):.6f}s",
    ]


def _render_drift(
    drift: Sequence[CostDriftRecord], stats: Mapping[str, object] | None
) -> list[str]:
    """The cost-model validation table: predicted vs measured calls per
    (nest, array) with the signed relative model error, plus the exact
    measured-totals cross-check the acceptance contract pins."""
    header = (
        f"{'nest':<16} {'array':<12} {'path':<11} "
        f"{'predicted':>10} {'measured':>9} {'error':>8}"
    )
    lines = ["cost-model drift (predicted vs measured I/O calls)", header,
             "-" * len(header)]
    errors: list[float] = []
    for r in drift:
        pred = "-" if r.predicted_calls is None else f"{r.predicted_calls:.1f}"
        err = r.error
        if err is None:
            err_s = "-"
        else:
            errors.append(abs(err))
            err_s = f"{100.0 * err:+.1f}%"
        lines.append(
            f"{r.nest:<16} {r.array:<12} {r.path:<11} "
            f"{pred:>10} {r.measured_calls:>9} {err_s:>8}"
        )
    if errors:
        lines.append(
            f"model error: mean |e|={100.0 * sum(errors) / len(errors):.1f}% "
            f"max |e|={100.0 * max(errors):.1f}% over {len(errors)} pair(s)"
        )
    totals = drift_totals(drift)
    if stats is not None:
        match = all(totals[k] == stats.get(k) for k in totals)
        lines.append(
            "drift measured totals vs folded IOStats: "
            + ("exact match" if match else f"MISMATCH (stats={stats})")
        )
    return lines


def _render_optimality(
    optimality: Sequence[OptimalityRecord], stats: Mapping[str, object] | None
) -> list[str]:
    """The achieved-vs-lower-bound table: per nest the derivation rule,
    static bound, modeled and measured element transfers and the
    achieved/bound ratio (1.0 = I/O-optimal), plus the same exact
    measured-totals cross-check the other report views pin."""
    header = (
        f"{'nest':<16} {'rule':<22} {'path':<11} "
        f"{'bound':>10} {'modeled':>10} {'measured':>10} {'ratio':>7}"
    )
    lines = ["optimality (achieved vs I/O lower bound, repro.bounds)", header,
             "-" * len(header)]
    bound_sum = 0.0
    measured_sum = 0
    for r in optimality:
        bound = "-" if r.bound_elements is None else f"{r.bound_elements:.0f}"
        modeled = "-" if r.modeled_elements is None else f"{r.modeled_elements:.0f}"
        ratio = r.ratio
        ratio_s = "-" if ratio is None else f"{ratio:.2f}x"
        if r.bound_elements and r.bound_elements > 0:
            bound_sum += r.bound_elements
            measured_sum += r.measured_elements
        lines.append(
            f"{r.nest:<16} {r.rule or '-':<22} {r.path:<11} "
            f"{bound:>10} {modeled:>10} {r.measured_elements:>10} {ratio_s:>7}"
        )
    if bound_sum > 0:
        lines.append(
            f"run ratio: {measured_sum / bound_sum:.2f}x over bounded nests "
            f"(bound={bound_sum:.0f}, measured={measured_sum})"
        )
    totals = optimality_totals(optimality)
    if stats is not None:
        match = all(totals[k] == stats.get(k) for k in totals)
        lines.append(
            "optimality measured totals vs folded IOStats: "
            + ("exact match" if match else f"MISMATCH (stats={stats})")
        )
    return lines


def _render_metrics(metrics: Mapping[str, Mapping[str, object]]) -> list[str]:
    """One line per instrument; histograms show the percentile summary
    (the values the regression gate compares, not raw buckets)."""
    lines = []
    for key, inst in sorted(metrics.items()):
        if inst.get("type") == "histogram":
            pct = "".join(
                f" {p}={inst[p]:.3g}"
                for p in ("p50", "p95", "p99")
                if inst.get(p) is not None
            )
            lines.append(
                f"metric {key}: count={inst['count']} "
                f"mean={inst['mean']:.3g} min={inst['min']} "
                f"max={inst['max']}{pct}"
            )
        else:
            lines.append(f"metric {key}: {inst['value']}")
    return lines
