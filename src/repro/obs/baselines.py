"""Schema-versioned baseline store for benchmark results.

A *baseline* is one frozen ``pytest benchmarks --json`` document wrapped
in a small envelope: schema version, capture provenance (git revision,
capture command), the simulated machine model's parameters, and the
smoke flag.  Everything the benchmarks measure is deterministic — the
machine is simulated, the inputs are fixed — so a baseline is an exact
contract, not a statistical snapshot: the regression gate
(:mod:`repro.obs.regress`) can hold integer counters to equality and
modeled times to a tight relative tolerance.

Committed baselines live next to the benchmarks:

- ``BENCH_cache.json`` / ``BENCH_tables.json`` — full-size runs,
  refreshed manually (or by the CI ``workflow_dispatch`` sweep) when a
  change *intends* to move the numbers;
- ``benchmarks/baselines/BENCH_smoke.json`` — the ``--smoke`` capture
  the CI bench job diffs every push against.

Capture them with ``python -m repro.obs regress capture``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys

#: bump when the envelope layout changes incompatibly; the loader
#: refuses documents from a different major scheme
SCHEMA_VERSION = 1

#: envelope discriminator (trace JSONs and bench docs share a directory)
KIND = "bench-baseline"


class BaselineError(Exception):
    """A baseline file is missing, malformed, or from another schema."""


def machine_fingerprint() -> dict[str, object]:
    """The simulated machine model's default parameters.

    Benchmarks derive their per-size params from these defaults
    (:func:`repro.experiments.harness._scaled_params`), so two baselines
    captured under different fingerprints are measuring different
    machines — the gate treats that as a configuration mismatch that
    needs an intentional refresh, not a pass or a regression.
    """
    from ..runtime import MachineParams

    return dataclasses.asdict(MachineParams())


def git_rev() -> str:
    """Current git revision (provenance only — never compared)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def make_envelope(
    results: dict[str, object],
    meta: dict[str, object] | None = None,
    *,
    smoke: bool,
) -> dict[str, object]:
    """Wrap one benchmark session's results as a baseline document.

    ``results`` maps bench name → sanitized result payload; ``meta``
    maps bench name → the configuration the payload was measured under
    (problem size, sweep grid, node counts).  The gate compares ``meta``
    exactly: a config drift must fail as *config changed*, not be
    silently diffed value against incomparable value.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": KIND,
        "smoke": bool(smoke),
        "git_rev": git_rev(),
        "machine": machine_fingerprint(),
        "meta": dict(sorted((meta or {}).items())),
        "results": dict(sorted(results.items())),
    }


def write_baseline(path: str, doc: dict[str, object]) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")


def load_baseline(path: str) -> dict[str, object]:
    """Load and validate one baseline document.

    Raises :class:`BaselineError` — with a message naming the file and
    the problem — for a missing file, non-JSON content, a non-baseline
    JSON (wrong ``kind``), or an incompatible ``schema_version``.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise BaselineError(f"malformed baseline JSON in {path}: {e}") from None
    if not isinstance(doc, dict):
        raise BaselineError(
            f"{path} is not a bench baseline (top level is not an object)"
        )
    if doc.get("kind") != KIND:
        raise BaselineError(
            f"{path} is not a bench baseline (kind={doc.get('kind')!r})"
        )
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BaselineError(
            f"{path} has schema_version {version!r}; "
            f"this tool reads version {SCHEMA_VERSION} — re-capture it"
        )
    if not isinstance(doc.get("results"), dict):
        raise BaselineError(f"{path} carries no results mapping")
    return doc


def capture(
    out: str,
    bench_args: list[str] | None = None,
    *,
    smoke: bool = False,
    python: str = sys.executable,
) -> dict[str, object]:
    """Run the benchmark suite in a subprocess and write a baseline.

    ``bench_args`` selects what to run (defaults to the whole
    ``benchmarks/`` directory; pass file paths or ``-k`` expressions).
    The benchmarks' session hook writes the envelope itself
    (:func:`make_envelope` via ``benchmarks/conftest.py``), so ``out``
    receives a ready baseline document, which is then re-loaded,
    validated and returned.
    """
    cmd = [python, "-m", "pytest", "-q", "-p", "no:cacheprovider"]
    cmd += list(bench_args) if bench_args else ["benchmarks"]
    if smoke:
        cmd.append("--smoke")
    cmd += ["--json", out]
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        raise BaselineError(
            f"benchmark run failed (exit {proc.returncode}); no baseline "
            f"written — command: {' '.join(cmd)}"
        )
    return load_baseline(out)
