"""The regression gate: diff a benchmark run against a stored baseline.

Everything the benchmarks measure comes from a *simulated* machine, so
the diff policy can be far stricter than wall-clock benchmarking ever
allows:

- **deterministic counters** (ints: I/O calls, elements, message
  counts, node counts, booleans, strings) must match **exactly** — one
  extra read call is a real behavior change, not noise;
- **modeled values** (floats: estimated seconds, speedups, gains) get a
  small relative tolerance (float summation order may legitimately
  shift across refactors) and a *direction*: a change beyond tolerance
  is classified **better** or **worse** by what the metric means —
  times/latencies regress upward, speedups/savings regress downward,
  direction-free values regress on any drift;
- **histograms** are compared on their percentile summary (p50/p95/p99,
  count, sum) — raw ``bucket_counts``/``bounds`` are skipped so a
  bucket-layout change doesn't masquerade as a perf change;
- **configuration** (the envelope's machine fingerprint, smoke flag and
  per-bench meta) must match exactly; a mismatch means baseline and
  run measured different experiments, which is neither a pass nor a
  regression but a *config* failure demanding an intentional refresh.

``python -m repro.obs regress check`` renders the surviving diffs and
exits 1 — the CI perf gate is exactly that exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

#: histogram internals the gate never compares (percentiles carry the
#: stable signal; bucket layout is an implementation detail)
SKIPPED_KEYS = frozenset({"bucket_counts", "bounds"})

#: key fragments marking a float metric where *smaller* is better
LOWER_BETTER = (
    "time", "_s", "latency", "makespan", "wait", "miss", "evict",
    "over_budget", "peak", "error", "cost", "optimality",
    "predicted_cost", "drift",
)

#: key fragments marking a float metric where *bigger* is better
HIGHER_BETTER = (
    "gain", "speedup", "saved", "saving", "hit", "reduction", "win",
    "bandwidth", "overlap", "bound",
)


def direction_of(path: str) -> int:
    """-1 when smaller is better, +1 when bigger is better, 0 unknown.

    Decided by the *last* path component that matches either fragment
    list — the leaf names the metric; outer components name the bench.
    """
    for comp in reversed(path.lower().split("/")):
        if any(f in comp for f in HIGHER_BETTER):
            return 1
        if any(f in comp for f in LOWER_BETTER):
            return -1
    return 0


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-metric-class tolerances for the diff walk."""

    #: relative tolerance for modeled float values
    rel_tol: float = 0.01
    #: absolute floor: floats this close to zero compare by abs delta
    abs_tol: float = 1e-9


@dataclass
class MetricDiff:
    """One leaf-level difference between baseline and current run."""

    path: str
    baseline: object
    current: object
    #: "worse" | "better" | "changed" | "missing" | "added" | "config"
    status: str
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("worse", "changed", "missing", "config")

    def describe(self) -> str:
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.6g}"
            s = repr(v)
            return s if len(s) <= 40 else s[:37] + "..."

        line = (
            f"{self.status.upper():<8} {self.path}: "
            f"{fmt(self.baseline)} -> {fmt(self.current)}"
        )
        return f"{line}  ({self.note})" if self.note else line


@dataclass
class RegressReport:
    """The gate's verdict: every non-identical leaf, classified."""

    diffs: list[MetricDiff] = field(default_factory=list)
    compared: int = 0

    @property
    def failures(self) -> list[MetricDiff]:
        return [d for d in self.diffs if d.failed]

    @property
    def improvements(self) -> list[MetricDiff]:
        return [d for d in self.diffs if d.status == "better"]

    @property
    def ok(self) -> bool:
        return not self.failures


def _rel_close(old: float, new: float, policy: TolerancePolicy) -> bool:
    scale = max(abs(old), abs(new))
    if scale <= policy.abs_tol:
        return True
    return abs(new - old) <= policy.rel_tol * scale


def _diff_leaf(
    path: str, old: object, new: object, policy: TolerancePolicy,
    out: RegressReport,
) -> None:
    out.compared += 1
    # bool is an int subclass: test it first so flags stay exact-match
    if isinstance(old, bool) or isinstance(new, bool):
        if old != new:
            out.diffs.append(MetricDiff(path, old, new, "changed",
                                        "boolean flag flipped"))
        return
    if isinstance(old, int) and isinstance(new, int):
        if old == new:
            return
        # deterministic counters are exact-match: any drift fails the
        # gate (an intentional improvement is ratified by refreshing the
        # baseline); the direction only flavors the message
        d = direction_of(path)
        rel = (new - old) / old if old else float("inf")
        note = f"{rel:+.1%}, deterministic counter (exact-match metric)"
        status = "changed"
        if d != 0 and (new > old) != (d > 0):
            status = "worse"
        out.diffs.append(MetricDiff(path, old, new, status, note))
        return
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old == new or _rel_close(float(old), float(new), policy):
            return
        d = direction_of(path)
        rel = (new - old) / abs(old) if old else float("inf")
        if d == 0:
            out.diffs.append(
                MetricDiff(path, old, new, "changed",
                           f"{rel:+.1%} beyond ±{policy.rel_tol:.1%} "
                           "(direction-free metric)")
            )
        else:
            better = (new > old) == (d > 0)
            out.diffs.append(
                MetricDiff(path, old, new, "better" if better else "worse",
                           f"{rel:+.1%} beyond ±{policy.rel_tol:.1%}")
            )
        return
    if old != new:
        out.diffs.append(MetricDiff(path, old, new, "changed",
                                    f"{type(old).__name__} vs "
                                    f"{type(new).__name__}"))


def _diff_value(
    path: str, old: object, new: object, policy: TolerancePolicy,
    out: RegressReport,
) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            if key in SKIPPED_KEYS:
                continue
            sub = f"{path}/{key}" if path else str(key)
            if key not in new:
                out.diffs.append(
                    MetricDiff(sub, old[key], None, "missing",
                               "metric disappeared from the run")
                )
            elif key not in old:
                out.diffs.append(
                    MetricDiff(sub, None, new[key], "added",
                               "new metric (not in baseline; refresh to track)")
                )
            else:
                _diff_value(sub, old[key], new[key], policy, out)
        return
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.diffs.append(
                MetricDiff(f"{path}/len", len(old), len(new), "changed",
                           "sequence length changed")
            )
            return
        for i, (o, n) in enumerate(zip(old, new)):
            _diff_value(f"{path}[{i}]", o, n, policy, out)
        return
    _diff_leaf(path, old, new, policy, out)


def diff_docs(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    policy: TolerancePolicy | None = None,
) -> RegressReport:
    """Diff two baseline documents (or a baseline against a fresh
    ``--json`` capture).  Configuration first — machine fingerprint,
    smoke flag, per-bench meta — then every result leaf."""
    policy = policy or TolerancePolicy()
    out = RegressReport()
    if bool(baseline.get("smoke")) != bool(current.get("smoke")):
        out.diffs.append(
            MetricDiff("smoke", baseline.get("smoke"), current.get("smoke"),
                       "config", "smoke and full runs are not comparable")
        )
        return out
    b_machine = baseline.get("machine")
    c_machine = current.get("machine")
    if b_machine is not None and c_machine is not None \
            and b_machine != c_machine:
        out.diffs.append(
            MetricDiff("machine", b_machine, c_machine, "config",
                       "simulated machine model changed; refresh baselines")
        )
        return out
    b_meta = baseline.get("meta") or {}
    c_meta = current.get("meta") or {}
    for name in sorted(set(b_meta) & set(c_meta)):
        if b_meta[name] != c_meta[name]:
            out.diffs.append(
                MetricDiff(f"meta/{name}", b_meta[name], c_meta[name],
                           "config",
                           "bench configuration changed; refresh baselines")
            )
    if out.failures:
        return out
    b_res = baseline.get("results", {})
    c_res = current.get("results", {})
    for name in sorted(set(b_res) | set(c_res)):
        if name not in c_res:
            out.diffs.append(
                MetricDiff(name, "<bench>", None, "missing",
                           "benchmark disappeared from the run")
            )
        elif name not in b_res:
            out.diffs.append(
                MetricDiff(name, None, "<bench>", "added",
                           "new benchmark (not in baseline; refresh to gate)")
            )
        else:
            _diff_value(name, b_res[name], c_res[name], policy, out)
    return out


def render_regress(
    report: RegressReport, *, max_lines: int = 60
) -> str:
    """Human-readable gate verdict: failures first, then improvements
    and additions, then the one-line summary CI logs end on."""
    lines: list[str] = []
    shown = 0
    for group, title in (
        (report.failures, "regressions / config failures"),
        (report.improvements, "improvements"),
        ([d for d in report.diffs if d.status == "added"], "new metrics"),
    ):
        if not group:
            continue
        lines.append(f"{title} ({len(group)}):")
        for d in group:
            if shown >= max_lines:
                lines.append(f"  ... ({len(group)} in group; output capped)")
                break
            lines.append("  " + d.describe())
            shown += 1
    n_fail = len(report.failures)
    n_better = len(report.improvements)
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(
        f"regress: {verdict} — {report.compared} leaf value(s) compared, "
        f"{n_fail} failure(s), {n_better} improvement(s)"
    )
    return "\n".join(lines)


def summarize_baseline(doc: Mapping[str, object]) -> str:
    """One-screen description of a baseline file (``regress report``)."""
    results = doc.get("results", {})
    meta = doc.get("meta", {})
    lines = [
        f"kind={doc.get('kind')} schema_version={doc.get('schema_version')} "
        f"smoke={doc.get('smoke')} git_rev={str(doc.get('git_rev'))[:12]}",
        f"{len(results)} benchmark result(s):",
    ]
    for name in sorted(results):
        m = meta.get(name)
        suffix = f"  [{_fmt_meta(m)}]" if m else ""
        lines.append(f"  {name}: {_count_leaves(results[name])} leaf value(s)"
                     f"{suffix}")
    return "\n".join(lines)


def _fmt_meta(meta: object) -> str:
    if isinstance(meta, Mapping):
        return " ".join(f"{k}={meta[k]}" for k in sorted(meta))
    return str(meta)


def _count_leaves(value: object) -> int:
    if isinstance(value, Mapping):
        return sum(_count_leaves(v) for k, v in value.items()
                   if k not in SKIPPED_KEYS)
    if isinstance(value, (list, tuple)):
        return sum(_count_leaves(v) for v in value)
    return 1


def check_paths(
    baseline_path: str, current_path: str,
    policy: TolerancePolicy | None = None,
) -> RegressReport:
    """Load both documents and diff them (the ``regress check`` core).
    The current side may be a bare ``pytest --json`` doc, a full
    baseline envelope, a ``.jsonl`` streaming journal carrying
    ``result`` events (:func:`~repro.obs.journal.doc_from_journal`), or
    ``-`` to read JSON from stdin; the baseline side must be a valid
    envelope."""
    import json
    import sys

    from .baselines import BaselineError, load_baseline

    baseline = load_baseline(baseline_path)
    if current_path != "-" and current_path.endswith(".jsonl"):
        from .journal import JournalError, doc_from_journal, read_journal

        try:
            current = doc_from_journal(read_journal(current_path))
        except FileNotFoundError:
            raise BaselineError(
                f"current results file not found: {current_path}"
            ) from None
        except JournalError as e:
            raise BaselineError(
                f"malformed journal in {current_path}: {e}"
            ) from None
        return diff_docs(baseline, current, policy)
    source = "stdin" if current_path == "-" else current_path
    try:
        if current_path == "-":
            current = json.load(sys.stdin)
        else:
            with open(current_path) as f:
                current = json.load(f)
    except FileNotFoundError:
        raise BaselineError(
            f"current results file not found: {current_path}"
        ) from None
    except (json.JSONDecodeError, UnicodeDecodeError) as e:
        raise BaselineError(
            f"malformed current results JSON in {source}: {e}"
        ) from None
    if not isinstance(current, dict) or "results" not in current:
        raise BaselineError(
            f"{source} carries no results mapping "
            "(expected a pytest --json document or a baseline)"
        )
    return diff_docs(baseline, current, policy)
