"""Span-based tracing for the compiler pipeline and the runtime.

Two kinds of time coexist in this system and the tracer records both:

- **wall time** — what the host actually spends compiling (normalize,
  interference, per-nest optimization, tiling, codegen) and driving the
  simulated runtime.  Wall spans nest: ``span()`` is a context manager,
  ``begin()``/``end()`` the explicit form for code that cannot scope a
  ``with`` block.
- **simulated time** — the deterministic clock of the cost model and the
  discrete-event simulator.  ``add_virtual_span`` places a span at an
  explicit ``(start_s, duration_s)`` on a named *track* (a compute node,
  an I/O node queue, the interconnect); nothing is measured.

Every span carries a name, a category and a flat dict of structured
attributes (nest name, array, call counts, ...).  The Chrome
trace-event exporter in :mod:`repro.obs.export` renders wall spans and
virtual spans as separate processes of one Perfetto-loadable file.

The tracer is deliberately clock-injectable (``Tracer(clock=...)``) so
tests are deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping


@dataclass
class Span:
    """One traced interval.  Times are seconds relative to the tracer's
    epoch (wall spans) or to the simulation's t=0 (virtual spans)."""

    name: str
    cat: str = ""
    start_s: float = 0.0
    end_s: float | None = None
    #: attributes rendered into the trace event's ``args``
    args: dict[str, object] = field(default_factory=dict)
    span_id: int = 0
    parent_id: int | None = None
    #: track label; ``None`` for wall-time spans (they live on the
    #: tracer's single wall track), a string for virtual-time spans
    track: str | None = None

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def closed(self) -> bool:
        return self.end_s is not None


@dataclass(frozen=True)
class Instant:
    """A point event (a decision, a marker) on the wall track."""

    name: str
    cat: str
    ts_s: float
    args: Mapping[str, object]


class Tracer:
    """Collects :class:`Span` and :class:`Instant` records.

    Not thread-safe — the whole system is single-threaded by design
    (the parallelism is simulated).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._next_id = 1
        self._stack: list[Span] = []
        self.spans: list[Span] = []
        self.instants: list[Instant] = []

    # -- wall-time spans --------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def begin(self, name: str, cat: str = "", **args: object) -> Span:
        """Open a span explicitly; pair with :meth:`end`."""
        span = Span(
            name,
            cat,
            start_s=self._now(),
            args=dict(args),
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
        )
        self._next_id += 1
        self._stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Span, **args: object) -> Span:
        """Close a span (and any forgotten children still open)."""
        while self._stack:
            top = self._stack.pop()
            top.end_s = self._now()
            if top is span:
                break
        else:
            span.end_s = self._now()
        span.args.update(args)
        return span

    @contextmanager
    def span(self, name: str, cat: str = "", **args: object) -> Iterator[Span]:
        s = self.begin(name, cat, **args)
        try:
            yield s
        finally:
            self.end(s)

    def instant(self, name: str, cat: str = "", **args: object) -> None:
        self.instants.append(Instant(name, cat, self._now(), dict(args)))

    # -- virtual (simulated) time -----------------------------------------

    def add_virtual_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        *,
        track: str,
        cat: str = "sim",
        **args: object,
    ) -> Span:
        """Place a span at an explicit simulated time on ``track``."""
        span = Span(
            name,
            cat,
            start_s=start_s,
            end_s=start_s + duration_s,
            args=dict(args),
            span_id=self._next_id,
            track=track,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- introspection -----------------------------------------------------

    @property
    def wall_spans(self) -> list[Span]:
        return [s for s in self.spans if s.track is None]

    @property
    def virtual_spans(self) -> list[Span]:
        return [s for s in self.spans if s.track is not None]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]
