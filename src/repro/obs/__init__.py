"""Unified observability: tracing, metrics and profiling (``repro.obs``).

The paper's argument is quantitative — per-nest, per-array I/O calls and
seconds are the whole evidence.  This package is the structured substrate
for that evidence:

- :class:`Tracer` (:mod:`~repro.obs.tracer`) — span-based tracing of the
  compiler pipeline (normalize → interference → per-nest optimize →
  tiling → codegen) and the runtime (nest execution, cache activity,
  collective phases), in wall time, plus *virtual-time* spans carrying
  the event simulator's per-I/O-node queues at simulated timestamps;
- :class:`MetricsRegistry` (:mod:`~repro.obs.metrics`) — counters,
  gauges and histograms (I/O call sizes, queue waits) that
  :class:`~repro.runtime.stats.IOContext`, the tile cache and the event
  simulator publish into;
- exporters (:mod:`~repro.obs.export`) — Chrome trace-event JSON
  loadable in Perfetto / ``chrome://tracing``, both clocks in one file;
- per-nest × per-array I/O reports (:mod:`~repro.obs.report`) whose
  totals equal the run's folded :class:`~repro.runtime.stats.IOStats`
  exactly, rendered by ``python -m repro.obs report <trace.json>``.

Observability is **off by default** and bit-identical when off: every
instrumented call site takes an ``obs=None`` parameter and records
nothing — stats, timings and printed lines are unchanged (the same
contract as :class:`~repro.cache.tile_cache.CacheConfig` and
:class:`~repro.collective.planner.CollectiveConfig`).  Enable it by
passing an :class:`Observability`::

    from repro.obs import Observability

    obs = Observability()
    decision = optimize_program(program, obs=obs)
    ex = OOCExecutor(decision.program, decision.layout_objects(), obs=obs)
    result = ex.run()
    obs.note_stats(result.stats)
    obs.export("trace.json")      # open in https://ui.perfetto.dev
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Iterable, Mapping

from .export import (
    REQUIRED_EVENT_KEYS,
    OpenMetricsError,
    chrome_trace_events,
    decode_key,
    encode_key,
    load_trace,
    parse_openmetrics,
    render_openmetrics,
    sanitize,
    validate_trace_events,
    write_trace,
)
from .journal import (
    Journal,
    JournalError,
    doc_from_journal,
    payload_from_journal,
    read_journal,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PercentileError,
    registry_from_snapshot,
)
from .profile import (
    HotspotRecorder,
    HotspotTable,
    ProfileConfig,
    ProfileResult,
    ProfileSession,
    WorkCounters,
    publish_work,
    render_profile,
    validate_collapsed,
)
from .report import (
    CostDriftRecord,
    IOReport,
    NestIORecord,
    OptimalityRecord,
    RedistRecord,
    build_drift,
    build_optimality,
    drift_totals,
    optimality_totals,
    render_report,
    report_totals,
)
from .tracer import Instant, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.stats import IOStats


@dataclass(frozen=True)
class ObsConfig:
    """Switches for the observability layer.

    ``enabled``
        master switch; a disabled config behaves exactly like passing
        ``obs=None`` everywhere.
    ``wall_time``
        record wall-clock spans of the pipeline and executor.
    ``metrics``
        publish counters/histograms into the registry.
    ``sim_events``
        record the event simulator's per-request timeline (virtual-time
        spans on per-node and per-I/O-node tracks).
    ``per_array``
        emit per-nest × per-array I/O records (forces per-call tracing
        in the executor; stats are unaffected).
    """

    enabled: bool = True
    wall_time: bool = True
    metrics: bool = True
    sim_events: bool = True
    per_array: bool = True


class Observability:
    """One run's collected telemetry: tracer + registry + I/O report."""

    def __init__(
        self,
        config: ObsConfig | None = None,
        *,
        clock=None,
        journal: "Journal | str | IO[str] | None" = None,
    ):
        self.config = config or ObsConfig()
        self.tracer = Tracer(**({"clock": clock} if clock is not None else {}))
        self.metrics = MetricsRegistry()
        self.report = IOReport()
        #: streaming telemetry sink (:mod:`repro.obs.journal`): records
        #: and snapshots are appended as JSONL events while the run is
        #: in flight.  ``None`` (the default) emits nothing — payloads
        #: are bit-identical without a journal attached.
        if journal is None or isinstance(journal, Journal):
            self.journal = journal
        else:
            self.journal = Journal(journal)
        #: serialized hotspot/work capture (:meth:`note_profile`); the
        #: payload's ``profile`` key exists only when this is set
        self.profile: dict[str, object] | None = None
        self.run_stats: dict[str, object] | None = None
        self.sim_summary: dict[str, object] | None = None
        #: multi-tenant serving summary (:mod:`repro.serve`): per-tenant
        #: job counts, queue delays and folded stats, set by
        #: :meth:`note_serve` when a scheduler run completes
        self.serve_summary: dict[str, object] | None = None
        #: autotuning-loop summary (:mod:`repro.autotune`): solver
        #: provenance, drift signals and recalibration history, set by
        #: :meth:`note_autotune`; the payload's ``autotune`` key exists
        #: only when this is set
        self.autotune_summary: dict[str, object] | None = None
        #: cost-model predictions per nest → array → estimated calls,
        #: registered by the executor / parallel driver before the run's
        #: drift table is built (:meth:`finalize_drift`)
        self.predictions: dict[str, dict[str, float]] = {}
        #: static I/O lower bounds per nest
        #: (:meth:`repro.bounds.NestBound.to_dict` payloads), registered
        #: by :meth:`note_bounds` before :meth:`finalize_optimality`
        self.bounds: dict[str, dict[str, object]] = {}
        #: cost-model element estimates per nest, the "modeled" column
        #: of the optimality table (:meth:`note_modeled_elements`)
        self.modeled_elements: dict[str, float] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- convenience proxies ----------------------------------------------

    def span(self, name: str, cat: str = "", **args: object):
        return self.tracer.span(name, cat, **args)

    def instant(self, name: str, cat: str = "", **args: object) -> None:
        self.tracer.instant(name, cat, **args)

    def record_nest_io(self, record: NestIORecord) -> None:
        self.report.records.append(record)
        if self.journal is not None:
            self.journal.emit("nest_io", **record.to_dict())

    def record_redist(self, record: RedistRecord) -> None:
        self.report.redist.append(record)
        if self.journal is not None:
            self.journal.emit("redist", **record.to_dict())

    def note_stats(self, stats: "IOStats") -> None:
        """Attach the run's folded stats (the report's ground truth)."""
        self.run_stats = stats.to_dict()
        if self.journal is not None:
            self.journal.emit("stats", data=self.run_stats)

    def note_serve(self, summary: Mapping[str, object]) -> None:
        """Attach a serving run's per-tenant summary
        (:meth:`repro.serve.ServeResult.summary_dict`); rendered as the
        tenant section of ``python -m repro.obs report``."""
        self.serve_summary = dict(summary)
        if self.journal is not None:
            self.journal.emit("serve", data=sanitize(self.serve_summary))

    def note_autotune(self, summary: Mapping[str, object]) -> None:
        """Attach an autotuning summary
        (:meth:`repro.autotune.Autotuner.summary`); rendered as the
        autotuning section of ``python -m repro.obs report``."""
        self.autotune_summary = dict(summary)
        if self.journal is not None:
            self.journal.emit(
                "autotune", data=sanitize(self.autotune_summary)
            )

    def note_profile(self, profile) -> None:
        """Attach a finished hotspot capture — a
        :class:`~repro.obs.profile.ProfileResult` or its ``to_dict()``
        payload; rendered as the hotspot section of the report and the
        ``top`` CLI."""
        self.profile = (
            profile.to_dict() if hasattr(profile, "to_dict")
            else dict(profile)
        )
        if self.journal is not None:
            self.journal.emit("profile", data=self.profile)

    # -- cost-model drift ---------------------------------------------------

    def note_predictions(
        self, predictions: Mapping[str, Mapping[str, float]]
    ) -> None:
        """Register the optimizer's predicted I/O per (nest, array) —
        typically :func:`repro.optimizer.cost.predict_program_io` of the
        program about to run."""
        for nest, per_array in predictions.items():
            self.predictions.setdefault(nest, {}).update(per_array)

    def finalize_drift(self) -> None:
        """(Re)build the report's cost-model drift table from the
        collected records and registered predictions, and publish the
        per-(nest, array) model-error metrics.  Idempotent — callers
        invoke it whenever a run's records are complete."""
        if not self.predictions and not self.report.records:
            return
        self.report.drift = build_drift(self.report.records, self.predictions)
        if self.config.metrics:
            for r in self.report.drift:
                labels = {"nest": r.nest, "array": r.array}
                self.metrics.gauge(
                    "cost_model.measured_calls", **labels
                ).set(r.measured_calls)
                if r.predicted_calls is not None:
                    self.metrics.gauge(
                        "cost_model.predicted_calls", **labels
                    ).set(r.predicted_calls)
                if r.error is not None:
                    self.metrics.gauge(
                        "cost_model.call_error", **labels
                    ).set(r.error)

    # -- optimality (I/O lower bounds) --------------------------------------

    def note_bounds(self, bounds: Iterable[object]) -> None:
        """Register static I/O lower bounds — an iterable of
        :class:`repro.bounds.NestBound` (or equivalent dict payloads),
        typically :func:`repro.bounds.program_bounds` of the program
        about to run, keyed by nest name (last registration wins)."""
        for b in bounds:
            d = b.to_dict() if hasattr(b, "to_dict") else dict(b)
            self.bounds[d["nest"]] = d

    def note_modeled_elements(self, modeled: Mapping[str, float]) -> None:
        """Register the cost model's element estimates per nest —
        typically :func:`repro.optimizer.cost.predict_program_elements`."""
        self.modeled_elements.update(modeled)

    def finalize_optimality(self) -> None:
        """(Re)build the report's achieved-vs-bound table from the
        collected records and registered bounds, and publish the
        ``optimality.*`` gauges.  Idempotent, like
        :meth:`finalize_drift`."""
        if not self.bounds and not self.report.records:
            return
        self.report.optimality = build_optimality(
            self.report.records, self.bounds, self.modeled_elements
        )
        if not self.config.metrics:
            return
        bound_sum = 0.0
        measured_sum = 0
        for r in self.report.optimality:
            labels = {"nest": r.nest}
            self.metrics.gauge(
                "optimality.measured_elements", **labels
            ).set(r.measured_elements)
            if r.modeled_elements is not None:
                self.metrics.gauge(
                    "optimality.modeled_elements", **labels
                ).set(r.modeled_elements)
            if r.bound_elements is not None:
                self.metrics.gauge(
                    "optimality.bound_elements", **labels
                ).set(r.bound_elements)
            if r.ratio is not None:
                self.metrics.gauge("optimality.ratio", **labels).set(r.ratio)
                bound_sum += r.bound_elements
                measured_sum += r.measured_elements
        if bound_sum > 0:
            self.metrics.gauge(
                "optimality.run_ratio"
            ).set(measured_sum / bound_sum)

    # -- simulated-time ingestion -----------------------------------------

    def add_sim_events(self, events: Iterable[object]) -> None:
        """Convert the event simulator's request log into virtual-time
        spans: one blocked-interval span per request on its compute
        node's track, one service span on the resource's queue track.
        ``events`` duck-types :class:`repro.collective.sim.SimEvent`."""
        t = self.tracer
        for ev in events:
            kind = ev.kind
            node_track = f"node {ev.node}"
            if kind == "compute":
                t.add_virtual_span(
                    "compute", ev.start_s, ev.end_s - ev.start_s,
                    track=node_track, cat="sim.compute",
                )
                continue
            res_track = "net" if kind == "net" else f"io {ev.resource}"
            wait = ev.start_s - ev.arrival_s
            t.add_virtual_span(
                kind, ev.arrival_s, ev.end_s - ev.arrival_s,
                track=node_track, cat=f"sim.{kind}",
                wait_s=wait, resource=res_track,
            )
            t.add_virtual_span(
                f"serve node {ev.node}", ev.start_s, ev.end_s - ev.start_s,
                track=res_track, cat=f"sim.{kind}",
            )

    def add_fault_events(self, events: Iterable[object]) -> None:
        """Place the fault injector's event log on its own ``faults``
        track: one zero-length virtual span per injected fault or
        resilience action (error, timeout, retry, hedge, outage,
        degrade…), at the event's simulated timestamp.  ``events``
        duck-types :class:`repro.faults.FaultEvent`."""
        t = self.tracer
        for ev in events:
            t.add_virtual_span(
                f"{ev.kind} io{ev.io_node}", ev.time_s, 0.0,
                track="faults", cat=f"fault.{ev.kind}",
                op_index=ev.op_index, io_node=ev.io_node,
                node=ev.node, is_write=ev.is_write,
                **({"detail": ev.detail} if ev.detail else {}),
            )

    # -- export ------------------------------------------------------------

    def to_payload(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "traceEvents": chrome_trace_events(self.tracer),
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.obs"},
            "metrics": self.metrics.to_dict(),
            "io_report": self.report.to_dict(),
        }
        if self.run_stats is not None:
            payload["stats"] = self.run_stats
        if self.sim_summary is not None:
            payload["sim"] = self.sim_summary
        if self.serve_summary is not None:
            payload["serve"] = self.serve_summary
        if self.autotune_summary is not None:
            payload["autotune"] = self.autotune_summary
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload

    def export(self, path_or_file: str | IO[str]) -> dict[str, object]:
        """Write the Perfetto-loadable trace JSON; returns the payload."""
        payload = self.to_payload()
        write_trace(path_or_file, payload)
        if self.journal is not None:
            # snapshot kinds stream at export time (records streamed as
            # they were collected); replay folds them back last-wins
            self.journal.emit("metrics", data=payload["metrics"])
            if self.sim_summary is not None:
                self.journal.emit("sim", data=sanitize(self.sim_summary))
            self.journal.flush()
        return payload


def active(obs: "Observability | None") -> "Observability | None":
    """The instrumentation guard: the obs instance if it is live, else
    ``None`` — call sites do ``obs = active(obs)`` once and then a plain
    ``if obs is not None`` per instrumentation point."""
    return obs if obs is not None and obs.config.enabled else None


__all__ = [
    "CostDriftRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "HotspotRecorder",
    "HotspotTable",
    "Instant",
    "IOReport",
    "Journal",
    "JournalError",
    "MetricsRegistry",
    "NestIORecord",
    "ObsConfig",
    "Observability",
    "OpenMetricsError",
    "OptimalityRecord",
    "PercentileError",
    "ProfileConfig",
    "ProfileResult",
    "ProfileSession",
    "RedistRecord",
    "REQUIRED_EVENT_KEYS",
    "Span",
    "Tracer",
    "WorkCounters",
    "active",
    "build_drift",
    "build_optimality",
    "chrome_trace_events",
    "decode_key",
    "doc_from_journal",
    "drift_totals",
    "encode_key",
    "load_trace",
    "optimality_totals",
    "parse_openmetrics",
    "payload_from_journal",
    "publish_work",
    "read_journal",
    "registry_from_snapshot",
    "render_openmetrics",
    "render_profile",
    "render_report",
    "report_totals",
    "sanitize",
    "validate_collapsed",
    "validate_trace_events",
    "write_trace",
]


def _payload_report(
    payload: Mapping[str, object], *, include_metrics: bool = False
) -> str:
    """Render ``python -m repro.obs report``'s text from a loaded trace
    payload (exposed for the CLI and tests)."""
    report = IOReport.from_dict(payload.get("io_report", {}))
    stats = payload.get("stats")
    metrics = payload.get("metrics") if include_metrics else None
    return render_report(
        report, stats, metrics,
        serve=payload.get("serve"), profile=payload.get("profile"),
        autotune=payload.get("autotune"),
    )
