"""A small metrics registry: counters, gauges and histograms.

The runtime's exact accounting lives in
:class:`~repro.runtime.stats.IOStats` — that is the *result* of a run.
The registry complements it with *distributions and live counters* the
flat stats cannot carry: I/O call-size histograms, simulator queue-wait
distributions, cache counter snapshots.  :class:`~repro.runtime.stats
.IOContext`, :class:`~repro.cache.tile_cache.TileCache` and the
discrete-event simulator all publish into one registry when
observability is enabled; ``to_dict()`` serializes everything for the
JSON trace artifact.

Instruments are keyed by name plus optional labels
(``registry.counter("io.read_calls", node=3)``); the label set becomes
part of the key, Prometheus-style.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable


def _key(name: str, labels: dict[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class PercentileError(ValueError):
    """A percentile query outside ``[0, 1]`` (named validation error;
    subclasses ``ValueError`` so pre-existing handlers keep working)."""


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value (peaks, snapshots, configuration)."""

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value}


#: default bucket bounds: powers of two — wide enough for element counts
#: and fine enough for second-scale durations once scaled
_POW2 = tuple(2.0**e for e in range(0, 31))


class Histogram:
    """Fixed-bound bucket histogram with exact count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the last
    slot is the overflow bucket.
    """

    def __init__(self, bounds: Iterable[float] = _POW2):
        self.bounds: tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(float(v))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Bucket-interpolated percentile (``q`` in [0, 1]), Prometheus
        ``histogram_quantile`` style: find the bucket holding the target
        rank and interpolate linearly inside it.  Results are clamped to
        the observed ``[min, max]`` so degenerate single-value
        distributions report that value exactly.  ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise PercentileError(
                f"percentile q must be in [0, 1], got {q}"
            )
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.min if i == 0 else self.bounds[i - 1]
                hi = self.max if i >= len(self.bounds) else self.bounds[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return float(lo)
                frac = (target - cumulative) / n
                return float(lo + (hi - lo) * frac)
            cumulative += n
        return float(self.max)

    @property
    def percentiles(self) -> dict[str, float | None]:
        """The summary quantiles the regression gate compares (stable
        under bucket-layout changes, unlike raw bucket counts)."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            **self.percentiles,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create instrument store with JSON export."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: key -> (bare name, labels) for exporters that need the
        #: metric family and label set separately (OpenMetrics)
        self._meta: dict[str, tuple[str, dict[str, object]]] = {}

    def _get(self, name: str, labels: dict[str, object], factory):
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory()
            self._instruments[key] = inst
            self._meta[key] = (name, dict(labels))
        elif not isinstance(inst, factory):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None, **labels: object
    ) -> Histogram:
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(bounds) if bounds is not None else Histogram()
            self._instruments[key] = inst
            self._meta[key] = (name, dict(labels))
        elif not isinstance(inst, Histogram):
            raise TypeError(f"metric {key!r} already registered")
        return inst

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def items(self):
        return self._instruments.items()

    def to_dict(self) -> dict[str, dict[str, object]]:
        return {
            key: inst.to_dict()
            for key, inst in sorted(self._instruments.items())
        }


def _parse_key(key: str) -> tuple[str, dict[str, object]]:
    """Invert :func:`_key` for snapshot keys (label values must not
    contain ``,`` or ``=`` — true for every metric the system emits)."""
    if not (key.endswith("}") and "{" in key):
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, object] = {}
    for item in inner.split(","):
        k, _, v = item.partition("=")
        labels[k] = v
    return name, labels


def registry_from_snapshot(
    snapshot: dict[str, dict[str, object]],
) -> MetricsRegistry:
    """Rebuild a registry from a serialized ``to_dict()`` snapshot (a
    trace payload's ``metrics`` section / a journal's metrics event), so
    replayed captures can be re-rendered through exporters that need
    live instruments — OpenMetrics exposition in particular.  Raises
    ``ValueError`` on an unknown instrument type."""
    reg = MetricsRegistry()
    for key, data in snapshot.items():
        name, labels = _parse_key(key)
        typ = data.get("type")
        if typ == "counter":
            reg.counter(name, **labels).value = float(data.get("value", 0))
        elif typ == "gauge":
            reg.gauge(name, **labels).set(float(data.get("value", 0)))
        elif typ == "histogram":
            bounds = data.get("bounds")
            h = reg.histogram(
                name, bounds=bounds if bounds else None, **labels
            )
            h.count = int(data.get("count", 0))
            h.total = float(data.get("sum", 0.0))
            h.min = data.get("min")
            h.max = data.get("max")
            counts = data.get("bucket_counts")
            if isinstance(counts, list) and len(counts) == len(
                h.bucket_counts
            ):
                h.bucket_counts = [int(c) for c in counts]
        else:
            raise ValueError(
                f"snapshot metric {key!r} has unknown type {typ!r}"
            )
    return reg
