"""I/O accounting.

``IOStats`` is a plain counter bundle; ``IOContext`` is the per-compute-
node recorder the runtime writes into.  Per-I/O-node load vectors are kept
as numpy arrays so the contention model can take elementwise maxima
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..obs import profile as _prof
from .params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache → stats)
    from ..cache.metrics import CacheMetrics
    from ..faults.injector import FaultInjector
    from ..obs.metrics import MetricsRegistry


def _sieve(
    offsets: np.ndarray, lengths: np.ndarray, max_gap_elems: int
) -> tuple[np.ndarray, np.ndarray]:
    """Data sieving: merge runs whose gaps are at most ``max_gap`` into
    single spanning calls (the gap bytes are transferred and discarded —
    or rewritten unchanged for writes, which are tile-level
    read-modify-write here).  Runs must be disjoint."""
    if offsets.size <= 1:
        # nothing to merge: zero runs (no gaps at all) or a single run
        # (whose "gaps" array would otherwise index out of bounds)
        return offsets, lengths
    order = np.argsort(offsets, kind="stable")
    offsets, lengths = offsets[order], lengths[order]
    ends = offsets + lengths
    gaps = offsets[1:] - ends[:-1]
    breaks = np.flatnonzero(gaps > max_gap_elems)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [offsets.size - 1]))
    new_offsets = offsets[starts]
    new_lengths = ends[stops] - offsets[starts]
    return new_offsets, new_lengths


def plan_runs(
    params: MachineParams, offsets: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The exact I/O calls :meth:`IOContext.record_runs` would issue for a
    batch of contiguous runs: sieve small gaps, then split runs longer
    than the maximum request size.  Pure — no accounting is recorded —
    so the tile cache can price *avoided* transfers identically."""
    _prof.WORK.plan_runs_calls += 1
    rec = _prof.ACTIVE
    if rec is not None:
        rec.begin("pricing.plan_runs")
        try:
            out = _plan_runs_impl(params, offsets, lengths)
        finally:
            rec.end()
    else:
        out = _plan_runs_impl(params, offsets, lengths)
    _prof.WORK.priced_runs += int(out[0].size)
    return out


def _plan_runs_impl(
    params: MachineParams, offsets: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.size == 0:
        return offsets, lengths
    maxe = params.max_request_elements
    if params.sieve_gap_bytes and offsets.size > 1:
        offsets, lengths = _sieve(
            offsets, lengths, params.sieve_gap_bytes // params.element_size
        )
        if params.sieve_buffer_bytes:
            maxe = min(maxe, params.sieve_buffer_bytes // params.element_size)
    if (lengths > maxe).any():
        pieces_off: list[np.ndarray] = []
        pieces_len: list[np.ndarray] = []
        counts = -(-lengths // maxe)
        for off, ln, cnt in zip(offsets, lengths, counts):
            starts = off + maxe * np.arange(cnt, dtype=np.int64)
            plen = np.full(cnt, maxe, dtype=np.int64)
            plen[-1] = ln - maxe * (cnt - 1)
            pieces_off.append(starts)
            pieces_len.append(plen)
        offsets = np.concatenate(pieces_off)
        lengths = np.concatenate(pieces_len)
    return offsets, lengths


@dataclass
class IOStats:
    read_calls: int = 0
    write_calls: int = 0
    elements_read: int = 0
    elements_written: int = 0
    io_time_s: float = 0.0       # serial time the compute node spends in I/O
    compute_time_s: float = 0.0
    #: tile-cache counters (hits / misses / prefetch / bytes saved) when
    #: the run used :mod:`repro.cache`; ``None`` for uncached runs, so
    #: default accounting is bit-identical with the cache disabled
    cache: "CacheMetrics | None" = field(default=None, compare=False)
    #: redistribution phase (two-phase collective I/O, :mod:`repro
    #: .collective`): interconnect messages exchanged between compute
    #: nodes after the aggregators' file phase.  All zero — and the
    #: stats line unchanged — for independent (non-collective) runs.
    redist_messages: int = 0
    redist_elements: int = 0
    redist_time_s: float = 0.0
    #: resilience accounting (:mod:`repro.faults`): re-issued attempts,
    #: failed attempts (errors + timeouts), hedged duplicate reads,
    #: two-phase nests degraded to independent I/O, and total backoff
    #: seconds.  All zero — and ``to_dict``/``__str__`` unchanged —
    #: when no fault plan is active (``faults=None``).
    retries: int = 0
    failed_calls: int = 0
    hedged_calls: int = 0
    degraded_nests: int = 0
    retry_delay_s: float = 0.0

    @property
    def calls(self) -> int:
        return self.read_calls + self.write_calls

    @property
    def elements_moved(self) -> int:
        return self.elements_read + self.elements_written

    @property
    def has_faults(self) -> bool:
        """Whether any resilience counter is nonzero (the run saw
        injected faults, hedges or degradations)."""
        return bool(
            self.retries or self.failed_calls or self.hedged_calls
            or self.degraded_nests or self.retry_delay_s
        )

    @property
    def total_time_s(self) -> float:
        return (
            self.io_time_s + self.redist_time_s + self.compute_time_s
            + self.retry_delay_s
        )

    def merge(self, other: "IOStats") -> "IOStats":
        if self.cache is not None and other.cache is not None:
            cache = self.cache.merge(other.cache)
        else:
            cache = self.cache if self.cache is not None else other.cache
        return IOStats(
            self.read_calls + other.read_calls,
            self.write_calls + other.write_calls,
            self.elements_read + other.elements_read,
            self.elements_written + other.elements_written,
            self.io_time_s + other.io_time_s,
            self.compute_time_s + other.compute_time_s,
            cache,
            self.redist_messages + other.redist_messages,
            self.redist_elements + other.redist_elements,
            self.redist_time_s + other.redist_time_s,
            self.retries + other.retries,
            self.failed_calls + other.failed_calls,
            self.hedged_calls + other.hedged_calls,
            self.degraded_nests + other.degraded_nests,
            self.retry_delay_s + other.retry_delay_s,
        )

    @classmethod
    def fold(cls, items: "Iterable[IOStats]") -> "IOStats":
        """Sum many stats in one linear pass (no per-step intermediates).

        Field-by-field accumulation in iteration order, so the result is
        bit-identical to a left-to-right ``merge`` chain.
        """
        total = cls()
        for s in items:
            total.read_calls += s.read_calls
            total.write_calls += s.write_calls
            total.elements_read += s.elements_read
            total.elements_written += s.elements_written
            total.io_time_s += s.io_time_s
            total.compute_time_s += s.compute_time_s
            total.redist_messages += s.redist_messages
            total.redist_elements += s.redist_elements
            total.redist_time_s += s.redist_time_s
            total.retries += s.retries
            total.failed_calls += s.failed_calls
            total.hedged_calls += s.hedged_calls
            total.degraded_nests += s.degraded_nests
            total.retry_delay_s += s.retry_delay_s
            if s.cache is not None:
                total.cache = (
                    s.cache if total.cache is None
                    else total.cache.merge(s.cache)
                )
        return total

    def to_dict(self) -> dict:
        """JSON-ready dict, nested ``cache`` included — the serialized
        form used by traces (:mod:`repro.obs`) and ``BENCH_*.json``."""
        d = {
            "read_calls": self.read_calls,
            "write_calls": self.write_calls,
            "elements_read": self.elements_read,
            "elements_written": self.elements_written,
            "io_time_s": self.io_time_s,
            "compute_time_s": self.compute_time_s,
            "redist_messages": self.redist_messages,
            "redist_elements": self.redist_elements,
            "redist_time_s": self.redist_time_s,
        }
        # fault counters appear only when something fired, so the
        # serialized form (and every baseline JSON built from it) is
        # byte-identical to pre-fault output when faults are off
        if self.has_faults:
            d["retries"] = self.retries
            d["failed_calls"] = self.failed_calls
            d["hedged_calls"] = self.hedged_calls
            d["degraded_nests"] = self.degraded_nests
            d["retry_delay_s"] = self.retry_delay_s
        if self.cache is not None:
            d["cache"] = self.cache.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "IOStats":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        from ..cache.metrics import CacheMetrics

        cache_d = d.get("cache")
        return cls(
            read_calls=d.get("read_calls", 0),
            write_calls=d.get("write_calls", 0),
            elements_read=d.get("elements_read", 0),
            elements_written=d.get("elements_written", 0),
            io_time_s=d.get("io_time_s", 0.0),
            compute_time_s=d.get("compute_time_s", 0.0),
            cache=None if cache_d is None else CacheMetrics.from_dict(cache_d),
            redist_messages=d.get("redist_messages", 0),
            redist_elements=d.get("redist_elements", 0),
            redist_time_s=d.get("redist_time_s", 0.0),
            retries=d.get("retries", 0),
            failed_calls=d.get("failed_calls", 0),
            hedged_calls=d.get("hedged_calls", 0),
            degraded_nests=d.get("degraded_nests", 0),
            retry_delay_s=d.get("retry_delay_s", 0.0),
        )

    def __str__(self) -> str:
        base = (
            f"calls={self.calls} (r{self.read_calls}/w{self.write_calls}) "
            f"elements={self.elements_moved} io={self.io_time_s:.3f}s "
            f"compute={self.compute_time_s:.3f}s"
        )
        if self.redist_messages:
            base += (
                f" redist[msgs={self.redist_messages} "
                f"elements={self.redist_elements} "
                f"t={self.redist_time_s:.3f}s]"
            )
        if self.has_faults:
            base += (
                f" faults[retries={self.retries} "
                f"failed={self.failed_calls} hedged={self.hedged_calls} "
                f"degraded={self.degraded_nests} "
                f"delay={self.retry_delay_s:.3f}s]"
            )
        if self.cache is not None:
            base += f" {self.cache}"
        return base


class IOContext:
    """Recorder for one compute node's activity.

    ``io_node_load`` accumulates the service seconds each simulated I/O
    node spends on this compute node's requests — the contention model
    combines these across compute nodes.
    """

    def __init__(
        self,
        params: MachineParams,
        node_id: int = 0,
        trace: bool = False,
        metrics: "MetricsRegistry | None" = None,
        faults: "FaultInjector | None" = None,
    ):
        self.params = params
        self.node_id = node_id
        self.stats = IOStats()
        self.io_node_load = np.zeros(params.n_io_nodes, dtype=np.float64)
        #: optional call trace: (file_base, offset, length, is_write) per
        #: I/O call, in issue order — used by the Figure-3 renderer and
        #: by debugging tools; off by default (it is per-call overhead)
        self.trace: list[tuple[int, int, int, bool]] | None = [] if trace else None
        #: optional :class:`repro.obs.MetricsRegistry` this context
        #: publishes per-call counters and call-size histograms into;
        #: ``None`` (the default) records nothing — accounting is
        #: bit-identical with observability off
        self.metrics = metrics
        #: optional :class:`repro.faults.FaultInjector`: every planned
        #: I/O call is priced through it (stragglers, transient errors,
        #: retries, hedging).  ``None`` (the default) takes the
        #: vectorized path — accounting is bit-identical without faults
        self.faults = faults

    def _publish_calls(self, n_calls: int, n_elems: int, is_write: bool) -> None:
        m = self.metrics
        direction = "write" if is_write else "read"
        m.counter(f"io.{direction}_calls").inc(n_calls)
        m.counter(f"io.elements_{'written' if is_write else 'read'}").inc(
            n_elems
        )

    def record_call(self, file_base_elem: int, offset_elem: int, n_elems: int, is_write: bool) -> None:
        """Account one I/O call for ``n_elems`` contiguous elements starting
        at ``offset_elem`` within a file whose stripe-0 begins at
        ``file_base_elem`` (element units)."""
        rec = _prof.ACTIVE
        if rec is None:
            return self._record_call(
                file_base_elem, offset_elem, n_elems, is_write
            )
        rec.begin("io.record_call")
        try:
            return self._record_call(
                file_base_elem, offset_elem, n_elems, is_write
            )
        finally:
            rec.end()

    def _record_call(self, file_base_elem: int, offset_elem: int, n_elems: int, is_write: bool) -> None:
        p = self.params
        nbytes = n_elems * p.element_size
        if is_write:
            self.stats.write_calls += 1
            self.stats.elements_written += n_elems
        else:
            self.stats.read_calls += 1
            self.stats.elements_read += n_elems
        self.stats.io_time_s += p.call_time(nbytes)
        if self.metrics is not None:
            self._publish_calls(1, n_elems, is_write)
            self.metrics.histogram("io.call_elements").observe(n_elems)
        if self.trace is not None:
            self.trace.append((file_base_elem, offset_elem, n_elems, is_write))
        # distribute the transfer across the stripes the call covers
        start = file_base_elem + offset_elem
        end = start + n_elems  # exclusive
        se = p.stripe_elements
        first_stripe = start // se
        last_stripe = (end - 1) // se
        # latency is paid at the first servicing I/O node
        self.io_node_load[first_stripe % p.n_io_nodes] += p.io_latency_s
        for stripe in range(first_stripe, last_stripe + 1):
            s0 = max(start, stripe * se)
            s1 = min(end, (stripe + 1) * se)
            self.io_node_load[stripe % p.n_io_nodes] += p.transfer_time(
                (s1 - s0) * p.element_size
            )

    def record_runs(
        self,
        file_base_elem: int,
        offsets: np.ndarray,
        lengths: np.ndarray,
        is_write: bool,
    ) -> int:
        """Vectorized accounting for a batch of contiguous runs (element
        units).  Runs longer than the maximum request size are split into
        multiple calls.  Returns the number of I/O calls recorded."""
        rec = _prof.ACTIVE
        if rec is None:
            return self._record_runs(
                file_base_elem, offsets, lengths, is_write
            )
        rec.begin("io.record_runs")
        try:
            return self._record_runs(
                file_base_elem, offsets, lengths, is_write
            )
        finally:
            rec.end()

    def _record_runs(
        self,
        file_base_elem: int,
        offsets: np.ndarray,
        lengths: np.ndarray,
        is_write: bool,
    ) -> int:
        p = self.params
        offsets, lengths = plan_runs(p, offsets, lengths)
        if offsets.size == 0:
            return 0
        if self.faults is not None:
            return self._record_runs_faulty(
                file_base_elem, offsets, lengths, is_write
            )

        n_calls = int(offsets.size)
        n_elems = int(lengths.sum())
        nbytes = lengths * p.element_size
        if is_write:
            self.stats.write_calls += n_calls
            self.stats.elements_written += n_elems
        else:
            self.stats.read_calls += n_calls
            self.stats.elements_read += n_elems
        self.stats.io_time_s += n_calls * p.io_latency_s + float(
            nbytes.sum()
        ) / p.io_bandwidth_bps
        if self.metrics is not None:
            self._publish_calls(n_calls, n_elems, is_write)
            self.metrics.histogram("io.call_elements").observe_many(lengths)
        if self.trace is not None:
            self.trace.extend(
                (file_base_elem, int(o), int(l), is_write)
                for o, l in zip(offsets, lengths)
            )

        # distribute across stripes (vectorized over runs, looped over the
        # bounded stripe span of a single call)
        se = p.stripe_elements
        start = file_base_elem + offsets
        end = start + lengths
        first = start // se
        last = (end - 1) // se
        np.add.at(
            self.io_node_load, (first % p.n_io_nodes), p.io_latency_s
        )
        span = int((last - first).max()) + 1
        for k in range(span):
            stripe = first + k
            mask = stripe <= last
            if not mask.any():
                break
            s0 = np.maximum(start[mask], stripe[mask] * se)
            s1 = np.minimum(end[mask], (stripe[mask] + 1) * se)
            np.add.at(
                self.io_node_load,
                (stripe[mask] % p.n_io_nodes),
                (s1 - s0) * (p.element_size / p.io_bandwidth_bps),
            )
        return n_calls

    def _record_runs_faulty(
        self,
        file_base_elem: int,
        offsets: np.ndarray,
        lengths: np.ndarray,
        is_write: bool,
    ) -> int:
        """Per-call accounting through the fault injector.

        Every *attempt* (including failed ones and hedged duplicates) is
        a full accounted call — the transfer ran even when the call then
        failed — so call/element counters, the trace and the per-nest
        records stay mutually exact under faults.  Each attempt's serial
        seconds are charged to its servicing I/O node (a hedged
        duplicate's nominal service goes to the replica node).  A call
        that exhausts its retry budget is accounted, then raises
        :class:`~repro.faults.TransientIOError`.
        """
        p = self.params
        inj = self.faults
        se = p.stripe_elements
        s = self.stats
        total_calls = 0
        for off, ln in zip(offsets, lengths):
            off, ln = int(off), int(ln)
            nominal_s = p.call_time(ln * p.element_size)
            io_node = ((file_base_elem + off) // se) % p.n_io_nodes
            out = inj.serial_call(
                io_node, is_write, nominal_s,
                n_io_nodes=p.n_io_nodes, at_s=s.io_time_s,
            )
            calls = out.attempts + (1 if out.hedged else 0)
            total_calls += calls
            if is_write:
                s.write_calls += calls
                s.elements_written += ln * calls
            else:
                s.read_calls += calls
                s.elements_read += ln * calls
            s.io_time_s += out.io_time_s
            s.retries += out.retries
            s.failed_calls += out.failed_attempts
            s.retry_delay_s += out.retry_delay_s
            self.io_node_load[io_node] += out.io_time_s
            if out.hedged:
                s.hedged_calls += 1
                self.io_node_load[out.hedge_node] += nominal_s
            if self.metrics is not None:
                self._publish_calls(calls, ln * calls, is_write)
                h = self.metrics.histogram("io.call_elements")
                for _ in range(calls):
                    h.observe(ln)
                self._publish_faults(out)
            if self.trace is not None:
                self.trace.extend(
                    (file_base_elem, off, ln, is_write) for _ in range(calls)
                )
            if out.gave_up:
                inj.raise_exhausted(out, io_node)
        return total_calls

    def _publish_faults(self, out) -> None:
        m = self.metrics
        if out.failed_attempts:
            m.counter("faults.injected").inc(out.failed_attempts)
        if out.retries:
            m.counter("faults.retries").inc(out.retries)
        if out.hedged:
            m.counter("faults.hedged_calls").inc()
        if out.retry_delay_s > 0.0:
            m.histogram("faults.retry_delay_us").observe(
                out.retry_delay_s * 1e6
            )

    def record_compute(self, n_iterations: int, ops_per_iteration: int = 1) -> None:
        _prof.WORK.add_loop_iters("element", int(n_iterations))
        self.stats.compute_time_s += (
            n_iterations * ops_per_iteration * self.params.compute_per_element_s
        )

    def reset(self) -> None:
        self.stats = IOStats()
        self.io_node_load[:] = 0.0
        if self.trace is not None:
            self.trace.clear()
