"""Machine model constants (Paragon/PFS-like, late-1990s magnitudes).

The absolute values matter less than their *ratios*: the regime the paper
targets is per-call latency dominating transfer cost for small requests,
which is what makes reducing the number of I/O calls the leading
optimization.  All constants are parameters so benchmarks can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineParams:
    n_io_nodes: int = 64
    stripe_bytes: int = 64 * 1024        # PFS stripe unit (64 KB)
    io_latency_s: float = 0.015          # per-call software + seek overhead
    io_bandwidth_bps: float = 3.0e6      # per-I/O-node sustained bandwidth
    max_request_bytes: int = 4 * 1024 * 1024
    element_size: int = 8                # double precision
    #: per-statement-execution cost: a late-90s microprocessor (Paragon
    #: i860 class) spends ~1 µs per element on a few flops plus loop and
    #: address arithmetic — about 0.4x the per-element disk transfer
    #: time, which is what bounds the paper's improvement ratios
    compute_per_element_s: float = 1.0e-6
    memory_fraction: int = 128           # memory = data size / this
    #: data-sieving window: runs separated by gaps of at most this many
    #: bytes are transferred with one call that spans the gap (PASSION /
    #: ROMIO-style sieving; writes are read-modify-write at tile level,
    #: so they sieve the same way).  0 disables sieving.  The break-even
    #: gap is io_latency * bandwidth (≈45 KB with the defaults).
    sieve_gap_bytes: int = 0
    #: sieve buffer: a single sieved call spans at most this many bytes
    #: (ROMIO's bounded sieve buffer).  Prevents the degenerate
    #: "read the whole array and filter" the paper rules out.
    sieve_buffer_bytes: int = 64 * 1024
    #: interconnect: per-message software latency and shared-channel
    #: bandwidth (Paragon mesh magnitudes).  The interconnect is far
    #: faster than an I/O node, which is exactly what makes two-phase
    #: collective I/O pay: trading disk calls for messages is profitable
    #: whenever the layout is non-conforming.
    net_latency_s: float = 5.0e-5
    net_bandwidth_bps: float = 50.0e6

    def __post_init__(self):
        if self.n_io_nodes <= 0 or self.stripe_bytes <= 0:
            raise ValueError("I/O node count and stripe size must be positive")
        if self.max_request_bytes < self.element_size:
            raise ValueError("max request smaller than one element")
        if self.io_latency_s < 0 or self.io_bandwidth_bps <= 0:
            raise ValueError(
                "I/O latency must be non-negative and bandwidth positive"
            )
        # named interconnect checks: a NaN or infinite value silently
        # poisons every downstream makespan, so reject it up front
        if not math.isfinite(self.net_latency_s) or self.net_latency_s < 0:
            raise ValueError(
                f"net_latency_s must be finite and non-negative, "
                f"got {self.net_latency_s!r}"
            )
        if (
            not math.isfinite(self.net_bandwidth_bps)
            or self.net_bandwidth_bps <= 0
        ):
            raise ValueError(
                f"net_bandwidth_bps must be finite and positive, "
                f"got {self.net_bandwidth_bps!r}"
            )
        if self.sieve_gap_bytes < 0 or self.sieve_buffer_bytes < 0:
            raise ValueError("sieve gap/buffer sizes must be non-negative")

    @property
    def max_request_elements(self) -> int:
        return self.max_request_bytes // self.element_size

    @property
    def stripe_elements(self) -> int:
        return max(1, self.stripe_bytes // self.element_size)

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.io_bandwidth_bps

    def call_time(self, nbytes: int) -> float:
        return self.io_latency_s + self.transfer_time(nbytes)

    def net_time(self, nbytes: int) -> float:
        """Cost of one interconnect message (redistribution phase)."""
        return self.net_latency_s + nbytes / self.net_bandwidth_bps


#: Tiny machine used by unit tests and the Figure-3 reproduction: memory of
#: 32 elements, at most 8 elements per I/O call, 4 I/O nodes.
FIGURE3_PARAMS = MachineParams(
    n_io_nodes=4,
    stripe_bytes=8 * 8,
    io_latency_s=1.0,
    io_bandwidth_bps=8.0,
    max_request_bytes=8 * 8,
    memory_fraction=2,
)
