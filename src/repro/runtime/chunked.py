"""Chunking + interleaving — the paper's hand-optimized ``h-opt`` storage.

Two mechanisms, both aimed purely at reducing I/O *calls*:

- **chunking**: each array is stored as contiguous data-tile-sized blocks
  (a :class:`~repro.layout.BlockedLayout`), so one aligned tile is one
  contiguous run;
- **interleaving**: the blocks of several arrays that a nest accesses
  *together* are placed round-robin in a single file, so the co-accessed
  tiles of all arrays form one contiguous super-run and can be fetched
  with a single call (up to the maximum request size).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .file import OOCFile
from .ooc_array import Region, runs_of, _region_indices
from .pfs import ParallelFileSystem
from .stats import IOContext


class InterleavedChunkedStore:
    """Several same-shape arrays chunk-interleaved in one file.

    Block ``b`` of array slot ``s`` (0-based among the interleaved group)
    lives at file offset ``(b * n_arrays + s) * block_slots``.
    """

    def __init__(
        self,
        names: Sequence[str],
        shape: Sequence[int],
        block: Sequence[int],
        pfs: ParallelFileSystem,
        *,
        real: bool | None = None,
        backend=None,
        dtype=None,
        file_name: str | None = None,
        origin: Sequence[int] | None = None,
    ):
        if not names:
            raise ValueError("need at least one array")
        self.names = tuple(names)
        self.shape = tuple(int(s) for s in shape)
        self.block = tuple(int(b) for b in block)
        if len(self.block) != len(self.shape):
            raise ValueError("block rank must match shape rank")
        if any(b <= 0 for b in self.block):
            raise ValueError(f"invalid block {self.block}")
        # chunk grid anchored at `origin` (the first tile's corner — loop
        # lower bounds are often 1 in these Fortran-derived codes, and a
        # misaligned grid would split every tile across chunks)
        origin = tuple(int(o) for o in (origin or (0,) * len(self.shape)))
        if len(origin) != len(self.shape):
            raise ValueError("origin rank must match shape rank")
        self._pad = tuple(
            (b - (o % b)) % b for o, b in zip(origin, self.block)
        )
        self._grid = tuple(
            -(-(s + p) // b)
            for s, p, b in zip(self.shape, self._pad, self.block)
        )
        self._block_slots = int(np.prod(self.block))
        self._n_arrays = len(self.names)
        m = len(self.shape)
        self._grid_strides = np.ones(m, dtype=np.int64)
        self._in_strides = np.ones(m, dtype=np.int64)
        for r in range(m - 2, -1, -1):
            self._grid_strides[r] = self._grid_strides[r + 1] * self._grid[r + 1]
            self._in_strides[r] = self._in_strides[r + 1] * self.block[r + 1]
        total = int(np.prod(self._grid)) * self._block_slots * self._n_arrays
        self.file = OOCFile(
            file_name or "+".join(self.names), total, pfs, real=real,
            backend=backend, dtype=dtype,
            chunk_elements=self._block_slots,
        )
        self._block_np = np.asarray(self.block, dtype=np.int64)
        self._pad_np = np.asarray(self._pad, dtype=np.int64)

    def slot_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"{name} is not stored here") from None

    def addresses(self, name: str, region: Region) -> np.ndarray:
        slot = self.slot_of(name)
        idx = _region_indices(region) + self._pad_np
        b = idx // self._block_np
        w = idx - b * self._block_np
        block_linear = b @ self._grid_strides
        return (
            (block_linear * self._n_arrays + slot) * self._block_slots
            + w @ self._in_strides
        )

    def chunk_ids(self, name: str, region: Region) -> np.ndarray:
        """Linear ids of the chunks covering a region (whole-chunk I/O:
        a chunk is the transfer unit, as in PASSION's chunked files)."""
        slot = self.slot_of(name)
        lo = np.array([l for l, _ in region], dtype=np.int64) + self._pad_np
        hi = np.array([h for _, h in region], dtype=np.int64) + self._pad_np
        b_lo = lo // self._block_np
        b_hi = hi // self._block_np
        ranges = [np.arange(a, b + 1) for a, b in zip(b_lo, b_hi)]
        grid = np.stack(
            np.meshgrid(*ranges, indexing="ij"), axis=-1
        ).reshape(-1, len(self.shape))
        return (grid @ self._grid_strides) * self._n_arrays + slot

    # -- combined transfers ---------------------------------------------------

    def _account_chunks(
        self, requests: Sequence[tuple[str, Region]], ctx: IOContext, is_write: bool
    ) -> None:
        """Whole-chunk transfer accounting: one call per maximal run of
        file-adjacent chunks across the combined request — this is where
        interleaving pays off (co-accessed tiles of different arrays sit
        in adjacent chunks and merge into a single call)."""
        if not requests:
            return
        ids = np.unique(
            np.concatenate(
                [self.chunk_ids(name, region) for name, region in requests]
            )
        )
        offsets, lengths = runs_of(ids)
        self.file.account_runs(
            ctx,
            offsets * self._block_slots,
            lengths * self._block_slots,
            is_write,
        )

    def read_tiles(
        self, requests: Sequence[tuple[str, Region]], ctx: IOContext
    ) -> dict[str, np.ndarray | None]:
        """Fetch tiles of several arrays in one combined operation, at
        whole-chunk granularity."""
        self._account_chunks([(n, r) for n, r in requests], ctx, is_write=False)
        out: dict[str, np.ndarray | None] = {}
        for name, region in requests:
            if self.file.real:
                sizes = [hi - lo + 1 for lo, hi in region]
                out[name] = self.file.gather(
                    self.addresses(name, region)
                ).reshape(sizes)
            else:
                out[name] = None
        return out

    def write_tiles(
        self,
        requests: Sequence[tuple[str, Region, np.ndarray | None]],
        ctx: IOContext,
    ) -> None:
        self._account_chunks(
            [(n, r) for n, r, _ in requests], ctx, is_write=True
        )
        for name, region, data in requests:
            if self.file.real:
                if data is None:
                    raise ValueError("real-mode write requires data")
                self.file.scatter(
                    self.addresses(name, region),
                    np.asarray(data, dtype=self.file.dtype).ravel(),
                )

    # -- verification helpers ---------------------------------------------------

    def to_ndarray(self, name: str) -> np.ndarray:
        region = tuple((0, s - 1) for s in self.shape)
        return self.file.gather(self.addresses(name, region)).reshape(self.shape)

    def load_ndarray(self, name: str, values: np.ndarray) -> None:
        if tuple(values.shape) != self.shape:
            raise ValueError(f"shape mismatch {values.shape} vs {self.shape}")
        region = tuple((0, s - 1) for s in self.shape)
        self.file.scatter(
            self.addresses(name, region), values.astype(self.file.dtype).ravel()
        )
