"""Per-node memory budget.

Out-of-core execution exists because data exceeds memory; the engine
sizes its data tiles so that every array's tile fits the budget at once
(the paper allocates memory evenly across the arrays of a nest).  The
manager enforces the budget at runtime and records the peak, so tests
can assert that no plan silently cheats by "reading the whole array".
"""

from __future__ import annotations


class MemoryBudgetExceeded(RuntimeError):
    pass


class MemoryManager:
    def __init__(self, budget_elements: int):
        if budget_elements <= 0:
            raise ValueError("memory budget must be positive")
        self.budget = int(budget_elements)
        self.in_use = 0
        self.peak = 0

    def allocate(self, n_elements: int) -> None:
        n_elements = int(n_elements)
        if n_elements < 0:
            raise ValueError("cannot allocate a negative amount")
        if self.in_use + n_elements > self.budget:
            raise MemoryBudgetExceeded(
                f"allocation of {n_elements} exceeds budget "
                f"({self.in_use}/{self.budget} in use)"
            )
        self.in_use += n_elements
        self.peak = max(self.peak, self.in_use)

    def free(self, n_elements: int) -> None:
        n_elements = int(n_elements)
        if n_elements < 0:
            raise ValueError("cannot free a negative amount")
        if n_elements > self.in_use:
            raise ValueError("freeing more than allocated")
        self.in_use -= n_elements

    def reset(self) -> None:
        self.in_use = 0
        self.peak = 0
