"""A linear out-of-core file of float64 elements.

In *real* mode the file carries an actual numpy buffer so programs can be
executed and verified; in *simulate* mode only the cost accounting runs
(the buffer is absent), which is what the table-scale benchmarks use.
"""

from __future__ import annotations

import numpy as np

from .pfs import ParallelFileSystem
from .stats import IOContext


class OOCFile:
    def __init__(
        self,
        name: str,
        n_elements: int,
        pfs: ParallelFileSystem,
        *,
        real: bool = True,
    ):
        self.name = name
        self.n_elements = int(n_elements)
        self.base_elem = pfs.allocate(name, self.n_elements)
        self.buffer: np.ndarray | None = (
            np.zeros(self.n_elements, dtype=np.float64) if real else None
        )

    @property
    def real(self) -> bool:
        return self.buffer is not None

    # -- data paths (cost accounting is separate, see OutOfCoreArray) -----

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        if self.buffer is None:
            raise RuntimeError(f"file {self.name} is simulate-only")
        return self.buffer[addresses]

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        if self.buffer is None:
            raise RuntimeError(f"file {self.name} is simulate-only")
        self.buffer[addresses] = values

    # -- accounting ---------------------------------------------------------

    def account_runs(
        self,
        ctx: IOContext,
        offsets: np.ndarray,
        lengths: np.ndarray,
        is_write: bool,
    ) -> int:
        return ctx.record_runs(self.base_elem, offsets, lengths, is_write)
