"""A linear out-of-core file of scalar elements behind a storage backend.

Where the data lives is the backend's business (:mod:`repro.backends`):
the in-memory default carries a numpy buffer so programs can be executed
and verified; the simulate-only backend runs cost accounting without any
data (what the table-scale benchmarks use); the mmap/chunked/object
backends move real (or realistically priced) bytes and record measured
metrics.  ``real=True/False`` remain as aliases for the two defaults —
code written against the pre-backend API behaves bit-identically.
"""

from __future__ import annotations

import numpy as np

from ..backends import StorageBackend, resolve_backend
from .pfs import ParallelFileSystem
from .stats import IOContext


class OOCFile:
    def __init__(
        self,
        name: str,
        n_elements: int,
        pfs: ParallelFileSystem,
        *,
        real: bool | None = None,
        backend: StorageBackend | str | None = None,
        dtype=None,
        chunk_elements: int | None = None,
    ):
        self.name = name
        self.n_elements = int(n_elements)
        self.base_elem = pfs.allocate(name, self.n_elements)
        self.backend = resolve_backend(backend, real)
        self._bfile = self.backend.open(
            name, self.n_elements, dtype=dtype, chunk_elements=chunk_elements
        )
        self.dtype = self._bfile.dtype

    @property
    def real(self) -> bool:
        return self.backend.real

    # -- data paths (cost accounting is separate, see OutOfCoreArray) -----

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        return self._bfile.gather(addresses)

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        self._bfile.scatter(addresses, values)

    # -- accounting ---------------------------------------------------------

    def account_runs(
        self,
        ctx: IOContext,
        offsets: np.ndarray,
        lengths: np.ndarray,
        is_write: bool,
    ) -> int:
        return ctx.record_runs(self.base_elem, offsets, lengths, is_write)
