"""The simulated parallel file system: file placement and striping.

Files are laid out back to back in a global element space; stripe ``s``
of the space is serviced by I/O node ``s mod n_io_nodes`` (round-robin,
as on the Paragon's PFS).  The PFS hands each file a base offset so that
different arrays start on different I/O nodes, spreading load.
"""

from __future__ import annotations

from .params import MachineParams


class ParallelFileSystem:
    def __init__(self, params: MachineParams):
        self.params = params
        self._next_base_elem = 0
        self.files: dict[str, int] = {}

    def allocate(self, name: str, n_elements: int) -> int:
        """Reserve space for a file; returns its base element offset."""
        if name in self.files:
            raise ValueError(f"file {name} already allocated")
        base = self._next_base_elem
        self.files[name] = base
        # round up to a stripe boundary so every file starts clean
        se = self.params.stripe_elements
        self._next_base_elem = base + ((n_elements + se - 1) // se) * se
        return base

    def advance(self, n_elements: int) -> None:
        """Skip ahead in the global element space (stripe-aligned) — used
        by the SPMD simulator to stagger different nodes' file partitions
        across the I/O nodes, as contiguous per-node ranges would be."""
        se = self.params.stripe_elements
        self._next_base_elem += ((int(n_elements) + se - 1) // se) * se

    def io_node_of(self, global_elem: int) -> int:
        return (global_elem // self.params.stripe_elements) % self.params.n_io_nodes
