"""Layout-aware out-of-core arrays: tile transfers as contiguous-run I/O.

Reading a rectangular *data tile* from a file whose layout is ``D`` means
fetching every element of the region from its file slot.  The runtime
pays one I/O call per **maximal contiguous run** of file addresses (split
further by the maximum request size) — exactly the accounting behind the
paper's Figure 3: a 4x4 tile of a column-major array costs 4 calls, a
4x16 tile of the same array costs 4 (columns) if read along the wrong
axis but only 2 calls of 8 elements under the paper's machine limits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layout import Layout
from .file import OOCFile
from .pfs import ParallelFileSystem
from .stats import IOContext

#: A rectangular index region: inclusive ``(lo, hi)`` per dimension.
Region = tuple[tuple[int, int], ...]


def region_size(region: Region) -> int:
    n = 1
    for lo, hi in region:
        if hi < lo:
            return 0
        n *= hi - lo + 1
    return n


def _region_indices(region: Region) -> np.ndarray:
    sizes = [hi - lo + 1 for lo, hi in region]
    grid = np.indices(sizes).reshape(len(sizes), -1).T
    return grid + np.array([lo for lo, _ in region], dtype=np.int64)


def layout_chunk_elements(layout: Layout) -> int | None:
    """The chunk-size hint a layout gives chunk-granular backends: the
    tile footprint (block slots) of a blocked layout, nothing for
    linear layouts (they have no natural chunk shape)."""
    from ..layout.layouts import BlockedLayout

    if isinstance(layout, BlockedLayout):
        return int(np.prod(layout.block))
    return None


def runs_of(addresses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decompose a set of file addresses into maximal contiguous runs;
    returns ``(offsets, lengths)`` sorted by offset."""
    if addresses.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    a = np.sort(addresses, kind="stable")
    breaks = np.flatnonzero(np.diff(a) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [a.size - 1]))
    return a[starts], (ends - starts + 1).astype(np.int64)


class OutOfCoreArray:
    """One disk-resident array with an explicit file layout."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        layout: Layout,
        file: OOCFile,
        *,
        slot_base: int = 0,
    ):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.layout = layout
        self.map = layout.address_map(self.shape)
        self.file = file
        self.slot_base = int(slot_base)
        needed = self.slot_base + self.map.total_slots
        if needed > file.n_elements:
            raise ValueError(
                f"file {file.name} has {file.n_elements} slots; "
                f"array {name} needs {needed}"
            )

    @classmethod
    def create(
        cls,
        name: str,
        shape: Sequence[int],
        layout: Layout,
        pfs: ParallelFileSystem,
        *,
        real: bool | None = None,
        backend=None,
        dtype=None,
    ) -> "OutOfCoreArray":
        am = layout.address_map(shape)
        file = OOCFile(
            name, am.total_slots, pfs, real=real, backend=backend,
            dtype=dtype, chunk_elements=layout_chunk_elements(layout),
        )
        return cls(name, shape, layout, file)

    # -- whole-region addressing -------------------------------------------

    def _check_region(self, region: Region) -> None:
        if len(region) != len(self.shape):
            raise ValueError(
                f"region rank {len(region)} != array rank {len(self.shape)}"
            )
        for (lo, hi), extent in zip(region, self.shape):
            if lo < 0 or hi >= extent:
                raise ValueError(
                    f"region {region} escapes array {self.name}{self.shape}"
                )

    def addresses(self, region: Region) -> np.ndarray:
        self._check_region(region)
        return self.map.address(_region_indices(region)) + self.slot_base

    def count_tile_io(self, region: Region, ctx: IOContext, is_write: bool) -> int:
        """Account the I/O for transferring the region; returns call count."""
        offsets, lengths = runs_of(self.addresses(region))
        return self.file.account_runs(ctx, offsets, lengths, is_write)

    # -- data movement --------------------------------------------------------

    def read_tile(self, region: Region, ctx: IOContext) -> np.ndarray | None:
        """Fetch a tile.  Returns the tile data in real mode, else None."""
        addrs = self.addresses(region)
        offsets, lengths = runs_of(addrs)
        self.file.account_runs(ctx, offsets, lengths, is_write=False)
        if not self.file.real:
            return None
        sizes = [hi - lo + 1 for lo, hi in region]
        return self.file.gather(addrs).reshape(sizes)

    def read_tile_partial(
        self, region: Region, skip_mask: np.ndarray, ctx: IOContext
    ) -> np.ndarray | None:
        """Fetch only the elements of ``region`` where ``skip_mask`` is
        False; the caller supplies the rest (e.g. from a tile cache).
        Skipped positions are left zero in the returned tile.  Only the
        transferred runs are accounted — note that punching holes in a
        contiguous run can *increase* the call count, so callers should
        price the remainder against the full read first."""
        addrs = self.addresses(region)
        flat_skip = np.asarray(skip_mask, dtype=bool).ravel()
        if flat_skip.size != addrs.size:
            raise ValueError("skip mask does not match region")
        need = addrs[~flat_skip]
        offsets, lengths = runs_of(need)
        self.file.account_runs(ctx, offsets, lengths, is_write=False)
        if not self.file.real:
            return None
        sizes = [hi - lo + 1 for lo, hi in region]
        out = np.zeros(flat_skip.size, dtype=self.file.dtype)
        if need.size:
            out[~flat_skip] = self.file.gather(need)
        return out.reshape(sizes)

    def write_tile(
        self, region: Region, data: np.ndarray | None, ctx: IOContext
    ) -> None:
        addrs = self.addresses(region)
        offsets, lengths = runs_of(addrs)
        self.file.account_runs(ctx, offsets, lengths, is_write=True)
        if self.file.real:
            if data is None:
                raise ValueError("real-mode write requires data")
            self.file.scatter(
                addrs, np.asarray(data, dtype=self.file.dtype).ravel()
            )

    # -- element access (verification only; no I/O accounting) -----------------

    def to_ndarray(self) -> np.ndarray:
        """Materialize the whole array (tests/verification)."""
        region = tuple((0, s - 1) for s in self.shape)
        addrs = self.addresses(region)
        return self.file.gather(addrs).reshape(self.shape)

    def load_ndarray(self, values: np.ndarray) -> None:
        """Initialize file contents from an in-core array (no accounting)."""
        if tuple(values.shape) != self.shape:
            raise ValueError(f"shape mismatch {values.shape} vs {self.shape}")
        region = tuple((0, s - 1) for s in self.shape)
        addrs = self.addresses(region)
        self.file.scatter(addrs, values.astype(self.file.dtype).ravel())
