"""PASSION-style out-of-core runtime on a simulated parallel file system.

The paper ran on the Intel Paragon's PFS (64 I/O nodes, 64 KB stripe
units) through the PASSION runtime.  This package provides the same
services against a deterministic simulation:

- :class:`MachineParams` — the cost-model constants (documented in
  DESIGN.md §5),
- :class:`IOStats` / :class:`IOContext` — per-compute-node accounting of
  I/O calls, volume, serial time and per-I/O-node load,
- :class:`OOCFile` — a striped linear file of float64 elements,
- :class:`OutOfCoreArray` — layout-aware tile reads/writes, each
  decomposed into the *contiguous file runs* it touches; every run is an
  I/O call (split further by the maximum request size),
- :class:`InterleavedChunkedStore` — the chunking + interleaving used by
  the paper's hand-optimized ``h-opt`` versions,
- :class:`MemoryManager` — the per-node memory budget (the paper's
  "1/128th of the out-of-core data").
"""

from .params import MachineParams
from .stats import IOStats, IOContext
from .pfs import ParallelFileSystem
from .file import OOCFile
from .ooc_array import (
    OutOfCoreArray,
    Region,
    layout_chunk_elements,
    region_size,
)
from .chunked import InterleavedChunkedStore
from .memory import MemoryManager, MemoryBudgetExceeded

__all__ = [
    "layout_chunk_elements",
    "MachineParams",
    "IOStats",
    "IOContext",
    "ParallelFileSystem",
    "OOCFile",
    "OutOfCoreArray",
    "Region",
    "region_size",
    "InterleavedChunkedStore",
    "MemoryManager",
    "MemoryBudgetExceeded",
]
