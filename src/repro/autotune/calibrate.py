"""Recalibrating :class:`~repro.runtime.MachineParams` from measurement.

The simulator prices every I/O call as ``latency + bytes/bandwidth``
(and every redistribution message as ``net_latency + bytes/net_bw``),
so a run's per-nest ``(calls, bytes, seconds)`` triples lie exactly on
a plane through the origin.  Fitting ``(latency, 1/bandwidth)`` is
therefore a two-parameter linear least-squares problem with a closed
form — the 2x2 normal equations — and on simulated runs the fit
recovers the generating parameters to machine precision.  On measured
backends (:mod:`repro.backends`) the same fit yields the best
homogeneous-linear explanation of the observed wall seconds.

Degenerate sample sets fail with a named :class:`CalibrationError`
(too few samples, collinear samples that leave the normal matrix
singular, non-finite inputs, a fit implying non-positive bandwidth)
instead of propagating ``numpy`` warnings or nonsense parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..runtime import MachineParams
from .space import AutotuneError


class CalibrationError(AutotuneError):
    """A least-squares fit cannot be performed or is physically
    meaningless (named reason in the message)."""


@dataclass(frozen=True)
class CalibrationSample:
    """One observation: ``seconds`` spent issuing ``calls`` requests
    moving ``nbytes`` bytes (``source`` names where it came from)."""

    calls: float
    nbytes: float
    seconds: float
    source: str = ""


@dataclass(frozen=True)
class ParamFit:
    """Provenance of one fitted parameter pair."""

    latency_s: float
    bandwidth_bps: float
    n_samples: int
    #: root-mean-square residual of the fit in seconds
    residual_s: float

    def to_dict(self) -> dict:
        return {
            "latency_s": self.latency_s,
            "bandwidth_bps": self.bandwidth_bps,
            "n_samples": self.n_samples,
            "residual_s": self.residual_s,
        }


@dataclass(frozen=True)
class CalibrationResult:
    """The refitted parameters plus per-channel provenance."""

    params: MachineParams
    io: ParamFit
    net: ParamFit | None = None

    def to_dict(self) -> dict:
        out = {"io": self.io.to_dict()}
        if self.net is not None:
            out["net"] = self.net.to_dict()
        return out


def fit_linear(
    samples: Sequence[CalibrationSample], *, channel: str = "io",
    min_samples: int = 2,
) -> ParamFit:
    """Closed-form least squares for ``t = latency*calls + beta*bytes``.

    Solves the 2x2 normal equations directly; deterministic, no
    iteration, no regularization.  Raises :class:`CalibrationError`
    for under-determined or degenerate sample sets.
    """
    if len(samples) < min_samples:
        raise CalibrationError(
            f"{channel}: need >= {min_samples} samples to fit "
            f"(latency, bandwidth), got {len(samples)}"
        )
    for s in samples:
        if not all(map(math.isfinite, (s.calls, s.nbytes, s.seconds))):
            raise CalibrationError(
                f"{channel}: non-finite sample {s!r}"
            )
        if s.calls < 0 or s.nbytes < 0 or s.seconds < 0:
            raise CalibrationError(
                f"{channel}: negative sample {s!r}"
            )
    scc = sum(s.calls * s.calls for s in samples)
    scb = sum(s.calls * s.nbytes for s in samples)
    sbb = sum(s.nbytes * s.nbytes for s in samples)
    sct = sum(s.calls * s.seconds for s in samples)
    sbt = sum(s.nbytes * s.seconds for s in samples)
    det = scc * sbb - scb * scb
    scale = max(scc * sbb, 1.0)
    if abs(det) <= 1e-12 * scale:
        raise CalibrationError(
            f"{channel}: samples are collinear (normal matrix "
            f"determinant {det:.3e}); vary calls and bytes "
            "independently — e.g. observe nests with different "
            "request sizes"
        )
    latency = (sct * sbb - sbt * scb) / det
    beta = (scc * sbt - scb * sct) / det
    if beta <= 0.0:
        raise CalibrationError(
            f"{channel}: fit implies non-positive transfer time per "
            f"byte ({beta:.3e} s/B) — samples do not look like "
            "latency + bytes/bandwidth behavior"
        )
    latency = max(0.0, latency)
    sq = 0.0
    for s in samples:
        r = s.seconds - (latency * s.calls + beta * s.nbytes)
        sq += r * r
    return ParamFit(
        latency_s=latency,
        bandwidth_bps=1.0 / beta,
        n_samples=len(samples),
        residual_s=math.sqrt(sq / len(samples)),
    )


def _nest_samples(results: Iterable, element_size: int) -> tuple[
    list[CalibrationSample], list[CalibrationSample]
]:
    io: list[CalibrationSample] = []
    net: list[CalibrationSample] = []
    for i, r in enumerate(results):
        for nr in r.nest_runs:
            st = nr.stats
            if st.calls > 0 or st.io_time_s > 0:
                io.append(CalibrationSample(
                    calls=float(st.calls),
                    nbytes=float(
                        (st.elements_read + st.elements_written)
                        * element_size
                    ),
                    seconds=st.io_time_s,
                    source=f"rank{i}:{nr.nest_name}",
                ))
            if st.redist_messages > 0 or st.redist_time_s > 0:
                net.append(CalibrationSample(
                    calls=float(st.redist_messages),
                    nbytes=float(st.redist_elements * element_size),
                    seconds=st.redist_time_s,
                    source=f"rank{i}:{nr.nest_name}",
                ))
    return io, net


def samples_from_run(
    run, *, element_size: int = 8
) -> tuple[list[CalibrationSample], list[CalibrationSample]]:
    """Extract per-(rank, nest) I/O and interconnect samples from a
    :class:`~repro.parallel.ParallelRun` or a single
    :class:`~repro.engine.executor.RunResult`."""
    results = getattr(run, "node_results", None)
    if results is None:
        results = [run]
    return _nest_samples(results, element_size)


def calibrate(
    run_or_samples,
    *,
    believed: MachineParams | None = None,
    min_samples: int = 2,
) -> CalibrationResult:
    """Refit I/O (and, when redistribution samples exist, interconnect)
    parameters from a run, returning new :class:`MachineParams`.

    Only the fitted fields change — everything else (stripe size,
    request cap, memory fraction, …) carries over from ``believed``.
    """
    believed = believed or MachineParams()
    if isinstance(run_or_samples, tuple):
        io_samples, net_samples = run_or_samples
    else:
        io_samples, net_samples = samples_from_run(
            run_or_samples, element_size=believed.element_size
        )
    io_fit = fit_linear(io_samples, channel="io", min_samples=min_samples)
    fields = {
        "io_latency_s": io_fit.latency_s,
        "io_bandwidth_bps": io_fit.bandwidth_bps,
    }
    net_fit = None
    if len(net_samples) >= min_samples:
        net_fit = fit_linear(
            net_samples, channel="net", min_samples=min_samples
        )
        fields["net_latency_s"] = net_fit.latency_s
        fields["net_bandwidth_bps"] = net_fit.bandwidth_bps
    return CalibrationResult(
        params=replace(believed, **fields), io=io_fit, net=net_fit
    )


__all__ = [
    "CalibrationError",
    "CalibrationResult",
    "CalibrationSample",
    "ParamFit",
    "calibrate",
    "fit_linear",
    "samples_from_run",
]
