"""repro.autotune — joint co-optimization + drift-driven recalibration.

Three pieces, composable or closed-loop:

- :mod:`repro.autotune.search` — ``solve_joint`` extends the PR-2
  layout ILP into a joint search over per-array layouts x per-nest tile
  sizes x collective aggregator count x tile-cache budget, all priced
  by the shared cost model.  Returns a typed :class:`TuneDecision` with
  per-knob provenance (what was chosen, against which candidates, and
  the predicted-cost delta of reverting it).
- :mod:`repro.autotune.calibrate` — refits
  :class:`~repro.runtime.MachineParams` latency/bandwidth (I/O and
  interconnect) from measured runs by deterministic closed-form least
  squares; degenerate sample sets raise a named
  :class:`CalibrationError`.
- :mod:`repro.autotune.loop` — :class:`Autotuner` watches the PR-4
  drift gauges (``cost_model.call_error``, ``backend.io_ratio``) plus
  predicted-vs-measured cost drift; past threshold it recalibrates and
  re-solves, emitting ``autotune.*`` telemetry and an "autotuning"
  report section.

Everything is opt-in: no executor or parallel-run path constructs any
of these objects, and runs without a tuner are bit-identical to the
pre-autotune tree.
"""

from .calibrate import (
    CalibrationError,
    CalibrationResult,
    CalibrationSample,
    ParamFit,
    calibrate,
    fit_linear,
    samples_from_run,
)
from .loop import AutotuneConfig, AutotuneConfigError, Autotuner
from .model import ConfigCost, NestConfigCost, config_cost
from .search import KnobChoice, TuneDecision, solve_joint
from .space import AutotuneError, TuneSpace, TuneSpaceError

__all__ = [
    "AutotuneConfig",
    "AutotuneConfigError",
    "AutotuneError",
    "Autotuner",
    "CalibrationError",
    "CalibrationResult",
    "CalibrationSample",
    "ConfigCost",
    "KnobChoice",
    "NestConfigCost",
    "ParamFit",
    "TuneDecision",
    "TuneSpace",
    "TuneSpaceError",
    "calibrate",
    "config_cost",
    "fit_linear",
    "samples_from_run",
    "solve_joint",
]
