"""Joint knob search: layouts × loop orders × tiles × cache × cb_nodes.

Stage A solves the layout/loop slice with the exact machinery of
:mod:`repro.optimizer.ilp` (MILP when scipy's HiGHS is available,
exhaustive enumeration as the recorded fallback, or the deterministic
coordinate-descent solver on request).  Stage B prices the remaining
machine knobs — per-nest block sizes, the tile-cache share of the
memory budget, and the collective aggregator count — on the
configuration model of :mod:`repro.autotune.model`, by deterministic
grid sweep: the per-nest block choice is separable once the cache
share is fixed, so the sweep is ``|cache| x |cb_nodes|`` outer by
``|blocks|`` inner.

The result is a typed :class:`TuneDecision`: every knob carries its
chosen value, the candidates it beat, and the predicted-cost delta of
reverting it to the default — so a report reader can see *why* each
setting was picked, and a benchmark can assert *which* solver ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..cache import CacheConfig
from ..collective.planner import CollectiveConfig
from ..ir.program import Program
from ..layout import Layout
from ..optimizer.global_opt import GlobalDecision, ReportEvent
from ..optimizer.ilp import SOLVERS, optimize_program_ilp
from ..optimizer.strategies import VersionConfig
from ..runtime import MachineParams
from ..transforms.tiling import ooc_tiling
from .model import ConfigCost, config_cost, plan_for
from .space import TuneSpace, TuneSpaceError


@dataclass(frozen=True)
class KnobChoice:
    """One knob's provenance: what was chosen, from which candidates,
    and what reverting it to the default would cost."""

    knob: str
    chosen: object
    candidates: tuple
    #: modeled seconds of the full chosen configuration
    predicted_s: float
    #: modeled seconds *added* by reverting this knob to its default
    #: (>= 0 means the chosen setting helps under the model)
    delta_s: float

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "chosen": self.chosen,
            "candidates": list(self.candidates),
            "predicted_s": self.predicted_s,
            "delta_s": self.delta_s,
        }


@dataclass
class TuneDecision:
    """A complete machine configuration plus its provenance."""

    decision: GlobalDecision
    #: which stage-A solver actually ran: "milp" | "exhaustive" |
    #: "descent" (a failed MILP records the fallback here)
    solver: str
    #: stage-A objective (the paper's call model, relative units)
    objective: float
    tile_sizes: dict[str, int]
    cache_budget: int
    cache_policy: str
    cb_nodes: int | None
    n_nodes: int
    memory_budget: int
    #: modeled seconds of the chosen configuration
    predicted: ConfigCost
    knobs: list[KnobChoice] = field(default_factory=list)
    report: list[ReportEvent] = field(default_factory=list)

    @property
    def predicted_cost_s(self) -> float:
        return self.predicted.total_s

    @property
    def program(self) -> Program:
        return self.decision.program

    def layout_objects(self) -> dict[str, Layout]:
        return self.decision.layout_objects()

    def version_config(self, name: str = "autotune") -> VersionConfig:
        return VersionConfig(
            name, self.program, self.layout_objects(), ooc_tiling
        )

    def cache_config(self) -> CacheConfig | None:
        if self.cache_budget <= 0:
            return None
        return CacheConfig(
            policy=self.cache_policy, budget_elements=self.cache_budget
        )

    def collective_config(self) -> CollectiveConfig | None:
        if self.cb_nodes is None:
            return None
        return CollectiveConfig(mode="auto", cb_nodes=self.cb_nodes)

    def run_kwargs(self) -> dict:
        """Keyword arguments realizing this decision under
        :func:`repro.parallel.run_version_parallel`."""
        return {
            "cache": self.cache_config(),
            "tile_sizes": dict(self.tile_sizes) or None,
            "collective": self.collective_config(),
        }

    @property
    def report_lines(self) -> list[str]:
        return [str(e) for e in self.report]

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "objective": self.objective,
            "predicted_cost_s": self.predicted_cost_s,
            "tile_sizes": dict(self.tile_sizes),
            "cache_budget": self.cache_budget,
            "cache_policy": self.cache_policy,
            "cb_nodes": self.cb_nodes,
            "n_nodes": self.n_nodes,
            "memory_budget": self.memory_budget,
            "knobs": [k.to_dict() for k in self.knobs],
        }


def _default_budget(
    program: Program, binding: Mapping[str, int], params: MachineParams
) -> int:
    total = sum(
        int(np.prod(a.shape(binding))) for a in program.arrays
    )
    return max(64, total // params.memory_fraction)


def _row_directions(program: Program) -> dict[str, tuple[int, ...]]:
    """The untuned default: row-major fast directions for every array."""
    return {
        a.name: (0,) * (a.rank - 1) + (1,)
        for a in program.arrays
        if a.rank >= 2
    }


def solve_joint(
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    params: MachineParams | None = None,
    n_nodes: int = 1,
    memory_budget: int | None = None,
    space: TuneSpace | None = None,
    solver: str = "auto",
) -> TuneDecision:
    """Jointly choose layouts, loop orders, tile sizes, the cache
    budget and the collective aggregator count.

    ``solver`` is the stage-A request: ``"auto"`` (MILP with recorded
    exhaustive fallback) or an explicit member of
    :data:`repro.optimizer.ilp.SOLVERS`.
    """
    if solver != "auto" and solver not in SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; known: ('auto',) + {SOLVERS}"
        )
    params = params or MachineParams()
    space = space or TuneSpace.default_for(n_nodes)
    space.validate_ranks(n_nodes)

    # -- stage A: layouts x loop orders on the paper's call model ------
    requested = "milp" if solver == "auto" else solver
    gd = optimize_program_ilp(program, binding=binding, solver=requested)
    used, objective = requested, 0.0
    for ev in gd.report:
        if ev.kind == "solver" and "used" in ev.data:
            used = ev.data["used"]
            objective = ev.data.get("objective", objective)
    prog = gd.program
    b = prog.binding(binding)
    shapes = {a.name: a.shape(b) for a in prog.arrays}
    budget = memory_budget or _default_budget(prog, b, params)
    directions = dict(gd.directions)

    # -- stage B: tiles x cache x cb_nodes on the machine model --------
    def cache_candidates() -> list[int]:
        if space.cache_budget_elements is not None:
            if space.cache_budget_elements >= budget:
                raise TuneSpaceError(
                    f"no feasible cache budgets below the memory budget: "
                    f"cache_budget_elements {space.cache_budget_elements} "
                    f">= memory budget {budget}"
                )
            cands = [0, space.cache_budget_elements]
        else:
            cands = sorted({
                int(f * budget) for f in space.cache_fractions
            })
        return [c for c in cands if c < budget]

    def evaluate(cache_budget: int, cb: int | None) -> tuple[
        float, dict[str, int], ConfigCost
    ]:
        plan_budget = max(1, budget - cache_budget)
        tiles: dict[str, int] = {}
        for nest in prog.nests:
            base = plan_for(nest, b, shapes, plan_budget)
            cands = space.tile_candidates(nest.name, max(1, base.tile_size))
            best_b, best_c = None, None
            for blk in cands:
                cost = config_cost(
                    prog, binding=b, shapes=shapes, params=params,
                    directions=directions, n_nodes=n_nodes,
                    memory_budget=budget, cache_budget=cache_budget,
                    tile_sizes={**tiles, nest.name: blk}, cb_nodes=cb,
                )
                c = cost.total_s
                if best_c is None or c < best_c - 1e-12:
                    best_b, best_c = blk, c
            if best_b is not None:
                tiles[nest.name] = best_b
        final = config_cost(
            prog, binding=b, shapes=shapes, params=params,
            directions=directions, n_nodes=n_nodes,
            memory_budget=budget, cache_budget=cache_budget,
            tile_sizes=tiles, cb_nodes=cb,
        )
        return final.total_s, tiles, final

    cache_cands = cache_candidates()
    if not cache_cands:
        raise TuneSpaceError(
            f"no feasible cache budgets below the memory budget "
            f"{budget} (candidates {space.cache_fractions})"
        )
    if space.cache_budget_elements is not None:
        min_tile = min(
            plan_for(nest, b, shapes, max(
                1, budget - space.cache_budget_elements
            ), 1).footprint_elements
            for nest in prog.nests
        )
        if space.cache_budget_elements < min_tile:
            raise TuneSpaceError(
                f"cache budget {space.cache_budget_elements} is below "
                f"one tile (smallest tile footprint {min_tile})"
            )
    cb_cands = space.cb_candidates(n_nodes)

    best = None
    for cache_budget in cache_cands:
        for cb in cb_cands:
            total, tiles, cost = evaluate(cache_budget, cb)
            if best is None or total < best[0] - 1e-12:
                best = (total, cache_budget, cb, tiles, cost)
    assert best is not None
    total_s, cache_budget, cb, tiles, cost = best

    # -- per-knob provenance: cost of reverting each knob --------------
    def revert(
        dirs=None, cache=None, cb_nodes="keep", tile_sizes="keep"
    ) -> float:
        return config_cost(
            prog, binding=b, shapes=shapes, params=params,
            directions=dirs if dirs is not None else directions,
            n_nodes=n_nodes, memory_budget=budget,
            cache_budget=cache if cache is not None else cache_budget,
            tile_sizes=tiles if tile_sizes == "keep" else tile_sizes,
            cb_nodes=cb if cb_nodes == "keep" else cb_nodes,
        ).total_s

    knobs = [
        KnobChoice(
            "layouts",
            {a: list(d) for a, d in sorted(directions.items())},
            ("ilp", "row-major"),
            total_s,
            revert(dirs=_row_directions(prog)) - total_s,
        ),
        KnobChoice(
            "tile_sizes", dict(sorted(tiles.items())),
            tuple(space.tile_fractions), total_s,
            revert(tile_sizes=None) - total_s,
        ),
        KnobChoice(
            "cache_budget", cache_budget, tuple(cache_cands), total_s,
            revert(cache=0) - total_s,
        ),
        KnobChoice(
            "cb_nodes", cb, cb_cands, total_s,
            revert(cb_nodes=None) - total_s,
        ),
    ]

    report = list(gd.report) + [
        ReportEvent(
            "autotune",
            f"joint config: cache={cache_budget} cb={cb} "
            f"tiles={tiles} predicted={total_s:.4f}s",
            {
                "cache_budget": cache_budget,
                "cb_nodes": cb,
                "tile_sizes": dict(tiles),
                "predicted_cost_s": total_s,
            },
        ),
    ] + [
        ReportEvent(
            "knob",
            f"{k.knob}: {k.chosen} (revert costs {k.delta_s:+.4f}s)",
            k.to_dict(),
        )
        for k in knobs
    ]

    return TuneDecision(
        decision=gd,
        solver=used,
        objective=objective,
        tile_sizes=tiles,
        cache_budget=cache_budget,
        cache_policy=space.cache_policy,
        cb_nodes=cb,
        n_nodes=n_nodes,
        memory_budget=budget,
        predicted=cost,
        knobs=knobs,
        report=report,
    )


__all__ = ["KnobChoice", "TuneDecision", "solve_joint"]
