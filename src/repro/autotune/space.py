"""The joint tuning space: which knob settings the solver may pick.

Four knobs span the machine configuration the paper's greedy algorithm
and the layout-only ILP leave fixed:

- per-array **layouts** × per-nest **loop orders** — delegated to the
  :mod:`repro.optimizer.ilp` machinery (stage A of the search);
- per-nest **tile/block sizes** — candidate block values, either
  explicit per nest or derived as fractions of the planner's
  binary-search maximum;
- **tile-cache budget** — a fraction of the per-node memory budget
  carved away from the compute tiles (the coupling knob: more cache
  means smaller tiles);
- collective **cb_nodes** — how many aggregator ranks two-phase I/O
  may use (``None`` = independent I/O).

Degenerate spaces fail fast with :class:`TuneSpaceError` naming the
offending knob instead of surfacing as an ``IndexError``/``KeyError``
deep inside the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


class AutotuneError(ValueError):
    """Base class for named autotune validation failures."""


class TuneSpaceError(AutotuneError):
    """A tuning space is degenerate (empty candidate lists, cache
    budget below one tile, more aggregators than ranks, …)."""


@dataclass(frozen=True)
class TuneSpace:
    """Candidate knob settings for :func:`repro.autotune.solve_joint`.

    ``tile_sizes`` gives explicit per-nest block candidates; nests not
    listed (or all nests, when ``None``) derive candidates from
    ``tile_fractions`` of the planner's maximum feasible block.
    ``cache_fractions`` are candidate cache shares of the per-node
    memory budget (``0.0`` = cache off); ``cache_budget_elements``
    optionally pins an absolute budget instead, checked against the
    smallest candidate tile.  ``cb_nodes`` lists aggregator counts for
    two-phase collective I/O (``None`` = independent).
    """

    tile_sizes: Mapping[str, Sequence[int]] | None = None
    tile_fractions: tuple[float, ...] = (1.0, 0.5)
    cache_fractions: tuple[float, ...] = (0.0, 0.25, 0.5)
    cache_budget_elements: int | None = None
    cb_nodes: tuple[int | None, ...] = (None, 2, 4)
    cache_policy: str = "lru"

    def __post_init__(self):
        if self.tile_sizes is not None:
            for nest, cands in self.tile_sizes.items():
                if not list(cands):
                    raise TuneSpaceError(
                        f"empty candidate tile sizes for nest {nest!r}"
                    )
                bad = [b for b in cands if int(b) < 1]
                if bad:
                    raise TuneSpaceError(
                        f"tile sizes must be >= 1, nest {nest!r} has {bad}"
                    )
        if not self.tile_fractions:
            raise TuneSpaceError("tile_fractions must not be empty")
        if any(not (0.0 < f <= 1.0) for f in self.tile_fractions):
            raise TuneSpaceError(
                f"tile_fractions must lie in (0, 1], got "
                f"{self.tile_fractions}"
            )
        if not self.cache_fractions:
            raise TuneSpaceError("cache_fractions must not be empty")
        if any(not (0.0 <= f < 1.0) for f in self.cache_fractions):
            raise TuneSpaceError(
                f"cache_fractions must lie in [0, 1), got "
                f"{self.cache_fractions}"
            )
        if self.cache_budget_elements is not None \
                and self.cache_budget_elements < 1:
            raise TuneSpaceError(
                f"cache_budget_elements must be >= 1, got "
                f"{self.cache_budget_elements}"
            )
        if not self.cb_nodes:
            raise TuneSpaceError("cb_nodes must not be empty")
        if any(k is not None and k < 1 for k in self.cb_nodes):
            raise TuneSpaceError(
                f"cb_nodes entries must be >= 1 (or None), got "
                f"{self.cb_nodes}"
            )

    @classmethod
    def default_for(cls, n_nodes: int) -> "TuneSpace":
        """The default space adapted to a rank count: aggregator
        candidates beyond ``n_nodes`` are dropped rather than rejected
        (strict validation is for spaces the caller spelled out)."""
        base = cls()
        return cls(cb_nodes=tuple(
            k for k in base.cb_nodes if k is None or k <= n_nodes
        ))

    def validate_ranks(self, n_nodes: int) -> None:
        """Aggregators are ranks: ``cb_nodes`` beyond ``n_nodes`` could
        never be scheduled."""
        over = [
            k for k in self.cb_nodes if k is not None and k > n_nodes
        ]
        if over:
            raise TuneSpaceError(
                f"cb_nodes {over} exceed the run's {n_nodes} ranks"
            )

    def cb_candidates(self, n_nodes: int) -> tuple[int | None, ...]:
        self.validate_ranks(n_nodes)
        return self.cb_nodes

    def tile_candidates(self, nest: str, planner_max: int) -> list[int]:
        """Ordered candidate blocks for one nest (largest first, no
        duplicates, every value clamped into ``[1, planner_max]``)."""
        if self.tile_sizes is not None and nest in self.tile_sizes:
            raw = [int(b) for b in self.tile_sizes[nest]]
        else:
            raw = [
                max(1, int(planner_max * f)) for f in self.tile_fractions
            ]
        out: list[int] = []
        for b in sorted(raw, reverse=True):
            b = min(b, max(1, planner_max))
            if b not in out:
                out.append(b)
        return out


__all__ = ["AutotuneError", "TuneSpace", "TuneSpaceError"]
