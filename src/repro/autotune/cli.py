"""Command-line interface: ``python -m repro.autotune <command>``.

``solve``
    Run the joint search on one workload and print the decision — the
    solver actually used, the chosen layouts/tiles/cache/collective
    knobs with their predicted-cost deltas, and the objective::

        python -m repro.autotune solve --workload adi --n 32 --nodes 4

``calibrate``
    Drift demo for the calibrator alone: run a workload on a machine
    whose true latency/bandwidth differ from the believed
    :class:`~repro.runtime.MachineParams` by ``--perturb-latency`` /
    ``--perturb-bandwidth``, then refit from the run's per-nest samples
    and print believed vs. fitted vs. true::

        python -m repro.autotune calibrate --workload mxm --n 32 \\
            --perturb-latency 3.0

``loop``
    The closed loop end-to-end: solve, execute against the perturbed
    machine, observe drift, recalibrate, re-solve, and run again —
    ``--rounds`` times — printing each round's predicted vs. measured
    cost and the loop's state transitions.

All three accept ``--json`` to emit the machine-readable record
instead of the human rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from ..runtime import MachineParams
from ..workloads import (
    analytics_names,
    build_analytics,
    build_workload,
    workload_names,
)
from .calibrate import CalibrationError, calibrate, samples_from_run
from .loop import AutotuneConfig, Autotuner
from .search import solve_joint
from .space import AutotuneError


def _build(name: str, n: int | None):
    if name in workload_names():
        return build_workload(name, n)
    if name in analytics_names():
        return build_analytics(name, n)
    print(
        f"error: unknown workload {name!r}; known: "
        f"{workload_names() + analytics_names()}",
        file=sys.stderr,
    )
    return None


def _perturbed(base: MachineParams, args: argparse.Namespace):
    """The 'true' machine for drift demos: believed params with
    latency multiplied and bandwidth divided by the given factors."""
    return replace(
        base,
        io_latency_s=base.io_latency_s * args.perturb_latency,
        io_bandwidth_bps=base.io_bandwidth_bps / args.perturb_bandwidth,
    )


def cmd_solve(args: argparse.Namespace) -> int:
    program = _build(args.workload, args.n)
    if program is None:
        return 2
    try:
        decision = solve_joint(
            program,
            params=MachineParams(),
            n_nodes=args.nodes,
            memory_budget=args.budget,
            solver=args.solver,
        )
    except AutotuneError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(decision.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"workload: {args.workload}  nodes: {args.nodes}")
    for line in decision.report_lines:
        print(f"  {line}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    program = _build(args.workload, args.n)
    if program is None:
        return 2
    believed = MachineParams()
    true = _perturbed(believed, args)
    tuner = Autotuner(program, params=believed, n_nodes=args.nodes)
    tuner.solve()
    run = tuner.run_once(true_params=true)
    try:
        result = calibrate(run, believed=believed)
    except CalibrationError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    io_s, net_s = samples_from_run(run)
    record = {
        "workload": args.workload,
        "n_io_samples": len(io_s),
        "n_net_samples": len(net_s),
        "believed": {
            "io_latency_s": believed.io_latency_s,
            "io_bandwidth_bps": believed.io_bandwidth_bps,
        },
        "fitted": result.to_dict(),
        "true": {
            "io_latency_s": true.io_latency_s,
            "io_bandwidth_bps": true.io_bandwidth_bps,
        },
    }
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(f"workload: {args.workload}  samples: {len(io_s)} io, "
          f"{len(net_s)} net")
    print(f"  believed: latency {believed.io_latency_s:.6g}s  "
          f"bandwidth {believed.io_bandwidth_bps:.6g} B/s")
    print(f"  fitted:   latency {result.io.latency_s:.6g}s  "
          f"bandwidth {result.io.bandwidth_bps:.6g} B/s  "
          f"(rms residual {result.io.residual_s:.3g}s)")
    print(f"  true:     latency {true.io_latency_s:.6g}s  "
          f"bandwidth {true.io_bandwidth_bps:.6g} B/s")
    return 0


def cmd_loop(args: argparse.Namespace) -> int:
    program = _build(args.workload, args.n)
    if program is None:
        return 2
    believed = MachineParams()
    true = _perturbed(believed, args)
    tuner = Autotuner(
        program,
        params=believed,
        n_nodes=args.nodes,
        config=AutotuneConfig(solver=args.solver),
    )
    tuner.solve()
    rounds = []
    for i in range(args.rounds):
        run = tuner.run_once(true_params=true)
        event = tuner.observe(run)
        rounds.append({
            "round": i,
            "event": event["event"],
            "state": tuner.state,
            "predicted_s": tuner.decision.predicted_cost_s,
            "measured_io_s": event.get("measured_io_s"),
            "cost_drift": event.get("cost_drift"),
        })
        if not args.json:
            print(
                f"round {i}: {event['event']:<20s} "
                f"drift {event.get('cost_drift', 0.0):.4f}  "
                f"predicted {tuner.decision.predicted_cost_s:.4f}s  "
                f"measured io "
                f"{event.get('measured_io_s', 0.0):.4f}s"
            )
    if args.json:
        print(json.dumps(
            {"rounds": rounds, "summary": tuner.summary()},
            indent=2, sort_keys=True,
        ))
        return 0
    s = tuner.summary()
    print(
        f"final: state={s['state']} recalibrations="
        f"{s['recalibrations']} resolves={s['resolves']} "
        f"drift_events={s['drift_events']}"
    )
    return 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="adi",
                   help="workload or analytics name (default: adi)")
    p.add_argument("--n", type=int, default=32,
                   help="problem size binding (default: 32)")
    p.add_argument("--nodes", type=int, default=1,
                   help="compute nodes (default: 1)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")


def _add_perturb(p: argparse.ArgumentParser) -> None:
    p.add_argument("--perturb-latency", type=float, default=3.0,
                   help="true latency = believed x this (default: 3.0)")
    p.add_argument("--perturb-bandwidth", type=float, default=2.0,
                   help="true bandwidth = believed / this (default: 2.0)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.autotune",
        description="joint co-optimization + drift-driven recalibration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run the joint search")
    _add_common(p_solve)
    p_solve.add_argument("--budget", type=int, default=None,
                         help="memory budget in elements per node")
    p_solve.add_argument(
        "--solver", default="auto",
        choices=("auto", "milp", "exhaustive", "descent"),
        help="stage-A layout solver (default: auto)")

    p_cal = sub.add_parser(
        "calibrate", help="refit machine parameters from a drifted run")
    _add_common(p_cal)
    _add_perturb(p_cal)

    p_loop = sub.add_parser(
        "loop", help="run the closed drift-recalibrate-resolve loop")
    _add_common(p_loop)
    _add_perturb(p_loop)
    p_loop.add_argument("--rounds", type=int, default=3,
                        help="observe/recalibrate rounds (default: 3)")
    p_loop.add_argument(
        "--solver", default="auto",
        choices=("auto", "milp", "exhaustive", "descent"),
        help="stage-A layout solver (default: auto)")

    args = parser.parse_args(argv)
    if args.command == "solve":
        return cmd_solve(args)
    if args.command == "calibrate":
        return cmd_calibrate(args)
    return cmd_loop(args)


if __name__ == "__main__":
    raise SystemExit(main())
