"""Machine-level cost model for joint knob evaluation.

The layout/loop stage of the search reuses the paper's per-reference
call model verbatim (:mod:`repro.optimizer.cost`); that model ranks
layout × loop-order choices but knows nothing about tiles, caches or
aggregators.  This module extends it to a *configuration* cost in
seconds, so the remaining knobs can be priced against each other:

- **tiles**: each tile visit bounding-box-reads every touched array
  (and writes back the written ones) exactly like the executor, so a
  block size ``B`` turns into ``n_tiles(B)`` fetches of the per-tile
  footprint; run lengths follow the array's fast direction and are
  split at ``max_request_elements``, mirroring ``plan_runs``;
- **cache**: a budget carved from the memory budget shrinks the
  planner's feasible blocks (more tiles) but retains a
  ``min(1, cache/data)`` fraction of a nest's per-node data, saving
  that fraction of the re-reads on later repetitions of the nest and
  on later nests touching the same array — the coupling that makes
  the choice a genuine trade-off;
- **collective**: a nest left with non-conforming (neither temporal
  nor spatial) read references can route reads through ``k``
  aggregators that read each array contiguously and redistribute over
  the interconnect (the PASSION two-phase trade priced with
  ``net_latency_s``/``net_bandwidth_bps``); the model takes the
  cheaper of independent and two-phase per nest, like the runtime's
  ``mode="auto"`` planner.

Costs are per compute node (the SPMD slab split divides the outer tile
loop by ``n_nodes``), in modeled seconds under a given
:class:`~repro.runtime.MachineParams` — which is exactly what the
calibrator refits, closing the loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..engine.footprint import nest_footprints
from ..engine.plan import NestPlan, _whole_ranges, plan_nest
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..layout import temporal_locality_ok
from ..optimizer.cost import access_is_spatial
from ..runtime import MachineParams
from ..runtime.ooc_array import region_size
from ..transforms.tiling import ooc_tiling


@dataclass(frozen=True)
class NestConfigCost:
    """Modeled per-node cost of one nest under a configuration."""

    nest: str
    tile_size: int
    n_tiles: int
    read_calls: float
    write_calls: float
    elements: float
    io_s: float
    net_s: float
    compute_s: float
    two_phase: bool

    @property
    def total_s(self) -> float:
        return self.io_s + self.net_s + self.compute_s


@dataclass(frozen=True)
class ConfigCost:
    """Modeled per-node cost of a whole program configuration."""

    per_nest: tuple[NestConfigCost, ...]

    @property
    def io_s(self) -> float:
        return sum(n.io_s for n in self.per_nest)

    @property
    def net_s(self) -> float:
        return sum(n.net_s for n in self.per_nest)

    @property
    def compute_s(self) -> float:
        return sum(n.compute_s for n in self.per_nest)

    @property
    def total_s(self) -> float:
        return sum(n.total_s for n in self.per_nest)


def _fast_axis(direction: Sequence[int] | None, rank: int) -> int | None:
    """The array axis consecutive file elements walk, if the fast
    direction is axis-aligned (row-major default: the last axis)."""
    if direction is None:
        return rank - 1
    nz = [i for i, v in enumerate(direction) if v]
    if len(nz) == 1 and abs(direction[nz[0]]) == 1:
        return nz[0]
    return None


def _tile_calls(
    region: tuple[tuple[int, int], ...],
    direction: Sequence[int] | None,
    cap: int,
) -> float:
    """File runs needed for one bounding-box region: one run per line
    along the fast axis, each split at the request cap (the analytic
    mirror of ``runs_of`` + ``plan_runs`` on the actual addresses)."""
    fp = region_size(region)
    if fp <= 0:
        return 0.0
    axis = _fast_axis(direction, len(region))
    if axis is None:
        run_len = 1
    else:
        lo, hi = region[axis]
        run_len = max(1, hi - lo + 1)
    lines = fp / run_len
    return lines * math.ceil(run_len / max(1, cap))


def plan_for(
    nest: LoopNest,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
    plan_budget: int,
    tile_size: int | None = None,
) -> NestPlan:
    """The plan the executor would build: same spec rule, same budget,
    same forced-block clamping."""
    return plan_nest(
        nest, ooc_tiling(nest), plan_budget, binding, shapes,
        force_block=tile_size,
    )


def _n_tiles_per_node(
    nest: LoopNest,
    plan: NestPlan,
    binding: Mapping[str, int],
    n_nodes: int,
) -> int:
    full = _whole_ranges(nest, binding)
    levels = plan.tiled_levels
    if not levels or plan.tile_size <= 0:
        return 1
    counts = []
    for level in levels:
        lo, hi = full[nest.loops[level].var]
        counts.append(max(1, math.ceil((hi - lo + 1) / plan.tile_size)))
    # the SPMD driver slices the outermost tile loop into rank slabs
    counts[0] = max(1, math.ceil(counts[0] / max(1, n_nodes)))
    n = 1
    for c in counts:
        n *= c
    return n


def _mid_tile_ranges(
    nest: LoopNest,
    plan: NestPlan,
    binding: Mapping[str, int],
) -> dict[str, tuple[int, int]]:
    """A representative (middle-anchor) tile's variable box — the same
    anchoring ``_footprint_for_block`` uses."""
    full = _whole_ranges(nest, binding)
    block = max(1, plan.tile_size)
    var_ranges: dict[str, tuple[int, int]] = {}
    for level, loop in enumerate(nest.loops):
        lo, hi = full[loop.var]
        if plan.spec.tiled[level] and plan.tile_size > 0:
            extent = hi - lo + 1
            anchor = lo + int(0.5 * max(0, extent - block))
            var_ranges[loop.var] = (anchor, min(hi, anchor + block - 1))
        else:
            var_ranges[loop.var] = (lo, hi)
    return var_ranges


def nest_config_cost(
    nest: LoopNest,
    *,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
    params: MachineParams,
    directions: Mapping[str, Sequence[int] | None],
    n_nodes: int,
    plan_budget: int,
    cache_budget: int,
    tile_size: int | None,
    cb_nodes: int | None,
    seen_arrays: set[str] | None = None,
) -> NestConfigCost:
    """Modeled per-node seconds for one nest under the given knobs.

    ``seen_arrays`` carries cross-nest state: arrays already touched by
    earlier nests of the same configuration get the cache-retention
    discount on their first repetition here too.
    """
    p = max(1, n_nodes)
    cap = max(1, params.max_request_elements)
    plan = plan_for(nest, binding, shapes, plan_budget, tile_size)
    n_tiles = _n_tiles_per_node(nest, plan, binding, p)
    fps = nest_footprints(
        nest, _mid_tile_ranges(nest, plan, binding), binding, shapes
    )
    whole = nest_footprints(
        nest, _whole_ranges(nest, binding), binding, shapes
    )
    w = max(1, nest.weight)

    # per-repetition per-node tile traffic
    read_calls = write_calls = 0.0
    elements = 0.0
    node_data = 0
    for name, (region, _is_read, is_write) in fps.items():
        d = directions.get(name)
        calls = _tile_calls(region, d, cap) * n_tiles
        fp = region_size(region) * n_tiles
        read_calls += calls  # read-modify-write: every touched array
        elements += fp
        if is_write:
            write_calls += calls
            elements += fp
        node_data += region_size(whole[name][0]) // p

    # cache retention: rho of this nest's per-node data survives to the
    # next touch; repetitions 2..w (and a first touch of an array some
    # earlier nest already loaded) re-read only the (1 - rho) remainder
    rho = 0.0
    if cache_budget > 0 and node_data > 0:
        rho = min(1.0, cache_budget / node_data)
    seen = seen_arrays if seen_arrays is not None else set()
    warm = all(name in seen for name in fps)
    warm_reps = (w - 1) + (1 if warm else 0)
    cold_reps = w - warm_reps
    eff_read_calls = read_calls * (cold_reps + warm_reps * (1.0 - rho))
    read_elems = sum(
        region_size(r) * n_tiles for r, _, _ in fps.values()
    )
    write_elems = elements - read_elems
    eff_read_elems = read_elems * (cold_reps + warm_reps * (1.0 - rho))
    total_calls = eff_read_calls + write_calls * w
    total_elems = eff_read_elems + write_elems * w
    seen.update(fps)

    esz = params.element_size
    io_s = total_calls * params.io_latency_s \
        + total_elems * esz / params.io_bandwidth_bps
    net_s = 0.0
    two_phase = False

    # two-phase collective: worthwhile only when some read reference is
    # neither temporal nor spatial under the chosen layout
    if cb_nodes is not None:
        q_last = (0,) * (nest.depth - 1) + (1,)
        non_conforming = False
        for _, ref, is_wr in nest.refs():
            if is_wr or ref.rank < 2:
                continue
            l = nest.access_matrix(ref)
            if temporal_locality_ok(l, q_last):
                continue
            if not access_is_spatial(
                l, q_last, directions.get(ref.array.name)
            ):
                non_conforming = True
                break
        if non_conforming:
            k = max(1, min(cb_nodes, p))
            d_total = sum(
                region_size(whole[name][0]) for name in whole
            )
            agg_calls = sum(
                math.ceil(region_size(whole[name][0]) / cap)
                for name in whole
            )
            fan = max(1, min(k, params.n_io_nodes))
            t_read = (
                agg_calls * params.io_latency_s
                + d_total * esz / params.io_bandwidth_bps
            ) / fan
            t_net = (p * k) * params.net_latency_s \
                + d_total * esz / params.net_bandwidth_bps
            t_2p = (t_read + t_net) * w
            t_indep = eff_read_calls * params.io_latency_s \
                + eff_read_elems * esz / params.io_bandwidth_bps
            if t_2p < t_indep:
                two_phase = True
                io_s = io_s - t_indep + t_read * w
                net_s = t_net * w
                total_calls = total_calls - eff_read_calls + agg_calls * w

    iters = max(1, nest.estimated_iterations(binding))
    compute_s = w * (iters / p) * params.compute_per_element_s

    return NestConfigCost(
        nest=nest.name,
        tile_size=plan.tile_size,
        n_tiles=n_tiles,
        read_calls=eff_read_calls,
        write_calls=write_calls * w,
        elements=total_elems,
        io_s=io_s,
        net_s=net_s,
        compute_s=compute_s,
        two_phase=two_phase,
    )


def config_cost(
    program: Program,
    *,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
    params: MachineParams,
    directions: Mapping[str, Sequence[int] | None],
    n_nodes: int,
    memory_budget: int,
    cache_budget: int = 0,
    tile_sizes: Mapping[str, int] | None = None,
    cb_nodes: int | None = None,
) -> ConfigCost:
    """Modeled per-node seconds for the whole program configuration."""
    plan_budget = max(1, memory_budget - cache_budget)
    seen: set[str] = set()
    per_nest = []
    for nest in program.nests:
        per_nest.append(nest_config_cost(
            nest,
            binding=binding,
            shapes=shapes,
            params=params,
            directions=directions,
            n_nodes=n_nodes,
            plan_budget=plan_budget,
            cache_budget=cache_budget,
            tile_size=(tile_sizes or {}).get(nest.name),
            cb_nodes=cb_nodes,
            seen_arrays=seen,
        ))
    return ConfigCost(tuple(per_nest))


__all__ = [
    "ConfigCost",
    "NestConfigCost",
    "config_cost",
    "nest_config_cost",
    "plan_for",
]
