"""The closed loop: monitor drift, recalibrate, re-solve.

The PR-4 observability layer already measures how wrong the cost model
is — ``cost_model.call_error`` gauges per (nest, array) and the
``backend.io_ratio`` gauge comparing measured wall seconds to modeled
I/O seconds.  The :class:`Autotuner` closes the loop those gauges left
open:

::

    idle --solve()--> monitoring --drift > threshold--> calibrating
                          ^                                 |
                          |                             (least squares)
                          |                                 v
                          +------- re-solve <----------- resolving

``observe(run)`` computes the drift signals from a finished run (and
the attached :class:`~repro.obs.Observability`, when given).  While
every signal stays inside its threshold the state remains
``monitoring`` and nothing changes — the loop is a no-op on a
well-calibrated machine.  When a signal trips, the believed
:class:`~repro.runtime.MachineParams` are refitted from the run's own
per-nest samples (:mod:`repro.autotune.calibrate`) and the joint
search re-runs under the new parameters.  Every transition emits
``autotune.*`` counters/gauges and a journal record, and
:meth:`Autotuner.summary` feeds the report's autotuning section.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from ..obs import Observability, active as obs_active
from ..parallel.spmd import ParallelRun, run_version_parallel
from ..runtime import MachineParams
from .calibrate import CalibrationError, calibrate
from .model import config_cost
from .search import TuneDecision, solve_joint
from .space import AutotuneError, TuneSpace


class AutotuneConfigError(AutotuneError):
    """An :class:`AutotuneConfig` field is out of range."""


@dataclass(frozen=True)
class AutotuneConfig:
    """Thresholds and knobs of the drift loop."""

    #: relative |predicted - measured| I/O seconds that trips the loop
    cost_drift_threshold: float = 0.2
    #: max |cost_model.call_error| gauge value that trips the loop
    call_error_threshold: float = 0.5
    #: acceptable band for the backend.io_ratio gauge (measured wall /
    #: modeled seconds); outside it the loop trips
    io_ratio_band: tuple[float, float] = (0.25, 4.0)
    #: minimum calibration samples before a refit is attempted
    min_samples: int = 2
    #: stage-A solver request passed through to the joint search
    solver: str = "auto"
    #: hard cap on recalibration rounds (a guard, not a tuning knob)
    max_recalibrations: int = 8

    def __post_init__(self):
        if self.cost_drift_threshold <= 0:
            raise AutotuneConfigError(
                f"cost_drift_threshold must be > 0, got "
                f"{self.cost_drift_threshold}"
            )
        if self.call_error_threshold <= 0:
            raise AutotuneConfigError(
                f"call_error_threshold must be > 0, got "
                f"{self.call_error_threshold}"
            )
        lo, hi = self.io_ratio_band
        if not (0 < lo < hi):
            raise AutotuneConfigError(
                f"io_ratio_band must satisfy 0 < lo < hi, got "
                f"{self.io_ratio_band}"
            )
        if self.min_samples < 2:
            raise AutotuneConfigError(
                f"min_samples must be >= 2, got {self.min_samples}"
            )
        if self.max_recalibrations < 1:
            raise AutotuneConfigError(
                f"max_recalibrations must be >= 1, got "
                f"{self.max_recalibrations}"
            )


class Autotuner:
    """Joint solver + calibrator behind a drift-watching state machine.

    The tuner owns the *believed* :class:`MachineParams`; the machine
    it runs against may disagree (that is the drift).  All state
    transitions happen inside :meth:`solve` and :meth:`observe`; both
    are deterministic functions of the run they are handed.
    """

    STATES = ("idle", "monitoring", "calibrating", "resolving")

    def __init__(
        self,
        program,
        *,
        params: MachineParams | None = None,
        binding: Mapping[str, int] | None = None,
        n_nodes: int = 1,
        memory_budget: int | None = None,
        space: TuneSpace | None = None,
        config: AutotuneConfig | None = None,
        obs: Observability | None = None,
    ):
        self.program = program
        self.params = params or MachineParams()
        self.binding = binding
        self.n_nodes = n_nodes
        self.memory_budget = memory_budget
        self.space = space or TuneSpace.default_for(n_nodes)
        self.config = config or AutotuneConfig()
        self.obs = obs_active(obs)
        self.state = "idle"
        self.decision: TuneDecision | None = None
        self.history: list[dict] = []
        self.recalibrations = 0
        self.resolves = 0
        self.drift_events = 0
        #: multiplicative model-bias correction: the analytic config
        #: model has structural error against the executor (its tile
        #: traffic is an estimate); each recalibration refits this
        #: scale from the same run the parameters were fitted from, so
        #: drift afterwards measures *change since calibration*, not
        #: the model's standing bias
        self.model_scale = 1.0
        self._last_drift: dict | None = None

    # -- state machine -------------------------------------------------

    def solve(self) -> TuneDecision:
        """Run the joint search under the believed parameters and move
        to ``monitoring``."""
        self.decision = solve_joint(
            self.program,
            binding=self.binding,
            params=self.params,
            n_nodes=self.n_nodes,
            memory_budget=self.memory_budget,
            space=self.space,
            solver=self.config.solver,
        )
        self.resolves += 1
        self.state = "monitoring"
        self._emit("solve", {
            "solver": self.decision.solver,
            "predicted_cost_s": self.decision.predicted_cost_s,
            "cache_budget": self.decision.cache_budget,
            "cb_nodes": self.decision.cb_nodes,
        }, detail=(
            f"solver={self.decision.solver} "
            f"predicted={self.decision.predicted_cost_s:.4f}s"
        ))
        if self.obs is not None and self.obs.config.metrics:
            m = self.obs.metrics
            m.counter("autotune.resolves").inc()
            m.counter(
                f"autotune.solver_{self.decision.solver}"
            ).inc()
            m.gauge("autotune.predicted_cost_s").set(
                self.decision.predicted_cost_s
            )
        return self.decision

    def run_once(
        self, *, true_params: MachineParams | None = None
    ) -> ParallelRun:
        """Execute the current decision — against ``true_params`` when
        the actual machine differs from the believed one (the drift
        injection used by benchmarks and the CLI demo)."""
        if self.decision is None:
            self.solve()
        assert self.decision is not None
        return run_version_parallel(
            self.decision.version_config(),
            self.n_nodes,
            params=true_params or self.params,
            binding=self.binding,
            memory_per_node=self.memory_budget,
            obs=self.obs,
            **self.decision.run_kwargs(),
        )

    def drift_signals(self, run: ParallelRun) -> dict:
        """The loop's inputs for one finished run: relative
        predicted-vs-measured I/O drift, the worst
        ``cost_model.call_error`` gauge, and ``backend.io_ratio``."""
        assert self.decision is not None, "solve() before drift_signals()"
        p = max(1, run.n_nodes)
        stats = run.total_stats
        measured_io_s = (stats.io_time_s + stats.redist_time_s) / p
        predicted_s = self.model_scale * (
            self.decision.predicted.io_s + self.decision.predicted.net_s
        )
        cost_drift = abs(predicted_s - measured_io_s) / max(
            measured_io_s, 1e-12
        )
        max_call_error = None
        io_ratio = None
        if self.obs is not None and self.obs.config.metrics:
            snap = self.obs.metrics.to_dict()
            errors = [
                abs(float(m.get("value", 0.0)))
                for key, m in snap.items()
                if m.get("type") == "gauge"
                and key.startswith("cost_model.call_error")
            ]
            if errors:
                max_call_error = max(errors)
            for key, m in snap.items():
                if m.get("type") == "gauge" and key.split("{")[0] == (
                    "backend.io_ratio"
                ):
                    io_ratio = float(m.get("value", 0.0))
        return {
            "measured_io_s": measured_io_s,
            "predicted_io_s": predicted_s,
            "cost_drift": cost_drift,
            "max_call_error": max_call_error,
            "io_ratio": io_ratio,
        }

    def _tripped(self, sig: dict) -> str | None:
        cfg = self.config
        if sig["cost_drift"] > cfg.cost_drift_threshold:
            return (
                f"cost drift {sig['cost_drift']:.3f} > "
                f"{cfg.cost_drift_threshold}"
            )
        err = sig["max_call_error"]
        if err is not None and err > cfg.call_error_threshold:
            return (
                f"call error {err:.3f} > {cfg.call_error_threshold}"
            )
        ratio = sig["io_ratio"]
        if ratio is not None:
            lo, hi = cfg.io_ratio_band
            if not (lo <= ratio <= hi):
                return f"io_ratio {ratio:.3f} outside [{lo}, {hi}]"
        return None

    def observe(self, run: ParallelRun) -> dict:
        """Feed one finished run through the loop.  Returns the event
        record (action taken, signals, and — after a recalibration —
        the parameter shift)."""
        if self.decision is None:
            raise AutotuneError("observe() before solve(): no decision")
        sig = self.drift_signals(run)
        self._last_drift = sig
        if self.obs is not None and self.obs.config.metrics:
            m = self.obs.metrics
            m.gauge("autotune.cost_drift").set(sig["cost_drift"])
            if sig["max_call_error"] is not None:
                m.gauge("autotune.max_call_error").set(
                    sig["max_call_error"]
                )
        reason = self._tripped(sig)
        if reason is None:
            self.state = "monitoring"
            return self._emit("in_band", dict(sig), detail=(
                f"drift {sig['cost_drift']:.3f} within threshold"
            ))
        self.drift_events += 1
        if self.obs is not None and self.obs.config.metrics:
            self.obs.metrics.counter("autotune.drift_detected").inc()
        if self.recalibrations >= self.config.max_recalibrations:
            self.state = "monitoring"
            return self._emit(
                "recalibration_cap", dict(sig),
                detail=f"cap {self.config.max_recalibrations} reached",
            )
        self.state = "calibrating"
        old = self.params
        try:
            result = calibrate(
                run, believed=old, min_samples=self.config.min_samples
            )
        except CalibrationError as e:
            self.state = "monitoring"
            return self._emit(
                "calibration_failed", {**sig, "error": str(e)},
                detail=str(e),
            )
        self.params = result.params
        model_now = self._model_cost(self.params)
        if model_now > 0:
            self.model_scale = sig["measured_io_s"] / model_now
        self.recalibrations += 1
        if self.obs is not None and self.obs.config.metrics:
            self.obs.metrics.counter("autotune.recalibrations").inc()
        self.state = "resolving"
        self.solve()
        return self._emit("recalibrated", {
            **sig,
            "reason": reason,
            "fit": result.to_dict(),
            "io_latency_s": {
                "old": old.io_latency_s, "new": self.params.io_latency_s,
            },
            "io_bandwidth_bps": {
                "old": old.io_bandwidth_bps,
                "new": self.params.io_bandwidth_bps,
            },
        }, detail=reason)

    def _model_cost(self, params: MachineParams) -> float:
        """The analytic I/O + interconnect seconds of the *current*
        decision's configuration under ``params`` — what the model
        says the run just measured should have cost."""
        d = self.decision
        assert d is not None
        prog = d.program
        b = prog.binding(self.binding)
        shapes = {a.name: a.shape(b) for a in prog.arrays}
        c = config_cost(
            prog, binding=b, shapes=shapes, params=params,
            directions=d.decision.directions, n_nodes=d.n_nodes,
            memory_budget=d.memory_budget,
            cache_budget=d.cache_budget,
            tile_sizes=d.tile_sizes, cb_nodes=d.cb_nodes,
        )
        return c.io_s + c.net_s

    # -- reporting -----------------------------------------------------

    def _emit(self, event: str, data: dict, *, detail: str = "") -> dict:
        record = {"event": event, "detail": detail, **data}
        self.history.append(record)
        if self.obs is not None:
            if self.obs.journal is not None:
                from ..obs.export import sanitize

                self.obs.journal.emit(
                    "autotune_event", data=sanitize(record)
                )
            self.obs.note_autotune(self.summary())
        return record

    def summary(self) -> dict:
        """The report-facing snapshot (rendered by
        :func:`repro.obs.report.render_report`'s autotuning section)."""
        out: dict = {
            "state": self.state,
            "recalibrations": self.recalibrations,
            "resolves": self.resolves,
            "drift_events": self.drift_events,
            "drift_threshold": self.config.cost_drift_threshold,
            "model_scale": self.model_scale,
            "params": asdict(self.params),
        }
        if self.decision is not None:
            out["solver"] = self.decision.solver
            out["predicted_cost_s"] = self.decision.predicted_cost_s
            out["knobs"] = [k.to_dict() for k in self.decision.knobs]
        if self._last_drift is not None:
            out["measured_io_s"] = self._last_drift["measured_io_s"]
            out["cost_drift"] = self._last_drift["cost_drift"]
            if self._last_drift["max_call_error"] is not None:
                out["max_call_error"] = self._last_drift["max_call_error"]
        out["history"] = [
            {"event": h["event"], "detail": h["detail"]}
            for h in self.history[-6:]
        ]
        return out


__all__ = ["AutotuneConfig", "AutotuneConfigError", "Autotuner"]
