"""repro — compiler optimizations for I/O-intensive (out-of-core)
computations.

A from-scratch reproduction of Kandemir, Choudhary & Ramanujam,
*Compiler Optimizations for I/O-Intensive Computations* (ICPP 1999):
combined loop (iteration-space) and file-layout (data-space)
transformations for out-of-core programs, the all-but-innermost tiling
rule, a PASSION-style out-of-core runtime over a simulated striped
parallel file system, an SPMD execution model, the paper's ten
evaluation codes, and harnesses regenerating every table and figure.

Quick start::

    from repro import ProgramBuilder, optimize_program, OOCExecutor

    b = ProgramBuilder("example", params=("N",), default_binding={"N": 64})
    N = b.param("N")
    U, V = b.array("U", (N, N)), b.array("V", (N, N))
    with b.nest("copy") as nest:
        i, j = nest.loop("i", 1, N), nest.loop("j", 1, N)
        nest.assign(U[i, j], V[j, i] + 1.0)
    program = b.build()

    decision = optimize_program(program)        # layouts + loop transforms
    executor = OOCExecutor(decision.program, decision.layout_objects())
    result = executor.run()                     # exact I/O accounting
    print(result.stats)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    IndexVar,
    Loop,
    LoopNest,
    Program,
    ProgramBuilder,
    Statement,
)
from .linalg import IMat
from .layout import (
    BlockedLayout,
    Hyperplane,
    Layout,
    LinearLayout,
    antidiagonal,
    col_major,
    diagonal,
    layout_from_direction,
    row_major,
)
from .dependence import analyze_nest, transform_is_legal
from .transforms import (
    apply_loop_transform,
    distribute,
    fuse,
    normalize_program,
    ooc_tiling,
    traditional_tiling,
)
from .optimizer import (
    VERSION_NAMES,
    GlobalDecision,
    build_version,
    optimize_nest,
    optimize_program,
)
from .runtime import IOStats, MachineParams, OutOfCoreArray, ParallelFileSystem
from .cache import CacheConfig, CacheMetrics, TileCache
from .collective import CollectiveConfig, event_makespan, plan_nest_collective
from .bounds import NestBound, program_bounds
from .engine import OOCExecutor, generate_tiled_code, interpret_program
from .faults import FaultConfig, FaultPlan, ResiliencePolicy
from .obs import ObsConfig, Observability
from .optimizer import ReportEvent
from .parallel import run_version_parallel, speedup_curve
from .workloads import WORKLOADS, build_workload

__version__ = "1.0.0"

__all__ = [
    # IR
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "IndexVar",
    "Loop",
    "LoopNest",
    "Program",
    "ProgramBuilder",
    "Statement",
    "IMat",
    # layouts
    "BlockedLayout",
    "Hyperplane",
    "Layout",
    "LinearLayout",
    "antidiagonal",
    "col_major",
    "diagonal",
    "layout_from_direction",
    "row_major",
    # analysis & transforms
    "analyze_nest",
    "transform_is_legal",
    "apply_loop_transform",
    "distribute",
    "fuse",
    "normalize_program",
    "ooc_tiling",
    "traditional_tiling",
    # optimizer
    "VERSION_NAMES",
    "GlobalDecision",
    "build_version",
    "optimize_nest",
    "optimize_program",
    # runtime & engine
    "CacheConfig",
    "CacheMetrics",
    "CollectiveConfig",
    "TileCache",
    "event_makespan",
    "plan_nest_collective",
    "IOStats",
    "MachineParams",
    "OutOfCoreArray",
    "ParallelFileSystem",
    "OOCExecutor",
    "generate_tiled_code",
    "interpret_program",
    # faults & resilience
    "FaultConfig",
    "FaultPlan",
    "ResiliencePolicy",
    # observability & optimality
    "ObsConfig",
    "Observability",
    "ReportEvent",
    "NestBound",
    "program_bounds",
    # parallel & workloads
    "run_version_parallel",
    "speedup_curve",
    "WORKLOADS",
    "build_workload",
    "__version__",
]
