"""The multi-tenant job scheduler: admission, fair queuing, shared I/O.

One :class:`JobScheduler` multiplexes many tenants' jobs onto one
simulated cluster (:class:`~repro.serve.profile.ClusterProfile`).  A job
walks the lifecycle

    queued → admitted → optimizing → executing → done | failed

where *optimizing* runs the paper's compiler pipeline
(:func:`repro.optimizer.build_version`) and *executing* runs the
resulting version through the existing parallel driver
(:func:`repro.parallel.run_version_parallel`) — serving changes nothing
about what a job computes or how its I/O is *accounted*; it changes
**when** the job runs and how long its I/O takes on a **shared**
machine.

Admission control holds a job in its tenant's FIFO queue until the
cluster can take it: enough free compute nodes, the tenant under its
in-flight job cap and its in-flight memory budget.  Which queue goes
next is the :class:`~repro.serve.profile.ServePolicy`'s call — naive
global FIFO (head-of-line blocking included, the baseline the fairness
benchmark beats) or weighted-fair queuing, where the eligible tenant
with the least accrued virtual time is served and a completed job
charges its tenant ``serial_time / weight``.

Contention-aware pricing: an admitted job's per-rank call traces are
replayed as timeline ops on the cluster's **persistent** per-I/O-node
FIFO queues and shared interconnect channel — the exact discipline of
:func:`repro.collective.sim.simulate` (``start = max(arrival, free)``,
FIFO per resource in arrival order), except the queues live across jobs,
so concurrent tenants genuinely collide on them.  A lone job on an idle
cluster reproduces the single-run event simulation; extra tenants only
ever push times later.

Everything is deterministic: the engine draws no randomness (per-job
fault injection is derived from the plan's seed and the job id), events
carry explicit tie-breaking sequence numbers, and tenant iteration is
name-ordered — the same profile, policy and script replay to the same
schedule, stats and report, bit for bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from ..collective.sim import SimOp, io_node_of, nest_ops
from ..faults import FaultConfig, TransientIOError
from ..obs import Observability, active as obs_active
from ..optimizer import build_version
from ..parallel import ParallelRun, run_version_parallel
from ..runtime import IOStats
from ..workloads import build_workload
from .profile import ClusterProfile, JobSpec, ServePolicy, WorkloadScript
from .shared_cache import SharedTileCache

#: job lifecycle states, in order
JOB_STATES = (
    "queued",
    "admitted",
    "optimizing",
    "executing",
    "done",
    "failed",
)

# event-heap priorities at equal timestamps: completions free nodes
# before arrivals are considered, arrivals enqueue before in-flight ops
# are serviced — any fixed order is correct, this one admits eagerly
_EV_COMPLETE, _EV_ARRIVAL, _EV_RANK = 0, 1, 2


@dataclass
class Job:
    """One served request and everything that happened to it."""

    job_id: int
    spec: JobSpec
    state: str = "queued"
    attempts: int = 0
    #: when the job last entered a queue (arrival, or the retry instant)
    enqueued_s: float = 0.0
    admitted_s: float | None = None
    finish_s: float | None = None
    #: total simulated seconds spent waiting in queues (all attempts)
    queue_delay_s: float = 0.0
    #: folded stats of the successful run (``None`` until done)
    stats: IOStats | None = None
    #: served (contention-priced) execution seconds, admission → finish
    service_s: float = 0.0
    error: str | None = None
    cache_hits: int = 0
    cache_saved_s: float = 0.0
    #: admission-control memory footprint (elements, all ranks)
    mem_elements: int = 0
    #: (state, simulated time) transition log
    history: list[tuple[str, float]] = field(default_factory=list)

    def _to(self, state: str, t: float) -> None:
        self.state = state
        self.history.append((state, t))


@dataclass
class TenantSummary:
    """Per-tenant outcome of one scheduler run.  ``stats`` is the exact
    fold of the tenant's completed jobs' :class:`IOStats` — the same
    exactness contract as the obs report's nest table."""

    name: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: jobs rejected at arrival (infeasible on this cluster); a subset
    #: of ``failed``
    rejected: int = 0
    retries: int = 0
    queue_delay_s: float = 0.0
    max_queue_delay_s: float = 0.0
    stats: IOStats = field(default_factory=IOStats)

    def to_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "retries": self.retries,
            "queue_delay_s": self.queue_delay_s,
            "max_queue_delay_s": self.max_queue_delay_s,
            "stats": self.stats.to_dict(),
        }


@dataclass
class ServeResult:
    """Everything one scheduler run produced, replayable and exact."""

    profile: ClusterProfile
    policy: ServePolicy
    jobs: list[Job]
    makespan_s: float
    #: (simulated time, event, job_id) in processing order; events are
    #: ``submit`` / ``admit`` / ``retry`` / ``done`` / ``failed`` /
    #: ``reject``
    schedule: list[tuple[float, str, int]]
    tenants: dict[str, TenantSummary]
    #: shared-queue contention counters (the serve engine's analogue of
    #: :class:`repro.collective.sim.SimResult`)
    waited_requests: int = 0
    wait_time_s: float = 0.0
    net_busy_s: float = 0.0
    n_events: int = 0
    cache: SharedTileCache | None = None

    @property
    def total_stats(self) -> IOStats:
        """Exact fold over every completed job's stats."""
        return IOStats.fold(
            j.stats for j in self.jobs if j.stats is not None
        )

    def summary_dict(self) -> dict[str, object]:
        """JSON-ready summary for :meth:`repro.obs.Observability
        .note_serve` — the payload the rendered report's tenant section
        reads."""
        out: dict[str, object] = {
            "policy": {
                "fairness": self.policy.fairness,
                "max_job_retries": self.policy.max_job_retries,
            },
            "makespan_s": self.makespan_s,
            "n_jobs": len(self.jobs),
            "waited_requests": self.waited_requests,
            "wait_time_s": self.wait_time_s,
            "tenants": {
                name: s.to_dict() for name, s in sorted(self.tenants.items())
            },
        }
        if self.cache is not None:
            out["cache"] = self.cache.summary_dict()
        return out

    def signature(self) -> tuple:
        """A compact, hashable fingerprint of the schedule — two runs of
        the same scenario must produce equal signatures (the determinism
        contract's test surface)."""
        return tuple(
            (
                j.job_id,
                j.state,
                j.attempts,
                None if j.admitted_s is None else round(j.admitted_s, 9),
                None if j.finish_s is None else round(j.finish_s, 9),
                None if j.stats is None else j.stats.calls,
            )
            for j in self.jobs
        )

    def describe(self) -> str:
        """Human-readable schedule + tenant table (the CLI's output)."""
        lines = [
            f"{'t(s)':>10}  {'event':<7} {'job':>4}  "
            f"{'tenant':<12} {'workload':<8}"
        ]
        for t, event, jid in self.schedule:
            spec = self.jobs[jid].spec
            lines.append(
                f"{t:>10.3f}  {event:<7} {jid:>4}  "
                f"{spec.tenant:<12} {spec.workload:<8}"
            )
        lines.append("")
        header = (
            f"{'tenant':<12} {'jobs':>5} {'done':>5} {'failed':>6} "
            f"{'retries':>7} {'queued_s':>9} {'calls':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(self.tenants):
            s = self.tenants[name]
            lines.append(
                f"{name:<12} {s.submitted:>5} {s.completed:>5} "
                f"{s.failed:>6} {s.retries:>7} {s.queue_delay_s:>9.3f} "
                f"{s.stats.calls:>8}"
            )
        lines.append(
            f"makespan: {self.makespan_s:.3f}s  "
            f"(policy={self.policy.fairness}, "
            f"queue waits {self.waited_requests}, "
            f"{self.wait_time_s:.3f}s)"
        )
        if self.cache is not None:
            lines.append(
                f"shared cache: hits={self.cache.hits} "
                f"misses={self.cache.misses} "
                f"evictions={self.cache.evictions} "
                f"saved={self.cache.saved_io_s:.3f}s"
            )
        return "\n".join(lines)


@dataclass
class _RunningJob:
    """Engine-side state of an admitted job: per-rank op streams walked
    against the shared resource queues."""

    job: Job
    ops: list[list[SimOp]]
    ptr: list[int]
    clock: list[float]
    ranks_left: int


class JobScheduler:
    """Replay a :class:`WorkloadScript` against a shared cluster.

    ``faults`` (a :class:`repro.faults.FaultConfig`) applies the plan to
    every job with a per-(job, attempt) derived seed, so fault draws are
    independent across jobs yet fully reproducible; a job whose run
    raises :class:`~repro.faults.TransientIOError` is re-queued at its
    *own tenant's* tail up to ``policy.max_job_retries`` times — retries
    never block another tenant's admission.  ``obs`` threads the whole
    run through :mod:`repro.obs`: per-job wall spans, ``serve.*``
    counters, per-tenant queue-delay histograms, virtual-time job spans
    on per-tenant tracks, and the tenant summary in the rendered report.
    """

    def __init__(
        self,
        profile: ClusterProfile,
        policy: ServePolicy | None = None,
        *,
        faults: FaultConfig | None = None,
        obs: Observability | None = None,
    ):
        self.profile = profile
        self.policy = policy or ServePolicy()
        self.faults = faults
        self.obs = obs_active(obs)
        self.cache: SharedTileCache | None = None
        if profile.cache_budget_elements > 0:
            self.cache = SharedTileCache(
                profile.cache_budget_elements,
                {t.name: t.cache_quota_elements for t in profile.tenants},
            )
        # build caches: programs by (workload, n), versions by full key
        self._programs: dict[tuple[str, int], object] = {}
        self._versions: dict[tuple[str, int, str, int], object] = {}

    # -- public entry point --------------------------------------------------

    def run(self, script: WorkloadScript) -> ServeResult:
        profile, policy = self.profile, self.policy
        for spec in script.jobs:
            profile.tenant(spec.tenant)  # raises on unknown tenant

        self._jobs = [Job(i, spec) for i, spec in enumerate(script.jobs)]
        self._schedule: list[tuple[float, str, int]] = []
        self._tenants = {
            t.name: TenantSummary(t.name) for t in profile.tenants
        }
        self._queues: dict[str, list[int]] = {
            t.name: [] for t in profile.tenants
        }
        self._vtime: dict[str, float] = {t.name: 0.0 for t in profile.tenants}
        self._inflight: dict[str, int] = {t.name: 0 for t in profile.tenants}
        self._inflight_mem: dict[str, int] = {
            t.name: 0 for t in profile.tenants
        }
        self._free_nodes = profile.n_compute_nodes
        self._running: dict[int, _RunningJob] = {}
        self._base_seed = script.seed

        # the shared machine: persistent resource-free times across jobs
        self._io_free = np.zeros(profile.params.n_io_nodes)
        self._net_free = 0.0
        self._net_busy = 0.0
        self._waited = 0
        self._wait_time = 0.0
        self._n_events = 0

        heap: list[tuple[float, int, int, tuple]] = []
        self._heap = heap
        self._seq = 0
        for job in self._jobs:
            self._push(job.spec.arrival_s, _EV_ARRIVAL, ("arrival", job.job_id))

        while heap:
            t, _prio, _seq, payload = heapq.heappop(heap)
            kind = payload[0]
            if kind == "arrival":
                self._on_arrival(t, self._jobs[payload[1]])
            elif kind == "complete":
                self._on_complete(t, payload[1])
            else:  # "rank"
                self._on_rank_op(t, payload[1], payload[2])

        makespan = max(
            (j.finish_s for j in self._jobs if j.finish_s is not None),
            default=0.0,
        )
        result = ServeResult(
            profile,
            policy,
            self._jobs,
            makespan,
            self._schedule,
            self._tenants,
            waited_requests=self._waited,
            wait_time_s=self._wait_time,
            net_busy_s=self._net_busy,
            n_events=self._n_events,
            cache=self.cache,
        )
        obs = self.obs
        if obs is not None:
            if obs.config.metrics and self.cache is not None:
                self.cache.publish_metrics(obs.metrics)
            obs.note_serve(result.summary_dict())
        return result

    # -- event handlers ------------------------------------------------------

    def _push(self, t: float, prio: int, payload: tuple) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t, prio, self._seq, payload))

    def _log(self, t: float, event: str, job_id: int) -> None:
        self._schedule.append((t, event, job_id))

    def _count(self, name: str, **labels) -> None:
        obs = self.obs
        if obs is not None and obs.config.metrics:
            obs.metrics.counter(f"serve.{name}", **labels).inc()

    def _on_arrival(self, t: float, job: Job) -> None:
        spec = job.spec
        summary = self._tenants[spec.tenant]
        summary.submitted += 1
        self._count("jobs_submitted", tenant=spec.tenant)
        self._log(t, "submit", job.job_id)
        error = self._feasibility_error(spec)
        if error is not None:
            job.error = error
            job._to("failed", t)
            job.finish_s = t
            summary.failed += 1
            summary.rejected += 1
            self._count("jobs_rejected", tenant=spec.tenant)
            self._log(t, "reject", job.job_id)
            return
        job.enqueued_s = t
        job._to("queued", t)
        self._queues[spec.tenant].append(job.job_id)
        self._try_admit(t)

    def _feasibility_error(self, spec: JobSpec) -> str | None:
        """A job no admission could ever satisfy is rejected at arrival
        with a named reason rather than queued forever."""
        profile = self.profile
        if spec.n_nodes > profile.n_compute_nodes:
            return (
                f"job wants {spec.n_nodes} nodes; the cluster has "
                f"{profile.n_compute_nodes}"
            )
        try:
            program = self._program(spec)
        except (KeyError, ValueError) as e:
            return f"workload {spec.workload!r} failed to build: {e}"
        tenant = profile.tenant(spec.tenant)
        mem = self._job_memory(spec, program)
        if (
            tenant.memory_budget_elements is not None
            and mem > tenant.memory_budget_elements
        ):
            return (
                f"job needs {mem} elements of memory; tenant "
                f"{spec.tenant!r} is budgeted "
                f"{tenant.memory_budget_elements}"
            )
        return None

    def _on_complete(self, t: float, job_id: int) -> None:
        job = self._jobs[job_id]
        spec = job.spec
        del self._running[job_id]
        self._free_nodes += spec.n_nodes
        self._inflight[spec.tenant] -= 1
        self._inflight_mem[spec.tenant] -= job.mem_elements
        job.finish_s = t
        job.service_s = t - job.admitted_s
        job._to("done", t)
        summary = self._tenants[spec.tenant]
        summary.completed += 1
        summary.stats = summary.stats.merge(job.stats)
        self._count("jobs_completed", tenant=spec.tenant)
        self._log(t, "done", job.job_id)
        obs = self.obs
        if obs is not None:
            track = f"tenant {spec.tenant}"
            obs.tracer.add_virtual_span(
                f"job {job.job_id} {spec.workload}",
                job.admitted_s,
                t - job.admitted_s,
                track=track,
                cat="serve.job",
                job=job.job_id,
                calls=job.stats.calls,
            )
        self._try_admit(t)

    def _on_rank_op(self, t: float, job_id: int, rank: int) -> None:
        """Service one rank's next blocking op on the shared queues —
        :func:`repro.collective.sim.simulate`'s discipline, with the
        resource-free times persistent across jobs."""
        jr = self._running[job_id]
        op = jr.ops[rank][jr.ptr[rank]]
        if op.kind == "net":
            start = max(t, self._net_free)
            done = start + op.service_s
            self._net_free = done
            self._net_busy += op.service_s
        else:
            res = op.resource
            start = max(t, float(self._io_free[res]))
            done = start + op.service_s
            self._io_free[res] = done
        if start > t:
            self._waited += 1
            self._wait_time += start - t
        obs = self.obs
        if obs is not None and obs.config.metrics:
            obs.metrics.histogram("serve.sim_queue_wait_us").observe(
                (start - t) * 1e6
            )
        self._n_events += 1
        jr.ptr[rank] += 1
        jr.clock[rank] = done
        self._advance_rank(jr, rank)

    def _advance_rank(self, jr: _RunningJob, rank: int) -> None:
        """Walk the rank past compute ops; queue its next blocking op or
        retire the rank (and, with the last rank, the job)."""
        ops, j = jr.ops[rank], jr.ptr[rank]
        t = jr.clock[rank]
        while j < len(ops) and ops[j].kind == "compute":
            t += ops[j].duration_s
            j += 1
        jr.ptr[rank], jr.clock[rank] = j, t
        if j < len(ops):
            self._push(t, _EV_RANK, ("rank", jr.job.job_id, rank))
            return
        jr.ranks_left -= 1
        if jr.ranks_left == 0:
            self._push(max(jr.clock), _EV_COMPLETE, ("complete", jr.job.job_id))

    # -- admission -----------------------------------------------------------

    def _fits(self, job: Job) -> bool:
        spec = job.spec
        if spec.n_nodes > self._free_nodes:
            return False
        tenant = self.profile.tenant(spec.tenant)
        if (
            tenant.max_inflight is not None
            and self._inflight[spec.tenant] >= tenant.max_inflight
        ):
            return False
        if tenant.memory_budget_elements is not None:
            mem = self._job_memory(spec, self._program(spec))
            if (
                self._inflight_mem[spec.tenant] + mem
                > tenant.memory_budget_elements
            ):
                return False
        return True

    def _try_admit(self, t: float) -> None:
        """Admit as many queued jobs as the policy and the free resources
        allow, at simulated time ``t``."""
        while True:
            job_id = self._pick(t)
            if job_id is None:
                return
            self._queues[self._jobs[job_id].spec.tenant].remove(job_id)
            self._admit(t, self._jobs[job_id])

    def _pick(self, t: float) -> int | None:
        queues = self._queues
        if self.policy.fairness == "fifo":
            # naive global FIFO: strictly earliest-queued job next, and
            # strict head-of-line blocking when it does not fit
            heads = [
                (self._jobs[q[0]].enqueued_s, q[0])
                for q in queues.values()
                if q
            ]
            if not heads:
                return None
            job_id = min(heads)[1]
            return job_id if self._fits(self._jobs[job_id]) else None
        # weighted-fair: eligible tenant with the least virtual time is
        # served; a tenant whose head does not fit is skipped, so one
        # tenant's oversized head never blocks the others
        order = sorted(
            (self._vtime[name], name)
            for name, q in queues.items()
            if q
        )
        for _vt, name in order:
            job = self._jobs[queues[name][0]]
            if self._fits(job):
                return job.job_id
        return None

    def _admit(self, t: float, job: Job) -> None:
        spec = job.spec
        tenant = self.profile.tenant(spec.tenant)
        delay = t - job.enqueued_s
        job.queue_delay_s += delay
        job.admitted_s = t
        job.attempts += 1
        job._to("admitted", t)
        summary = self._tenants[spec.tenant]
        summary.queue_delay_s += delay
        summary.max_queue_delay_s = max(summary.max_queue_delay_s, delay)
        self._count("jobs_admitted", tenant=spec.tenant)
        self._log(t, "admit", job.job_id)
        obs = self.obs
        if obs is not None:
            if obs.config.metrics:
                obs.metrics.histogram(
                    "serve.queue_delay_us", tenant=spec.tenant
                ).observe(delay * 1e6)
            obs.tracer.add_virtual_span(
                f"job {job.job_id} queued",
                job.enqueued_s,
                delay,
                track=f"tenant {spec.tenant}",
                cat="serve.queued",
                job=job.job_id,
            )

        run = self._execute(t, job)
        if run is None:  # faulted out; _execute handled re-queue / fail
            return

        # the job is on the cluster: reserve its resources and charge
        # its tenant's virtual time with the run's serial service
        program = self._program(spec)
        job.mem_elements = self._job_memory(spec, program)
        self._free_nodes -= spec.n_nodes
        self._inflight[spec.tenant] += 1
        self._inflight_mem[spec.tenant] += job.mem_elements
        job.stats = run.total_stats
        self._vtime[spec.tenant] += (
            run.total_stats.total_time_s / tenant.weight
        )
        jr = _RunningJob(
            job,
            self._rank_ops(job, run),
            ptr=[0] * run.n_nodes,
            clock=[t] * run.n_nodes,
            ranks_left=run.n_nodes,
        )
        self._running[job.job_id] = jr
        job._to("executing", t)
        for rank in range(run.n_nodes):
            self._advance_rank(jr, rank)

    # -- the per-job pipeline ------------------------------------------------

    def _program(self, spec: JobSpec):
        key = (spec.workload, spec.n)
        program = self._programs.get(key)
        if program is None:
            program = self._programs[key] = build_workload(*key)
        return program

    def _version(self, spec: JobSpec):
        key = (spec.workload, spec.n, spec.version, spec.n_nodes)
        cfg = self._versions.get(key)
        if cfg is None:
            cfg = self._versions[key] = build_version(
                spec.version,
                self._program(spec),
                params=self.profile.params,
                n_nodes=spec.n_nodes,
            )
        return cfg

    def _job_memory(self, spec: JobSpec, program) -> int:
        """The admission-control footprint: every rank gets the same
        default budget :func:`repro.parallel.run_version_parallel`
        computes (the paper's memory fraction of the program's data)."""
        b = program.binding(None)
        total = sum(int(np.prod(a.shape(b))) for a in program.arrays)
        per_node = max(64, total // self.profile.params.memory_fraction)
        return spec.n_nodes * per_node

    def _job_faults(self, job: Job) -> FaultConfig | None:
        """Per-(job, attempt) fault derivation: same plan and policy,
        seed offset so jobs (and retry attempts) draw independently yet
        reproducibly."""
        if self.faults is None:
            return None
        plan = self.faults.plan
        seed = (
            plan.seed
            + self._base_seed
            + 997 * job.job_id
            + 7919 * (job.attempts - 1)
        )
        return FaultConfig(
            dc_replace(plan, seed=seed), self.faults.policy
        )

    def _execute(self, t: float, job: Job) -> ParallelRun | None:
        """Run optimize → execute for an admitted job (the wall-clock
        work happens here; it occupies zero *simulated* time — the
        simulated cost is the op replay on the shared queues).  Returns
        ``None`` after handling a fault-aborted attempt."""
        spec = job.spec
        obs = self.obs
        job._to("optimizing", t)
        if obs is not None and obs.config.wall_time:
            span = obs.tracer.begin(
                f"serve job {job.job_id}",
                "serve",
                tenant=spec.tenant,
                workload=spec.workload,
                attempt=job.attempts,
            )
        else:
            span = None
        try:
            cfg = self._version(spec)
            try:
                return run_version_parallel(
                    cfg,
                    spec.n_nodes,
                    params=self.profile.params,
                    faults=self._job_faults(job),
                    trace=True,
                )
            except TransientIOError as e:
                self._on_attempt_failed(t, job, e)
                return None
        finally:
            if span is not None:
                obs.tracer.end(span)

    def _on_attempt_failed(
        self, t: float, job: Job, error: TransientIOError
    ) -> None:
        """A fault took the attempt down before it produced a run.  The
        failure is detected immediately in simulated time (the attempt's
        partial progress is not modeled); within the retry budget the
        job re-enters its own tenant's queue tail — other tenants'
        admission is untouched."""
        spec = job.spec
        summary = self._tenants[spec.tenant]
        if job.attempts <= self.policy.max_job_retries:
            summary.retries += 1
            self._count("jobs_retried", tenant=spec.tenant)
            self._log(t, "retry", job.job_id)
            job.enqueued_s = t
            job._to("queued", t)
            self._queues[spec.tenant].append(job.job_id)
            return
        job.error = (
            f"fault-injected failure on io node {error.io_node} "
            f"(op {error.op_index}) after {job.attempts} attempt(s)"
        )
        job.finish_s = t
        job._to("failed", t)
        summary.failed += 1
        self._count("jobs_failed", tenant=spec.tenant)
        self._log(t, "failed", job.job_id)

    # -- contention-priced op streams ---------------------------------------

    def _rank_ops(self, job: Job, run: ParallelRun) -> list[list[SimOp]]:
        """Per-rank timeline ops of a completed inner run.

        Without a shared cache this is exactly
        :func:`repro.collective.sim.nest_ops` per rank — a lone served
        job replays the standalone event simulation.  With the cache,
        read calls are filtered through the tenant's partition at
        admission time (in admission order, hence deterministically): a
        hit drops the I/O op from the timeline (the saved service is the
        hit's worth), a miss emits the op and caches the tile, a write
        emits the op and invalidates what it overlaps.  Accounting
        (:class:`IOStats`) is never touched — the cache changes served
        *time*, not the paper's I/O counters.
        """
        params = self.profile.params
        cache = self.cache
        spec = job.spec
        out: list[list[SimOp]] = []
        for rr in run.node_results:
            ops: list[SimOp] = []
            for nr in rr.nest_runs:
                if cache is None:
                    ops.extend(nest_ops(params, nr))
                    continue
                ops.extend(self._cached_nest_ops(spec, job, nr))
            out.append(ops)
        return out

    def _cached_nest_ops(self, spec: JobSpec, job: Job, nr) -> list[SimOp]:
        """`nest_ops` with the shared tile cache in the read path.

        Tile keys are ``workload:n:file_base`` + (repetition, run)
        regions: repetitions of a weighted trace model *different* rows
        of the same walk, so they do not self-hit within a job, while a
        later job replaying the same workload at the same size hits the
        same keys — cross-job (and cross-tenant-namespace) reuse, which
        is the shared cache's whole purpose.
        """
        params = self.profile.params
        cache = self.cache
        esz = params.element_size
        ops: list[SimOp] = []
        reps = max(1, nr.trace_weight)
        trace = nr.trace or []
        compute_rep = nr.stats.compute_time_s / reps
        n_calls = len(trace)
        if n_calls == 0:
            if compute_rep > 0.0:
                ops.extend(
                    SimOp("compute", duration_s=compute_rep)
                    for _ in range(reps)
                )
            return ops
        chunk = compute_rep / (n_calls + 1)
        for rep in range(reps):
            for base, off, ln, is_write in trace:
                if chunk > 0.0:
                    ops.append(SimOp("compute", duration_s=chunk))
                svc = params.call_time(int(ln) * esz)
                op = SimOp(
                    "io",
                    resource=io_node_of(params, int(base) + int(off)),
                    service_s=svc,
                    is_write=bool(is_write),
                )
                name = f"{spec.workload}:{spec.n}:{int(base)}"
                region = ((rep, rep), (int(off), int(off) + int(ln) - 1))
                if is_write:
                    ops.append(op)
                    cache.invalidate(spec.tenant, name, region)
                    continue
                if cache.lookup(spec.tenant, name, region) is not None:
                    job.cache_hits += 1
                    job.cache_saved_s += svc
                    continue
                ops.append(op)
                cache.insert(spec.tenant, name, region, cost_s=svc)
            if chunk > 0.0:
                ops.append(SimOp("compute", duration_s=chunk))
        return ops


def serve_script(
    profile: ClusterProfile,
    script: WorkloadScript,
    policy: ServePolicy | None = None,
    *,
    faults: FaultConfig | None = None,
    obs: Observability | None = None,
) -> ServeResult:
    """One-call convenience: build a scheduler and replay the script."""
    return JobScheduler(profile, policy, faults=faults, obs=obs).run(script)
