"""A shared, isolation-aware tile cache for multi-tenant serving.

One :class:`~repro.cache.tile_cache.TileCache` holds every tenant's
tiles (one budget, one recency clock, one eviction policy), but the
serving layer cannot let tenants fight over it freely: a tenant that
storms the cache with a huge working set would evict everyone else and
convert *their* hits back into file I/O.  :class:`SharedTileCache`
wraps the pool with the two rules that make sharing safe:

- **reserved quotas** — each tenant's ``cache_quota_elements`` is a
  floor: another tenant's insertions may only evict this tenant's tiles
  while its residency stays **at or above** its reservation.  The
  unreserved remainder of the budget is a best-effort common pool any
  tenant may fill (and be evicted from).
- **namespacing** — keys are ``tenant ⊕ array``, so tenants never
  alias each other's tiles even when they run the same workload.

Within those constraints the victim *choice* is still delegated to the
pool's normal eviction policy (LRU by default) over the legally
evictable candidates, so the shared cache inherits the single-tenant
cache's behavior exactly when only one tenant is active.

The serving cache holds **clean read tiles only** (the scheduler
invalidates on writes), so evictions never owe write-backs and the
wrapper never performs I/O — same division of authority as the
underlying :class:`TileCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..cache import CacheBudgetError, TileCache, regions_overlap
from ..cache.tile_cache import CacheEntry
from ..runtime.ooc_array import Region, region_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry

#: key namespace separator — NUL can appear in no array name
_SEP = "\x00"


def _ns(tenant: str, name: str) -> str:
    return f"{tenant}{_SEP}{name}"


def _owner(entry: CacheEntry) -> str:
    return entry.name.split(_SEP, 1)[0]


@dataclass
class TenantCacheStats:
    """Per-tenant view of the shared pool's activity."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    #: insertions declined because no legal victim set could make room
    rejected: int = 0
    #: this tenant's tiles evicted (by anyone, incl. itself)
    evictions: int = 0
    #: subset of ``evictions`` triggered by another tenant's insertion
    evicted_by_others: int = 0
    #: serial I/O seconds its hits avoided (priced like the miss)
    saved_io_s: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "evicted_by_others": self.evicted_by_others,
            "saved_io_s": self.saved_io_s,
        }


class SharedTileCache:
    """Cross-tenant tile pool with reserved-quota isolation.

    ``quotas`` maps tenant name → reserved elements; their sum must fit
    in ``budget_elements`` (the remainder is the common pool).  Both are
    validated with named :class:`~repro.cache.CacheBudgetError`\\ s.
    """

    def __init__(
        self,
        budget_elements: int,
        quotas: Mapping[str, int],
        *,
        policy: str = "lru",
    ):
        self._cache = TileCache(budget_elements, policy)
        self.quotas: dict[str, int] = {}
        for tenant, quota in quotas.items():
            try:
                quota = int(quota)
            except (TypeError, ValueError):
                raise CacheBudgetError(
                    f"tenant {tenant!r} cache quota must be an element "
                    f"count, got {quota!r}"
                ) from None
            if quota < 0:
                raise CacheBudgetError(
                    f"tenant {tenant!r} cache quota must be >= 0, "
                    f"got {quota!r}"
                )
            self.quotas[tenant] = quota
        reserved = sum(self.quotas.values())
        if reserved > self.budget:
            raise CacheBudgetError(
                f"tenant cache quotas sum to {reserved} elements, "
                f"exceeding the shared budget of {self.budget}"
            )
        self._usage: dict[str, int] = {t: 0 for t in self.quotas}
        self.tenant_stats: dict[str, TenantCacheStats] = {
            t: TenantCacheStats() for t in self.quotas
        }

    # -- sizing -------------------------------------------------------------

    @property
    def budget(self) -> int:
        return self._cache.budget

    @property
    def in_use(self) -> int:
        return self._cache.in_use

    @property
    def common_pool(self) -> int:
        """Unreserved elements any tenant may use best-effort."""
        return self.budget - sum(self.quotas.values())

    def reserved(self, tenant: str) -> int:
        return self.quotas[self._known(tenant)]

    def usage(self, tenant: str) -> int:
        return self._usage[self._known(tenant)]

    def limit(self, tenant: str) -> int:
        """The most this tenant may ever hold: its reservation plus the
        whole common pool."""
        return self.reserved(tenant) + self.common_pool

    def _known(self, tenant: str) -> str:
        if tenant not in self.quotas:
            raise CacheBudgetError(
                f"unknown tenant {tenant!r}; quota-registered tenants: "
                f"{sorted(self.quotas)}"
            )
        return tenant

    def __len__(self) -> int:
        return len(self._cache)

    def entries(self) -> Iterable[CacheEntry]:
        return iter(self._cache)

    # -- the demand path ----------------------------------------------------

    def lookup(self, tenant: str, name: str, region: Region) -> CacheEntry | None:
        """Demand access in the tenant's namespace; counts the hit or
        miss against both the pool and the tenant."""
        stats = self.tenant_stats[self._known(tenant)]
        entry = self._cache.lookup(_ns(tenant, name), region)
        if entry is None:
            stats.misses += 1
        else:
            stats.hits += 1
            stats.saved_io_s += entry.cost_s
        return entry

    def insert(
        self, tenant: str, name: str, region: Region, *, cost_s: float = 0.0
    ) -> bool:
        """Insert a clean read tile for ``tenant``; returns acceptance.

        Declined (never an error) when the tile exceeds the tenant's
        limit or when making room would require evicting another tenant
        below its reservation — isolation beats occupancy.
        """
        tenant = self._known(tenant)
        stats = self.tenant_stats[tenant]
        size = region_size(region)
        if size > self.limit(tenant):
            stats.rejected += 1
            return False
        key = _ns(tenant, name)
        if self._cache.peek(key, region) is not None:
            # refresh-in-place: no size change, no room needed
            self._cache.insert(key, region, None, cost_s=cost_s)
            return True
        if not self._make_room(tenant, size):
            stats.rejected += 1
            return False
        accepted, writeback = self._cache.insert(
            key, region, None, cost_s=cost_s
        )
        assert accepted and not writeback, "room was made above"
        self._usage[tenant] += size
        stats.insertions += 1
        return True

    def invalidate(self, tenant: str, name: str, region: Region) -> int:
        """Drop this tenant's entries overlapping a written region;
        returns how many were dropped.  Never touches other tenants."""
        tenant = self._known(tenant)
        key = _ns(tenant, name)
        victims = [
            e
            for e in self._cache
            if e.name == key and regions_overlap(e.region, region)
        ]
        for e in victims:
            self._cache.evict_entry(e.name, e.region)
            self._usage[tenant] -= e.size
        return len(victims)

    def _evictable(self, by: str, entry: CacheEntry) -> bool:
        """May an insertion by tenant ``by`` evict this entry?  Own
        entries always; a foreign owner only while eviction leaves it at
        or above its reservation."""
        owner = _owner(entry)
        if owner == by:
            return True
        return self._usage[owner] - entry.size >= self.quotas[owner]

    def _make_room(self, tenant: str, size: int) -> bool:
        cache = self._cache
        while True:
            over_pool = cache.in_use + size > self.budget
            over_own = self._usage[tenant] + size > self.limit(tenant)
            if not over_pool and not over_own:
                return True
            if over_own:
                # only shrinking its own residency helps
                candidates = [e for e in cache if _owner(e) == tenant]
            else:
                candidates = [e for e in cache if self._evictable(tenant, e)]
            if not candidates:
                return False
            victim = cache.policy.victim(candidates)
            owner = _owner(victim)
            cache.evict_entry(victim.name, victim.region)
            self._usage[owner] -= victim.size
            self.tenant_stats[owner].evictions += 1
            if owner != tenant:
                self.tenant_stats[owner].evicted_by_others += 1

    # -- reporting ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._cache.metrics.hits

    @property
    def misses(self) -> int:
        return self._cache.metrics.misses

    @property
    def evictions(self) -> int:
        return self._cache.metrics.evictions

    @property
    def saved_io_s(self) -> float:
        return sum(s.saved_io_s for s in self.tenant_stats.values())

    def summary_dict(self) -> dict[str, object]:
        """JSON-ready summary for :meth:`ServeResult.summary_dict` and
        the rendered report's shared-cache line."""
        return {
            "budget_elements": self.budget,
            "in_use_elements": self.in_use,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "saved_io_s": self.saved_io_s,
            "tenants": {
                t: dict(self.tenant_stats[t].to_dict(), usage=self._usage[t])
                for t in sorted(self.quotas)
            },
        }

    def publish_metrics(
        self, registry: "MetricsRegistry", prefix: str = "serve.cache"
    ) -> None:
        """Publish pool occupancy plus per-tenant counters as gauges."""
        self._cache.publish_metrics(registry, prefix)
        for tenant in sorted(self.quotas):
            stats = self.tenant_stats[tenant]
            labels = {"tenant": tenant}
            registry.gauge(f"{prefix}.tenant_usage", **labels).set(
                self._usage[tenant]
            )
            registry.gauge(f"{prefix}.tenant_reserved", **labels).set(
                self.quotas[tenant]
            )
            for name, value in stats.to_dict().items():
                registry.gauge(f"{prefix}.tenant_{name}", **labels).set(value)
