"""Cluster, tenant and policy models of the serving layer.

Everything here is pure, validated data in the style of the Helix-class
cluster simulators: a :class:`ClusterProfile` describes one shared
machine (compute-node pool, :class:`~repro.runtime.params.MachineParams`
for the parallel file system, a shared tile-cache budget) plus the
tenants admitted to it; a :class:`TenantConfig` carries one tenant's
fair-share weight and resource budgets; a :class:`ServePolicy` picks the
scheduling discipline; a :class:`WorkloadScript` is a seeded, replayable
request log.  Validation failures raise the named
:class:`ServeConfigError` (the :class:`~repro.runtime.params
.MachineParams` pattern) so a bad profile fails at construction, never
as a silent mis-schedule.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import asdict, dataclass, field
from typing import IO, Mapping

from ..optimizer.strategies import VERSION_NAMES
from ..runtime import MachineParams


class ServeConfigError(ValueError):
    """An invalid serving profile, policy or workload script."""


#: scheduling disciplines of :class:`ServePolicy`
FAIRNESS_POLICIES = ("fifo", "wfq")


def _check_positive(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ServeConfigError(
            f"{name} must be finite and positive, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity, fair-share weight and budgets.

    ``weight``
        weighted-fair share: a tenant with weight 2 accrues virtual time
        half as fast as a weight-1 tenant for the same service, so it is
        scheduled twice as often under the ``wfq`` policy.
    ``memory_budget_elements``
        cap on the summed executor memory (elements, across all of the
        tenant's in-flight jobs); ``None`` leaves memory unmetered.
    ``cache_quota_elements``
        the tenant's *reserved* share of the cluster's shared tile
        cache — the floor below which no other tenant's insertions can
        evict it (:class:`repro.serve.SharedTileCache`).
    ``max_inflight``
        admission cap on concurrently running jobs; ``None`` is
        unlimited.
    """

    name: str
    weight: float = 1.0
    memory_budget_elements: int | None = None
    cache_quota_elements: int = 0
    max_inflight: int | None = None

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ServeConfigError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        _check_positive(f"tenant {self.name!r} weight", self.weight)
        if self.memory_budget_elements is not None and (
            self.memory_budget_elements <= 0
        ):
            raise ServeConfigError(
                f"tenant {self.name!r} memory_budget_elements must be "
                f"positive, got {self.memory_budget_elements!r}"
            )
        if self.cache_quota_elements < 0:
            raise ServeConfigError(
                f"tenant {self.name!r} cache_quota_elements must be >= 0, "
                f"got {self.cache_quota_elements!r}"
            )
        if self.max_inflight is not None and self.max_inflight <= 0:
            raise ServeConfigError(
                f"tenant {self.name!r} max_inflight must be positive, "
                f"got {self.max_inflight!r}"
            )


@dataclass(frozen=True)
class ClusterProfile:
    """The shared machine the scheduler multiplexes tenants onto.

    ``n_compute_nodes`` bounds concurrency (each job occupies its
    ``n_nodes`` for its whole served lifetime); the
    :class:`~repro.runtime.params.MachineParams` describe the parallel
    file system every job's I/O lands on — the ``n_io_nodes`` FIFO
    queues are the shared resource cross-tenant contention plays out on.
    ``cache_budget_elements > 0`` enables the shared cross-tenant tile
    cache; tenant ``cache_quota_elements`` partition it.
    """

    n_compute_nodes: int = 8
    params: MachineParams = field(default_factory=MachineParams)
    tenants: tuple[TenantConfig, ...] = ()
    cache_budget_elements: int = 0

    def __post_init__(self):
        if self.n_compute_nodes <= 0:
            raise ServeConfigError(
                f"n_compute_nodes must be positive, "
                f"got {self.n_compute_nodes!r}"
            )
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ServeConfigError(f"duplicate tenant name(s): {dupes}")
        if self.cache_budget_elements < 0:
            raise ServeConfigError(
                f"cache_budget_elements must be >= 0, "
                f"got {self.cache_budget_elements!r}"
            )
        quotas = sum(t.cache_quota_elements for t in self.tenants)
        if quotas > self.cache_budget_elements:
            raise ServeConfigError(
                f"tenant cache quotas ({quotas} elements) exceed the "
                f"shared cache budget ({self.cache_budget_elements})"
            )

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tenants)

    def tenant(self, name: str) -> TenantConfig:
        for t in self.tenants:
            if t.name == name:
                return t
        raise ServeConfigError(
            f"unknown tenant {name!r}; profiled tenants: "
            f"{sorted(self.tenant_names)}"
        )


@dataclass(frozen=True)
class ServePolicy:
    """Scheduling discipline and job-level resilience of the scheduler.

    ``fairness``
        ``"fifo"`` admits strictly in arrival order (head-of-line
        blocking and all — the naive baseline); ``"wfq"`` runs
        weighted-fair queuing over per-tenant FIFO queues: the eligible
        tenant with the least accrued virtual time goes next, and a
        completed job charges its tenant ``serial_time / weight``.
    ``max_job_retries``
        how many times a job aborted by an injected I/O failure
        (:class:`~repro.faults.TransientIOError`) is re-queued before it
        is marked failed.  Retried attempts re-enter the tenant's own
        queue, so one tenant's crash-looping job can never block another
        tenant's admission.
    """

    fairness: str = "wfq"
    max_job_retries: int = 0

    def __post_init__(self):
        if self.fairness not in FAIRNESS_POLICIES:
            raise ServeConfigError(
                f"unknown fairness policy {self.fairness!r}; "
                f"pick from {FAIRNESS_POLICIES}"
            )
        if self.max_job_retries < 0:
            raise ServeConfigError(
                f"max_job_retries must be >= 0, got {self.max_job_retries!r}"
            )


@dataclass(frozen=True)
class JobSpec:
    """One scripted request: which tenant wants which workload version
    at which virtual arrival time, on how many of the cluster's nodes."""

    tenant: str
    workload: str
    version: str = "c-opt"
    n: int = 24
    n_nodes: int = 1
    arrival_s: float = 0.0

    def __post_init__(self):
        if not self.tenant:
            raise ServeConfigError("job tenant must be non-empty")
        if not self.workload:
            raise ServeConfigError("job workload must be non-empty")
        if self.version not in VERSION_NAMES:
            raise ServeConfigError(
                f"unknown version {self.version!r}; pick from {VERSION_NAMES}"
            )
        if self.n <= 0:
            raise ServeConfigError(f"job n must be positive, got {self.n!r}")
        if self.n_nodes <= 0:
            raise ServeConfigError(
                f"job n_nodes must be positive, got {self.n_nodes!r}"
            )
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ServeConfigError(
                f"job arrival_s must be finite and >= 0, "
                f"got {self.arrival_s!r}"
            )


@dataclass(frozen=True)
class WorkloadScript:
    """A seeded, replayable multi-tenant request log.

    ``seed`` parameterizes everything stochastic downstream (per-job
    fault-plan derivation); the scheduler itself draws nothing — same
    script, same profile, same policy ⇒ identical schedule, stats and
    report, bit for bit.
    """

    seed: int = 0
    jobs: tuple[JobSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "jobs", tuple(self.jobs))


# -- scenario (profile + policy + script) serialization ---------------------


def scenario_to_dict(
    profile: ClusterProfile,
    script: WorkloadScript,
    policy: ServePolicy | None = None,
) -> dict[str, object]:
    """JSON-ready form of one replayable serving scenario."""
    return {
        "cluster": {
            "n_compute_nodes": profile.n_compute_nodes,
            "cache_budget_elements": profile.cache_budget_elements,
            "params": asdict(profile.params),
        },
        "tenants": [asdict(t) for t in profile.tenants],
        "policy": asdict(policy or ServePolicy()),
        "seed": script.seed,
        "jobs": [asdict(j) for j in script.jobs],
    }


def scenario_from_dict(
    doc: Mapping[str, object],
) -> tuple[ClusterProfile, WorkloadScript, ServePolicy]:
    """Inverse of :func:`scenario_to_dict`, with named failures."""
    if not isinstance(doc, Mapping):
        raise ServeConfigError("scenario document must be a JSON object")
    try:
        cluster = dict(doc.get("cluster") or {})
        params = MachineParams(**dict(cluster.pop("params", {}) or {}))
        tenants = tuple(
            TenantConfig(**dict(t)) for t in doc.get("tenants") or ()
        )
        profile = ClusterProfile(
            params=params, tenants=tenants, **cluster
        )
        policy = ServePolicy(**dict(doc.get("policy") or {}))
        script = WorkloadScript(
            seed=int(doc.get("seed", 0)),
            jobs=tuple(JobSpec(**dict(j)) for j in doc.get("jobs") or ()),
        )
    except TypeError as e:
        raise ServeConfigError(f"malformed scenario document: {e}") from None
    return profile, script, policy


def load_scenario(
    path_or_file: str | IO[str],
) -> tuple[ClusterProfile, WorkloadScript, ServePolicy]:
    """Load a scenario JSON written by :func:`scenario_to_dict`."""
    if hasattr(path_or_file, "read"):
        doc = json.load(path_or_file)
    else:
        try:
            with open(path_or_file) as f:
                doc = json.load(f)
        except FileNotFoundError:
            raise ServeConfigError(
                f"scenario file not found: {path_or_file}"
            ) from None
        except json.JSONDecodeError as e:
            raise ServeConfigError(
                f"malformed scenario JSON in {path_or_file}: {e}"
            ) from None
    return scenario_from_dict(doc)


# -- seeded demo scenario ----------------------------------------------------

#: workload mix of the demo generator — small, structurally distinct
DEMO_WORKLOADS = ("adi", "mxm", "trans")


def demo_scenario(
    seed: int = 0,
    *,
    n_tenants: int = 3,
    jobs_per_tenant: int = 3,
    n: int = 16,
    n_compute_nodes: int = 4,
    cache_budget_elements: int = 0,
    fairness: str = "wfq",
) -> tuple[ClusterProfile, WorkloadScript, ServePolicy]:
    """A seeded multi-tenant scenario for the CLI replay and smoke tests.

    All randomness flows through ``random.Random(seed)`` (workload
    choice, arrival spacing, per-tenant weights), so the same seed
    always produces the same scenario — and, through the scheduler's
    determinism contract, the same schedule.
    """
    if n_tenants <= 0 or jobs_per_tenant <= 0:
        raise ServeConfigError(
            "demo scenario needs positive n_tenants and jobs_per_tenant"
        )
    rng = random.Random(seed)
    quota = (
        cache_budget_elements // (2 * n_tenants)
        if cache_budget_elements
        else 0
    )
    tenants = tuple(
        TenantConfig(
            name=f"tenant{i}",
            weight=float(rng.choice((1, 1, 2))),
            cache_quota_elements=quota,
        )
        for i in range(n_tenants)
    )
    jobs = []
    for t in tenants:
        arrival = 0.0
        for _ in range(jobs_per_tenant):
            jobs.append(
                JobSpec(
                    tenant=t.name,
                    workload=rng.choice(DEMO_WORKLOADS),
                    version="c-opt",
                    n=n,
                    n_nodes=rng.choice((1, 2)),
                    arrival_s=arrival,
                )
            )
            arrival += rng.uniform(0.0, 2.0)
    jobs.sort(key=lambda j: (j.arrival_s, j.tenant))
    profile = ClusterProfile(
        n_compute_nodes=n_compute_nodes,
        tenants=tenants,
        cache_budget_elements=cache_budget_elements,
    )
    return (
        profile,
        WorkloadScript(seed=seed, jobs=tuple(jobs)),
        ServePolicy(fairness=fairness),
    )
