"""Multi-tenant serving of optimized out-of-core programs.

The paper's pipeline optimizes and runs one program for one user on one
machine.  This package turns that pipeline into a shared service, in the
mold of the cluster-serving simulators it borrows its vocabulary from:

- :class:`ClusterProfile` / :class:`TenantConfig`
  (:mod:`~repro.serve.profile`) — one simulated machine (compute-node
  pool, the :class:`~repro.runtime.params.MachineParams` parallel file
  system, a shared tile-cache budget) and the tenants multiplexed onto
  it, each with a fair-share weight, an in-flight memory budget and a
  reserved cache quota;
- :class:`JobScheduler` (:mod:`~repro.serve.scheduler`) — admission
  control over per-tenant FIFO queues (naive global FIFO or
  weighted-fair queuing), the queued → admitted → optimizing →
  executing → done/failed job lifecycle, each job running the existing
  ``build_version`` → ``run_version_parallel`` pipeline, and
  contention-aware pricing of every job's traced I/O on the cluster's
  *persistent* per-I/O-node queues;
- :class:`SharedTileCache` (:mod:`~repro.serve.shared_cache`) — one
  cross-tenant tile pool built on :class:`repro.cache.TileCache`, with
  reserved-quota isolation: no tenant's insertions can evict another
  below its reservation;
- a replayable CLI — ``python -m repro.serve replay --demo`` (or
  ``--script scenario.json``).

Contracts, matching the rest of the repo:

- **deterministic** — same profile + policy + script (and seed) ⇒
  identical schedule, stats and report, bit for bit; nothing draws from
  the global RNG;
- **exact** — a served job's :class:`~repro.runtime.stats.IOStats` are
  the inner run's stats, untouched: a single-tenant, single-job script
  reproduces the standalone ``run_version_parallel`` fold exactly, and
  the per-tenant summary is the exact fold of its jobs;
- **observable** — pass ``obs=`` to thread the run through
  :mod:`repro.obs` (``serve.*`` counters, queue-delay histograms,
  per-tenant virtual-time tracks, the tenant section of the rendered
  report) and ``faults=`` to compose with :mod:`repro.faults` (per-job
  derived seeds; one tenant's crash-looping job cannot starve another).
"""

from .profile import (
    DEMO_WORKLOADS,
    FAIRNESS_POLICIES,
    ClusterProfile,
    JobSpec,
    ServeConfigError,
    ServePolicy,
    TenantConfig,
    WorkloadScript,
    demo_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .scheduler import (
    JOB_STATES,
    Job,
    JobScheduler,
    ServeResult,
    TenantSummary,
    serve_script,
)
from .shared_cache import SharedTileCache, TenantCacheStats

__all__ = [
    "ClusterProfile",
    "DEMO_WORKLOADS",
    "FAIRNESS_POLICIES",
    "JOB_STATES",
    "Job",
    "JobScheduler",
    "JobSpec",
    "ServeConfigError",
    "ServePolicy",
    "ServeResult",
    "SharedTileCache",
    "TenantCacheStats",
    "TenantConfig",
    "TenantSummary",
    "WorkloadScript",
    "demo_scenario",
    "load_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "serve_script",
]
