"""``python -m repro.serve`` — replay a multi-tenant workload script.

Subcommands:

``replay``
    Replay a scenario (cluster profile + tenant configs + job script)
    against the scheduler and print the deterministic schedule and the
    per-tenant summary.  The scenario comes from ``--script file.json``
    (written by :func:`repro.serve.scenario_to_dict`) or ``--demo``
    (the seeded generator); ``--trace out.json`` additionally exports
    the full observability payload, whose report section renders the
    same tenant table via ``python -m repro.obs report out.json``.

``demo-script``
    Print the seeded demo scenario as JSON — the starting point for a
    hand-edited script.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..obs import Observability
from .profile import (
    FAIRNESS_POLICIES,
    ServeConfigError,
    ServePolicy,
    demo_scenario,
    load_scenario,
    scenario_to_dict,
)
from .scheduler import JobScheduler


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant serving of optimized out-of-core programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    replay = sub.add_parser("replay", help="replay a workload script")
    src = replay.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--script", metavar="FILE", help="scenario JSON to replay"
    )
    src.add_argument(
        "--demo", action="store_true", help="use the seeded demo scenario"
    )
    replay.add_argument(
        "--seed", type=int, default=0, help="demo scenario seed (default 0)"
    )
    replay.add_argument(
        "--fairness",
        choices=FAIRNESS_POLICIES,
        default=None,
        help="override the scenario's scheduling policy",
    )
    replay.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="ELEMENTS",
        help="demo only: shared cache budget in elements (default off)",
    )
    replay.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="export the observability trace (Perfetto JSON + report)",
    )

    demo = sub.add_parser(
        "demo-script", help="print the seeded demo scenario as JSON"
    )
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--cache", type=int, default=0, metavar="ELEMENTS")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "demo-script":
            profile, script, policy = demo_scenario(
                args.seed, cache_budget_elements=args.cache
            )
            print(
                json.dumps(
                    scenario_to_dict(profile, script, policy),
                    indent=1,
                    sort_keys=True,
                )
            )
            return 0

        if args.demo:
            profile, script, policy = demo_scenario(
                args.seed,
                cache_budget_elements=args.cache or 0,
            )
        else:
            profile, script, policy = load_scenario(args.script)
        if args.fairness is not None:
            policy = ServePolicy(
                fairness=args.fairness,
                max_job_retries=policy.max_job_retries,
            )
        obs = Observability() if args.trace else None
        result = JobScheduler(profile, policy, obs=obs).run(script)
        print(result.describe())
        if obs is not None:
            obs.export(args.trace)
            print(f"trace written to {args.trace}")
        return 0
    except ServeConfigError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
