"""Table 3: scalability of the six versions (speedups vs. one node)."""

from __future__ import annotations

from typing import Sequence

from ..optimizer import VERSION_NAMES
from ..workloads import WORKLOADS, workload_names
from .harness import ExperimentSettings, run_table3_block
from .report import fmt, format_table


def table3(
    settings: ExperimentSettings | None = None,
    workloads: Sequence[str] | None = None,
) -> tuple[str, dict[str, dict[str, dict[int, float]]]]:
    """Returns (formatted table, raw speedups[workload][version][p])."""
    settings = settings or ExperimentSettings()
    workloads = list(workloads or workload_names())
    data: dict[str, dict[str, dict[int, float]]] = {}
    rows = []
    for name in workloads:
        block = run_table3_block(name, settings)
        data[name] = block
        label = f"{name}.{WORKLOADS[name].iters}"
        for k, version in enumerate(VERSION_NAMES):
            curve = block[version]
            rows.append(
                [label if k == 0 else "", version]
                + [fmt(curve[p]) for p in settings.table3_nodes]
            )
    table = format_table(
        ["program", "version"] + [str(p) for p in settings.table3_nodes],
        rows,
        title=(
            f"Table 3: speedups vs 1 node (N={settings.n}, "
            f"{settings.params.n_io_nodes} I/O nodes)."
        ),
    )
    return table, data


if __name__ == "__main__":
    print(table3()[0])
