"""Reproduction harness for every table and figure of the paper.

- Table 1 — program characteristics (:mod:`.table1`)
- Table 2 — normalized execution times of the six versions on 16 nodes
  (:mod:`.table2`)
- Table 3 — speedups at 16/32/64/128 nodes (:mod:`.table3`)
- Figure 1 — normalization + interference-graph components (:mod:`.figure1`)
- Figure 2 — file layouts and their hyperplane vectors (:mod:`.figure2`)
- Figure 3 — tile access patterns: traditional vs. out-of-core tiling
  (:mod:`.figure3`)

Run from the command line::

    python -m repro.experiments table2 --n 128

Array extents default to 128 (the paper used 4096 on the Paragon; the
shapes being compared are scale-free, see EXPERIMENTS.md).
"""

from .harness import ExperimentSettings, run_table2_row, run_table3_block
from .table1 import table1
from .table2 import table2
from .table3 import table3
from .figure1 import figure1
from .figure2 import figure2
from .figure3 import figure3

__all__ = [
    "ExperimentSettings",
    "run_table2_row",
    "run_table3_block",
    "table1",
    "table2",
    "table3",
    "figure1",
    "figure2",
    "figure3",
]
