"""Table 2: execution times of the six versions on 16 nodes.

The ``col`` column is the absolute (simulated) time in seconds; every
other column is a percentage of ``col``, exactly as the paper presents
it, with the per-column average row at the bottom.
"""

from __future__ import annotations

from typing import Sequence

from ..optimizer import VERSION_NAMES
from ..workloads import workload_names
from .harness import ExperimentSettings, normalize_row, run_table2_row
from .report import arithmetic_mean, fmt, format_table


def table2(
    settings: ExperimentSettings | None = None,
    workloads: Sequence[str] | None = None,
) -> tuple[str, dict[str, dict[str, float]]]:
    """Returns (formatted table, raw normalized data)."""
    settings = settings or ExperimentSettings()
    workloads = list(workloads or workload_names())
    data: dict[str, dict[str, float]] = {}
    rows = []
    for name in workloads:
        times = run_table2_row(name, settings)
        norm = normalize_row(times)
        data[name] = norm
        rows.append(
            [name]
            + [
                fmt(norm[v], 2 if v == "col" else 1)
                for v in VERSION_NAMES
            ]
        )
    averages = ["average:"] + [
        ""
        if v == "col"
        else fmt(arithmetic_mean([data[w][v] for w in workloads]))
        for v in VERSION_NAMES
    ]
    rows.append(averages)
    table = format_table(
        ["program"] + list(VERSION_NAMES),
        rows,
        title=(
            f"Table 2: results on {settings.table2_nodes} nodes "
            f"(N={settings.n}; col in simulated seconds, others % of col)."
        ),
    )
    return table, data


if __name__ == "__main__":
    print(table2()[0])
