"""Command-line entry: ``python -m repro.experiments <what> [--n N]``."""

from __future__ import annotations

import argparse
import sys

from .harness import ExperimentSettings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "what",
        choices=[
            "table1", "table2", "table3",
            "figure1", "figure2", "figure3",
            "compare", "all",
        ],
    )
    parser.add_argument(
        "--n", type=int, default=128,
        help="array extent per dimension (paper: 4096; default 128)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None,
        help="subset of codes (default: all ten)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the raw results as JSON (table2/table3 only)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the raw results as CSV (table2/table3 only)",
    )
    args = parser.parse_args(argv)
    settings = ExperimentSettings(n=args.n)

    def export(kind: str, data) -> None:
        from . import export as ex

        if args.json:
            fn = ex.table2_to_json if kind == "table2" else ex.table3_to_json
            with open(args.json, "w") as f:
                f.write(fn(data, settings))
        if args.csv:
            fn = ex.table2_to_csv if kind == "table2" else ex.table3_to_csv
            with open(args.csv, "w") as f:
                f.write(fn(data))

    def emit(text: str) -> None:
        print(text)
        print()

    targets = (
        ["table1", "figure1", "figure2", "figure3", "table2", "table3"]
        if args.what == "all"
        else [args.what]
    )
    for what in targets:
        if what == "table1":
            from .table1 import table1

            emit(table1())
        elif what == "table2":
            from .table2 import table2

            text, data = table2(settings, args.workloads)
            emit(text)
            export("table2", data)
        elif what == "table3":
            from .table3 import table3

            text, data = table3(settings, args.workloads)
            emit(text)
            export("table3", data)
        elif what == "figure1":
            from .figure1 import figure1

            emit(figure1())
        elif what == "figure2":
            from .figure2 import figure2

            emit(figure2())
        elif what == "figure3":
            from .figure3 import figure3

            emit(figure3()[0])
        elif what == "compare":
            from .compare import table2_scorecard

            emit(table2_scorecard(settings)[0])
    return 0


if __name__ == "__main__":
    sys.exit(main())
