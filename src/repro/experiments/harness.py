"""Shared experiment driver: build a version, run it on p nodes, time it."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..optimizer import VERSION_NAMES, build_version
from ..parallel import run_version_parallel
from ..runtime import MachineParams
from ..workloads import build_workload


PAPER_N = 4096


def _scaled_params(n: int, base: MachineParams | None = None) -> MachineParams:
    """Preserve the paper's geometry at reduced array sizes.

    Every byte-sized machine constant in the evaluation is a multiple of
    an array *row* (8·4096 = 32 KB on the Paragon setup): the PFS stripe
    is 2 rows (64 KB), the maximum request 128 rows (4 MB), the sieve
    break-even window (latency × bandwidth = 45 KB) ~1.4 rows, and the
    per-node memory 1/128th of the data = 96 rows per array-triple.
    Running at a reduced N with the raw byte constants would break all
    of these ratios at once (e.g. a whole node's data inside a single
    stripe, so 2 of 64 I/O nodes serve everything).  We therefore scale
    stripe / request / sieve sizes by N/4096 and the memory fraction
    likewise, keeping rows-per-tile and stripes-per-array — and with
    them every normalized comparison — at the paper's geometry.
    """
    from dataclasses import replace

    base = base or MachineParams()
    scale = n / PAPER_N
    fraction = max(4, base.memory_fraction * n // PAPER_N)
    stripe = max(4 * base.element_size, int(base.stripe_bytes * scale))
    max_req = max(stripe, int(base.max_request_bytes * scale))
    # the per-call latency on the Paragon is ~1.4 row-transfer times; a
    # fixed latency against 32x smaller rows would overweight call counts
    latency = base.io_latency_s * scale
    sieve_gap = int(latency * base.io_bandwidth_bps)
    sieve_buffer = max(stripe, int(64 * 1024 * scale))
    return replace(
        base,
        memory_fraction=fraction,
        stripe_bytes=stripe,
        max_request_bytes=max_req,
        io_latency_s=latency,
        sieve_gap_bytes=sieve_gap,
        sieve_buffer_bytes=sieve_buffer,
    )


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs of the evaluation setup (paper Section 4).

    ``n`` scales every array dimension (paper: 4096 doubles per dim on
    the Paragon; default 128 keeps a full sweep in seconds while the
    normalized comparisons are scale-free).  Memory per node is the
    scaled fraction of the total out-of-core data (see
    :func:`_scaled_params`).
    """

    n: int = 128
    params: MachineParams = None  # type: ignore[assignment]
    table2_nodes: int = 16
    table3_nodes: tuple[int, ...] = (16, 32, 64, 128)

    def __post_init__(self):
        if self.params is None:
            object.__setattr__(self, "params", _scaled_params(self.n))

    def with_n(self, n: int) -> "ExperimentSettings":
        return ExperimentSettings(
            n=n,
            params=None,
            table2_nodes=self.table2_nodes,
            table3_nodes=self.table3_nodes,
        )


def run_table2_row(
    workload: str,
    settings: ExperimentSettings | None = None,
    versions: Sequence[str] = VERSION_NAMES,
) -> dict[str, float]:
    """Absolute simulated times (seconds) of each version of one code on
    ``table2_nodes`` compute nodes."""
    settings = settings or ExperimentSettings()
    program = build_workload(workload, settings.n)
    out: dict[str, float] = {}
    for version in versions:
        cfg = build_version(
            version,
            program,
            params=settings.params,
            n_nodes=settings.table2_nodes,
        )
        run = run_version_parallel(
            cfg, settings.table2_nodes, params=settings.params
        )
        out[version] = run.time_s
    return out


def normalize_row(times: Mapping[str, float]) -> dict[str, float]:
    """The paper's Table 2 presentation: ``col`` in seconds, the rest as
    a percentage of ``col``."""
    base = times["col"]
    return {
        v: (t if v == "col" else 100.0 * t / base) for v, t in times.items()
    }


def run_table3_block(
    workload: str,
    settings: ExperimentSettings | None = None,
    versions: Sequence[str] = VERSION_NAMES,
) -> dict[str, dict[int, float]]:
    """Speedups (vs. the same version on one node) per version and node
    count for one code."""
    settings = settings or ExperimentSettings()
    program = build_workload(workload, settings.n)
    out: dict[str, dict[int, float]] = {}
    for version in versions:
        # rebuild per node count: h-opt sizes its chunks for the per-node
        # tiles (the hand optimizer would, too)
        base_cfg = build_version(
            version, program, params=settings.params, n_nodes=1
        )
        base = run_version_parallel(base_cfg, 1, params=settings.params)
        curve: dict[int, float] = {}
        for p in settings.table3_nodes:
            cfg = build_version(
                version, program, params=settings.params, n_nodes=p
            )
            run = run_version_parallel(cfg, p, params=settings.params)
            curve[p] = base.time_s / run.time_s if run.time_s else float("inf")
        out[version] = curve
    return out
