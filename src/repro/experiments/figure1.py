"""Figure 1: normalization + interference graph + connected components.

Rebuilds the paper's example — two imperfectly nested loop trees over
arrays U, V, W and X, Y — runs step (1) (fusion / distribution / code
sinking) and step (2) (interference graph, connected components), and
renders the outcome.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from ..optimizer import connected_components
from ..transforms import normalize_program


def figure1_program() -> Program:
    """The example of Figure 1: the first tree fuses (U, V, W), the
    second distributes (X, Y)."""
    b = ProgramBuilder("figure1", params=("N",), default_binding={"N": 8})
    N = b.param("N")
    U = b.array("U", (N, N))
    V = b.array("V", (N, N))
    W = b.array("W", (N, N))
    X = b.array("X", (N, N))
    Y = b.array("Y", (N, N))
    # imperfect nest 1: two inner j-loops under one i-loop -> fusion
    with b.tree("imperfect1") as t:
        with t.loop("i", 1, N) as ti:
            with t.loop("j", 1, N) as tj:
                t.assign(U[ti, tj], V[tj, ti] + 1.0)
            with t.loop("j2", 1, N) as tj2:
                t.assign(W[ti, tj2], V[ti, tj2] + 2.0)
    # nest 2: two statements in one body -> loop distribution splits them
    with b.tree("imperfect2") as t:
        with t.loop("i", 1, N) as ti:
            with t.loop("j", 1, N) as tj:
                t.assign(X[ti, tj], X[ti, tj] + Y[tj, ti])
                t.assign(Y[ti, tj], Y[ti, tj] * 0.5)
    return b.build()


def figure1() -> str:
    from ..transforms import distribute

    program = figure1_program()
    normalized = normalize_program(program)
    distributed = normalized.with_nests(
        [piece for nest in normalized.nests for piece in distribute(nest)]
    )
    comps = connected_components(distributed)
    normalized = distributed
    lines = [
        "Figure 1: example application of the file locality optimization "
        "algorithm.",
        "",
        "original (imperfect) loop trees:",
    ]
    for tree in program.trees:
        lines.append(tree.pretty(1))
        lines.append("")
    lines.append(
        f"after normalization (fusion/distribution/sinking): "
        f"{len(normalized.nests)} perfect nests"
    )
    for nest in normalized.nests:
        lines.append(f"  nest {nest.name}: arrays {sorted(nest.arrays())}")
    lines.append("")
    lines.append(f"interference graph: {len(comps)} connected component(s)")
    for k, (nests, arrays) in enumerate(comps, 1):
        lines.append(f"  component {k}: nests {nests} <-> arrays {arrays}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(figure1())
