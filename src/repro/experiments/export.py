"""Export experiment results as JSON or CSV (for plotting/regression)."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from typing import Mapping

from ..optimizer import VERSION_NAMES
from .harness import ExperimentSettings


def _settings_record(settings: ExperimentSettings) -> dict:
    return {
        "n": settings.n,
        "table2_nodes": settings.table2_nodes,
        "table3_nodes": list(settings.table3_nodes),
        "machine": asdict(settings.params),
    }


def table2_to_json(
    data: Mapping[str, Mapping[str, float]],
    settings: ExperimentSettings,
) -> str:
    """``data`` as returned by :func:`repro.experiments.table2.table2`."""
    return json.dumps(
        {
            "experiment": "table2",
            "settings": _settings_record(settings),
            "columns": list(VERSION_NAMES),
            "rows": {w: dict(vals) for w, vals in data.items()},
        },
        indent=2,
        sort_keys=True,
    )


def table2_to_csv(data: Mapping[str, Mapping[str, float]]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["program"] + list(VERSION_NAMES))
    for w, vals in data.items():
        writer.writerow([w] + [f"{vals[v]:.3f}" for v in VERSION_NAMES])
    return out.getvalue()


def table3_to_json(
    data: Mapping[str, Mapping[str, Mapping[int, float]]],
    settings: ExperimentSettings,
) -> str:
    return json.dumps(
        {
            "experiment": "table3",
            "settings": _settings_record(settings),
            "speedups": {
                w: {v: {str(p): s for p, s in curve.items()}
                    for v, curve in block.items()}
                for w, block in data.items()
            },
        },
        indent=2,
        sort_keys=True,
    )


def table3_to_csv(
    data: Mapping[str, Mapping[str, Mapping[int, float]]]
) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    node_counts = sorted(
        {p for block in data.values() for curve in block.values() for p in curve}
    )
    writer.writerow(["program", "version"] + [str(p) for p in node_counts])
    for w, block in data.items():
        for v, curve in block.items():
            writer.writerow(
                [w, v] + [f"{curve.get(p, float('nan')):.3f}" for p in node_counts]
            )
    return out.getvalue()
