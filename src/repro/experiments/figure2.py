"""Figure 2: example file layouts and their hyperplane vectors.

Renders each layout's file order on a small array: cell (i, j) shows
the file slot the element occupies, making the hyperplane structure
visible (rows, columns, diagonals, blocks stored consecutively).
"""

from __future__ import annotations

import numpy as np

from ..layout import (
    BlockedLayout,
    Layout,
    antidiagonal,
    col_major,
    diagonal,
    row_major,
)

from ..layout import LinearLayout

FIGURE2_LAYOUTS: list[tuple[str, str, Layout]] = [
    ("row-major", "(1, 0)", row_major(2)),
    ("column-major", "(0, 1)", col_major(2)),
    ("diagonal", "(1, -1)", diagonal()),
    ("anti-diagonal", "(1, 1)", antidiagonal()),
    ("blocked (2x2 chunks)", "per-block", BlockedLayout((2, 2))),
    # the paper's example of an arbitrary hyperplane family (§3.2.1)
    ("general hyperplane", "(7, 4)", LinearLayout.from_hyperplane((7, 4))),
]


def render_layout(layout: Layout, n: int = 4) -> str:
    am = layout.address_map((n, n))
    idx = np.indices((n, n)).reshape(2, -1).T
    addrs = am.address(idx)
    # renumber by file order so the display is 0..n^2-1 even when the
    # bounding box leaves holes (diagonal layouts)
    order = {int(a): k for k, a in enumerate(np.sort(np.unique(addrs)))}
    grid = addrs.reshape(n, n)
    width = len(str(n * n - 1))
    lines = []
    for i in range(n):
        lines.append(
            " ".join(str(order[int(grid[i, j])]).rjust(width) for j in range(n))
        )
    return "\n".join(lines)


def figure2(n: int = 4) -> str:
    lines = [
        "Figure 2: example file layouts and their hyperplane vectors.",
        f"(cell (i,j) shows the element's position in file order; {n}x{n})",
    ]
    for name, g, layout in FIGURE2_LAYOUTS:
        lines.append("")
        lines.append(f"{name} — hyperplane {g}:")
        lines.append(render_layout(layout, n))
    return "\n".join(lines)


if __name__ == "__main__":
    print(figure2())
