"""Figure 3: tile access patterns — traditional vs. out-of-core tiling.

The paper's setting: 8x8 arrays, 32 elements of memory shared by the two
arrays of a nest, at most 8 elements per I/O call.  Traditional tiling
uses 4x4 tiles and needs **4** I/O calls to read a tile of the
column-major array V; the paper's tiling (all but the innermost loop)
uses 2x8 / 8x2 tiles and needs only **2** calls for the same amount of
memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import OOCExecutor
from ..ir import Program, ProgramBuilder
from ..layout import col_major, row_major
from ..runtime import (
    IOContext,
    MachineParams,
    OutOfCoreArray,
    ParallelFileSystem,
)
from ..transforms import ooc_tiling, traditional_tiling

#: the paper's machine for this figure: <=8 elements per call
FIGURE3_PARAMS = MachineParams(
    n_io_nodes=4,
    stripe_bytes=8 * 8,
    io_latency_s=1.0,
    io_bandwidth_bps=1e12,  # latency-dominated: time == #calls
    max_request_bytes=8 * 8,
)

MEMORY_ELEMENTS = 32
N = 8


@dataclass
class Figure3Result:
    calls_per_tile_traditional: int
    calls_per_tile_ooc: int
    total_calls_traditional: int
    total_calls_ooc: int


def _program() -> Program:
    """The first nest of the Section 3.1 fragment (0-based, 8x8)."""
    b = ProgramBuilder("figure3", params=("N",), default_binding={"N": N})
    Np = b.param("N")
    U = b.array("U", (Np, Np), one_based=False)
    V = b.array("V", (Np, Np), one_based=False)
    with b.nest("nest1") as nb:
        i = nb.loop("i", 0, Np - 1)
        j = nb.loop("j", 0, Np - 1)
        nb.assign(U[i, j], V[j, i] + 1.0)
    return b.build()


def render_tile_access(
    arr: OutOfCoreArray, region, params: MachineParams
) -> str:
    """ASCII version of the paper's Figure 3 diagrams: each accessed
    element shows the 1-based index of the I/O call fetching it; dots
    are untouched elements."""
    import numpy as np

    from ..runtime.ooc_array import runs_of

    addrs = arr.addresses(region)
    offsets, lengths = runs_of(addrs)
    maxe = params.max_request_elements
    call_of_addr: dict[int, int] = {}
    call = 0
    for off, ln in zip(offsets.tolist(), lengths.tolist()):
        pos = 0
        while pos < ln:
            call += 1
            for a in range(off + pos, off + min(pos + maxe, ln)):
                call_of_addr[a] = call
            pos += maxe
    rows, cols = arr.shape
    grid = []
    addr_map = arr.addresses(tuple((0, s - 1) for s in arr.shape)).reshape(
        arr.shape
    )
    in_region = np.zeros(arr.shape, dtype=bool)
    (r0, r1), (c0, c1) = region
    in_region[r0 : r1 + 1, c0 : c1 + 1] = True
    for r in range(rows):
        cells = []
        for c in range(cols):
            if in_region[r, c]:
                cells.append(str(call_of_addr[int(addr_map[r, c])]))
            else:
                cells.append(".")
        grid.append(" ".join(x.rjust(2) for x in cells))
    return "\n".join(grid)


def per_tile_calls() -> tuple[int, int]:
    """Direct reproduction of the paper's counts: reading one data tile
    of the column-major array V."""
    params = FIGURE3_PARAMS
    pfs = ParallelFileSystem(params)
    v = OutOfCoreArray.create("V", (N, N), col_major(2), pfs, real=False)
    # (a) traditional tiling: a 4x4 tile -> 4 calls of 4 elements
    ctx_a = IOContext(params)
    calls_a = v.count_tile_io(((0, 3), (0, 3)), ctx_a, is_write=False)
    # (b) tile all but the innermost loop: an 8x2 tile (16 elements,
    # file-contiguous under column-major) -> 2 calls of 8
    ctx_b = IOContext(params)
    calls_b = v.count_tile_io(((0, 7), (0, 1)), ctx_b, is_write=False)
    return calls_a, calls_b


def figure3() -> tuple[str, Figure3Result]:
    calls_a, calls_b = per_tile_calls()
    params = FIGURE3_PARAMS
    pfs = ParallelFileSystem(params)
    v = OutOfCoreArray.create("Vr", (N, N), col_major(2), pfs, real=False)
    pattern_a = render_tile_access(v, ((0, 3), (0, 3)), params)
    pattern_b = render_tile_access(v, ((0, 7), (0, 1)), params)
    program = _program()
    layouts = {"U": row_major(2), "V": col_major(2)}
    runs = {}
    for label, tiling in (
        ("traditional", traditional_tiling),
        ("ooc", ooc_tiling),
    ):
        ex = OOCExecutor(
            program,
            layouts,
            params=FIGURE3_PARAMS,
            real=False,
            tiling=tiling,
            memory_budget=MEMORY_ELEMENTS,
        )
        runs[label] = ex.run()
    result = Figure3Result(
        calls_per_tile_traditional=calls_a,
        calls_per_tile_ooc=calls_b,
        total_calls_traditional=runs["traditional"].stats.calls,
        total_calls_ooc=runs["ooc"].stats.calls,
    )
    text = "\n".join(
        [
            "Figure 3: different tile access patterns "
            "(8x8 arrays, 32-element memory, <=8 elements per I/O call).",
            "",
            f"(a) traditional tiling, 4x4 tile of column-major V: "
            f"{calls_a} I/O calls (paper: 4)",
            "    (cell = index of the I/O call fetching the element)",
            pattern_a,
            "",
            f"(b) all-but-innermost tiling, 8x2 tile of V: "
            f"{calls_b} I/O calls (paper: 2)",
            pattern_b,
            "",
            f"whole nest1, traditional tiling: "
            f"{result.total_calls_traditional} calls",
            f"whole nest1, out-of-core tiling: "
            f"{result.total_calls_ooc} calls",
        ]
    )
    return text, result


if __name__ == "__main__":
    print(figure3()[0])
