"""Plain-text table formatting matching the paper's presentation."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, decimals: int = 1) -> str:
    return f"{value:.{decimals}f}"


def geometric_mean(values: Sequence[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values)) if values else float("nan")


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")
