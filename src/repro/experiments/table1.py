"""Table 1: the programs used in the experiments."""

from __future__ import annotations

from ..workloads import WORKLOADS
from .report import format_table


def table1() -> str:
    rows = [
        [meta.name, meta.source, str(meta.iters), meta.arrays]
        for meta in WORKLOADS.values()
    ]
    return format_table(
        ["program", "source", "iter", "arrays"],
        rows,
        title="Table 1: Programs used in our experiments.",
    )


if __name__ == "__main__":
    print(table1())
