"""The reproduction scorecard: paper vs. measured, side by side.

For Table 2 the comparison is per-code and per-version; since absolute
cost-model magnitudes differ (EXPERIMENTS.md), the score focuses on the
*qualitative agreements* the paper's conclusions rest on:

- the direction of each version vs. ``col`` (improves / neutral / hurts),
- per-code version orderings (who wins),
- the global average ordering.

``python -m repro.experiments compare`` prints the scorecard.
"""

from __future__ import annotations

from typing import Mapping

from ..optimizer import VERSION_NAMES
from .harness import ExperimentSettings, normalize_row, run_table2_row
from .paper_data import PAPER_TABLE2, PAPER_TABLE2_AVERAGES
from .report import arithmetic_mean, format_table

_NEUTRAL_BAND = 7.5  # percentage points around 100 treated as "neutral"


def _classify(pct: float) -> str:
    if pct < 100 - _NEUTRAL_BAND:
        return "improves"
    if pct > 100 + _NEUTRAL_BAND:
        return "hurts"
    return "neutral"


def table2_scorecard(
    settings: ExperimentSettings | None = None,
    measured: Mapping[str, Mapping[str, float]] | None = None,
) -> tuple[str, dict]:
    """Returns (formatted report, summary dict)."""
    settings = settings or ExperimentSettings()
    if measured is None:
        measured = {
            w: normalize_row(run_table2_row(w, settings))
            for w in PAPER_TABLE2
        }
    versions = [v for v in VERSION_NAMES if v != "col"]

    rows = []
    agree = 0
    total = 0
    disagreements: list[str] = []
    for w in PAPER_TABLE2:
        for v in versions:
            paper = PAPER_TABLE2[w][v]
            ours = measured[w][v]
            pc, oc = _classify(paper), _classify(ours)
            total += 1
            ok = pc == oc
            agree += ok
            if not ok:
                disagreements.append(f"{w}/{v}: paper {pc} ({paper}), "
                                     f"measured {oc} ({ours:.1f})")
            rows.append(
                [w, v, f"{paper:.1f}", f"{ours:.1f}", pc, oc,
                 "yes" if ok else "NO"]
            )

    paper_avg_order = sorted(
        PAPER_TABLE2_AVERAGES, key=PAPER_TABLE2_AVERAGES.get
    )
    measured_averages = {
        v: arithmetic_mean([measured[w][v] for w in PAPER_TABLE2])
        for v in versions
    }
    measured_avg_order = sorted(measured_averages, key=measured_averages.get)

    table = format_table(
        ["program", "version", "paper %", "ours %", "paper says", "we say", "agree"],
        rows,
        title=(
            "Reproduction scorecard: Table 2 direction-of-effect "
            f"(neutral band ±{_NEUTRAL_BAND} points)"
        ),
    )
    summary = {
        "agreement": agree / total,
        "agree": agree,
        "total": total,
        "disagreements": disagreements,
        "paper_average_order": paper_avg_order,
        "measured_average_order": measured_avg_order,
        "average_order_matches": paper_avg_order == measured_avg_order,
        "measured_averages": measured_averages,
    }
    footer = [
        "",
        f"direction-of-effect agreement: {agree}/{total} "
        f"({100 * agree / total:.0f}%)",
        f"paper average ordering:    {' < '.join(paper_avg_order)}",
        f"measured average ordering: {' < '.join(measured_avg_order)}",
    ]
    if disagreements:
        footer.append("disagreements:")
        footer.extend(f"  - {d}" for d in disagreements)
    return table + "\n" + "\n".join(footer), summary


def table3_scorecard(
    settings: ExperimentSettings | None = None,
    measured: Mapping[str, Mapping[str, Mapping[int, float]]] | None = None,
) -> tuple[str, dict]:
    """Table 3 comparison: per code, does the *relative scalability* of
    the versions match the paper?  The checked property per code: the
    best-scaling optimized version (d/c/h-opt) reaches at least the
    speedup of the best unoptimized one (col/row) at the largest node
    count, whenever the paper says so."""
    from .harness import run_table3_block
    from .paper_data import PAPER_TABLE3

    settings = settings or ExperimentSettings()
    if measured is None:
        measured = {
            w: run_table3_block(w, settings) for w in PAPER_TABLE3
        }
    p_max = max(settings.table3_nodes)
    rows = []
    agree = 0
    total = 0
    for w, paper_block in PAPER_TABLE3.items():
        paper_opt = max(paper_block[v][128] for v in ("d-opt", "c-opt", "h-opt"))
        paper_base = max(paper_block[v][128] for v in ("col", "row"))
        ours_opt = max(measured[w][v][p_max] for v in ("d-opt", "c-opt", "h-opt"))
        ours_base = max(measured[w][v][p_max] for v in ("col", "row"))
        paper_says = paper_opt >= paper_base
        we_say = ours_opt >= ours_base
        total += 1
        ok = paper_says == we_say or we_say  # matching, or we scale better
        agree += ok
        rows.append(
            [w, f"{paper_opt:.1f}", f"{paper_base:.1f}",
             f"{ours_opt:.1f}", f"{ours_base:.1f}",
             "yes" if ok else "NO"]
        )
    table = format_table(
        ["program", "paper opt@128", "paper base@128",
         f"ours opt@{p_max}", f"ours base@{p_max}", "agree"],
        rows,
        title="Table 3 scalability comparison (best optimized vs best "
              "unoptimized at the largest node count)",
    )
    summary = {"agreement": agree / total, "agree": agree, "total": total}
    return table + f"\n\nagreement: {agree}/{total}", summary


if __name__ == "__main__":
    print(table2_scorecard()[0])
