"""Fault injection & resilient I/O (``repro.faults``).

Real parallel filesystems fail in ways the nominal cost model cannot
see: transient call errors, latency spikes on individual I/O nodes,
persistent stragglers, full node outages.  Collective two-phase I/O is
*most* sensitive to exactly these — one slow aggregator stalls the whole
exchange — so a reproduction arguing about I/O-dominated makespans needs
a way to perturb the simulated I/O system deterministically and to price
the standard defenses.

Three pieces, mirroring the package's other opt-in subsystems
(:class:`~repro.cache.CacheConfig`, :class:`~repro.collective
.CollectiveConfig`, :class:`~repro.obs.Observability`):

- :class:`FaultPlan` — seeded, reproducible fault specs (pure data;
  all randomness flows through an explicit ``random.Random(seed)``);
- :class:`ResiliencePolicy` — retry with exponential backoff + jitter,
  per-call timeouts, hedged duplicate reads, collective degradation;
- :class:`FaultInjector` — the stateful applier, threaded through
  :class:`~repro.runtime.stats.IOContext`, the executor and
  :func:`repro.collective.sim.simulate`.

Everything is **off by default**: every call site takes
``faults=None`` and is bit-identical without it — stats, printed lines
and benchmark JSON are pinned unchanged by the regression tests.
Enable it with::

    from repro.faults import FaultConfig, FaultPlan, ResiliencePolicy

    faults = FaultConfig(
        FaultPlan(seed=7, stragglers={0: 8.0}),
        ResiliencePolicy(max_retries=3, hedge_reads=True),
    )
    run = run_version_parallel(cfg, 4, params=params, faults=faults)
    print(run.total_stats)   # ... faults[hedged=... ] section when active
"""

from .injector import CallOutcome, FaultConfig, FaultEvent, FaultInjector
from .plan import (
    FaultConfigError,
    FaultPlan,
    LatencyWindow,
    Outage,
    TransientIOError,
)
from .policy import NO_POLICY, ResiliencePolicy

__all__ = [
    "CallOutcome",
    "FaultConfig",
    "FaultConfigError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LatencyWindow",
    "NO_POLICY",
    "Outage",
    "ResiliencePolicy",
    "TransientIOError",
]
