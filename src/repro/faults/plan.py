"""Seeded, reproducible fault specifications (``FaultPlan``).

A fault plan is pure data: it says *what can go wrong* on the simulated
I/O system — transient call errors, per-I/O-node latency-multiplier
windows, persistent stragglers, full I/O-node outage intervals and
failed compute nodes — without deciding *when* a probabilistic fault
actually fires.  That decision belongs to the
:class:`~repro.faults.injector.FaultInjector`, which draws from an
explicit ``random.Random(seed)`` so every run of the same plan on the
same workload is bit-identical.  Nothing in this package ever touches
the global RNG.

Two classes of faults exist because the system has two clocks:

- **call-indexed** faults (transient errors by probability or by
  scheduled op index, persistent straggler multipliers) apply on the
  serial accounting path (:class:`~repro.runtime.stats.IOContext`),
  which has no timeline — only an issue order;
- **time-indexed** faults (latency windows, outages) apply in the
  discrete-event simulator (:func:`repro.collective.sim.simulate`),
  where requests carry arrival and service timestamps in simulated
  seconds.  Stragglers apply on both paths.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Mapping


class FaultConfigError(ValueError):
    """An invalid fault plan or resilience policy (named validation)."""


class TransientIOError(RuntimeError):
    """An injected I/O call failure that exhausted its retry budget."""

    def __init__(self, message: str, *, op_index: int = -1,
                 io_node: int = -1, attempts: int = 1):
        super().__init__(message)
        self.op_index = op_index
        self.io_node = io_node
        self.attempts = attempts


def _check_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise FaultConfigError(f"{name} must be finite, got {value!r}")
    return value


def _check_rate(name: str, value: float) -> float:
    value = _check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise FaultConfigError(f"{name} must be in [0, 1], got {value!r}")
    return value


def _check_multiplier(name: str, value: float) -> float:
    value = _check_finite(name, value)
    if value < 1.0:
        raise FaultConfigError(
            f"{name} must be >= 1 (a fault never speeds I/O up), "
            f"got {value!r}"
        )
    return value


@dataclass(frozen=True)
class LatencyWindow:
    """Service times on ``io_node`` are multiplied by ``multiplier``
    for requests starting in ``[start_s, end_s)`` of simulated time."""

    io_node: int
    start_s: float
    end_s: float
    multiplier: float

    def __post_init__(self):
        if self.io_node < 0:
            raise FaultConfigError(
                f"latency window io_node must be >= 0, got {self.io_node}"
            )
        _check_finite("latency window start_s", self.start_s)
        _check_finite("latency window end_s", self.end_s)
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise FaultConfigError(
                f"latency window needs 0 <= start_s < end_s, got "
                f"[{self.start_s}, {self.end_s})"
            )
        _check_multiplier("latency window multiplier", self.multiplier)

    def active_at(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class Outage:
    """``io_node`` services nothing during ``[start_s, end_s)`` of
    simulated time; requests arriving inside the interval queue until
    it ends."""

    io_node: int
    start_s: float
    end_s: float

    def __post_init__(self):
        if self.io_node < 0:
            raise FaultConfigError(
                f"outage io_node must be >= 0, got {self.io_node}"
            )
        _check_finite("outage start_s", self.start_s)
        _check_finite("outage end_s", self.end_s)
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise FaultConfigError(
                f"outage needs 0 <= start_s < end_s, got "
                f"[{self.start_s}, {self.end_s})"
            )

    def covers(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, reproducible fault scenario.

    ``seed``
        base seed of the injector's private ``random.Random``; per-rank
        injectors derive ``seed + rank`` so SPMD nodes draw independent
        but reproducible streams.
    ``read_error_rate`` / ``write_error_rate``
        per-attempt probability of a transient call failure.
    ``error_ops``
        scheduled failures: global op indices (per injector, in issue
        order, 0-based, counting attempts) whose first attempt fails
        deterministically — the reproducible unit-test hook.
    ``stragglers``
        persistent per-I/O-node service-time multipliers (applied on
        both the serial accounting path and the event simulator).
    ``latency_windows`` / ``outages``
        time-indexed perturbations, event simulator only.
    ``failed_nodes``
        compute-node ranks considered failed for collective
        aggregation; :func:`repro.parallel.run_version_parallel`
        degrades a two-phase nest to independent I/O when one of its
        aggregators is in this set.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    error_ops: frozenset[int] = frozenset()
    stragglers: Mapping[int, float] = field(default_factory=dict)
    latency_windows: tuple[LatencyWindow, ...] = ()
    outages: tuple[Outage, ...] = ()
    failed_nodes: frozenset[int] = frozenset()

    def __post_init__(self):
        _check_rate("read_error_rate", self.read_error_rate)
        _check_rate("write_error_rate", self.write_error_rate)
        object.__setattr__(self, "error_ops", frozenset(self.error_ops))
        object.__setattr__(self, "failed_nodes", frozenset(self.failed_nodes))
        for op in self.error_ops:
            if op < 0:
                raise FaultConfigError(
                    f"error_ops indices must be >= 0, got {op}"
                )
        stragglers = dict(self.stragglers)
        for node, mult in stragglers.items():
            if node < 0:
                raise FaultConfigError(
                    f"straggler io_node must be >= 0, got {node}"
                )
            stragglers[node] = _check_multiplier(
                f"straggler multiplier for io_node {node}", mult
            )
        object.__setattr__(self, "stragglers", stragglers)
        object.__setattr__(
            self, "latency_windows", tuple(self.latency_windows)
        )
        object.__setattr__(self, "outages", tuple(self.outages))
        for rank in self.failed_nodes:
            if rank < 0:
                raise FaultConfigError(
                    f"failed_nodes ranks must be >= 0, got {rank}"
                )

    # -- queries -----------------------------------------------------------

    @property
    def has_errors(self) -> bool:
        return (
            self.read_error_rate > 0.0
            or self.write_error_rate > 0.0
            or bool(self.error_ops)
        )

    def rng(self, rank: int = 0) -> random.Random:
        """A fresh private RNG for compute rank ``rank`` — never the
        global ``random`` module."""
        return random.Random(self.seed + rank)

    def straggler_multiplier(self, io_node: int) -> float:
        """Persistent service-time multiplier of ``io_node`` (1.0 when
        the node is nominal)."""
        return self.stragglers.get(io_node, 1.0)

    def multiplier_at(self, io_node: int, t_s: float | None = None) -> float:
        """Combined service-time multiplier of ``io_node``: persistent
        straggler factor times every latency window active at simulated
        time ``t_s`` (windows are skipped when ``t_s`` is ``None`` —
        the serial accounting path has no timeline)."""
        mult = self.straggler_multiplier(io_node)
        if t_s is not None:
            for w in self.latency_windows:
                if w.io_node == io_node and w.active_at(t_s):
                    mult *= w.multiplier
        return mult

    def outage_end(self, io_node: int, t_s: float) -> float:
        """Earliest simulated time at or after ``t_s`` when ``io_node``
        is in service (chains back-to-back outage intervals)."""
        t = t_s
        moved = True
        while moved:
            moved = False
            for o in self.outages:
                if o.io_node == io_node and o.covers(t):
                    t = o.end_s
                    moved = True
        return t
