"""Resilience policies: what the runtime does when an I/O call faults.

A :class:`ResiliencePolicy` is pure configuration — retry with
exponential backoff plus seeded jitter, a per-call timeout, optional
hedged (duplicate) reads for straggler mitigation, and the collective
degradation rule.  The :class:`~repro.faults.injector.FaultInjector`
applies it; the policy itself holds no state and draws no randomness
(jitter is drawn from the injector's seeded RNG).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .plan import FaultConfigError, _check_finite


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for surviving injected faults.

    ``max_retries``
        re-attempts after a failed call before giving up (0 = a single
        failed attempt raises
        :class:`~repro.faults.plan.TransientIOError`).
    ``backoff_base_s`` / ``backoff_factor``
        exponential backoff: retry *k* (0-based) waits
        ``backoff_base_s * backoff_factor**k`` seconds before
        re-issuing.  The wait is accounted as ``retry_delay_s`` — the
        compute node sits idle, it does not occupy the I/O node.
    ``jitter``
        fraction of each backoff delay added uniformly at random from
        the injector's seeded RNG (``0.0`` = deterministic delays).
    ``timeout_s``
        per-call timeout: an attempt whose (perturbed) service time
        exceeds this is abandoned at the timeout and counts as a failed
        attempt — the defense against unbounded straggler waits.
        ``None`` disables timeouts.
    ``hedge_reads`` / ``hedge_threshold``
        straggler mitigation: when a read lands on an I/O node whose
        service-time multiplier is at least ``hedge_threshold``, a
        duplicate read is issued to the neighboring I/O node (the
        stripe's replica in this model).  The node waits only for the
        faster copy — nominal service time — at the cost of one extra
        accounted read call.  Writes are never hedged (duplicating a
        write is not idempotent at this layer).
    ``degrade_collective``
        fall back from two-phase collective I/O to independent I/O for
        any nest whose aggregator rank the fault plan marks failed
        (:attr:`~repro.faults.plan.FaultPlan.failed_nodes`).
    """

    max_retries: int = 0
    backoff_base_s: float = 1.0e-3
    backoff_factor: float = 2.0
    jitter: float = 0.0
    timeout_s: float | None = None
    hedge_reads: bool = False
    hedge_threshold: float = 2.0
    degrade_collective: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise FaultConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if _check_finite("backoff_base_s", self.backoff_base_s) < 0:
            raise FaultConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if _check_finite("backoff_factor", self.backoff_factor) < 1.0:
            raise FaultConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= _check_finite("jitter", self.jitter) <= 1.0:
            raise FaultConfigError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.timeout_s is not None and (
            not math.isfinite(self.timeout_s) or self.timeout_s <= 0
        ):
            raise FaultConfigError(
                f"timeout_s must be positive and finite, got {self.timeout_s}"
            )
        if _check_finite("hedge_threshold", self.hedge_threshold) < 1.0:
            raise FaultConfigError(
                f"hedge_threshold must be >= 1, got {self.hedge_threshold}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before re-attempt ``attempt`` (0-based)."""
        delay = self.backoff_base_s * self.backoff_factor**attempt
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def should_hedge(self, is_write: bool, multiplier: float) -> bool:
        return (
            self.hedge_reads
            and not is_write
            and multiplier >= self.hedge_threshold
        )


#: the do-nothing policy: no retries, no timeout, no hedging — a fault
#: plan with errors will raise on the first failed call
NO_POLICY = ResiliencePolicy()
