"""The fault injector: deterministic application of a fault plan.

One :class:`FaultInjector` owns one private ``random.Random`` stream
(``plan.seed + rank``) and a monotone op counter, so the sequence of
injected faults is a pure function of (plan, policy, rank, issue order).
It is consulted per *attempt* on two paths:

- :meth:`serial_call` — the serial accounting path.
  :class:`~repro.runtime.stats.IOContext` asks it to price one planned
  I/O call; the returned :class:`CallOutcome` says how many attempts
  were issued, the serial seconds spent, the backoff delay, and whether
  a hedged duplicate went to the replica node.  Every attempt is a full
  accounted call (the transfer ran, the call failed), which keeps the
  per-nest trace/record invariant exact under faults.
- :meth:`sim_multiplier` / :meth:`sim_defer` / :meth:`sim_error` — the
  discrete-event simulator's hooks for time-indexed perturbation
  (latency windows, outages) and per-request failure events.

The injector also records every fault occurrence as a
:class:`FaultEvent` so the observability layer can render them on a
dedicated Perfetto track (:meth:`repro.obs.Observability
.add_fault_events`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import FaultPlan, TransientIOError
from .policy import NO_POLICY, ResiliencePolicy


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or resilience action, for the fault track.

    ``kind`` is one of ``"error"``, ``"timeout"``, ``"retry"``,
    ``"gave_up"``, ``"hedge"``, ``"outage"``, ``"degrade"``.
    ``time_s`` is simulated seconds: the event-sim timestamp on the sim
    path, the node's cumulative serial I/O seconds on the accounting
    path (both deterministic).
    """

    kind: str
    op_index: int
    io_node: int
    is_write: bool = False
    time_s: float = 0.0
    node: int = 0
    detail: str = ""


@dataclass(frozen=True)
class CallOutcome:
    """Serial-path pricing of one logical I/O call under faults."""

    attempts: int           # issued attempts, including failures (>= 1)
    failed_attempts: int    # attempts that errored or timed out
    io_time_s: float        # serial seconds across all attempts
    retry_delay_s: float    # backoff seconds (node idle, I/O node free)
    hedged: bool = False
    hedge_node: int = -1    # replica I/O node of the duplicate read
    gave_up: bool = False   # retry budget exhausted — caller must raise

    @property
    def retries(self) -> int:
        return self.attempts - 1


@dataclass(frozen=True)
class FaultConfig:
    """The single opt-in switch threaded through the execution stack:
    ``faults=None`` (everywhere) is bit-identical to pre-fault behavior;
    ``faults=FaultConfig(plan, policy)`` enables injection + resilience."""

    plan: FaultPlan
    policy: ResiliencePolicy = NO_POLICY

    def injector(
        self, rank: int = 0, *, record_events: bool = True
    ) -> "FaultInjector":
        return FaultInjector(
            self.plan, self.policy, rank=rank, record_events=record_events
        )


class FaultInjector:
    def __init__(
        self,
        plan: FaultPlan,
        policy: ResiliencePolicy | None = None,
        *,
        rank: int = 0,
        record_events: bool = True,
    ):
        self.plan = plan
        self.policy = policy or NO_POLICY
        self.rank = rank
        self._rng = plan.rng(rank)
        self.op_index = 0
        self.events: list[FaultEvent] = [] if record_events else None
        # cumulative counters (mirror the IOStats fields; the sim path
        # has no IOStats so these are its accounting)
        self.injected = 0
        self.retries = 0
        self.hedged_calls = 0
        self.retry_delay_s = 0.0

    # -- shared -------------------------------------------------------------

    def _event(self, kind: str, op_index: int, io_node: int,
               is_write: bool, time_s: float, detail: str = "") -> None:
        if self.events is not None:
            self.events.append(
                FaultEvent(
                    kind, op_index, io_node, is_write, time_s,
                    node=self.rank, detail=detail,
                )
            )

    def _draw_error(self, op_index: int, is_write: bool) -> bool:
        """Whether this attempt fails: scheduled op index, else the
        per-direction probability from the private RNG."""
        if op_index in self.plan.error_ops:
            return True
        rate = (
            self.plan.write_error_rate if is_write
            else self.plan.read_error_rate
        )
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    # -- serial accounting path (IOContext) ---------------------------------

    def serial_call(
        self,
        io_node: int,
        is_write: bool,
        service_s: float,
        *,
        n_io_nodes: int,
        at_s: float = 0.0,
    ) -> CallOutcome:
        """Price one logical I/O call whose nominal (unperturbed) serial
        cost is ``service_s`` and whose first stripe lands on
        ``io_node``.  Applies stragglers, hedging, transient errors,
        timeouts and retry/backoff; the serial path has no timeline, so
        latency windows and outages do not apply here (see
        :class:`~repro.faults.plan.FaultPlan`)."""
        pol = self.policy
        mult = self.plan.straggler_multiplier(io_node)
        hedged = pol.should_hedge(is_write, mult)
        hedge_node = (io_node + 1) % n_io_nodes if hedged else -1
        # a hedged read waits for the faster copy — nominal service from
        # the replica — instead of the straggler's multiplied time
        attempt_s = service_s if hedged else service_s * mult
        timed_out_base = (
            pol.timeout_s is not None and attempt_s > pol.timeout_s
        )
        if timed_out_base:
            attempt_s = pol.timeout_s

        attempts = 0
        failed = 0
        io_time = 0.0
        delay = 0.0
        while True:
            idx = self.op_index
            self.op_index += 1
            attempts += 1
            errored = self._draw_error(idx, is_write)
            io_time += attempt_s
            if not errored and not timed_out_base:
                break
            failed += 1
            self.injected += 1
            kind = "error" if errored else "timeout"
            self._event(kind, idx, io_node, is_write, at_s + io_time)
            if failed > pol.max_retries:
                self._event(
                    "gave_up", idx, io_node, is_write, at_s + io_time,
                    detail=f"after {attempts} attempt(s)",
                )
                self.retries += attempts - 1
                self.retry_delay_s += delay
                return CallOutcome(
                    attempts, failed, io_time, delay,
                    hedged=hedged, hedge_node=hedge_node, gave_up=True,
                )
            d = pol.backoff_delay(failed - 1, self._rng)
            delay += d
            self._event(
                "retry", idx, io_node, is_write, at_s + io_time + delay,
                detail=f"backoff {d:.6f}s",
            )
        if hedged:
            self.hedged_calls += 1
            self._event("hedge", self.op_index - 1, hedge_node,
                        is_write, at_s + io_time)
        self.retries += attempts - 1
        self.retry_delay_s += delay
        return CallOutcome(
            attempts, failed, io_time, delay,
            hedged=hedged, hedge_node=hedge_node,
        )

    def raise_exhausted(self, outcome: CallOutcome, io_node: int) -> None:
        raise TransientIOError(
            f"I/O call failed after {outcome.attempts} attempt(s) "
            f"(io_node {io_node}, rank {self.rank}; retry budget "
            f"{self.policy.max_retries} exhausted)",
            op_index=self.op_index - 1,
            io_node=io_node,
            attempts=outcome.attempts,
        )

    # -- event-simulator path (collective/sim.simulate) ----------------------

    def sim_defer(self, io_node: int, t_s: float) -> float:
        """Push a service start past any outage interval covering it;
        records an ``"outage"`` event when the start actually moves."""
        t = self.plan.outage_end(io_node, t_s)
        if t > t_s:
            self._event("outage", self.op_index, io_node, False, t_s,
                        detail=f"deferred to {t:.6f}s")
        return t

    def sim_multiplier(self, io_node: int, t_s: float) -> float:
        return self.plan.multiplier_at(io_node, t_s)

    def sim_error(self, io_node: int, is_write: bool, t_s: float) -> bool:
        """Draw one per-attempt failure for the event simulator; counts
        and records it (the sim applies its own retry arithmetic)."""
        idx = self.op_index
        self.op_index += 1
        if not self._draw_error(idx, is_write):
            return False
        self.injected += 1
        self._event("error", idx, io_node, is_write, t_s)
        return True

    def sim_give_up(
        self, io_node: int, is_write: bool, t_s: float, attempts: int
    ) -> None:
        """Record the terminal event and abort the simulation: a request
        whose retry budget is exhausted fails the run."""
        self._event(
            "gave_up", self.op_index - 1, io_node, is_write, t_s,
            detail=f"after {attempts} attempt(s)",
        )
        raise TransientIOError(
            f"simulated I/O request failed after {attempts} attempt(s) "
            f"(io_node {io_node}; retry budget {self.policy.max_retries} "
            f"exhausted)",
            op_index=self.op_index - 1,
            io_node=io_node,
            attempts=attempts,
        )

    def sim_retry_delay(self, n_failed: int, t_s: float) -> float:
        """Backoff before re-attempt ``n_failed`` (1-based count of
        failures so far), accounted into the injector's totals."""
        d = self.policy.backoff_delay(n_failed - 1, self._rng)
        self.retries += 1
        self.retry_delay_s += d
        self._event("retry", self.op_index, -1, False, t_s,
                    detail=f"backoff {d:.6f}s")
        return d

    # -- observability -------------------------------------------------------

    def publish_counters(self, registry) -> None:
        """Bulk-publish the cumulative totals as the same ``faults.*``
        counters the per-call accounting path increments — used by the
        SPMD driver, whose per-rank executors run without a registry."""
        if self.injected:
            registry.counter("faults.injected").inc(self.injected)
        if self.retries:
            registry.counter("faults.retries").inc(self.retries)
        if self.hedged_calls:
            registry.counter("faults.hedged_calls").inc(self.hedged_calls)
        if self.retry_delay_s > 0.0:
            registry.histogram("faults.retry_delay_us").observe(
                self.retry_delay_s * 1e6
            )

    def publish_metrics(self, registry) -> None:
        """Snapshot the cumulative fault counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (gauges — the
        injector outlives individual runs, like the tile cache)."""
        registry.gauge("faults.injected", rank=self.rank).set(self.injected)
        registry.gauge("faults.retries", rank=self.rank).set(self.retries)
        registry.gauge("faults.hedged_calls", rank=self.rank).set(
            self.hedged_calls
        )
        registry.gauge("faults.retry_delay_s", rank=self.rank).set(
            self.retry_delay_s
        )
