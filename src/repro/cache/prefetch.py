"""Prefetch scheduling and the double-buffering overlap model.

Out-of-core tile loops are statically analyzable: the executor derives
the full tile-space walk from the :class:`~repro.engine.plan.NestPlan`
(tiled levels of the :class:`~repro.transforms.tiling.TilingSpec`,
enumerated in loop order) *before* executing a nest, so the "next tile"
is known with certainty — prefetching needs no prediction, exactly the
property PASSION's prefetch/double-buffering exploits.

The :class:`PrefetchScheduler` is deliberately I/O-free: given the
per-tile read sets it decides *which* tiles to fetch ahead; the executor
performs the fetches through its stores so all accounting stays in
``IOContext``.

The :class:`DoubleBufferModel` prices what prefetching buys.  In the
simulated machine I/O is blocking, so ``IOStats.io_time_s`` stays the
full serial time; the model reports, per tile, how much of the ahead-
fetch I/O would hide under the current tile's compute with a second
buffer (``overlapped``) and how much would remain on the critical path
(``exposed``).  Benchmarks subtract the overlapped seconds to estimate
double-buffered wall time.
"""

from __future__ import annotations

from typing import Sequence

from ..runtime.ooc_array import Region
from .metrics import CacheMetrics

#: one tile's read set: the regions of every array the tile touches
TileRequests = Sequence[tuple[str, Region]]


class PrefetchScheduler:
    """Walks the known tile order, handing out ahead-of-time read sets.

    ``begin_nest`` arms the scheduler with the nest's full tile sequence;
    after executing tile ``t`` the executor asks for
    ``requests_after(t)`` — the read sets of tiles ``t+1 .. t+depth``
    that have not been handed out yet.
    """

    def __init__(self, depth: int = 1):
        if depth < 1:
            raise ValueError("prefetch depth must be at least 1")
        self.depth = depth
        self._tiles: list[TileRequests] = []
        self._issued: set[int] = set()

    def begin_nest(self, tiles: Sequence[TileRequests]) -> None:
        self._tiles = list(tiles)
        self._issued = set()

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    def requests_after(self, t: int) -> list[tuple[str, Region]]:
        out: list[tuple[str, Region]] = []
        for u in range(t + 1, min(t + 1 + self.depth, len(self._tiles))):
            if u in self._issued:
                continue
            self._issued.add(u)
            out.extend(self._tiles[u])
        return out


class DoubleBufferModel:
    """Accumulates per-tile (compute, ahead-fetch I/O) pairs.

    The fetch of tile ``t+1`` is issued while tile ``t`` computes: the
    portion of its I/O time under the compute time is overlapped, the
    rest exposed.  Totals land in :class:`CacheMetrics`.
    """

    def __init__(self, metrics: CacheMetrics):
        self.metrics = metrics

    def note_tile(self, compute_s: float, prefetch_io_s: float) -> None:
        self.metrics.prefetch_io_s += prefetch_io_s
        self.metrics.overlapped_io_s += min(compute_s, prefetch_io_s)
        self.metrics.exposed_prefetch_io_s += max(0.0, prefetch_io_s - compute_s)


def overlap_credit(metrics: CacheMetrics | None) -> float:
    """Seconds of blocked I/O a second buffer hides under compute — the
    :class:`DoubleBufferModel`'s verdict, exposed as the per-node overlap
    budget the event simulator (:mod:`repro.collective.sim`) consumes.
    Zero for uncached runs."""
    return 0.0 if metrics is None else metrics.overlapped_io_s
