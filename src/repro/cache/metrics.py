"""Tile-cache accounting: hit/miss/eviction/prefetch counters.

The counters quantify what the cache *avoided*: ``read_calls_saved`` and
``elements_saved`` are priced with the exact same planning the runtime
uses for real transfers (:func:`repro.runtime.stats.plan_runs`), so a
hit saves precisely the calls and volume the miss would have cost.  The
overlap fields belong to the double-buffering cost model in
:mod:`repro.cache.prefetch`: prefetch I/O that fits under a tile's
compute time is *overlapped* (hidden), the remainder is *exposed*.

A single :class:`CacheMetrics` instance accumulates across nests and
weight repetitions; it is attached to the run's final
:class:`~repro.runtime.stats.IOStats` and to the executor's
``RunResult``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry


@dataclass
class CacheMetrics:
    hits: int = 0
    misses: int = 0
    #: misses served partially from overlapping resident tiles (only the
    #: uncovered remainder was read from the file); a subset of ``misses``
    partial_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    #: dirty tiles written back by an explicit flush (nest boundaries,
    #: read/write coherence on overlapping regions)
    flushed_tiles: int = 0
    prefetch_issued: int = 0
    prefetch_used: int = 0
    #: I/O calls / elements a miss would have cost, saved by hits
    read_calls_saved: int = 0
    elements_saved: int = 0
    #: double-buffering model: serial seconds spent fetching ahead, and
    #: how much of that hides under compute vs. stays on the critical path
    prefetch_io_s: float = 0.0
    overlapped_io_s: float = 0.0
    exposed_prefetch_io_s: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_unused(self) -> int:
        """Prefetched tiles never consumed (still resident or evicted)."""
        return self.prefetch_issued - self.prefetch_used

    def bytes_saved(self, element_size: int = 8) -> int:
        return self.elements_saved * element_size

    def merge(self, other: "CacheMetrics") -> "CacheMetrics":
        return CacheMetrics(
            self.hits + other.hits,
            self.misses + other.misses,
            self.partial_hits + other.partial_hits,
            self.evictions + other.evictions,
            self.dirty_evictions + other.dirty_evictions,
            self.flushed_tiles + other.flushed_tiles,
            self.prefetch_issued + other.prefetch_issued,
            self.prefetch_used + other.prefetch_used,
            self.read_calls_saved + other.read_calls_saved,
            self.elements_saved + other.elements_saved,
            self.prefetch_io_s + other.prefetch_io_s,
            self.overlapped_io_s + other.overlapped_io_s,
            self.exposed_prefetch_io_s + other.exposed_prefetch_io_s,
        )

    def to_dict(self) -> dict:
        """JSON-ready dict — nests inside :meth:`IOStats.to_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "CacheMetrics":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(**d)

    def publish(
        self, registry: "MetricsRegistry", prefix: str = "cache"
    ) -> None:
        """Snapshot every counter into an observability registry as
        gauges (the instance itself stays cumulative over the cache's
        life, so gauges — not counters — carry the current totals)."""
        for name, value in asdict(self).items():
            registry.gauge(f"{prefix}.{name}").set(value)

    def __str__(self) -> str:
        s = (
            f"cache[hit={self.hits}/{self.accesses} "
            f"({100.0 * self.hit_rate:.1f}%) partial={self.partial_hits} "
            f"evict={self.evictions} "
            f"saved_calls={self.read_calls_saved} "
            f"saved_elements={self.elements_saved}]"
        )
        if self.prefetch_issued:
            s += (
                f" prefetch[{self.prefetch_used}/{self.prefetch_issued} used "
                f"overlap={self.overlapped_io_s:.3f}s "
                f"exposed={self.exposed_prefetch_io_s:.3f}s]"
            )
        return s
