"""Tile caching and asynchronous prefetch for the out-of-core runtime.

The paper's execution model (Section 4) pays full read + write-back I/O
for every tile visit — there is no reuse across tiles or across nests.
This package adds the PASSION-style runtime layer that hides exactly
that cost:

- :class:`TileCache` (:mod:`~repro.cache.tile_cache`) — a byte-budgeted
  cache of data tiles keyed on ``(array, region)``, with clean/dirty
  tracking, write-back or write-through semantics, and its budget carved
  out of the executor's :class:`~repro.runtime.memory.MemoryManager`;
- eviction policies (:mod:`~repro.cache.policy`) — LRU, LFU and a
  cost-aware GreedyDual variant that weighs each tile's re-fetch cost
  under its file layout's contiguity;
- :class:`PrefetchScheduler` and :class:`DoubleBufferModel`
  (:mod:`~repro.cache.prefetch`) — next-tile prefetch over the statically
  known tile-space order plus the overlapped-vs-exposed I/O accounting
  of double buffering;
- :class:`CacheMetrics` (:mod:`~repro.cache.metrics`) — hit/miss/
  eviction/prefetch counters and bytes-saved accounting, attached to
  :class:`~repro.runtime.stats.IOStats`.

Enable it per executor with :class:`CacheConfig`::

    from repro import CacheConfig, OOCExecutor

    ex = OOCExecutor(program, cache=CacheConfig(policy="lru", prefetch=True))
    result = ex.run()
    print(result.stats)            # ... cache[hit=...] prefetch[...]
    print(result.cache_metrics.hit_rate)

With no config (or ``enabled=False``) the executor's accounting is
bit-identical to the uncached runtime.
"""

from .metrics import CacheMetrics
from .policy import (
    POLICIES,
    CostAwarePolicy,
    EvictionPolicy,
    LFUPolicy,
    LRUPolicy,
    make_policy,
)
from .prefetch import DoubleBufferModel, PrefetchScheduler, overlap_credit
from .tile_cache import (
    CacheBudgetError,
    CacheConfig,
    CacheEntry,
    TileCache,
    intersect_slices,
    regions_overlap,
)

__all__ = [
    "CacheBudgetError",
    "CacheConfig",
    "CacheEntry",
    "CacheMetrics",
    "CostAwarePolicy",
    "DoubleBufferModel",
    "EvictionPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "POLICIES",
    "PrefetchScheduler",
    "TileCache",
    "intersect_slices",
    "make_policy",
    "overlap_credit",
    "regions_overlap",
]
