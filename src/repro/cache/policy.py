"""Pluggable eviction policies for the tile cache.

A policy ranks resident entries for eviction; the cache owns residency,
budgets and dirty state.  The cache stamps every entry with a logical
access clock (``last_access``) and an access count (``accesses``), and
calls the policy's hooks so stateful policies (the cost-aware one keeps
an aging clock) can maintain per-entry priorities.

Three policies ship:

- ``lru`` — evict the least recently used tile (good for the sweeping
  tile-space walks the planner emits);
- ``lfu`` — evict the least frequently used tile, ties broken LRU
  (protects small hot operands such as ADI's 1-D coefficient arrays);
- ``cost`` — GreedyDual-Size-Frequency: evict the tile that is cheapest
  to re-fetch per resident element, where the re-fetch cost comes from
  the file layout's contiguity (a tile that shatters into many I/O calls
  under its layout is worth keeping over one that reloads in a single
  sequential call).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .tile_cache import CacheEntry


class EvictionPolicy:
    """Base policy: hooks are optional, ``victim`` is mandatory."""

    name = "base"
    #: whether the cache should compute a re-fetch cost on insert
    uses_cost = False

    def on_insert(self, entry: "CacheEntry") -> None:
        pass

    def on_access(self, entry: "CacheEntry") -> None:
        pass

    def on_remove(self, entry: "CacheEntry") -> None:
        pass

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    name = "lru"

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        return min(entries, key=lambda e: e.last_access)


class LFUPolicy(EvictionPolicy):
    name = "lfu"

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        return min(entries, key=lambda e: (e.accesses, e.last_access))


class CostAwarePolicy(EvictionPolicy):
    """GreedyDual-Size-Frequency over layout-derived re-fetch cost.

    Priority of an entry is ``clock + accesses * cost_s / size``; the
    lowest-priority entry is evicted and its priority becomes the new
    clock, aging every survivor relative to fresh insertions.
    """

    name = "cost"
    uses_cost = True

    def __init__(self):
        self._clock = 0.0

    def _priority(self, entry: "CacheEntry") -> float:
        return self._clock + entry.accesses * entry.cost_s / max(1, entry.size)

    def on_insert(self, entry: "CacheEntry") -> None:
        entry.priority = self._priority(entry)

    def on_access(self, entry: "CacheEntry") -> None:
        entry.priority = self._priority(entry)

    def victim(self, entries: Iterable["CacheEntry"]) -> "CacheEntry":
        v = min(entries, key=lambda e: (e.priority, e.last_access))
        self._clock = v.priority
        return v


POLICIES: dict[str, type[EvictionPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    LFUPolicy.name: LFUPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
}


def make_policy(name: str | EvictionPolicy) -> EvictionPolicy:
    if isinstance(name, EvictionPolicy):
        return name
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
