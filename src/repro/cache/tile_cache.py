"""A byte-budgeted tile cache keyed on ``(array, region)``.

The runtime's unit of transfer is the rectangular data tile; the cache
holds recently moved tiles so revisits skip the file entirely.  It sits
*between* the executor and the stores: the cache never performs I/O
itself — lookups and insertions only mutate residency, and every
operation that obligates a write (flushing dirty tiles, evicting a dirty
victim) **returns** the affected entries for the caller to push through
the store's accounted write path.  That keeps one authority for I/O
accounting (``IOContext``) and lets the cache serve linear and
interleaved stores alike.

Memory honesty: the cache's budget is carved out of the executor's
:class:`~repro.runtime.memory.MemoryManager`, and every resident element
is allocated from it, so the peak-memory assertions of the seed tests
("no plan cheats by reading the whole array") keep holding with the
cache enabled.

Coherence: entries are exact-region keyed, but tile footprints of
neighbouring tiles overlap (stencil halos, bounding-box hulls) — and
that partial overlap is the dominant reuse pattern of a tile-space
walk.  :meth:`TileCache.coverage` maps which cells of a requested
region are resident so the executor can serve them from cache and read
only the remainder.  Dirty entries that overlap a region about to be
read in full are flushed first (:meth:`TileCache.flush_overlapping`),
and clean-but-stale overlaps are dropped after a write
(:meth:`TileCache.invalidate_overlapping`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..obs import profile as _prof
from ..runtime.memory import MemoryManager
from ..runtime.ooc_array import Region, region_size
from .metrics import CacheMetrics
from .policy import EvictionPolicy, make_policy

#: cache key: (array name, exact inclusive region)
TileKey = tuple[str, Region]


class CacheBudgetError(ValueError):
    """An invalid cache budget or tenant quota (named validation).

    Mirrors the :class:`~repro.runtime.params.MachineParams` named-check
    pattern: a zero or negative budget silently disables caching (or
    worse, un-partitions a shared cache's tenant isolation), so it is
    rejected up front with a message naming the offending value."""


def regions_overlap(a: Region, b: Region) -> bool:
    """Do two same-rank rectangular regions share any element?"""
    return all(alo <= bhi and blo <= ahi for (alo, ahi), (blo, bhi) in zip(a, b))


def intersect_slices(
    a: Region, b: Region
) -> tuple[tuple[slice, ...], tuple[slice, ...]] | None:
    """Slices of the overlap of two regions, in each region's own frame
    (``arr_a[sl_a]`` and ``arr_b[sl_b]`` address the same cells)."""
    sa, sb = [], []
    for (alo, ahi), (blo, bhi) in zip(a, b):
        lo, hi = max(alo, blo), min(ahi, bhi)
        if lo > hi:
            return None
        sa.append(slice(lo - alo, hi - alo + 1))
        sb.append(slice(lo - blo, hi - blo + 1))
    return tuple(sa), tuple(sb)


@dataclass
class CacheEntry:
    name: str
    region: Region
    size: int
    #: private copy of the tile data (None in simulate mode)
    data: np.ndarray | None
    dirty: bool = False
    prefetched: bool = False
    accesses: int = 0
    last_access: int = 0
    #: estimated seconds to re-fetch this tile from its layout's runs
    cost_s: float = 0.0
    #: scratch slot for stateful policies (GDSF priority)
    priority: float = field(default=0.0, compare=False)

    @property
    def key(self) -> TileKey:
        return (self.name, self.region)


@dataclass(frozen=True)
class CacheConfig:
    """Executor-facing switchboard for the tile cache subsystem.

    The default construction enables caching; pass ``enabled=False`` (or
    no config at all) for the seed behavior — with the cache off the
    executor's accounting is bit-identical to the uncached code path.
    """

    enabled: bool = True
    policy: str = "lru"
    #: share of the executor's memory budget carved out for the cache
    #: (the tile planner sizes tiles against the remainder)
    budget_fraction: float = 0.5
    #: explicit cache budget in elements; overrides ``budget_fraction``
    budget_elements: int | None = None
    #: ``write-back`` holds dirty tiles and writes them on eviction or at
    #: nest boundaries (coalescing rewrites); ``write-through`` writes
    #: every tile immediately and caches it clean
    write_mode: str = "write-back"
    prefetch: bool = False
    #: how many tiles ahead of the current one the scheduler fetches
    prefetch_depth: int = 1

    def __post_init__(self):
        if self.write_mode not in ("write-back", "write-through"):
            raise ValueError(f"unknown write mode {self.write_mode!r}")
        if self.budget_elements is None and not 0.0 < self.budget_fraction < 1.0:
            raise ValueError("budget_fraction must be in (0, 1)")
        if self.budget_elements is not None and self.budget_elements <= 0:
            raise ValueError("budget_elements must be positive")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be at least 1")

    @property
    def write_back(self) -> bool:
        return self.write_mode == "write-back"

    def resolve_budget(self, memory_budget: int) -> int:
        if self.budget_elements is not None:
            return self.budget_elements
        return max(1, int(self.budget_fraction * memory_budget))


class TileCache:
    def __init__(
        self,
        budget_elements: int,
        policy: EvictionPolicy | str = "lru",
        *,
        memory: MemoryManager | None = None,
        metrics: CacheMetrics | None = None,
    ):
        try:
            budget = int(budget_elements)
        except (TypeError, ValueError):
            raise CacheBudgetError(
                f"cache budget must be an element count, "
                f"got {budget_elements!r}"
            ) from None
        if budget <= 0:
            raise CacheBudgetError(
                f"cache budget must be a positive element count, "
                f"got {budget_elements!r}"
            )
        self.budget = budget
        self.policy = make_policy(policy)
        self.memory = memory
        self.metrics = metrics or CacheMetrics()
        self._entries: dict[TileKey, CacheEntry] = {}
        self._clock = 0

    # -- introspection ------------------------------------------------------

    def publish_metrics(self, registry, prefix: str = "cache") -> None:
        """Publish the current counters plus occupancy into an
        observability registry (:class:`repro.obs.MetricsRegistry`)."""
        self.metrics.publish(registry, prefix)
        registry.gauge(f"{prefix}.resident_tiles").set(len(self._entries))
        registry.gauge(f"{prefix}.in_use_elements").set(self.in_use)
        registry.gauge(f"{prefix}.budget_elements").set(self.budget)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def in_use(self) -> int:
        return sum(e.size for e in self._entries.values())

    def fits(self, region: Region) -> bool:
        return region_size(region) <= self.budget

    def peek(self, name: str, region: Region) -> CacheEntry | None:
        """Residency check without touching hit/miss counters or
        recency (the deterministic probe-work counter still ticks)."""
        _prof.WORK.cache_probes += 1
        return self._entries.get((name, region))

    # -- the demand path ----------------------------------------------------

    def lookup(self, name: str, region: Region) -> CacheEntry | None:
        """Demand access: counts a hit or a miss, refreshes recency."""
        _prof.WORK.cache_probes += 1
        rec = _prof.ACTIVE
        if rec is None:
            return self._lookup(name, region)
        rec.begin("cache.probe")
        try:
            return self._lookup(name, region)
        finally:
            rec.end()

    def _lookup(self, name: str, region: Region) -> CacheEntry | None:
        entry = self._entries.get((name, region))
        if entry is None:
            self.metrics.misses += 1
            return None
        self.metrics.hits += 1
        if entry.prefetched:
            self.metrics.prefetch_used += 1
            entry.prefetched = False
        self._touch(entry)
        return entry

    def coverage(
        self, name: str, region: Region
    ) -> tuple[np.ndarray, list[CacheEntry]] | None:
        """Which cells of ``region`` are resident?  Returns a boolean
        mask over the region and the contributing entries, or ``None``
        when nothing overlaps.  Dirty contributors need no flush — their
        data is the newest, so a partial read can take the covered cells
        straight from the cache and fetch only the remainder."""
        touching = [
            e
            for e in self._entries.values()
            if e.name == name and regions_overlap(e.region, region)
        ]
        if not touching:
            return None
        sizes = tuple(hi - lo + 1 for lo, hi in region)
        mask = np.zeros(sizes, dtype=bool)
        for e in touching:
            dst, _ = intersect_slices(region, e.region)
            mask[dst] = True
            if e.prefetched:
                self.metrics.prefetch_used += 1
                e.prefetched = False
            self._touch(e)
        return mask, touching

    @staticmethod
    def fill_from(
        out: np.ndarray, region: Region, entries: list[CacheEntry]
    ) -> None:
        """Copy each entry's overlap with ``region`` into ``out`` (real
        mode).  Resident entries always agree on shared cells (writes
        invalidate overlapping entries), so copy order is irrelevant."""
        for e in entries:
            if e.data is None:
                continue
            pair = intersect_slices(region, e.region)
            if pair is None:
                continue
            dst, src = pair
            out[dst] = e.data[src]

    def insert(
        self,
        name: str,
        region: Region,
        data: np.ndarray | None,
        *,
        dirty: bool = False,
        prefetched: bool = False,
        cost_s: float = 0.0,
    ) -> tuple[bool, list[CacheEntry]]:
        """Insert or refresh a tile.

        Returns ``(accepted, writeback)``: evicted **dirty** entries the
        caller must write back, and whether the tile is now resident —
        insertion is declined when even after evicting everything there
        is no room (cache budget, or the shared :class:`MemoryManager`
        when a boundary compute tile transiently overshoots its planned
        footprint).  ``data`` is copied — the cache never aliases
        executor-owned buffers.  Regions larger than the whole budget are
        rejected with ``ValueError`` (check :meth:`fits`)."""
        size = region_size(region)
        if size > self.budget:
            raise ValueError(
                f"tile {name}{region} ({size} elements) exceeds the cache "
                f"budget ({self.budget})"
            )
        data = None if data is None else np.array(data, dtype=np.float64)
        existing = self._entries.get((name, region))
        if existing is not None:
            existing.data = data
            existing.dirty = existing.dirty or dirty
            self._touch(existing)
            return True, []
        accepted, writeback = self._make_room(size)
        if not accepted:
            return False, writeback
        entry = CacheEntry(
            name, region, size, data,
            dirty=dirty, prefetched=prefetched,
            accesses=1, last_access=self._tick(), cost_s=cost_s,
        )
        self._entries[entry.key] = entry
        if self.memory is not None:
            self.memory.allocate(size)
        self.policy.on_insert(entry)
        return True, writeback

    def evict_entry(self, name: str, region: Region) -> CacheEntry | None:
        """Explicitly evict one resident entry, counting the eviction.

        Shared-pool coordinators (:class:`repro.serve.SharedTileCache`)
        pick quota-aware victims themselves and need an eviction that
        bypasses the policy's own choice.  Returns the entry when it was
        dirty — the caller owes the write-back — else ``None``; a miss
        (the entry is not resident) is a silent no-op returning ``None``.
        """
        entry = self._entries.get((name, region))
        if entry is None:
            return None
        rec = _prof.ACTIVE
        if rec is not None:
            rec.begin("cache.evict")
        try:
            was_dirty = entry.dirty
            self.metrics.evictions += 1
            if was_dirty:
                self.metrics.dirty_evictions += 1
            self._remove(entry, count_eviction=False)
            return entry if was_dirty else None
        finally:
            if rec is not None:
                rec.end()

    # -- coherence and flushing --------------------------------------------

    def flush_overlapping(
        self, name: str, region: Region, *, exclude_exact: bool = False
    ) -> list[CacheEntry]:
        """Mark dirty entries overlapping ``region`` clean and return them
        for write-back; entries stay resident (their data is still the
        newest).  With ``exclude_exact`` the exact-key entry is skipped —
        used when that entry is about to be superseded wholesale."""
        out: list[CacheEntry] = []
        for entry in self._entries.values():
            if not entry.dirty or entry.name != name:
                continue
            if exclude_exact and entry.region == region:
                continue
            if regions_overlap(entry.region, region):
                entry.dirty = False
                out.append(entry)
        self.metrics.flushed_tiles += len(out)
        return out

    def invalidate_overlapping(
        self, name: str, region: Region, *, exclude_exact: bool = False
    ) -> list[CacheEntry]:
        """Drop entries overlapping ``region`` (stale after a write).
        Returns any dirty ones — callers that did not flush first must
        write them back themselves."""
        victims = [
            e
            for e in self._entries.values()
            if e.name == name
            and not (exclude_exact and e.region == region)
            and regions_overlap(e.region, region)
        ]
        dirty = [e for e in victims if e.dirty]
        for e in victims:
            self._remove(e, count_eviction=False)
        return dirty

    def flush_all(self) -> list[CacheEntry]:
        """Nest-boundary flush: every dirty entry becomes clean and is
        returned for write-back; clean data stays resident for cross-nest
        reuse."""
        out = [e for e in self._entries.values() if e.dirty]
        for e in out:
            e.dirty = False
        self.metrics.flushed_tiles += len(out)
        return out

    def clear(self) -> list[CacheEntry]:
        """Drop everything; returns dirty entries for write-back."""
        dirty = [e for e in self._entries.values() if e.dirty]
        for e in list(self._entries.values()):
            self._remove(e, count_eviction=False)
        return dirty

    # -- internals ----------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _touch(self, entry: CacheEntry) -> None:
        entry.accesses += 1
        entry.last_access = self._tick()
        self.policy.on_access(entry)

    def _need_room(self, size: int) -> bool:
        if self.in_use + size > self.budget:
            return True
        # the budget is shared with in-flight compute tiles through the
        # MemoryManager; a boundary tile overshooting its planned
        # footprint squeezes the cache, which must yield
        return (
            self.memory is not None
            and self.memory.in_use + size > self.memory.budget
        )

    def _make_room(self, size: int) -> tuple[bool, list[CacheEntry]]:
        writeback: list[CacheEntry] = []
        if not (self._entries and self._need_room(size)):
            return not self._need_room(size), writeback
        rec = _prof.ACTIVE
        if rec is not None:
            rec.begin("cache.evict")
        n_evicted = 0
        try:
            while self._entries and self._need_room(size):
                victim = self.policy.victim(self._entries.values())
                self.metrics.evictions += 1
                n_evicted += 1
                if victim.dirty:
                    self.metrics.dirty_evictions += 1
                    writeback.append(victim)
                self._remove(victim, count_eviction=False)
        finally:
            if rec is not None:
                rec.end(count=n_evicted)
        return not self._need_room(size), writeback

    def _remove(self, entry: CacheEntry, *, count_eviction: bool) -> None:
        if count_eviction:
            self.metrics.evictions += 1
        del self._entries[entry.key]
        if self.memory is not None:
            self.memory.free(entry.size)
        self.policy.on_remove(entry)
