"""Result model for the static I/O lower-bound pass.

A :class:`NestBound` is one nest's red-blue-pebbling-style lower bound
on element transfers, tagged with the derivation rule that produced it
so reports can say *why* the number is what it is.  Bounds are safe
under-counts: every derivation in :mod:`repro.bounds.analysis` proves
``bound_elements`` is at most the elements the engine actually moves on
any execution path (direct / independent / two-phase) with per-node
memory capacity ``memory_elements``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

#: Hong–Kung √M bound for matmul-like contractions (Irony–Toledo–Tiskin
#: constant, Kwasniewski et al. "Pebbles, Graphs, and a Pinch of
#: Combinatorics" lineage), maxed with the cold footprint.
RULE_CONTRACTION = "hong-kung-contraction"
#: Full-rank permutation write/read pair (transpose-flavoured copies):
#: both images must cross the memory boundary once.
RULE_TRANSPOSE = "transpose-exchange"
#: Shifted same-matrix references or multi-var subscripts (stencils,
#: recurrences, sliding windows): footprint + reuse-distance argument.
RULE_STENCIL = "stencil-footprint"
#: Write image of rank < depth (accumulations into fewer dimensions).
RULE_REDUCTION = "reduction-footprint"
#: Conservative fallback: cold (compulsory) footprint only.
RULE_COLD = "cold-footprint"

RULES = (
    RULE_CONTRACTION,
    RULE_TRANSPOSE,
    RULE_STENCIL,
    RULE_REDUCTION,
    RULE_COLD,
)


@dataclass(frozen=True)
class NestBound:
    """Lower bound on element transfers for one loop nest.

    ``read_elements`` / ``write_elements`` are the per-direction bounds
    (already scaled by nest weight and discounted for warm caches);
    ``bound_elements`` is their sum, maxed with the Hong–Kung term for
    contractions.  ``memory_elements`` is the per-node capacity ``M``
    the bound was derived against and ``n_nodes`` the node count whose
    aggregate memory discounts warm reuse.
    """

    nest: str
    rule: str
    bound_elements: float
    read_elements: float
    write_elements: float
    memory_elements: int
    n_nodes: int = 1
    weight: int = 1
    warm: bool = False
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: Mapping) -> "NestBound":
        return NestBound(
            nest=d["nest"],
            rule=d["rule"],
            bound_elements=float(d["bound_elements"]),
            read_elements=float(d.get("read_elements", 0.0)),
            write_elements=float(d.get("write_elements", 0.0)),
            memory_elements=int(d.get("memory_elements", 0)),
            n_nodes=int(d.get("n_nodes", 1)),
            weight=int(d.get("weight", 1)),
            warm=bool(d.get("warm", False)),
            detail=str(d.get("detail", "")),
        )
