"""repro.bounds — static I/O lower bounds and optimality analysis.

Red-blue-pebbling-style lower bounds on element transfers for the
affine loop nests of the registry, derived from the IR alone (loop
headers, reference footprints, iteration domains) given a memory
capacity ``M``.  The observability stack (:mod:`repro.obs`) pairs
these with measured transfers into per-nest ``OptimalityRecord`` rows,
turning relative wins ("c-opt beats col") into absolute statements
("c-opt is within X% of optimal").
"""

from .analysis import (
    bounds_by_nest,
    classify_nest,
    domain_size,
    find_contraction,
    nest_footprint_counts,
    nest_lower_bound,
    program_bounds,
    ref_image_size,
)
from .model import (
    RULE_COLD,
    RULE_CONTRACTION,
    RULE_REDUCTION,
    RULE_STENCIL,
    RULE_TRANSPOSE,
    RULES,
    NestBound,
)

__all__ = [
    "NestBound",
    "RULES",
    "RULE_COLD",
    "RULE_CONTRACTION",
    "RULE_REDUCTION",
    "RULE_STENCIL",
    "RULE_TRANSPOSE",
    "bounds_by_nest",
    "classify_nest",
    "domain_size",
    "find_contraction",
    "nest_footprint_counts",
    "nest_lower_bound",
    "program_bounds",
    "ref_image_size",
]
