"""Static I/O lower bounds for affine loop nests.

The pass walks the compiler IR (loop headers, array references,
iteration domains) and derives, per nest, a safe lower bound on the
number of array elements any execution of that nest must transfer
between node memory (capacity ``M`` elements) and the file system.

The load-bearing quantity is the *reference image*: the number of
distinct in-bounds elements a reference touches over the nest's full
iteration domain.  Every engine path reads a superset of each read
image per weight repetition (tile footprints are clipped bounding boxes
covering all touched elements; the two-phase aggregators read the union
of requested file runs; ``h-opt`` chunk slots are disjoint per element)
and writes back every written tile region, so

* cold (no cache):   ``reads >= weight * R``, ``writes >= weight * W``
* warm (tile cache): ``reads >= weight * max(0, R - n_nodes * M)``

where ``R``/``W`` sum, per array, the largest single-reference image —
a lower bound on the union of that array's touched elements.  Images
are computed by exact enumeration of the (subset of the) iteration
domain when small, else by an analytic sweep that requires *all*
subscripts of a connected dimension group to be simultaneously
in-bounds — per-dimension independent counting is unsound when
clipping is anti-correlated (e.g. ``A[i, i - N + 1]``).

Matmul-like contractions additionally get the Hong–Kung √M bound in
the Irony–Toledo–Tiskin form popularized by Kwasniewski et al.
(PAPERS.md): ``T / (2·√2·√M) - 2·p·M`` for ``T`` elementary
multiply-accumulates on ``p`` nodes, maxed with the cold footprint.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from ..ir.arrays import ArrayRef
from ..ir.expr import BinOp, Expr, Ref, UnOp
from ..ir.nest import LoopNest
from ..ir.program import Program
from .model import (
    RULE_COLD,
    RULE_CONTRACTION,
    RULE_REDUCTION,
    RULE_STENCIL,
    RULE_TRANSPOSE,
    NestBound,
)

#: exact-enumeration budget (iteration points per reference image);
#: beyond this the analytic sweep takes over
ENUM_CAP = 1 << 18

#: per-level enumeration budget for exact iteration-domain counting
DOMAIN_ENUM_CAP = 4096


# ---------------------------------------------------------------------------
# iteration domain


def _midpoint_env(nest: LoopNest, binding: Mapping[str, int]) -> dict[str, int]:
    """Binding plus every loop var pinned at its midpoint (outer-in)."""
    env = dict(binding)
    for loop in nest.loops:
        lo, hi = loop.eval_range(env)
        env[loop.var] = (lo + hi) // 2 if hi >= lo else lo
    return env


def _coupled_vars(nest: LoopNest) -> set[str]:
    """Loop vars tied together by non-rectangular bounds (``j = i..N``)."""
    coupled: set[str] = set()
    lvars = set(nest.loop_vars)
    for loop in nest.loops:
        deps = {
            name
            for b in (*loop.lowers, *loop.uppers)
            for name in b.expr.names
            if name in lvars
        }
        if deps:
            coupled.add(loop.var)
            coupled |= deps
    return coupled


def domain_size(nest: LoopNest, binding: Mapping[str, int]) -> int:
    """Number of iteration points of the nest (a safe under-count).

    Exact for rectangular and singly-coupled (triangular/skewed)
    domains up to ``DOMAIN_ENUM_CAP`` trips per coupled level; beyond
    the cap a coupled level contributes ``trips * min(endpoint
    recursions)``, an under-count for the affine bounds in the
    registry.
    """
    loops = nest.loops

    def rec(level: int, env: dict[str, int]) -> int:
        if level == len(loops):
            return 1
        loop = loops[level]
        lo, hi = loop.eval_range(env)
        trips = hi - lo + 1
        if trips <= 0:
            return 0
        later_dep = any(
            loop.var in b.expr.names
            for l2 in loops[level + 1 :]
            for b in (*l2.lowers, *l2.uppers)
        )
        if not later_dep:
            env2 = dict(env)
            env2[loop.var] = (lo + hi) // 2
            return trips * rec(level + 1, env2)
        if trips <= DOMAIN_ENUM_CAP:
            total = 0
            env2 = dict(env)
            for v in range(lo, hi + 1):
                env2[loop.var] = v
                total += rec(level + 1, env2)
            return total
        env_lo = dict(env)
        env_lo[loop.var] = lo
        env_hi = dict(env)
        env_hi[loop.var] = hi
        return trips * min(rec(level + 1, env_lo), rec(level + 1, env_hi))

    return rec(0, dict(binding))


# ---------------------------------------------------------------------------
# reference images


def ref_image_size(
    nest: LoopNest,
    ref: ArrayRef,
    binding: Mapping[str, int],
    shape: Sequence[int],
) -> int:
    """Distinct in-bounds elements ``ref`` touches — a safe under-count.

    Statement guards are ignored on purpose: the engine forms tile
    regions from unguarded bounding boxes, so its transfers cover the
    unguarded image too.
    """
    lvars = list(nest.loop_vars)
    used = [v for v in lvars if any(s.coeff(v) for s in ref.subscripts)]
    mid_env = _midpoint_env(nest, binding)
    rng: dict[str, tuple[int, int]] = {}
    env = dict(binding)
    for loop in nest.loops:
        rng[loop.var] = loop.eval_range(env)
        env[loop.var] = mid_env[loop.var]

    prod = 1
    for v in used:
        lo, hi = rng[v]
        prod *= max(0, hi - lo + 1)
        if prod > ENUM_CAP:
            break
    if prod <= ENUM_CAP:
        return _enumerated_image(nest, ref, binding, shape, set(used))
    return _analytic_image(ref, shape, used, rng, mid_env, _coupled_vars(nest))


def _enumerated_image(
    nest: LoopNest,
    ref: ArrayRef,
    binding: Mapping[str, int],
    shape: Sequence[int],
    used: set[str],
) -> int:
    """Exact image over the domain slice with unused vars pinned at
    midpoints (a sub-domain, hence a safe under-count)."""
    loops = nest.loops
    points: set[tuple[int, ...]] = set()
    env = dict(binding)

    def rec(level: int) -> None:
        if level == len(loops):
            idx = tuple(s.evaluate(env) for s in ref.subscripts)
            if all(0 <= x < d for x, d in zip(idx, shape)):
                points.add(idx)
            return
        loop = loops[level]
        lo, hi = loop.eval_range(env)
        if lo > hi:
            return
        if loop.var in used:
            for v in range(lo, hi + 1):
                env[loop.var] = v
                rec(level + 1)
        else:
            env[loop.var] = (lo + hi) // 2
            rec(level + 1)
        del env[loop.var]

    rec(0)
    return len(points)


def _analytic_image(
    ref: ArrayRef,
    shape: Sequence[int],
    used: Sequence[str],
    rng: Mapping[str, tuple[int, int]],
    mid_env: Mapping[str, int],
    coupled: set[str],
) -> int:
    """Analytic under-count for large domains.

    Dimensions are grouped into connected components by shared loop
    vars; each component is counted by sweeping one var (the best of
    its vars) with every other var pinned at its midpoint, requiring
    *every* subscript of the component to be in-bounds simultaneously.
    Components over purely rectangular ("free") vars multiply; any
    component touching a coupled var contributes a single max factor —
    products over coupled vars are unsound on triangular domains.
    """
    # constant dims must land in bounds on their own, else the engine
    # clips the region to empty and nothing is ever transferred
    for s, d in zip(ref.subscripts, shape):
        if not any(s.coeff(v) for v in used):
            if not 0 <= s.evaluate(mid_env) < d:
                return 0

    if not used:
        return 1  # pure constant ref, already checked in-bounds

    parent = {v: v for v in used}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for s in ref.subscripts:
        dim_vars = [v for v in used if s.coeff(v)]
        for v in dim_vars[1:]:
            parent[find(v)] = find(dim_vars[0])

    comps: dict[str, set[str]] = {}
    for v in used:
        comps.setdefault(find(v), set()).add(v)

    def sweep(var: str, dims: list[tuple[object, int]]) -> int:
        lo, hi = rng[var]
        env = dict(mid_env)
        count = 0
        for val in range(lo, hi + 1):
            env[var] = val
            if all(0 <= s.evaluate(env) < d for s, d in dims):
                count += 1
        return count

    total = 1
    coupled_best = 0
    saw_coupled = False
    for comp_vars in comps.values():
        dims = [
            (s, d)
            for s, d in zip(ref.subscripts, shape)
            if any(s.coeff(v) for v in comp_vars)
        ]
        best = max(sweep(v, dims) for v in sorted(comp_vars))
        if comp_vars & coupled:
            saw_coupled = True
            coupled_best = max(coupled_best, best)
        else:
            total *= best
    if saw_coupled:
        total *= coupled_best
    return total


def nest_footprint_counts(
    nest: LoopNest,
    binding: Mapping[str, int],
    shapes: Mapping[str, Sequence[int]],
) -> tuple[dict[str, int], dict[str, int]]:
    """Per-array safe under-counts of distinct elements read / written.

    Per array the max over that direction's references under-counts
    the union of their images.
    """
    cache: dict[ArrayRef, int] = {}
    reads: dict[str, int] = {}
    writes: dict[str, int] = {}
    for _, ref, is_write in nest.refs():
        if ref not in cache:
            cache[ref] = ref_image_size(nest, ref, binding, shapes[ref.array.name])
        side = writes if is_write else reads
        name = ref.array.name
        side[name] = max(side.get(name, 0), cache[ref])
    return reads, writes


# ---------------------------------------------------------------------------
# nest classification


def _addends(expr: Expr) -> list[Expr]:
    """Flatten a ``+``/``-`` tree into its (sign-ignored) addends."""
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        return _addends(expr.left) + _addends(expr.right)
    if isinstance(expr, UnOp):
        return _addends(expr.operand)
    return [expr]


def _product_refs(expr: Expr) -> tuple[ArrayRef, ArrayRef] | None:
    """``Ref * Ref`` operands of a multiply, if that is what this is."""
    if isinstance(expr, BinOp) and expr.op == "*":
        left, right = expr.left, expr.right
        if isinstance(left, Ref) and isinstance(right, Ref):
            return left.ref, right.ref
    return None


def _pair_injective(ref: ArrayRef, v1: str, v2: str) -> bool:
    """True when the subscript map restricted to (v1, v2) is injective."""
    coeffs = [(s.coeff(v1), s.coeff(v2)) for s in ref.subscripts]
    for i, (a, b) in enumerate(coeffs):
        for c, d in coeffs[i + 1 :]:
            if a * d - b * c != 0:
                return True
    return False


def find_contraction(nest: LoopNest):
    """The MAC statement of a classic 3-loop contraction, or ``None``.

    Requires the Hong–Kung shape exactly: depth 3, an unguarded
    ``C[..] = C[..] + A[..] * B[..]`` whose three references use the
    var pairs {i,j} / {i,k} / {k,j} (in some assignment) injectively.
    """
    if nest.depth != 3:
        return None
    lvars = set(nest.loop_vars)
    for stmt in nest.body:
        if stmt.guards:
            continue
        terms = _addends(stmt.rhs)
        if not any(isinstance(t, Ref) and t.ref == stmt.lhs for t in terms):
            continue
        lhs_vars = {v for v in lvars if any(s.coeff(v) for s in stmt.lhs.subscripts)}
        if len(lhs_vars) != 2:
            continue
        (missing,) = lvars - lhs_vars
        for term in terms:
            prod = _product_refs(term)
            if prod is None:
                continue
            a_ref, b_ref = prod
            a_vars = {v for v in lvars if any(s.coeff(v) for s in a_ref.subscripts)}
            b_vars = {v for v in lvars if any(s.coeff(v) for s in b_ref.subscripts)}
            if a_vars | b_vars != lvars or missing not in (a_vars & b_vars):
                continue
            if len(a_vars) != 2 or len(b_vars) != 2:
                continue
            ok = (
                _pair_injective(stmt.lhs, *sorted(lhs_vars))
                and _pair_injective(a_ref, *sorted(a_vars))
                and _pair_injective(b_ref, *sorted(b_vars))
            )
            if ok:
                return stmt
    return None


def _unit_var_order(nest: LoopNest, ref: ArrayRef) -> tuple[str, ...] | None:
    """Per-dim loop var when every non-constant subscript is a single
    unit-coefficient var covering all loops exactly once, else None."""
    lvars = list(nest.loop_vars)
    order: list[str] = []
    for s in ref.subscripts:
        dim_vars = [v for v in lvars if s.coeff(v)]
        if not dim_vars:
            continue
        if len(dim_vars) > 1 or abs(s.coeff(dim_vars[0])) != 1:
            return None
        order.append(dim_vars[0])
    if sorted(order) != sorted(lvars):
        return None
    return tuple(order)


def _is_transpose(nest: LoopNest) -> bool:
    for stmt in nest.body:
        worder = _unit_var_order(nest, stmt.lhs)
        if worder is None:
            continue
        for ref in stmt.reads():
            if ref.array.name == stmt.lhs.array.name:
                continue
            rorder = _unit_var_order(nest, ref)
            if rorder is not None and rorder != worder:
                return True
    return False


def _is_stencil(nest: LoopNest) -> bool:
    lvars = list(nest.loop_vars)
    by_array: dict[str, list[ArrayRef]] = {}
    for _, ref, _ in nest.refs():
        # a dim mixing >= 2 loop vars is a sliding window / skew
        for s in ref.subscripts:
            if sum(1 for v in lvars if s.coeff(v)) >= 2:
                return True
        by_array.setdefault(ref.array.name, []).append(ref)
    for refs in by_array.values():
        for i, a in enumerate(refs):
            for b in refs[i + 1 :]:
                if a == b or len(a.subscripts) != len(b.subscripts):
                    continue
                same_matrix = all(
                    all(sa.coeff(v) == sb.coeff(v) for v in lvars)
                    for sa, sb in zip(a.subscripts, b.subscripts)
                )
                offsets_differ = any(
                    sa.const != sb.const
                    for sa, sb in zip(a.subscripts, b.subscripts)
                )
                if same_matrix and offsets_differ:
                    return True
    return False


def _is_reduction(nest: LoopNest) -> bool:
    lvars = set(nest.loop_vars)
    for stmt in nest.body:
        used = {v for v in lvars if any(s.coeff(v) for s in stmt.lhs.subscripts)}
        if used != lvars:
            return True
    return False


def classify_nest(nest: LoopNest) -> tuple[str, str]:
    """(derivation rule, human-readable detail) for a nest."""
    stmt = find_contraction(nest)
    if stmt is not None:
        return RULE_CONTRACTION, f"MAC update of {stmt.lhs.array.name}"
    if _is_transpose(nest):
        return RULE_TRANSPOSE, "permutation write/read pair"
    if _is_stencil(nest):
        return RULE_STENCIL, "shifted references / windowed subscripts"
    if _is_reduction(nest):
        return RULE_REDUCTION, "write image of rank < depth"
    return RULE_COLD, "compulsory footprint"


# ---------------------------------------------------------------------------
# per-nest bounds


def nest_lower_bound(
    nest: LoopNest,
    binding: Mapping[str, int],
    shapes: Mapping[str, Sequence[int]],
    *,
    memory_elements: int,
    n_nodes: int = 1,
    warm: bool = False,
) -> NestBound:
    """Lower bound on elements this nest transfers, on any engine path.

    ``memory_elements`` is the per-node capacity ``M`` (use the
    effective peak when the executor overran its nominal budget);
    ``warm`` discounts up to the aggregate memory ``n_nodes * M`` of
    read reuse carried in from earlier nests or repetitions (tile
    cache).  Writes always flush per repetition.
    """
    reads, writes = nest_footprint_counts(nest, binding, shapes)
    r_image = sum(reads.values())
    w_image = sum(writes.values())
    weight = max(1, int(nest.weight))
    m = max(0, int(memory_elements))
    p = max(1, int(n_nodes))

    read_bound = float(weight * (max(0, r_image - p * m) if warm else r_image))
    write_bound = float(weight * w_image)
    cold = read_bound + write_bound

    rule, detail = classify_nest(nest)
    bound = cold
    if rule == RULE_CONTRACTION:
        ops = domain_size(nest, binding)
        hk = weight * ops / (2.0 * math.sqrt(2.0) * math.sqrt(max(1, m))) - 2.0 * p * m
        if hk > bound:
            bound = hk
            detail += f" (Hong-Kung term dominates, T={ops})"
        else:
            detail += f" (footprint dominates, T={ops})"
    return NestBound(
        nest=nest.name,
        rule=rule,
        bound_elements=bound,
        read_elements=read_bound,
        write_elements=write_bound,
        memory_elements=m,
        n_nodes=p,
        weight=weight,
        warm=warm,
        detail=detail,
    )


def program_bounds(
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    memory_elements: int | None = None,
    params=None,
    n_nodes: int = 1,
    warm: bool = False,
) -> list[NestBound]:
    """Per-nest I/O lower bounds for a whole program.

    When ``memory_elements`` is omitted, the executor's budget formula
    (``max(64, total_elements // memory_fraction)``) is applied so the
    static bound matches what a default run would be charged against.
    """
    b = program.binding(binding)
    shapes = {a.name: a.shape(b) for a in program.arrays}
    if memory_elements is None:
        if params is None:
            from ..runtime.params import MachineParams

            params = MachineParams()
        total = sum(math.prod(s) for s in shapes.values())
        memory_elements = max(64, total // params.memory_fraction)
    return [
        nest_lower_bound(
            nest,
            b,
            shapes,
            memory_elements=memory_elements,
            n_nodes=n_nodes,
            warm=warm,
        )
        for nest in program.nests
    ]


def bounds_by_nest(bounds: Iterable[NestBound]) -> dict[str, dict]:
    """Serialize a bound list into the mapping ``repro.obs`` consumes."""
    return {b.nest: b.to_dict() for b in bounds}
