"""Applying data transformations to references, and the Claim-1 locality
predicates connecting layouts, access matrices and loop transformations.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.affine import AffineExpr
from ..ir.arrays import ArrayRef
from ..linalg import IMat
from .hyperplane import Hyperplane


def transform_ref(ref: ArrayRef, d: IMat) -> ArrayRef:
    """Rewrite a reference for storage coordinates ``t = D·a`` (used when a
    layout change is realized by index remapping rather than by the
    runtime's address map — e.g. by the code generator)."""
    if d.nrows != ref.rank:
        raise ValueError(f"transform rank {d.nrows} != ref rank {ref.rank}")
    new_subs = []
    for row in d.rows:
        expr = AffineExpr.const_expr(0)
        for coeff, sub in zip(row, ref.subscripts):
            expr = expr + coeff * sub
        new_subs.append(expr)
    return ArrayRef(ref.array, tuple(new_subs))


def transform_decl_dims(
    dims: Sequence[int], d: IMat
) -> tuple[tuple[int, int], ...]:
    """Bounds ``(min, max)`` per storage dimension for an index box
    ``[0, dims_d - 1]`` under ``D`` — the declared extents of the
    transformed array (Section 3.4's rectilinear-declaration rule)."""
    out = []
    for row in d.rows:
        lo = sum(min(0, c * (s - 1)) for c, s in zip(row, dims))
        hi = sum(max(0, c * (s - 1)) for c, s in zip(row, dims))
        out.append((lo, hi))
    return tuple(out)


def spatial_locality_ok(
    g: Sequence[int] | Hyperplane, l: IMat, q_last: Sequence[int]
) -> bool:
    """Claim 1: the reference has spatial locality in the innermost loop
    iff ``g · L · q_last == 0``."""
    gv = g.g if isinstance(g, Hyperplane) else tuple(g)
    lq = l.matvec(q_last)
    return sum(a * b for a, b in zip(gv, lq)) == 0


def temporal_locality_ok(l: IMat, q_last: Sequence[int]) -> bool:
    """The reference is invariant in the innermost loop iff
    ``L · q_last == 0`` (better than spatial locality — no constraint on
    the layout at all)."""
    return all(v == 0 for v in l.matvec(q_last))


def innermost_cost(
    g: Sequence[int] | Hyperplane | None, l: IMat, q_last: Sequence[int]
) -> int:
    """Relative per-iteration I/O cost of one reference in the innermost
    loop: 0 for temporal locality, 1 for spatial locality under layout
    ``g``, and a large constant otherwise (every innermost iteration
    touches a different file run)."""
    if temporal_locality_ok(l, q_last):
        return 0
    if g is not None and spatial_locality_ok(g, l, q_last):
        return 1
    return 1000
