"""Reducing the extra storage of general data transformations (§3.4).

A non-singular data transformation can inflate the rectilinear bounding
box that a conventional language must declare (the paper's example: the
access matrix ``[[a, b], [c, 0]]`` over ``u ∈ [1,N'], v ∈ [1,M']`` covers
``(a+b)(N'+M'-1) × c(N'-1)`` declared elements).  Composing a further
unimodular transformation that (1) keeps the zero pattern of the
locality-critical column and (2) shrinks the box can reclaim most of it —
the paper demonstrates ``[[1,-1],[0,1]]`` for ``a >= c``.

:func:`reduce_storage` searches small unimodular matrices for the best
such composition.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..linalg import IMat


def storage_box(
    access: IMat, loop_ranges: Sequence[tuple[int, int]]
) -> tuple[tuple[int, int], ...]:
    """Per-dimension ``(min, max)`` of ``L·I`` over the loop range box."""
    out = []
    for row in access.rows:
        lo = hi = 0
        for c, (rlo, rhi) in zip(row, loop_ranges):
            if c >= 0:
                lo += c * rlo
                hi += c * rhi
            else:
                lo += c * rhi
                hi += c * rlo
        out.append((lo, hi))
    return tuple(out)


def box_volume(box: Sequence[tuple[int, int]]) -> int:
    vol = 1
    for lo, hi in box:
        vol *= hi - lo + 1
    return vol


def expansion_factor(
    access: IMat, loop_ranges: Sequence[tuple[int, int]]
) -> float:
    """Declared (bounding-box) elements per accessed iteration — 1.0 means
    no wasted storage (assuming the access is injective on the box)."""
    touched = 1
    for lo, hi in loop_ranges:
        touched *= hi - lo + 1
    return box_volume(storage_box(access, loop_ranges)) / touched


def _zero_pattern(access: IMat, col: int) -> tuple[bool, ...]:
    return tuple(access[r, col] == 0 for r in range(access.nrows))


def _preserves_zeros(
    original: IMat, transformed: IMat, protect_col: int
) -> bool:
    """The paper's condition: zero entries of the locality-critical column
    must stay zero, so the previously-derived locality is not distorted."""
    orig = _zero_pattern(original, protect_col)
    new = _zero_pattern(transformed, protect_col)
    return all((not o) or n for o, n in zip(orig, new))


def reduce_storage(
    access: IMat,
    loop_ranges: Sequence[tuple[int, int]],
    protect_col: int | None = None,
    entry_span: int = 2,
) -> tuple[IMat, IMat, int]:
    """Search unimodular ``E`` minimizing the declared box of ``E·L``.

    ``protect_col`` defaults to the last column (the innermost loop after
    optimization).  Returns ``(E, E·L, new_volume)``; ``E`` is the identity
    when nothing smaller is found.
    """
    m = access.nrows
    if protect_col is None:
        protect_col = access.ncols - 1
    best_e = IMat.identity(m)
    best_l = access
    best_vol = box_volume(storage_box(access, loop_ranges))
    entries = range(-entry_span, entry_span + 1)
    for flat in itertools.product(entries, repeat=m * m):
        e = IMat([list(flat[r * m : (r + 1) * m]) for r in range(m)])
        if abs(e.det()) != 1:
            continue
        new_l = e @ access
        if not _preserves_zeros(access, new_l, protect_col):
            continue
        vol = box_volume(storage_box(new_l, loop_ranges))
        if vol < best_vol:
            best_e, best_l, best_vol = e, new_l, vol
    return best_e, best_l, best_vol
