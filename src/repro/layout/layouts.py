"""Concrete file layouts and exact address maps.

``LinearLayout(D)`` stores element ``a`` at the file position given by the
row-major rank of ``t = D·a`` within the bounding box of the transformed
index domain — exactly the paper's non-singular data transformations.
``BlockedLayout`` stores the array as contiguous rectangular chunks (the
"blocked layout" of Figure 2, used by the hand-optimized ``h-opt``).

Address computation is vectorized over numpy index arrays because the
out-of-core runtime calls it for every tile transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..linalg import IMat, unimodular_with_first_row
from .hyperplane import Hyperplane


class Layout:
    """Abstract file layout: maps array indices to file slots."""

    rank: int

    def address_map(self, shape: Sequence[int]) -> "AddressMap":
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    @property
    def hyperplane(self) -> Hyperplane | None:
        """The locality hyperplane, when the layout has one."""
        return None


class AddressMap:
    """Exact element-index → file-slot mapping for one concrete shape."""

    def __init__(self, t_rows: np.ndarray, t_min: np.ndarray, strides: np.ndarray, total: int):
        self._t_rows = t_rows  # (m, m) int64: the rows of D
        self._t_min = t_min  # (m,)
        self._strides = strides  # (m,)
        self.total_slots = int(total)

    def address(self, indices: np.ndarray) -> np.ndarray:
        """File slots for indices of shape ``(..., m)`` → ``(...,)`` int64."""
        idx = np.asarray(indices, dtype=np.int64)
        t = idx @ self._t_rows.T - self._t_min
        return t @ self._strides

    def address_one(self, index: Sequence[int]) -> int:
        return int(self.address(np.asarray(index, dtype=np.int64)[None, :])[0])


@dataclass(frozen=True)
class LinearLayout(Layout):
    """A non-singular (here: unimodular) data-space transformation ``D``."""

    d: IMat

    def __post_init__(self):
        if not self.d.is_square:
            raise ValueError("layout matrix must be square")
        if abs(self.d.det()) != 1:
            raise ValueError(
                f"layout matrix must be unimodular, det = {self.d.det()}"
            )

    @staticmethod
    def from_hyperplane(g: Sequence[int] | Hyperplane, rank: int | None = None) -> "LinearLayout":
        """Complete a layout hyperplane to a full layout.  Standard
        hyperplanes get their canonical completions (so ``(0,1)`` is
        exactly column-major)."""
        h = g if isinstance(g, Hyperplane) else Hyperplane.make(g)
        canon = {
            (1, 0): IMat([[1, 0], [0, 1]]),
            (0, 1): IMat([[0, 1], [1, 0]]),
            (1, -1): IMat([[1, -1], [0, 1]]),
            (1, 1): IMat([[1, 1], [0, 1]]),
        }
        if h.g in canon:
            return LinearLayout(canon[h.g])
        if rank is not None and h.rank != rank:
            raise ValueError(f"hyperplane rank {h.rank} != array rank {rank}")
        return LinearLayout(unimodular_with_first_row(h.g))

    @property
    def rank(self) -> int:
        return self.d.nrows

    @property
    def hyperplane(self) -> Hyperplane:
        return Hyperplane.make(self.d.row(0))

    def unit_step(self) -> tuple[int, ...]:
        """The index-space step between file-consecutive elements: the last
        column of ``D^-1`` (integral since ``D`` is unimodular)."""
        inv = self.d.inverse_unimodular()
        return inv.col(inv.ncols - 1)

    def address_map(self, shape: Sequence[int]) -> AddressMap:
        m = self.rank
        if len(shape) != m:
            raise ValueError(f"shape rank {len(shape)} != layout rank {m}")
        rows = np.array(self.d.to_lists(), dtype=np.int64)
        his = np.asarray(shape, dtype=np.int64) - 1
        # index domain is the box [0, hi_d]; interval arithmetic per row of D
        t_min = np.minimum(rows * his, 0).sum(axis=1)
        t_max = np.maximum(rows * his, 0).sum(axis=1)
        extents = t_max - t_min + 1
        strides = np.ones(m, dtype=np.int64)
        for r in range(m - 2, -1, -1):
            strides[r] = strides[r + 1] * extents[r + 1]
        total = int(np.prod(extents))
        return AddressMap(rows, t_min, strides, total)

    def describe(self) -> str:
        return f"linear layout g={self.hyperplane.name}, D={self.d!r}"


class _BlockedAddressMap(AddressMap):
    def __init__(self, block: np.ndarray, shape: np.ndarray):
        self._block = block
        self._grid = -(-shape // block)  # ceil-div: blocks per dimension
        self._block_slots = int(np.prod(block))
        m = len(block)
        self._grid_strides = np.ones(m, dtype=np.int64)
        self._in_strides = np.ones(m, dtype=np.int64)
        for r in range(m - 2, -1, -1):
            self._grid_strides[r] = self._grid_strides[r + 1] * self._grid[r + 1]
            self._in_strides[r] = self._in_strides[r + 1] * block[r + 1]
        self.total_slots = int(np.prod(self._grid)) * self._block_slots

    def address(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        b = idx // self._block
        w = idx - b * self._block
        return (b @ self._grid_strides) * self._block_slots + w @ self._in_strides

    def address_one(self, index: Sequence[int]) -> int:
        return int(self.address(np.asarray(index, dtype=np.int64)[None, :])[0])


@dataclass(frozen=True)
class BlockedLayout(Layout):
    """Chunked storage: the array is cut into ``block``-shaped tiles, each
    stored contiguously (row-major inside, blocks ordered row-major).

    Reading an aligned data tile is then *one* contiguous run — the
    mechanism behind the paper's hand-optimized chunking."""

    block: tuple[int, ...]

    def __post_init__(self):
        if not self.block or any(b <= 0 for b in self.block):
            raise ValueError(f"invalid block shape {self.block}")

    @property
    def rank(self) -> int:
        return len(self.block)

    def address_map(self, shape: Sequence[int]) -> AddressMap:
        if len(shape) != self.rank:
            raise ValueError(f"shape rank {len(shape)} != layout rank {self.rank}")
        return _BlockedAddressMap(
            np.asarray(self.block, dtype=np.int64),
            np.asarray(shape, dtype=np.int64),
        )

    def describe(self) -> str:
        return f"blocked layout, chunk {self.block}"


def layout_from_direction(delta: Sequence[int]) -> LinearLayout:
    """The layout whose file-consecutive step is exactly ``delta``:
    ``D = C^{-1}`` for a unimodular ``C`` with last column ``delta``.

    Elementary directions get the canonical dimension-permutation layout
    (e.g. ``(1,0)`` → column-major, ``(0,1)`` → row-major); general
    directions get a completion-based skewed layout.
    """
    from ..linalg import primitive, unimodular_with_last_column

    delta = primitive(delta)
    m = len(delta)
    nz = [i for i, v in enumerate(delta) if v != 0]
    if len(nz) == 1 and delta[nz[0]] == 1:
        fast = nz[0]
        if fast == m - 1:
            return row_major(m)  # canonical: last index fastest
        if fast == 0:
            return col_major(m)  # canonical: first index fastest
        # middle fast dims: fast goes last, the others keep their Fortran
        # column-major relative order
        order = [d for d in range(m - 1, -1, -1) if d != fast] + [fast]
        rows = [[1 if c == order[r] else 0 for c in range(m)] for r in range(m)]
        return LinearLayout(IMat(rows))
    return LinearLayout(unimodular_with_last_column(delta).inverse_unimodular())


def row_major(rank: int = 2) -> LinearLayout:
    return LinearLayout(IMat.identity(rank))


def col_major(rank: int = 2) -> LinearLayout:
    rows = [[1 if j == rank - 1 - i else 0 for j in range(rank)] for i in range(rank)]
    return LinearLayout(IMat(rows))


def diagonal() -> LinearLayout:
    return LinearLayout.from_hyperplane((1, -1))


def antidiagonal() -> LinearLayout:
    return LinearLayout.from_hyperplane((1, 1))
