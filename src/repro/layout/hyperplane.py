"""Layout hyperplanes (paper Section 3.2.1, Figure 2).

A hyperplane family ``g = (g_1, …, g_m)`` partitions the data space into
parallel hyperplanes ``g·a = c``; a file layout stores each hyperplane's
elements consecutively.  ``(0,1)`` is column-major, ``(1,0)`` row-major,
``(1,-1)`` diagonal, ``(1,1)`` anti-diagonal — and any other primitive
integer vector (the paper's ``(7,4)`` example) is equally valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..linalg import primitive


@dataclass(frozen=True)
class Hyperplane:
    g: tuple[int, ...]

    @staticmethod
    def make(vec: Sequence[int]) -> "Hyperplane":
        if not any(vec):
            raise ValueError("hyperplane vector must be non-zero")
        return Hyperplane(primitive(vec))

    @property
    def rank(self) -> int:
        return len(self.g)

    def same_hyperplane(self, a: Sequence[int], b: Sequence[int]) -> bool:
        """True iff the two elements have spatial locality under this
        layout (paper: ``g·a == g·b``)."""
        return sum(g * x for g, x in zip(self.g, a)) == sum(
            g * x for g, x in zip(self.g, b)
        )

    def value(self, a: Sequence[int]) -> int:
        return sum(g * x for g, x in zip(self.g, a))

    @property
    def name(self) -> str:
        named = {
            (1, 0): "row-major",
            (0, 1): "column-major",
            (1, -1): "diagonal",
            (1, 1): "anti-diagonal",
        }
        return named.get(self.g, f"hyperplane{self.g}")

    def __str__(self) -> str:
        return f"{self.name} {self.g}"


ROW_MAJOR_H = Hyperplane((1, 0))
COL_MAJOR_H = Hyperplane((0, 1))
DIAGONAL_H = Hyperplane((1, -1))
ANTIDIAGONAL_H = Hyperplane((1, 1))
