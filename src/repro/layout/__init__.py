"""File layouts for out-of-core arrays.

A file layout is the paper's data-space transformation: a non-singular
integer matrix ``D`` mapping array indices to *storage coordinates*; the
file stores elements in lexicographic (row-major) order of ``D·a``.  The
first row of ``D`` is the paper's *layout hyperplane* ``g``: elements on
the same hyperplane ``g·a = c`` are stored consecutively (Figure 2).

- :class:`Hyperplane` — hyperplane families ``g`` and the standard named
  layouts of Figure 2,
- :class:`LinearLayout` / :class:`AddressMap` — full layouts with exact,
  vectorized address computation,
- :class:`BlockedLayout` — tile-chunked storage (used by ``h-opt``),
- :mod:`repro.layout.storage` — the Section 3.4 extra-storage reduction.
"""

from .hyperplane import (
    Hyperplane,
    ROW_MAJOR_H,
    COL_MAJOR_H,
    DIAGONAL_H,
    ANTIDIAGONAL_H,
)
from .layouts import (
    Layout,
    LinearLayout,
    BlockedLayout,
    AddressMap,
    layout_from_direction,
    row_major,
    col_major,
    diagonal,
    antidiagonal,
)
from .data_transform import (
    transform_ref,
    transform_decl_dims,
    spatial_locality_ok,
    temporal_locality_ok,
    innermost_cost,
)
from .storage import storage_box, expansion_factor, reduce_storage

__all__ = [
    "Hyperplane",
    "ROW_MAJOR_H",
    "COL_MAJOR_H",
    "DIAGONAL_H",
    "ANTIDIAGONAL_H",
    "Layout",
    "LinearLayout",
    "BlockedLayout",
    "AddressMap",
    "layout_from_direction",
    "row_major",
    "col_major",
    "diagonal",
    "antidiagonal",
    "transform_ref",
    "transform_decl_dims",
    "spatial_locality_ok",
    "temporal_locality_ok",
    "innermost_cost",
    "storage_box",
    "expansion_factor",
    "reduce_storage",
]
