"""Deterministic discrete-event simulation of the parallel I/O system.

The closed-form :func:`repro.parallel.model.makespan` is an aggregate
bound: it compares the busiest compute node against the busiest I/O
node, but cannot say *when* requests collide.  This simulator models the
run per request:

- each **compute node** executes its timeline sequentially — compute
  segments and blocking I/O calls in issue order (blocking I/O is the
  machine model's semantics);
- each **I/O node** services a FIFO queue: a request starts when it
  arrives and the I/O node is free, and occupies it for
  ``io_latency_s + bytes/bandwidth`` seconds;
- the **interconnect** is one shared channel with the same FIFO
  discipline at ``net_latency_s + bytes/net_bandwidth`` per message
  (redistribution phase of two-phase collective I/O);
- optional **prefetch overlap**: a node carrying
  :class:`~repro.cache.metrics.CacheMetrics` has the
  :class:`~repro.cache.prefetch.DoubleBufferModel`'s ``overlapped_io_s``
  as a credit — up to that many seconds of blocked time are hidden
  under compute, which is exactly what the second buffer bought.

Everything is deterministic: events are processed in (arrival, node)
order, and arrivals are non-decreasing (a node's next request cannot
arrive before its previous one completed), so per-resource FIFO order
is arrival order.  When queues never overlap, every request starts the
moment it arrives and a node's finish time is its serial
``compute + io`` total — the simulation reduces to ``makespan()``
exactly; contention only ever pushes times later.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cache.prefetch import overlap_credit
from ..engine.executor import RunResult
from ..obs import profile as _prof
from ..runtime.params import MachineParams

#: resource id of the shared interconnect channel
NET = -1


@dataclass(frozen=True)
class SimOp:
    """One timeline entry: ``compute`` advances the node's clock;
    ``io``/``net`` block the node on a resource's FIFO queue."""

    kind: str                 # "compute" | "io" | "net"
    duration_s: float = 0.0   # compute only
    resource: int = 0         # io: I/O node index (net uses the channel)
    service_s: float = 0.0    # io / net occupancy
    is_write: bool = False    # io only: direction, for fault error draws


@dataclass
class NodeTimeline:
    node: int
    ops: list[SimOp] = field(default_factory=list)
    #: prefetch overlap budget (seconds of blocked time hidden under
    #: compute by double buffering)
    overlap_credit_s: float = 0.0


@dataclass(frozen=True)
class SimEvent:
    """One simulated request, fully timed: it arrived at the resource at
    ``arrival_s``, started service at ``start_s`` (the difference is
    queueing delay) and finished at ``end_s``.  ``compute`` events have
    zero wait by construction.  Only recorded when the caller passes an
    ``events`` list — the observability layer's simulated-time timeline
    (:meth:`repro.obs.Observability.add_sim_events`)."""

    node: int
    kind: str          # "compute" | "io" | "net"
    resource: int      # I/O node index; 0 for compute, NET for net
    arrival_s: float
    start_s: float
    end_s: float

    @property
    def wait_s(self) -> float:
        return self.start_s - self.arrival_s


@dataclass
class SimResult:
    makespan_s: float
    node_finish_s: list[float]
    io_busy_s: np.ndarray       # per-I/O-node service seconds
    net_busy_s: float           # shared-channel occupancy
    waited_requests: int        # requests that queued behind another
    wait_time_s: float          # total queueing delay
    n_events: int
    #: fault summary (:mod:`repro.faults`): failed attempts injected
    #: during this simulation, retries issued, and backoff seconds —
    #: all zero when no injector was passed (``faults=None``)
    faults_injected: int = 0
    fault_retries: int = 0
    fault_retry_delay_s: float = 0.0

    def describe(self) -> str:
        out = (
            f"makespan={self.makespan_s:.3f}s events={self.n_events} "
            f"waited={self.waited_requests} "
            f"(queue delay {self.wait_time_s:.3f}s) "
            f"net_busy={self.net_busy_s:.3f}s"
        )
        if self.faults_injected or self.fault_retries:
            out += (
                f" faults[injected={self.faults_injected} "
                f"retries={self.fault_retries} "
                f"delay={self.fault_retry_delay_s:.3f}s]"
            )
        return out


def simulate(
    params: MachineParams,
    timelines: Sequence[NodeTimeline],
    *,
    events: list[SimEvent] | None = None,
    metrics=None,
    faults=None,
) -> SimResult:
    """Run the event simulation over per-node timelines.

    ``events`` (a list to append to) records every request as a fully
    timed :class:`SimEvent`; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) receives queue-wait and
    service-time histograms.  ``faults`` (a
    :class:`repro.faults.FaultInjector`) perturbs ``io`` requests with
    the plan's time-indexed faults — outage deferral, straggler and
    latency-window multipliers at the request's start time — and draws
    per-attempt transient failures, re-queueing failed attempts after
    the policy's backoff (a request that exhausts its retry budget
    raises :class:`~repro.faults.TransientIOError`).  All three default
    to ``None`` — no recording, bit-identical results.
    """
    n = len(timelines)
    inj = faults
    inj_base = (
        (inj.injected, inj.retries, inj.retry_delay_s)
        if inj is not None else None
    )
    io_free = np.zeros(params.n_io_nodes)
    io_busy = np.zeros(params.n_io_nodes)
    net_free = 0.0
    net_busy = 0.0
    clock = [0.0] * n
    ptr = [0] * n
    credit = [tl.overlap_credit_s for tl in timelines]
    finish = [0.0] * n
    waited = 0
    wait_time = 0.0
    n_events = 0
    heap: list[tuple[float, int]] = []

    def schedule(i: int) -> None:
        """Advance node i through compute ops; queue its next request."""
        tl = timelines[i]
        t, j = clock[i], ptr[i]
        while j < len(tl.ops) and tl.ops[j].kind == "compute":
            d = tl.ops[j].duration_s
            if events is not None and d > 0.0:
                events.append(SimEvent(i, "compute", 0, t, t, t + d))
            t += d
            j += 1
        clock[i], ptr[i] = t, j
        if j < len(tl.ops):
            heapq.heappush(heap, (t, i))
        else:
            finish[i] = t

    for i in range(n):
        schedule(i)
    rec = _prof.ACTIVE
    if rec is not None:
        rec.begin("sim.event_loop")
    try:
        while heap:
            arrival, i = heapq.heappop(heap)
            op = timelines[i].ops[ptr[i]]
            if op.kind == "net":
                start = max(arrival, net_free)
                done = start + op.service_s
                net_free = done
                net_busy += op.service_s
            elif inj is None:
                start = max(arrival, io_free[op.resource])
                done = start + op.service_s
                io_free[op.resource] = done
                io_busy[op.resource] += op.service_s
            else:
                # perturbed, fallible request: each attempt waits for the
                # queue and any outage covering it, occupies the I/O node
                # for the multiplied service time, and a failed attempt
                # backs off before re-queueing.  The recorded wait spans
                # arrival to the *first* attempt's start; retries extend
                # ``done`` (and the node's blocked time) instead.
                res = op.resource
                t, n_failed = arrival, 0
                start = done = arrival
                while True:
                    start_a = inj.sim_defer(res, max(t, io_free[res]))
                    svc = op.service_s * inj.sim_multiplier(res, start_a)
                    done = start_a + svc
                    io_free[res] = done
                    io_busy[res] += svc
                    if n_failed == 0:
                        start = start_a
                    if not inj.sim_error(res, op.is_write, start_a):
                        break
                    n_failed += 1
                    if n_failed > inj.policy.max_retries:
                        inj.sim_give_up(res, op.is_write, done, n_failed)
                    t = done + inj.sim_retry_delay(n_failed, done)
            if start > arrival:
                waited += 1
                wait_time += start - arrival
            if events is not None:
                events.append(
                    SimEvent(
                        i,
                        op.kind,
                        op.resource if op.kind == "io" else NET,
                        arrival,
                        start,
                        done,
                    )
                )
            if metrics is not None:
                metrics.histogram("sim.queue_wait_us").observe(
                    (start - arrival) * 1e6
                )
                metrics.histogram("sim.service_us").observe(
                    op.service_s * 1e6
                )
                metrics.counter(f"sim.{op.kind}_requests").inc()
            # double-buffered prefetch: spend overlap credit to hide
            # blocked time under the preceding compute (the data was
            # fetched early)
            use = min(credit[i], done - arrival)
            credit[i] -= use
            clock[i] = max(arrival, done - use)
            ptr[i] += 1
            n_events += 1
            schedule(i)
    finally:
        if rec is not None:
            rec.end(count=n_events)
        _prof.WORK.sim_events += n_events

    result = SimResult(
        max(finish) if finish else 0.0,
        finish,
        io_busy,
        net_busy,
        waited,
        wait_time,
        n_events,
    )
    if inj is not None:
        result.faults_injected = inj.injected - inj_base[0]
        result.fault_retries = inj.retries - inj_base[1]
        result.fault_retry_delay_s = inj.retry_delay_s - inj_base[2]
    return result


def io_node_of(params: MachineParams, global_elem: int) -> int:
    """The I/O node servicing a request's first stripe — where the
    closed-form model charges the latency, and where the event model
    queues the whole request."""
    return (global_elem // params.stripe_elements) % params.n_io_nodes


def nest_ops(params: MachineParams, nest_run) -> list[SimOp]:
    """Timeline ops of one :class:`~repro.engine.executor.NestRun` under
    independent execution: the traced calls in issue order, with the
    nest's compute spread evenly around them (the executor does not
    timestamp compute between calls, so an even spread is the
    deterministic choice — exact in total)."""
    if nest_run.trace is None:
        raise ValueError(
            f"nest {nest_run.nest_name!r} carries no trace; build the "
            "executor with trace=True to event-simulate the run"
        )
    ops: list[SimOp] = []
    reps = max(1, nest_run.trace_weight)
    n_calls = len(nest_run.trace)
    compute_rep = nest_run.stats.compute_time_s / reps
    if n_calls == 0:
        if compute_rep > 0.0:
            ops.extend(
                SimOp("compute", duration_s=compute_rep) for _ in range(reps)
            )
        return ops
    chunk = compute_rep / (n_calls + 1)
    for _ in range(reps):
        for base, off, ln, is_write in nest_run.trace:
            if chunk > 0.0:
                ops.append(SimOp("compute", duration_s=chunk))
            ops.append(
                SimOp(
                    "io",
                    resource=io_node_of(params, base + off),
                    service_s=params.call_time(ln * params.element_size),
                    is_write=is_write,
                )
            )
        if chunk > 0.0:
            ops.append(SimOp("compute", duration_s=chunk))
    return ops


def timeline_from_result(
    params: MachineParams,
    node: int,
    result: RunResult,
    *,
    overlap: bool = False,
) -> NodeTimeline:
    """Build a node's timeline from an executed ``RunResult``.

    Requires per-nest call traces (executor built with ``trace=True``).
    """
    ops: list[SimOp] = []
    for nr in result.nest_runs:
        ops.extend(nest_ops(params, nr))
    credit = overlap_credit(result.cache_metrics) if overlap else 0.0
    return NodeTimeline(node, ops, overlap_credit_s=credit)


def event_makespan(
    params: MachineParams,
    results: Sequence[RunResult],
    *,
    overlap: bool = False,
) -> SimResult:
    """Event-simulate an independent (non-collective) parallel run from
    its per-node results — the drop-in contention-aware alternative to
    the closed-form :func:`~repro.parallel.model.makespan`."""
    timelines = [
        timeline_from_result(params, i, r, overlap=overlap)
        for i, r in enumerate(results)
    ]
    return simulate(params, timelines)
