"""Collective two-phase I/O and the event-driven parallel I/O simulator.

The paper's runtime is PASSION, whose signature mechanism is *two-phase
collective I/O*: compute nodes read a file in its conforming
(layout-contiguous) partition and redistribute over the interconnect,
turning many small strided calls into few large ones — the same
call-count reduction the compiler chases, achieved at the runtime layer.
This package adds both that mechanism and the contention model needed to
price it:

- :mod:`~repro.collective.planner` — the two-phase planner: conforming
  file partition, aggregator (``cb_nodes``) assignment, cross-node run
  merging priced by the exact :func:`~repro.runtime.stats.plan_runs`,
  and the redistribution message list costed by the new
  :class:`~repro.runtime.params.MachineParams` interconnect constants;
- :mod:`~repro.collective.sim` — a deterministic discrete-event
  simulator with per-I/O-node FIFO queues, blocking compute nodes,
  a shared interconnect channel and optional prefetch overlap; it
  reduces to the closed-form ``makespan()`` when queues never overlap;
- integration — ``run_version_parallel(..., collective=
  CollectiveConfig(...))`` chooses independent vs. two-phase per nest by
  predicted cost and reports the phase breakdown in ``IOStats``.

The paper's own finding survives intact: on layouts the compiler already
made conforming, two-phase I/O buys nothing and costs redistribution —
``mode="auto"`` keeps those nests independent, and
``benchmarks/bench_collective.py`` reports both regimes.
"""

from .planner import (
    CollectiveConfig,
    CollectiveReport,
    FileAccessPlan,
    NestCollectivePlan,
    choose_aggregators,
    conforming_partition,
    io_node_loads,
    plan_nest_collective,
    union_runs,
)
from .sim import (
    NodeTimeline,
    SimOp,
    SimResult,
    event_makespan,
    simulate,
    timeline_from_result,
)

__all__ = [
    "CollectiveConfig",
    "CollectiveReport",
    "FileAccessPlan",
    "NestCollectivePlan",
    "NodeTimeline",
    "SimOp",
    "SimResult",
    "choose_aggregators",
    "conforming_partition",
    "event_makespan",
    "io_node_loads",
    "plan_nest_collective",
    "simulate",
    "timeline_from_result",
    "union_runs",
]
