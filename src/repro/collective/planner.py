"""Two-phase collective I/O planning (PASSION / ROMIO style).

Under independent out-of-core execution every compute node issues the
I/O calls of its own tile walk.  When the file layout does not conform
to the access pattern, those calls are many and short — and different
nodes' short runs *interleave* in the file, so no node can merge them
alone.  Two-phase collective I/O reorganizes the access at the runtime
layer:

- **Phase 1 (file phase)**: the union of all nodes' requests is
  partitioned into contiguous, stripe-aligned *file domains* — the
  file's conforming partition — and each domain is assigned to one
  *aggregator* node (ROMIO's ``cb_nodes``).  Each aggregator transfers
  its domain with few large calls; the calls are priced by the exact
  same pure :func:`~repro.runtime.stats.plan_runs` as the independent
  path, so the comparison is apples to apples.
- **Phase 2 (redistribution)**: aggregators exchange data with the
  requesting nodes over the interconnect, one message per
  (node, aggregator) pair with overlap, costed by
  :meth:`MachineParams.net_time`.  Writes run the phases in reverse.

The planner only *plans* — it consumes the per-node call traces a nest
recorded and produces the aggregator call lists, the message list and
closed-form cost predictions.  :func:`repro.parallel.spmd
.run_version_parallel` applies the plan per nest when it beats the
independent cost; :mod:`repro.collective.sim` prices either variant
with per-request contention.

The paper's counterpoint is preserved by construction: when compile-time
layout optimization already made every node's accesses conforming, the
aggregators' merged calls are barely fewer than the independent ones and
the redistribution phase is pure overhead — the plan reports
``wins == False`` and the run stays independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..runtime.params import MachineParams
from ..runtime.stats import plan_runs

#: one traced I/O call: (file_base_elem, offset_elem, n_elems, is_write)
TraceEntry = tuple[int, int, int, bool]


@dataclass(frozen=True)
class CollectiveConfig:
    """Switches for collective execution in ``run_version_parallel``.

    ``mode``
        ``"auto"`` chooses independent vs. two-phase per nest by
        predicted cost, ``"always"`` forces two-phase wherever a plan
        exists, ``"never"`` keeps every nest independent (useful to get
        the event simulator on an unmodified run).
    ``cb_nodes``
        number of aggregator nodes (default:
        ``min(n_nodes, params.n_io_nodes)``).
    ``simulator``
        ``"event"`` prices the run with the discrete-event simulator,
        ``"closed-form"`` with the aggregate-max :func:`~repro.parallel
        .model.makespan`.
    """

    mode: str = "auto"
    cb_nodes: int | None = None
    simulator: str = "event"

    def __post_init__(self):
        if self.mode not in ("auto", "always", "never"):
            raise ValueError(f"unknown collective mode {self.mode!r}")
        if self.simulator not in ("event", "closed-form"):
            raise ValueError(f"unknown simulator {self.simulator!r}")
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be at least 1")


@dataclass(frozen=True)
class FileAccessPlan:
    """Two-phase plan for one (file, direction) of one nest."""

    file_base: int
    is_write: bool
    #: per-aggregator conforming domain, global elements, end-exclusive
    domains: tuple[tuple[int, int], ...]
    #: per-aggregator planned calls (global offsets, lengths) — the
    #: output of ``plan_runs`` over the union of the domain's requests
    agg_offsets: tuple[np.ndarray, ...]
    agg_lengths: tuple[np.ndarray, ...]
    #: (rank, aggregator_index, n_elems) per redistribution message
    messages: tuple[tuple[int, int, int], ...]

    @property
    def n_calls(self) -> int:
        return sum(int(o.size) for o in self.agg_offsets)

    @property
    def n_elements(self) -> int:
        return sum(int(l.sum()) for l in self.agg_lengths)


@dataclass(frozen=True)
class NestCollectivePlan:
    """Per-nest decision record: both paths priced, per repetition and
    in whole-nest seconds (``weight`` repetitions included)."""

    nest_name: str
    weight: int
    n_nodes: int
    aggregators: tuple[int, ...]
    accesses: tuple[FileAccessPlan, ...]
    independent_calls: int          # per repetition, all nodes
    independent_elements: int
    independent_cost_s: float       # whole nest (I/O only, both paths)
    two_phase_calls: int
    two_phase_elements: int
    redist_messages: int            # per repetition
    redist_elements: int
    two_phase_cost_s: float

    @property
    def wins(self) -> bool:
        return self.two_phase_cost_s < self.independent_cost_s

    @property
    def call_reduction(self) -> float:
        if self.two_phase_calls == 0:
            return float("inf") if self.independent_calls else 1.0
        return self.independent_calls / self.two_phase_calls

    def describe(self) -> str:
        verdict = "two-phase" if self.wins else "independent"
        return (
            f"{self.nest_name}: ind {self.independent_calls} calls "
            f"{self.independent_cost_s:.3f}s vs two-phase "
            f"{self.two_phase_calls} calls + {self.redist_messages} msgs "
            f"{self.two_phase_cost_s:.3f}s -> {verdict}"
        )


@dataclass
class CollectiveReport:
    """What ``run_version_parallel`` decided and what it cost."""

    config: CollectiveConfig
    nest_plans: list[NestCollectivePlan] = field(default_factory=list)
    chosen: dict[str, bool] = field(default_factory=dict)
    sim: object | None = None  # SimResult when simulator == "event"
    #: nests whose winning two-phase plan was demoted to independent
    #: I/O because an aggregator rank is marked failed in the active
    #: fault plan (:mod:`repro.faults`); empty without faults
    degraded: list[str] = field(default_factory=list)

    @property
    def n_collective_nests(self) -> int:
        return sum(1 for v in self.chosen.values() if v)

    def plan_for(self, nest_name: str) -> NestCollectivePlan | None:
        for p in self.nest_plans:
            if p.nest_name == nest_name:
                return p
        return None


def union_runs(
    offsets: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Union of possibly overlapping runs -> disjoint sorted runs.

    Unlike the sieve (which requires disjoint input), different nodes
    may request overlapping element ranges; the aggregator transfers
    each element once.
    """
    if offsets.size <= 1:
        return offsets.astype(np.int64), lengths.astype(np.int64)
    order = np.argsort(offsets, kind="stable")
    off = offsets[order].astype(np.int64)
    ln = lengths[order].astype(np.int64)
    reach = np.maximum.accumulate(off + ln)
    breaks = np.flatnonzero(off[1:] > reach[:-1])
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [off.size - 1]))
    return off[starts], reach[stops] - off[starts]


def conforming_partition(
    params: MachineParams, lo: int, hi: int, n_domains: int
) -> list[tuple[int, int]]:
    """Split the accessed range ``[lo, hi)`` of the global element space
    into ``n_domains`` contiguous, stripe-aligned file domains (the
    file's *conforming* partition: each domain is layout-contiguous by
    definition, so a domain transfer is a handful of large calls)."""
    if hi <= lo:
        return [(lo, lo)] * n_domains
    se = params.stripe_elements
    first = lo // se
    n_stripes = (hi - 1) // se - first + 1
    out = []
    for k in range(n_domains):
        s0 = first + (n_stripes * k) // n_domains
        s1 = first + (n_stripes * (k + 1)) // n_domains
        out.append((max(lo, s0 * se), min(hi, s1 * se)))
    return out


def io_node_loads(
    params: MachineParams, offsets: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-I/O-node service seconds of a batch of final calls (global
    element offsets) — the same striping arithmetic as
    :meth:`IOContext.record_runs`: latency at the first servicing node,
    transfer spread over the stripes each call covers."""
    load = np.zeros(params.n_io_nodes, dtype=np.float64)
    if offsets.size == 0:
        return load
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    se = params.stripe_elements
    start, end = offsets, offsets + lengths
    first, last = start // se, (end - 1) // se
    np.add.at(load, first % params.n_io_nodes, params.io_latency_s)
    per_el = params.element_size / params.io_bandwidth_bps
    span = int((last - first).max()) + 1
    for k in range(span):
        stripe = first + k
        mask = stripe <= last
        if not mask.any():
            break
        s0 = np.maximum(start[mask], stripe[mask] * se)
        s1 = np.minimum(end[mask], (stripe[mask] + 1) * se)
        np.add.at(load, stripe[mask] % params.n_io_nodes, (s1 - s0) * per_el)
    return load


def choose_aggregators(n_nodes: int, cb_nodes: int) -> tuple[int, ...]:
    """Evenly spaced aggregator ranks (ROMIO spreads ``cb_nodes`` over
    the communicator for the same reason: balanced memory and links)."""
    cb = max(1, min(cb_nodes, n_nodes))
    ranks = np.unique(np.linspace(0, n_nodes - 1, cb).round().astype(int))
    return tuple(int(r) for r in ranks)


def _clip_runs(
    off: np.ndarray, ln: np.ndarray, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Clip runs to the domain ``[lo, hi)``; drops empty pieces."""
    s = np.maximum(off, lo)
    e = np.minimum(off + ln, hi)
    keep = e > s
    return s[keep], (e - s)[keep]


def plan_nest_collective(
    params: MachineParams,
    nest_name: str,
    traces: Sequence[Sequence[TraceEntry]],
    *,
    weight: int = 1,
    cb_nodes: int | None = None,
) -> NestCollectivePlan | None:
    """Plan two-phase I/O for one nest from its per-node call traces.

    Returns ``None`` when no node issued any I/O (nothing to plan).
    Costs cover the I/O and redistribution phases only — compute is
    identical under both paths and cancels out of the decision.
    """
    n_nodes = len(traces)
    if n_nodes == 0 or all(len(t) == 0 for t in traces):
        return None
    cb = cb_nodes if cb_nodes is not None else min(n_nodes, params.n_io_nodes)
    aggregators = choose_aggregators(n_nodes, cb)

    # per-rank global runs, grouped by (file_base, direction)
    groups: dict[tuple[int, bool], list[tuple[int, np.ndarray, np.ndarray]]] = {}
    ind_time = np.zeros(n_nodes)
    ind_calls = 0
    ind_elements = 0
    all_off: list[np.ndarray] = []
    all_len: list[np.ndarray] = []
    for rank, trace in enumerate(traces):
        if not trace:
            continue
        per_file: dict[tuple[int, bool], list[tuple[int, int]]] = {}
        for base, off, ln, is_write in trace:
            per_file.setdefault((base, is_write), []).append((base + off, ln))
        for key, runs in per_file.items():
            off = np.array([o for o, _ in runs], dtype=np.int64)
            ln = np.array([l for _, l in runs], dtype=np.int64)
            groups.setdefault(key, []).append((rank, off, ln))
            ind_calls += off.size
            ind_elements += int(ln.sum())
            ind_time[rank] += off.size * params.io_latency_s + (
                int(ln.sum()) * params.element_size / params.io_bandwidth_bps
            )
            all_off.append(off)
            all_len.append(ln)
    ind_loads = io_node_loads(
        params, np.concatenate(all_off), np.concatenate(all_len)
    )
    independent_cost = max(float(ind_time.max()), float(ind_loads.max())) * weight

    # two-phase plan per (file, direction)
    accesses: list[FileAccessPlan] = []
    agg_time = np.zeros(len(aggregators))
    agg_all_off: list[np.ndarray] = []
    agg_all_len: list[np.ndarray] = []
    tp_calls = 0
    tp_elements = 0
    n_messages = 0
    msg_elements = 0
    net_total = 0.0
    for (base, is_write), members in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        g_off = np.concatenate([o for _, o, _ in members])
        g_len = np.concatenate([l for _, _, l in members])
        lo = int(g_off.min())
        hi = int((g_off + g_len).max())
        domains = conforming_partition(params, lo, hi, len(aggregators))
        d_offsets: list[np.ndarray] = []
        d_lengths: list[np.ndarray] = []
        messages: list[tuple[int, int, int]] = []
        for a, (dlo, dhi) in enumerate(domains):
            c_off, c_len = _clip_runs(g_off, g_len, dlo, dhi)
            u_off, u_len = union_runs(c_off, c_len)
            p_off, p_len = plan_runs(params, u_off, u_len)
            d_offsets.append(p_off)
            d_lengths.append(p_len)
            agg_time[a] += p_off.size * params.io_latency_s + (
                int(p_len.sum()) * params.element_size / params.io_bandwidth_bps
            )
            agg_all_off.append(p_off)
            agg_all_len.append(p_len)
            tp_calls += int(p_off.size)
            tp_elements += int(p_len.sum())
            # redistribution: each rank exchanges its overlap with the
            # domain; the aggregator's own share moves in local memory
            for rank, r_off, r_len in members:
                _, o_len = _clip_runs(r_off, r_len, dlo, dhi)
                vol = int(o_len.sum())
                if vol == 0 or rank == aggregators[a]:
                    continue
                messages.append((rank, a, vol))
                n_messages += 1
                msg_elements += vol
                net_total += params.net_time(vol * params.element_size)
        accesses.append(
            FileAccessPlan(
                base,
                is_write,
                tuple(domains),
                tuple(d_offsets),
                tuple(d_lengths),
                tuple(messages),
            )
        )
    agg_loads = io_node_loads(
        params,
        np.concatenate(agg_all_off) if agg_all_off else np.zeros(0, np.int64),
        np.concatenate(agg_all_len) if agg_all_len else np.zeros(0, np.int64),
    )
    # the file phase is bounded by the busiest aggregator or I/O node;
    # the redistribution phase serializes on the shared channel
    two_phase_cost = (
        max(float(agg_time.max()), float(agg_loads.max())) + net_total
    ) * weight

    return NestCollectivePlan(
        nest_name,
        weight,
        n_nodes,
        aggregators,
        tuple(accesses),
        ind_calls,
        ind_elements,
        independent_cost,
        tp_calls,
        tp_elements,
        n_messages,
        msg_elements,
        two_phase_cost,
    )
