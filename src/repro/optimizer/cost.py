"""Cost model: ranking nests and scoring candidate (T, layouts) choices.

The paper orders nests "according to a cost criterion using profile
information" (step 3.a).  For these regular codes a static estimate ranks
identically: a nest's cost is its timing-loop weight times its iteration
count times the number of out-of-core references per iteration.

For *scoring* a candidate transformation the model estimates I/O volume
per reference from its innermost-loop behaviour (Claim 1):

- temporal locality (``L q_last = 0``): one tile fetch amortized over the
  whole innermost loop,
- spatial locality (``L q_last`` parallel to the layout's file-fastest
  direction ``Δa``): one file run per ``R`` elements (``R`` = innermost
  trip, capped by the max request size),
- neither: a separate file run for *every* innermost iteration.

A layout is carried as its fast direction ``Δa`` (for a 2-D hyperplane
``g``, ``Δa ⊥ g`` — the two forms are equivalent; directions stay exact
for rank >= 3 where a single hyperplane under-determines the layout).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.nest import LoopNest
from ..layout import temporal_locality_ok
from ..linalg import IMat, primitive


def nest_cost(nest: LoopNest, binding: Mapping[str, int]) -> float:
    """Profile-style cost used to order nests (bigger = costlier)."""
    refs = sum(1 for _ in nest.refs())
    return float(nest.weight) * nest.estimated_iterations(binding) * max(1, refs)


def access_is_spatial(
    l: IMat, q_last: Sequence[int], direction: Sequence[int] | None
) -> bool:
    """True iff consecutive innermost iterations touch file-consecutive
    (or constant-stride-along-the-fast-axis) elements."""
    v = l.matvec(q_last)
    if not any(v):
        return True  # temporal, strictly better
    if direction is None:
        return False
    return primitive(v) == primitive(direction)


def _ref_io_terms(
    nest: LoopNest,
    directions: Mapping[str, Sequence[int] | None],
    q_last: Sequence[int],
    binding: Mapping[str, int],
    run_cap: int,
) -> list[tuple[str, float]]:
    """Per-reference (array name, unweighted estimated calls) in textual
    reference order — the shared core of :func:`estimate_nest_io` and
    :func:`estimate_nest_io_breakdown`."""
    iters = max(1, nest.estimated_iterations(binding))
    env = dict(binding)
    inner_trip = 1
    for loop in nest.loops:
        lo, hi = loop.eval_range(env)
        env[loop.var] = (lo + hi) // 2
        inner_trip = max(1, hi - lo + 1)
    run = min(inner_trip, run_cap)
    terms: list[tuple[str, float]] = []
    for _, ref, _ in nest.refs():
        l = nest.access_matrix(ref)
        if temporal_locality_ok(l, q_last):
            terms.append((ref.array.name, iters / (inner_trip * run)))
            continue
        if ref.rank == 1:
            stride = l.matvec(q_last)[0]
            spatial = abs(stride) == 1
        else:
            spatial = access_is_spatial(
                l, q_last, directions.get(ref.array.name)
            )
        terms.append(
            (ref.array.name, iters / run if spatial else float(iters))
        )
    return terms


def estimate_nest_io(
    nest: LoopNest,
    directions: Mapping[str, Sequence[int] | None],
    q_last: Sequence[int],
    binding: Mapping[str, int],
    *,
    run_cap: int = 4096,
) -> float:
    """Estimated I/O calls for one pass of the nest under a candidate
    ``q_last`` and per-array fast directions.  Relative, not absolute."""
    total = 0.0
    for _, term in _ref_io_terms(nest, directions, q_last, binding, run_cap):
        total += term
    return total * nest.weight


def estimate_nest_io_breakdown(
    nest: LoopNest,
    directions: Mapping[str, Sequence[int] | None],
    q_last: Sequence[int],
    binding: Mapping[str, int],
    *,
    run_cap: int = 4096,
) -> dict[str, float]:
    """Per-array split of :func:`estimate_nest_io` — same model, same
    weight scaling, grouped by referenced array.  The values sum to the
    scalar estimate (up to float addition order); the drift telemetry
    compares each against the array's measured I/O calls."""
    out: dict[str, float] = {}
    for name, term in _ref_io_terms(nest, directions, q_last, binding, run_cap):
        out[name] = out.get(name, 0.0) + term
    return {name: v * nest.weight for name, v in out.items()}


def layout_directions(
    layouts: Mapping[str, object],
) -> dict[str, tuple[int, ...] | None]:
    """File-fastest direction per array from concrete layout objects —
    the inverse of :func:`repro.layout.layout_from_direction`.  Linear
    layouts yield their :meth:`~repro.layout.LinearLayout.unit_step`;
    blocked/chunked layouts have no single fast direction (``None``,
    which the model scores as non-spatial)."""
    from ..layout import LinearLayout

    return {
        name: layout.unit_step() if isinstance(layout, LinearLayout) else None
        for name, layout in layouts.items()
    }


def predict_program_io(
    program,
    layouts: Mapping[str, object],
    binding: Mapping[str, int] | None = None,
    *,
    run_cap: int = 4096,
) -> dict[str, dict[str, float]]:
    """The optimizer's predicted I/O per (nest, array) for a program *as
    executed*: the program is already transformed, so every nest's
    effective ``q_last`` is the innermost unit vector, and the per-array
    fast directions come from the concrete file layouts.

    This is the prediction side of the cost-model drift telemetry
    (:class:`repro.obs.report.CostDriftRecord`): the same
    :func:`estimate_nest_io` arithmetic the optimizer ranked candidates
    with, evaluated at the choice it made, so measured divergence is
    model error — not bookkeeping skew.
    """
    b = program.binding(binding)
    directions = layout_directions(layouts)
    out: dict[str, dict[str, float]] = {}
    for nest in program.nests:
        q_last = (0,) * (nest.depth - 1) + (1,)
        out[nest.name] = estimate_nest_io_breakdown(
            nest, directions, q_last, b, run_cap=run_cap
        )
    return out


def estimate_nest_elements(
    nest: LoopNest,
    q_last: Sequence[int],
    binding: Mapping[str, int],
) -> float:
    """Modeled element transfers for the nest (weight included): one
    element per iteration per reference, except temporal references
    whose fetched tile is reused across the whole innermost loop.
    Element counts are layout-independent in this model — layouts move
    *calls*, not touched elements."""
    iters = max(1, nest.estimated_iterations(binding))
    env = dict(binding)
    inner_trip = 1
    for loop in nest.loops:
        lo, hi = loop.eval_range(env)
        env[loop.var] = (lo + hi) // 2
        inner_trip = max(1, hi - lo + 1)
    total = 0.0
    for _, ref, _ in nest.refs():
        l = nest.access_matrix(ref)
        if temporal_locality_ok(l, q_last):
            total += iters / inner_trip
        else:
            total += float(iters)
    return total * nest.weight


def predict_program_elements(
    program,
    binding: Mapping[str, int] | None = None,
) -> dict[str, float]:
    """Modeled element transfers per nest for a program as executed
    (innermost unit ``q_last`` per nest, like :func:`predict_program_io`).
    The "modeled" column of the optimality telemetry: how many element
    touches the cost model expects, to sit between the static lower
    bound and the measured transfers."""
    b = program.binding(binding)
    out: dict[str, float] = {}
    for nest in program.nests:
        q_last = (0,) * (nest.depth - 1) + (1,)
        out[nest.name] = estimate_nest_elements(nest, q_last, b)
    return out
