"""Cost model: ranking nests and scoring candidate (T, layouts) choices.

The paper orders nests "according to a cost criterion using profile
information" (step 3.a).  For these regular codes a static estimate ranks
identically: a nest's cost is its timing-loop weight times its iteration
count times the number of out-of-core references per iteration.

For *scoring* a candidate transformation the model estimates I/O volume
per reference from its innermost-loop behaviour (Claim 1):

- temporal locality (``L q_last = 0``): one tile fetch amortized over the
  whole innermost loop,
- spatial locality (``L q_last`` parallel to the layout's file-fastest
  direction ``Δa``): one file run per ``R`` elements (``R`` = innermost
  trip, capped by the max request size),
- neither: a separate file run for *every* innermost iteration.

A layout is carried as its fast direction ``Δa`` (for a 2-D hyperplane
``g``, ``Δa ⊥ g`` — the two forms are equivalent; directions stay exact
for rank >= 3 where a single hyperplane under-determines the layout).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.nest import LoopNest
from ..layout import temporal_locality_ok
from ..linalg import IMat, primitive


def nest_cost(nest: LoopNest, binding: Mapping[str, int]) -> float:
    """Profile-style cost used to order nests (bigger = costlier)."""
    refs = sum(1 for _ in nest.refs())
    return float(nest.weight) * nest.estimated_iterations(binding) * max(1, refs)


def access_is_spatial(
    l: IMat, q_last: Sequence[int], direction: Sequence[int] | None
) -> bool:
    """True iff consecutive innermost iterations touch file-consecutive
    (or constant-stride-along-the-fast-axis) elements."""
    v = l.matvec(q_last)
    if not any(v):
        return True  # temporal, strictly better
    if direction is None:
        return False
    return primitive(v) == primitive(direction)


def estimate_nest_io(
    nest: LoopNest,
    directions: Mapping[str, Sequence[int] | None],
    q_last: Sequence[int],
    binding: Mapping[str, int],
    *,
    run_cap: int = 4096,
) -> float:
    """Estimated I/O calls for one pass of the nest under a candidate
    ``q_last`` and per-array fast directions.  Relative, not absolute."""
    iters = max(1, nest.estimated_iterations(binding))
    env = dict(binding)
    inner_trip = 1
    for loop in nest.loops:
        lo, hi = loop.eval_range(env)
        env[loop.var] = (lo + hi) // 2
        inner_trip = max(1, hi - lo + 1)
    run = min(inner_trip, run_cap)
    total = 0.0
    for _, ref, _ in nest.refs():
        l = nest.access_matrix(ref)
        if temporal_locality_ok(l, q_last):
            total += iters / (inner_trip * run)
            continue
        if ref.rank == 1:
            stride = l.matvec(q_last)[0]
            spatial = abs(stride) == 1
        else:
            spatial = access_is_spatial(
                l, q_last, directions.get(ref.array.name)
            )
        total += iters / run if spatial else float(iters)
    return total * nest.weight
