"""Globally optimal layout + loop assignment via integer linear
programming — the paper's announced future work ("we are also working on
the problem of determining optimal file layouts using techniques from
integer linear programming", Section 5), implemented here as an
extension.

The greedy global algorithm (Section 3) fixes layouts in nest-cost order
and never revisits them; on programs with tangled layout conflicts it
can get stuck in a local optimum.  The exact formulation:

- per nest ``n``: a binary choice among the *legal* innermost directions
  ``q`` (each pre-verified to admit a dependence-legal unimodular
  completion);
- per array ``a``: a binary choice among candidate fast directions
  ``Δa`` (every direction some reference could realize, plus the
  temporal wildcard);
- the objective sums the per-reference I/O estimates, which depend on a
  *pair* of decisions — linearized with standard product variables
  ``z[n,q,a,d] >= x[n,q] + y[a,d] - 1``.

Solved with ``scipy.optimize.milp``; an exhaustive solver (optimal
per-array choice is separable once all ``q`` are fixed) cross-checks it
and serves as a fallback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..dependence import analyze_nest
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..linalg import IMat, primitive
from ..transforms import apply_loop_transform, normalize_program
from .cost import access_is_spatial
from .global_opt import GlobalDecision, ReportEvent
from .locality import (
    _elementary,
    _legal_completion,
    hyperplane_from_direction,
)

#: sentinel direction meaning "this array's layout is unconstrained"
FREE = ("*",)

#: the solver names a decision can report having used
SOLVERS = ("milp", "exhaustive", "descent")


class MilpError(RuntimeError):
    """``scipy.optimize.milp`` is unavailable or failed to converge.

    Raised instead of silently falling back so callers decide the
    fallback *and* record the reason (:func:`optimize_program_ilp`
    reports it as a structured ``solver`` event)."""


@dataclass
class _NestModel:
    nest: LoopNest
    q_options: list[tuple[int, ...]]
    transforms: dict[tuple[int, ...], IMat]


def _ref_cost(
    nest: LoopNest,
    l: IMat,
    rank: int,
    q: tuple[int, ...],
    direction: tuple[int, ...] | None,
    binding: Mapping[str, int],
    inner_trip: int,
) -> float:
    iters = max(1, nest.estimated_iterations(binding))
    v = l.matvec(q)
    if not any(v):
        return nest.weight * iters / (inner_trip * inner_trip)
    if rank == 1:
        spatial = abs(v[0]) == 1
    else:
        spatial = direction is not None and access_is_spatial(l, q, direction)
    return nest.weight * (iters / inner_trip if spatial else float(iters))


def _inner_trip(nest: LoopNest, binding: Mapping[str, int]) -> int:
    env = dict(binding)
    trip = 1
    for loop in nest.loops:
        lo, hi = loop.eval_range(env)
        env[loop.var] = (lo + hi) // 2
        trip = max(1, hi - lo + 1)
    return trip


def _build_models(
    program: Program, binding: Mapping[str, int]
) -> tuple[list[_NestModel], dict[str, list[tuple[int, ...]]]]:
    """Enumerate legal q options per nest and candidate directions per
    array."""
    models: list[_NestModel] = []
    dir_candidates: dict[str, set[tuple[int, ...]]] = {}
    for nest in program.nests:
        edges = analyze_nest(nest)
        q_options: list[tuple[int, ...]] = []
        transforms: dict[tuple[int, ...], IMat] = {}
        for idx in range(nest.depth - 1, -1, -1):
            q = _elementary(nest.depth, idx)
            t = _legal_completion(q, edges, nest.depth)
            if t is not None:
                q_options.append(q)
                transforms[q] = t
        if not q_options:  # should not happen: identity is always legal
            q = _elementary(nest.depth, nest.depth - 1)
            q_options, transforms = [q], {q: IMat.identity(nest.depth)}
        models.append(_NestModel(nest, q_options, transforms))
        for _, ref, _ in nest.refs():
            if ref.rank < 2:
                continue
            l = nest.access_matrix(ref)
            for q in q_options:
                v = l.matvec(q)
                if any(v):
                    dir_candidates.setdefault(ref.array.name, set()).add(
                        primitive(v)
                    )
    # arrays never touched by a rank>=2 reference keep a default choice
    dirs = {
        name: sorted(cands) for name, cands in dir_candidates.items()
    }
    return models, dirs


def _total_cost(
    models: Sequence[_NestModel],
    q_choice: Mapping[str, tuple[int, ...]],
    directions: Mapping[str, tuple[int, ...]],
    binding: Mapping[str, int],
) -> float:
    total = 0.0
    for m in models:
        q = q_choice[m.nest.name]
        trip = _inner_trip(m.nest, binding)
        for _, ref, _ in m.nest.refs():
            l = m.nest.access_matrix(ref)
            total += _ref_cost(
                m.nest, l, ref.rank, q,
                directions.get(ref.array.name), binding, trip,
            )
    return total


def solve_exhaustive(
    models: Sequence[_NestModel],
    dirs: Mapping[str, list[tuple[int, ...]]],
    binding: Mapping[str, int],
) -> tuple[dict[str, tuple[int, ...]], dict[str, tuple[int, ...]], float]:
    """Optimal assignment by enumerating q-combinations; given fixed
    ``q``s the best direction decomposes per array."""
    best = None
    for combo in itertools.product(*[m.q_options for m in models]):
        q_choice = {m.nest.name: q for m, q in zip(models, combo)}
        directions: dict[str, tuple[int, ...]] = {}
        for name, options in dirs.items():
            best_d, best_c = None, None
            for d in options:
                c = _array_cost(models, q_choice, name, d, binding)
                if best_c is None or c < best_c:
                    best_d, best_c = d, c
            if best_d is not None:
                directions[name] = best_d
        cost = _total_cost(models, q_choice, directions, binding)
        if best is None or cost < best[2]:
            best = (q_choice, directions, cost)
    assert best is not None
    return best


def _array_cost(
    models: Sequence[_NestModel],
    q_choice: Mapping[str, tuple[int, ...]],
    array: str,
    direction: tuple[int, ...],
    binding: Mapping[str, int],
) -> float:
    total = 0.0
    for m in models:
        q = q_choice[m.nest.name]
        trip = _inner_trip(m.nest, binding)
        for _, ref, _ in m.nest.refs():
            if ref.array.name != array:
                continue
            l = m.nest.access_matrix(ref)
            total += _ref_cost(m.nest, l, ref.rank, q, direction, binding, trip)
    return total


def solve_milp(
    models: Sequence[_NestModel],
    dirs: Mapping[str, list[tuple[int, ...]]],
    binding: Mapping[str, int],
) -> tuple[dict[str, tuple[int, ...]], dict[str, tuple[int, ...]], float]:
    """The ILP formulation, solved with scipy's MILP (HiGHS).

    Raises :class:`MilpError` when scipy is missing or HiGHS reports
    failure — no silent fallback; the caller picks the substitute
    solver and logs why."""
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as e:  # pragma: no cover - scipy ships in CI
        raise MilpError(f"scipy.optimize.milp unavailable: {e}") from e

    # variable layout: x[n][q], y[a][d], z[n,q,a,d] (only for pairs that
    # appear in some reference's cost)
    x_index: dict[tuple[str, tuple[int, ...]], int] = {}
    for m in models:
        for q in m.q_options:
            x_index[(m.nest.name, q)] = len(x_index)
    y_index: dict[tuple[str, tuple[int, ...]], int] = {}
    for a, options in dirs.items():
        for d in options:
            y_index[(a, d)] = len(x_index) + len(y_index)

    # costs: constant part (temporal / rank-1, independent of y) on x;
    # pair part on z
    x_cost = np.zeros(len(x_index))
    pair_cost: dict[tuple[int, int], float] = {}
    for m in models:
        trip = _inner_trip(m.nest, binding)
        iters = max(1, m.nest.estimated_iterations(binding))
        for q in m.q_options:
            xi = x_index[(m.nest.name, q)]
            for _, ref, _ in m.nest.refs():
                l = m.nest.access_matrix(ref)
                v = l.matvec(q)
                if not any(v) or ref.rank == 1:
                    x_cost[xi] += _ref_cost(
                        m.nest, l, ref.rank, q, None, binding, trip
                    )
                    continue
                name = ref.array.name
                # bad unless the chosen direction matches: model as
                # bad-cost on x, plus a (negative) discount on the pair
                bad = m.nest.weight * float(iters)
                good = m.nest.weight * iters / trip
                x_cost[xi] += bad
                for d in dirs.get(name, []):
                    if access_is_spatial(l, q, d):
                        yi = y_index[(name, d)]
                        pair_cost[(xi, yi)] = (
                            pair_cost.get((xi, yi), 0.0) + good - bad
                        )

    z_index = {pair: len(x_index) + len(y_index) + k
               for k, pair in enumerate(sorted(pair_cost))}
    n_vars = len(x_index) + len(y_index) + len(z_index)
    c = np.zeros(n_vars)
    c[: len(x_index)] = x_cost
    for pair, cost in pair_cost.items():
        c[z_index[pair]] = cost

    rows, lbs, ubs = [], [], []

    def add_row(coeffs: dict[int, float], lb: float, ub: float):
        row = np.zeros(n_vars)
        for k, v in coeffs.items():
            row[k] = v
        rows.append(row)
        lbs.append(lb)
        ubs.append(ub)

    # exactly one q per nest
    for m in models:
        add_row(
            {x_index[(m.nest.name, q)]: 1.0 for q in m.q_options}, 1.0, 1.0
        )
    # exactly one direction per array (with candidates)
    for a, options in dirs.items():
        add_row({y_index[(a, d)]: 1.0 for d in options}, 1.0, 1.0)
    # z == x AND y.  The pair costs are all discounts (negative), so the
    # minimizer pushes z up; z <= x and z <= y suffice.
    for (xi, yi), zi in z_index.items():
        add_row({z_index[(xi, yi)]: 1.0, xi: -1.0}, -np.inf, 0.0)
        add_row({z_index[(xi, yi)]: 1.0, yi: -1.0}, -np.inf, 0.0)

    res = milp(
        c=c,
        constraints=LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs)),
        integrality=np.ones(n_vars),
        bounds=Bounds(0, 1),
    )
    if not res.success:  # pragma: no cover - HiGHS solves these trivially
        raise MilpError(
            f"MILP solver failed (status {res.status}): {res.message}"
        )
    q_choice = {
        n: q for (n, q), k in x_index.items() if res.x[k] > 0.5
    }
    directions = {
        a: d for (a, d), k in y_index.items() if res.x[k] > 0.5
    }
    cost = _total_cost(models, q_choice, directions, binding)
    return q_choice, directions, cost


def solve_descent(
    models: Sequence[_NestModel],
    dirs: Mapping[str, list[tuple[int, ...]]],
    binding: Mapping[str, int],
) -> tuple[dict[str, tuple[int, ...]], dict[str, tuple[int, ...]], float]:
    """Deterministic coordinate descent — the MILP-free fallback.

    Start from each nest's first legal ``q`` and each array's best
    direction given those; then alternate sweeps (nests in program
    order picking the best ``q`` given current directions, arrays in
    sorted order picking the best direction given current ``q``\\s)
    until a full sweep changes nothing.  Every step is an argmin over
    an explicitly ordered candidate list with strict-improvement
    acceptance, so the result is deterministic; it is a local optimum,
    not guaranteed global like the other two solvers.
    """
    q_choice = {m.nest.name: m.q_options[0] for m in models}
    directions: dict[str, tuple[int, ...]] = {}
    for name in sorted(dirs):
        best_d, best_c = None, None
        for d in dirs[name]:
            c = _array_cost(models, q_choice, name, d, binding)
            if best_c is None or c < best_c:
                best_d, best_c = d, c
        if best_d is not None:
            directions[name] = best_d
    for _ in range(32):  # descent converges in a handful of sweeps
        changed = False
        for m in models:
            best_q, best_c = None, None
            for q in m.q_options:
                trial = dict(q_choice)
                trial[m.nest.name] = q
                c = _total_cost(models, trial, directions, binding)
                if best_c is None or c < best_c:
                    best_q, best_c = q, c
            if best_q is not None and best_q != q_choice[m.nest.name]:
                q_choice[m.nest.name] = best_q
                changed = True
        for name in sorted(dirs):
            best_d, best_c = None, None
            for d in dirs[name]:
                c = _array_cost(models, q_choice, name, d, binding)
                if best_c is None or c < best_c:
                    best_d, best_c = d, c
            if best_d is not None and best_d != directions.get(name):
                directions[name] = best_d
                changed = True
        if not changed:
            break
    return q_choice, directions, _total_cost(
        models, q_choice, directions, binding
    )


def optimize_program_ilp(
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    solver: str = "milp",
) -> GlobalDecision:
    """Jointly optimal layouts + loop choices (extension of the paper).

    ``solver`` requests ``"milp"``, ``"exhaustive"`` or ``"descent"``.
    A failed/unavailable MILP falls back to the exhaustive solver and
    the fallback is *recorded*: the decision report carries a
    structured ``solver`` event with the failure reason, and its data
    exposes which solver actually ran.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; known: {SOLVERS}")
    program = normalize_program(program)
    b = program.binding(binding)
    models, dirs = _build_models(program, b)
    events: list[ReportEvent] = []
    used = solver
    if solver == "milp":
        try:
            q_choice, directions, cost = solve_milp(models, dirs, b)
        except MilpError as e:
            used = "exhaustive"
            q_choice, directions, cost = solve_exhaustive(models, dirs, b)
            events.append(ReportEvent(
                "solver",
                f"MILP failed, fell back to exhaustive: {e}",
                {"requested": solver, "used": used, "reason": str(e)},
            ))
    elif solver == "exhaustive":
        q_choice, directions, cost = solve_exhaustive(models, dirs, b)
    else:
        q_choice, directions, cost = solve_descent(models, dirs, b)

    transforms: dict[str, IMat] = {}
    new_nests = []
    for m in models:
        q = q_choice[m.nest.name]
        t = m.transforms[q]
        transforms[m.nest.name] = t
        if t == IMat.identity(m.nest.depth):
            new_nests.append(m.nest)
        else:
            new_nests.append(apply_loop_transform(m.nest, t))
    layouts = {}
    for a, d in directions.items():
        g = hyperplane_from_direction(d)
        if g is not None:
            layouts[a] = g
    report = events + [
        ReportEvent(
            "solver",
            f"ILP ({used}): objective {cost:.1f}",
            {"requested": solver, "used": used, "objective": cost},
        ),
        ReportEvent(
            "ilp",
            f"q choices: {q_choice}",
            {"q": {n: list(q) for n, q in q_choice.items()}},
        ),
        ReportEvent(
            "ilp",
            f"directions: {directions}",
            {"directions": {a: list(d) for a, d in directions.items()}},
        ),
    ]
    return GlobalDecision(
        program.with_nests(new_nests),
        layouts,
        dict(directions),
        transforms,
        [],
        report,
    )
