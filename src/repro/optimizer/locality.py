"""Per-nest locality optimization via Claim 1 (paper Section 3.2.3).

Given the layouts already fixed by costlier nests (carried as file-fastest
directions ``Δa``), choose

1. the innermost direction ``q_last`` of the inverse loop transformation
   — relation (2): for every reference to a fixed-layout array,
   ``L·q_last`` must be parallel to ``Δa`` (equivalently ``h·L·q_last = 0``
   for every hyperplane ``h ⊥ Δa``) or zero (temporal);
2. a dependence-legal unimodular completion ``Q`` (Bik–Wijshoff), giving
   ``T = Q^{-1}``;
3. fast directions / layout hyperplanes for the arrays still free —
   relation (1): ``Δa = L·q_last``, ``g ∈ Ker{Δa}`` with the min-gcd rule.

Candidates are scored with the I/O cost model; the cheapest legal
combination wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..dependence import analyze_nest, transform_is_legal
from ..ir.nest import LoopNest
from ..linalg import IMat, kernel_basis, min_gcd_kernel_vector, primitive
from ..linalg.completion import completion_candidates
from .cost import estimate_nest_io

_COMPLETION_TRIES = 48


@dataclass
class NestDecision:
    nest_name: str
    t: IMat
    q_last: tuple[int, ...]
    new_layouts: dict[str, tuple[int, ...]]      # hyperplane g per array
    new_directions: dict[str, tuple[int, ...]]   # fast direction Δa per array
    estimated_io: float
    report: list[str] = field(default_factory=list)

    @property
    def is_identity(self) -> bool:
        return self.t == IMat.identity(self.t.nrows)


def _elementary(k: int, idx: int) -> tuple[int, ...]:
    return tuple(1 if d == idx else 0 for d in range(k))


def _candidate_q_lasts(
    nest: LoopNest, fixed: Mapping[str, tuple[int, ...]]
) -> list[tuple[int, ...]]:
    """Innermost-direction candidates: kernel of the fixed-layout
    constraints first (relation 2), then every elementary direction."""
    k = nest.depth
    rows: list[tuple[int, ...]] = []
    for _, ref, _ in nest.refs():
        delta = fixed.get(ref.array.name)
        if delta is None or ref.rank != len(delta) or ref.rank < 2:
            continue
        l = nest.access_matrix(ref)
        for h in kernel_basis(IMat([list(delta)])):
            row = l.vecmat(h)
            if any(row):
                rows.append(row)
    candidates: list[tuple[int, ...]] = []
    if rows:
        m = IMat(rows)
        best = min_gcd_kernel_vector(m, prefer=[_elementary(k, k - 1)])
        if best is not None:
            candidates.append(best)
        for b in kernel_basis(m):
            if b not in candidates:
                candidates.append(b)
    for idx in range(k - 1, -1, -1):
        e = _elementary(k, idx)
        if e not in candidates:
            candidates.append(e)
    return candidates


def _legal_completion(
    q_last: Sequence[int], edges, depth: int
) -> IMat | None:
    """First dependence-legal T whose inverse has ``q_last`` as its last
    column."""
    try:
        gen = completion_candidates(
            tuple(q_last), depth - 1, limit=_COMPLETION_TRIES
        )
    except ValueError:
        return None
    for q in gen:
        t = q.inverse_unimodular()
        if transform_is_legal(t, edges):
            return t
    return None


def choose_direction_for_array(
    access_matrices: Sequence[IMat], q_last: Sequence[int]
) -> tuple[int, ...] | None:
    """The array's file-fastest direction ``Δa = L·q_last``.

    Returns None when unconstrained (all references temporal).  When
    references disagree, the most common direction wins and the rest
    stay unoptimized — the paper's conflicting-requirements case."""
    dirs: list[tuple[int, ...]] = []
    for l in access_matrices:
        v = l.matvec(q_last)
        if any(v):
            dirs.append(primitive(v))
    if not dirs:
        return None
    counts: dict[tuple[int, ...], int] = {}
    for d in dirs:
        counts[d] = counts.get(d, 0) + 1
    return max(counts, key=lambda d: (counts[d], d))


def hyperplane_from_direction(delta: Sequence[int]) -> tuple[int, ...] | None:
    """Relation (1): the layout hyperplane is any (min-gcd) kernel vector
    of ``Δa`` — the paper's representation of the chosen layout."""
    return min_gcd_kernel_vector(IMat([list(delta)]))


def choose_layout_for_array(
    access_matrices: Sequence[IMat], q_last: Sequence[int]
) -> tuple[int, ...] | None:
    """Hyperplane form of :func:`choose_direction_for_array` (None when
    the array is unconstrained)."""
    delta = choose_direction_for_array(access_matrices, q_last)
    if delta is None:
        return None
    return hyperplane_from_direction(delta)


def _derive_layouts(
    by_array: Mapping[str, list[IMat]],
    fixed: Mapping[str, tuple[int, ...]],
    q_last: Sequence[int],
    allow_data: bool,
) -> tuple[dict[str, tuple[int, ...]], dict[str, tuple[int, ...]]]:
    new_layouts: dict[str, tuple[int, ...]] = {}
    new_dirs: dict[str, tuple[int, ...]] = {}
    if not allow_data:
        return new_layouts, new_dirs
    for name, mats in by_array.items():
        if name in fixed:
            continue
        delta = choose_direction_for_array(mats, q_last)
        if delta is None:
            continue
        g = hyperplane_from_direction(delta)
        if g is not None:
            new_layouts[name] = g
            new_dirs[name] = delta
    return new_layouts, new_dirs


def optimize_nest(
    nest: LoopNest,
    fixed_directions: Mapping[str, tuple[int, ...]],
    binding: Mapping[str, int],
    *,
    allow_loop: bool = True,
    allow_data: bool = True,
) -> NestDecision:
    """Optimize one nest given already-fixed file layouts (as fast
    directions)."""
    k = nest.depth
    edges = analyze_nest(nest)
    report: list[str] = []

    if allow_loop:
        candidates = _candidate_q_lasts(nest, fixed_directions)
    else:
        candidates = [_elementary(k, k - 1)]

    by_array: dict[str, list[IMat]] = {}
    for _, ref, _ in nest.refs():
        if ref.rank >= 2:
            by_array.setdefault(ref.array.name, []).append(
                nest.access_matrix(ref)
            )

    best = None
    for q_last in candidates:
        if allow_loop:
            t = _legal_completion(q_last, edges, k)
            if t is None:
                report.append(f"q_last={q_last}: no legal completion")
                continue
        else:
            t = IMat.identity(k)
        new_layouts, new_dirs = _derive_layouts(
            by_array, fixed_directions, q_last, allow_data
        )
        hypothetical: dict[str, tuple[int, ...] | None] = dict(fixed_directions)
        hypothetical.update(new_dirs)
        cost = estimate_nest_io(nest, hypothetical, q_last, binding)
        report.append(f"q_last={q_last}: estimated I/O {cost:.1f}")
        # strict improvement required: on ties keep the earlier (more
        # identity-like) candidate, so no-op transformations never lose
        if best is None or cost < best[0]:
            best = (cost, q_last, t, new_layouts, new_dirs)

    if best is None:  # no candidate had a legal completion
        q_last = _elementary(k, k - 1)
        t = IMat.identity(k)
        new_layouts, new_dirs = _derive_layouts(
            by_array, fixed_directions, q_last, allow_data
        )
        cost = estimate_nest_io(
            nest, {**fixed_directions, **new_dirs}, q_last, binding
        )
        best = (cost, q_last, t, new_layouts, new_dirs)
        report.append("fell back to the identity transformation")

    cost, q_last, t, new_layouts, new_dirs = best
    return NestDecision(
        nest.name, t, q_last, new_layouts, new_dirs, cost, report
    )
