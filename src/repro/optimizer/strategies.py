"""The six experimental versions of the paper's evaluation (Section 4).

- ``col`` / ``row`` — unoptimized: fixed column-/row-major layouts.
- ``l-opt`` — loop transformations only (the best of Li / McKinley /
  Wolf-Lam style nest optimization) against fixed column-major layouts.
- ``d-opt`` — file layout transformations only, no loop transformations.
- ``c-opt`` — the paper's integrated loop + layout algorithm, with the
  out-of-core tiling rule (all but the innermost loop).
- ``h-opt`` — hand-optimized: ``c-opt`` plus chunking (tile-blocked
  files) and interleaving (co-accessed arrays share one file).

For every version except ``c-opt``/``h-opt`` all loops carrying reuse
are tiled (traditional tiling), exactly as in the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..engine.executor import InterleavedStoreSpec, LinearStoreSpec, StoreSpec
from ..engine.plan import _whole_ranges, plan_nest
from ..engine.footprint import nest_footprints
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..layout import Layout, col_major, row_major
from ..runtime import MachineParams
from ..transforms import normalize_program, ooc_tiling
from ..transforms.tiling import TilingSpec
from .cost import nest_cost
from .global_opt import GlobalDecision, optimize_program

VERSION_NAMES = ("col", "row", "l-opt", "d-opt", "c-opt", "h-opt")


@dataclass
class VersionConfig:
    name: str
    program: Program
    layouts: dict[str, Layout]
    tiling: Callable[[LoopNest], TilingSpec]
    storage_spec: dict[str, StoreSpec] | None = None
    decision: GlobalDecision | None = None

    def describe(self) -> str:
        lay = ", ".join(
            f"{n}:{l.describe()}" for n, l in sorted(self.layouts.items())
        )
        return f"version {self.name}: {lay}"


def _fixed_layouts(program: Program, kind: str) -> dict[str, Layout]:
    out: dict[str, Layout] = {}
    for a in program.arrays:
        if a.rank == 1:
            out[a.name] = row_major(1)
        else:
            out[a.name] = col_major(a.rank) if kind == "col" else row_major(a.rank)
    return out


def _col_directions(program: Program) -> dict[str, tuple[int, ...]]:
    """Fast directions of all-column-major storage (first index fastest)."""
    out = {}
    for a in program.arrays:
        if a.rank >= 2:
            out[a.name] = tuple(1 if d == 0 else 0 for d in range(a.rank))
    return out


def _effective_tile(extent: int, tile: int, n_nodes: int) -> int:
    """The tile size actually executed per SPMD node: the outermost tile
    loop is first sliced into ``n_nodes`` slabs, then tiled.  Chunk grids
    must align with every node's windows, so pick the largest divisor of
    the slab that does not exceed the planned tile."""
    if n_nodes <= 1:
        return max(1, min(tile, extent))
    share = -(-extent // n_nodes)
    if tile >= share:
        return max(1, share)
    for d in range(min(tile, share), 0, -1):
        if share % d == 0:
            return d
    return 1


def build_version(
    name: str,
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    params: MachineParams | None = None,
    memory_budget: int | None = None,
    n_nodes: int = 1,
) -> VersionConfig:
    """Construct one of the paper's versions for the given program."""
    if name not in VERSION_NAMES:
        raise ValueError(f"unknown version {name!r}; pick from {VERSION_NAMES}")
    params = params or MachineParams()
    program = normalize_program(program)
    b = program.binding(binding)

    # Every version is executed with the out-of-core tiling rule (all but
    # the innermost loop): tiling policy itself is evaluated separately
    # (Figure 3 and the tiling ablation bench), so Table 2 isolates the
    # layout/loop-transformation effects.
    if name in ("col", "row"):
        return VersionConfig(
            name, program, _fixed_layouts(program, name), ooc_tiling
        )

    if name == "l-opt":
        decision = optimize_program(
            program,
            binding=b,
            allow_loop=True,
            allow_data=False,
            initial_directions=_col_directions(program),
        )
        return VersionConfig(
            name,
            decision.program,
            _fixed_layouts(program, "col"),
            ooc_tiling,
            decision=decision,
        )

    if name == "d-opt":
        decision = optimize_program(
            program, binding=b, allow_loop=False, allow_data=True
        )
        return VersionConfig(
            name,
            decision.program,
            decision.layout_objects(default="col"),
            ooc_tiling,
            decision=decision,
        )

    # c-opt / h-opt share the integrated optimization
    decision = optimize_program(
        program, binding=b, allow_loop=True, allow_data=True
    )
    layouts = decision.layout_objects(default="col")
    if name == "c-opt":
        return VersionConfig(
            name, decision.program, layouts, ooc_tiling, decision=decision
        )

    # h-opt: chunk each array into its data-tile shape and interleave the
    # arrays co-accessed by the costliest nest that touches them.
    total_elements = sum(
        int(np.prod(a.shape(b))) for a in decision.program.arrays
    )
    budget = memory_budget or max(64, total_elements // params.memory_fraction)
    shapes = {a.name: a.shape(b) for a in decision.program.arrays}
    # Per nest: the representative tile footprint of each array it touches.
    per_nest_fp: dict[str, dict[str, tuple[tuple[int, int], ...]]] = {}
    for nest in decision.program.nests:
        plan = plan_nest(nest, ooc_tiling(nest), budget, b, shapes)
        full = _whole_ranges(nest, b)
        outermost_tiled = plan.tiled_levels[0] if plan.tiled_levels else None
        var_ranges = {}
        for level, loop in enumerate(nest.loops):
            lo, hi = full[loop.var]
            if plan.spec.tiled[level] and plan.tile_size:
                tile = plan.tile_size
                if level == outermost_tiled:
                    tile = _effective_tile(hi - lo + 1, tile, n_nodes)
                var_ranges[loop.var] = (lo, min(hi, lo + tile - 1))
            else:
                var_ranges[loop.var] = (lo, hi)
        fps = nest_footprints(nest, var_ranges, b, shapes)
        per_nest_fp[nest.name] = {
            arr: region for arr, (region, _, _) in fps.items()
        }

    def _block_of(region, shape):
        return tuple(
            min(hi - lo + 1, s) for (lo, hi), s in zip(region, shape)
        )

    # Chunk an array only when every nest that touches it tiles it the
    # same way — a chunk grid that fits one nest but not another forces
    # whole-chunk over-reads and loses to plain linear layouts (the hand
    # optimizer chunked selectively, too).
    owner_nest: dict[str, LoopNest] = {}
    for nest in sorted(
        decision.program.nests, key=lambda n: -nest_cost(n, b)
    ):
        for arr in nest.arrays():
            owner_nest.setdefault(arr, nest)
    storage_spec: dict[str, StoreSpec] = {}
    groups: dict[tuple, list[str]] = {}
    for a in decision.program.arrays:
        arr = a.name
        owner = owner_nest.get(arr)
        if owner is None or arr not in per_nest_fp.get(owner.name, {}):
            storage_spec[arr] = LinearStoreSpec(layouts[arr])
            continue
        region = per_nest_fp[owner.name][arr]
        block = _block_of(region, shapes[arr])
        origin = tuple(lo for lo, _ in region)
        consistent = all(
            arr not in fp
            or (
                _block_of(fp[arr], shapes[arr]) == block
                and tuple(lo for lo, _ in fp[arr]) == origin
            )
            for nest_name, fp in per_nest_fp.items()
            if nest_name != owner.name
        )
        if not consistent:
            storage_spec[arr] = LinearStoreSpec(layouts[arr])
            continue
        groups.setdefault(
            (owner.name, shapes[arr], block, origin), []
        ).append(arr)
    for (owner_name, shape, block, origin), arrs in groups.items():
        group_id = f"{owner_name}:{'x'.join(map(str, block))}"
        for arr in sorted(arrs):
            storage_spec[arr] = InterleavedStoreSpec(group_id, block, origin)
    return VersionConfig(
        name,
        decision.program,
        layouts,
        ooc_tiling,
        storage_spec=storage_spec,
        decision=decision,
    )
