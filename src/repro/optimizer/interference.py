"""The interference graph (paper Section 3, step 2).

A bipartite graph ``(V_n, V_a, E)``: nest nodes, array nodes, and an edge
wherever a nest references an array.  Its connected components are
program fragments touching disjoint array sets — the global algorithm
optimizes each component independently.
"""

from __future__ import annotations

import networkx as nx

from ..ir.program import Program


def interference_graph(program: Program) -> nx.Graph:
    g = nx.Graph()
    for nest in program.nests:
        g.add_node(("nest", nest.name), kind="nest")
        for array in sorted(nest.arrays()):
            g.add_node(("array", array), kind="array")
            g.add_edge(("nest", nest.name), ("array", array))
    return g


def connected_components(
    program: Program,
) -> list[tuple[list[str], list[str]]]:
    """Connected components as ``(nest_names, array_names)`` pairs, in
    program order of their first nest."""
    g = interference_graph(program)
    comps = []
    for comp in nx.connected_components(g):
        nests = [name for kind, name in comp if kind == "nest"]
        arrays = sorted(name for kind, name in comp if kind == "array")
        order = {n.name: k for k, n in enumerate(program.nests)}
        nests.sort(key=lambda n: order[n])
        comps.append((nests, arrays))
    comps.sort(key=lambda c: min(
        k for k, n in enumerate(program.nests) if n.name in c[0]
    ) if c[0] else 10**9)
    return comps
