"""The global optimization algorithm (paper Section 3, steps 1–3).

1. Normalize to perfect nests (fusion / distribution / code sinking).
2. Build the interference graph; split into connected components.
3. Per component, in decreasing cost order: optimize the costliest nest
   with data transformations only; then every remaining nest with
   combined loop + data transformations, propagating the file layouts
   fixed so far.

The result carries the per-array layout hyperplanes, the per-nest loop
transformations, and the fully transformed program ready for the tiled
out-of-core executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..ir.program import Program
from ..layout import LinearLayout, Layout, col_major, row_major
from ..linalg import IMat
from ..transforms import apply_loop_transform, normalize_program
from .cost import nest_cost
from .interference import connected_components
from .locality import NestDecision, optimize_nest


@dataclass
class GlobalDecision:
    program: Program                      # transformed program
    layouts: dict[str, tuple[int, ...]]   # hyperplane per array (rank >= 2)
    directions: dict[str, tuple[int, ...]]  # file-fastest direction per array
    transforms: dict[str, IMat]           # per-nest loop transformation
    decisions: list[NestDecision]
    report: list[str] = field(default_factory=list)

    def layout_objects(self, default: str = "row") -> dict[str, Layout]:
        """Full :class:`Layout` objects for every array of the program.

        Arrays with a chosen fast direction ``Δa`` get the exact layout
        ``D`` with ``D·Δa = e_last`` (file-consecutive innermost
        iterations), which also realizes the reported hyperplane.
        """
        from ..layout import layout_from_direction

        out: dict[str, Layout] = {}
        for a in self.program.arrays:
            if a.rank == 1:
                out[a.name] = row_major(1)
            elif a.name in self.directions:
                out[a.name] = layout_from_direction(self.directions[a.name])
            elif a.name in self.layouts:
                out[a.name] = LinearLayout.from_hyperplane(self.layouts[a.name])
            else:
                out[a.name] = (
                    row_major(a.rank) if default == "row" else col_major(a.rank)
                )
        return out


def optimize_program(
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    allow_loop: bool = True,
    allow_data: bool = True,
    initial_directions: Mapping[str, tuple[int, ...]] | None = None,
    nest_order: str = "cost",
) -> GlobalDecision:
    """Run the paper's algorithm.

    ``allow_loop=False`` gives the pure data-transformation optimizer
    (the ``d-opt`` version); ``allow_data=False`` with
    ``initial_directions`` fixed (every array's file-fastest axis) gives
    the pure loop-transformation optimizer (``l-opt``).

    ``nest_order`` selects step (3.a)'s ordering: ``"cost"`` (the paper's
    profile-ranked order) or ``"program"`` (textual order — the ablation
    baseline).
    """
    if nest_order not in ("cost", "program"):
        raise ValueError(f"unknown nest order {nest_order!r}")
    from .locality import hyperplane_from_direction

    program = normalize_program(program)
    b = program.binding(binding)
    directions: dict[str, tuple[int, ...]] = dict(initial_directions or {})
    layouts: dict[str, tuple[int, ...]] = {}
    for name, delta in directions.items():
        g = hyperplane_from_direction(delta)
        if g is not None:
            layouts[name] = g
    transforms: dict[str, IMat] = {}
    decisions: list[NestDecision] = []
    report: list[str] = []

    components = connected_components(program)
    report.append(
        f"{len(components)} connected component(s): "
        + "; ".join(f"{tuple(n)}~{tuple(a)}" for n, a in components)
    )

    nest_by_name = {n.name: n for n in program.nests}
    for nests, arrays in components:
        if nest_order == "cost":
            ordered = sorted(
                nests, key=lambda name: -nest_cost(nest_by_name[name], b)
            )
        else:
            ordered = list(nests)
        report.append(f"component order (costliest first): {ordered}")
        for rank, name in enumerate(ordered):
            nest = nest_by_name[name]
            first = rank == 0
            decision = optimize_nest(
                nest,
                directions,
                b,
                # the costliest nest is optimized by data transformations
                # alone (step 3.b); later nests combine loop + data (3.c)
                allow_loop=allow_loop and not (first and allow_data),
                allow_data=allow_data,
            )
            decisions.append(decision)
            transforms[name] = decision.t
            layouts.update(decision.new_layouts)
            directions.update(decision.new_directions)
            report.append(
                f"{name}: q_last={decision.q_last}, "
                f"T={'identity' if decision.is_identity else decision.t!r}, "
                f"layouts+={decision.new_layouts}"
            )

    new_nests = []
    for nest in program.nests:
        t = transforms.get(nest.name, IMat.identity(nest.depth))
        if t == IMat.identity(nest.depth):
            new_nests.append(nest)
        else:
            new_nests.append(apply_loop_transform(nest, t))
    transformed = program.with_nests(new_nests)
    return GlobalDecision(
        transformed, layouts, directions, transforms, decisions, report
    )
