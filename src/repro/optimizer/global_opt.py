"""The global optimization algorithm (paper Section 3, steps 1–3).

1. Normalize to perfect nests (fusion / distribution / code sinking).
2. Build the interference graph; split into connected components.
3. Per component, in decreasing cost order: optimize the costliest nest
   with data transformations only; then every remaining nest with
   combined loop + data transformations, propagating the file layouts
   fixed so far.

The result carries the per-array layout hyperplanes, the per-nest loop
transformations, and the fully transformed program ready for the tiled
out-of-core executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..ir.program import Program
from ..layout import LinearLayout, Layout, col_major, row_major
from ..linalg import IMat
from ..transforms import apply_loop_transform, normalize_program
from .cost import nest_cost
from .interference import connected_components
from .locality import NestDecision, optimize_nest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Observability


@dataclass(frozen=True)
class ReportEvent:
    """One structured entry of :attr:`GlobalDecision.report`.

    ``kind``
        ``"components"`` (interference-graph split), ``"order"``
        (per-component cost ranking), or ``"nest"`` (one nest's
        decision).
    ``data``
        the structured payload (component lists, chosen transformation,
        new layouts, ...), JSON-ready via :meth:`to_dict`.

    ``str()`` renders exactly the free-form line older versions stored,
    so existing printing code and documented output are unchanged.
    """

    kind: str
    text: str
    data: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "text": self.text, "data": dict(self.data)}


@dataclass
class GlobalDecision:
    program: Program                      # transformed program
    layouts: dict[str, tuple[int, ...]]   # hyperplane per array (rank >= 2)
    directions: dict[str, tuple[int, ...]]  # file-fastest direction per array
    transforms: dict[str, IMat]           # per-nest loop transformation
    decisions: list[NestDecision]
    #: structured decision log; each entry stringifies to the familiar
    #: free-form report line (``for line in decision.report: print(line)``
    #: is unchanged), ``report_lines`` gives the plain strings
    report: list[ReportEvent] = field(default_factory=list)

    @property
    def report_lines(self) -> list[str]:
        return [str(e) for e in self.report]

    def layout_objects(self, default: str = "row") -> dict[str, Layout]:
        """Full :class:`Layout` objects for every array of the program.

        Arrays with a chosen fast direction ``Δa`` get the exact layout
        ``D`` with ``D·Δa = e_last`` (file-consecutive innermost
        iterations), which also realizes the reported hyperplane.
        """
        from ..layout import layout_from_direction

        out: dict[str, Layout] = {}
        for a in self.program.arrays:
            if a.rank == 1:
                out[a.name] = row_major(1)
            elif a.name in self.directions:
                out[a.name] = layout_from_direction(self.directions[a.name])
            elif a.name in self.layouts:
                out[a.name] = LinearLayout.from_hyperplane(self.layouts[a.name])
            else:
                out[a.name] = (
                    row_major(a.rank) if default == "row" else col_major(a.rank)
                )
        return out


def optimize_program(
    program: Program,
    *,
    binding: Mapping[str, int] | None = None,
    allow_loop: bool = True,
    allow_data: bool = True,
    initial_directions: Mapping[str, tuple[int, ...]] | None = None,
    nest_order: str = "cost",
    obs: "Observability | None" = None,
) -> GlobalDecision:
    """Run the paper's algorithm.

    ``allow_loop=False`` gives the pure data-transformation optimizer
    (the ``d-opt`` version); ``allow_data=False`` with
    ``initial_directions`` fixed (every array's file-fastest axis) gives
    the pure loop-transformation optimizer (``l-opt``).

    ``nest_order`` selects step (3.a)'s ordering: ``"cost"`` (the paper's
    profile-ranked order) or ``"program"`` (textual order — the ablation
    baseline).

    ``obs`` (a :class:`repro.obs.Observability`) traces the pipeline
    phases — normalize, interference, each nest's optimization — as
    wall-time spans; ``None`` (the default) records nothing.
    """
    if nest_order not in ("cost", "program"):
        raise ValueError(f"unknown nest order {nest_order!r}")
    from ..obs import active
    from .locality import hyperplane_from_direction

    obs = active(obs)
    pipeline_span = (
        obs.tracer.begin(
            "optimize_program", "compile", program=program.name
        )
        if obs is not None
        else None
    )
    if obs is not None:
        with obs.span("normalize", "compile"):
            program = normalize_program(program)
    else:
        program = normalize_program(program)
    b = program.binding(binding)
    directions: dict[str, tuple[int, ...]] = dict(initial_directions or {})
    layouts: dict[str, tuple[int, ...]] = {}
    for name, delta in directions.items():
        g = hyperplane_from_direction(delta)
        if g is not None:
            layouts[name] = g
    transforms: dict[str, IMat] = {}
    decisions: list[NestDecision] = []
    report: list[ReportEvent] = []

    if obs is not None:
        interference_span = obs.tracer.begin("interference", "compile")
    components = connected_components(program)
    if obs is not None:
        obs.tracer.end(interference_span, n_components=len(components))
    report.append(
        ReportEvent(
            "components",
            f"{len(components)} connected component(s): "
            + "; ".join(f"{tuple(n)}~{tuple(a)}" for n, a in components),
            {
                "components": [
                    {"nests": list(n), "arrays": list(a)}
                    for n, a in components
                ]
            },
        )
    )

    nest_by_name = {n.name: n for n in program.nests}
    for nests, arrays in components:
        if nest_order == "cost":
            ordered = sorted(
                nests, key=lambda name: -nest_cost(nest_by_name[name], b)
            )
        else:
            ordered = list(nests)
        report.append(
            ReportEvent(
                "order",
                f"component order (costliest first): {ordered}",
                {"ordered": list(ordered), "nest_order": nest_order},
            )
        )
        for rank, name in enumerate(ordered):
            nest = nest_by_name[name]
            first = rank == 0
            nest_span = (
                obs.tracer.begin(f"optimize_nest {name}", "compile", nest=name)
                if obs is not None
                else None
            )
            decision = optimize_nest(
                nest,
                directions,
                b,
                # the costliest nest is optimized by data transformations
                # alone (step 3.b); later nests combine loop + data (3.c)
                allow_loop=allow_loop and not (first and allow_data),
                allow_data=allow_data,
            )
            if obs is not None:
                obs.tracer.end(
                    nest_span,
                    q_last=str(decision.q_last),
                    identity=decision.is_identity,
                )
            decisions.append(decision)
            transforms[name] = decision.t
            layouts.update(decision.new_layouts)
            directions.update(decision.new_directions)
            report.append(
                ReportEvent(
                    "nest",
                    f"{name}: q_last={decision.q_last}, "
                    f"T={'identity' if decision.is_identity else decision.t!r}, "
                    f"layouts+={decision.new_layouts}",
                    {
                        "nest": name,
                        "q_last": str(decision.q_last),
                        "identity": decision.is_identity,
                        "new_layouts": {
                            k: list(v)
                            for k, v in decision.new_layouts.items()
                        },
                    },
                )
            )

    new_nests = []
    for nest in program.nests:
        t = transforms.get(nest.name, IMat.identity(nest.depth))
        if t == IMat.identity(nest.depth):
            new_nests.append(nest)
        else:
            new_nests.append(apply_loop_transform(nest, t))
    transformed = program.with_nests(new_nests)
    if obs is not None:
        obs.tracer.end(pipeline_span, n_nests=len(new_nests))
    return GlobalDecision(
        transformed, layouts, directions, transforms, decisions, report
    )
