"""The paper's compiler algorithm: combined loop and file-layout
transformations for out-of-core locality, applied globally over a
sequence of loop nests (Section 3).

Entry points:

- :func:`optimize_program` — the full global algorithm (the ``c-opt``
  version of the evaluation),
- :func:`repro.optimizer.strategies.build_version` — any of the paper's
  six experimental versions (``col``, ``row``, ``l-opt``, ``d-opt``,
  ``c-opt``, ``h-opt``).
"""

from .interference import interference_graph, connected_components
from .cost import (
    estimate_nest_io,
    estimate_nest_io_breakdown,
    layout_directions,
    nest_cost,
    predict_program_io,
)
from .locality import (
    NestDecision,
    optimize_nest,
    choose_layout_for_array,
    choose_direction_for_array,
    hyperplane_from_direction,
)
from .global_opt import GlobalDecision, ReportEvent, optimize_program
from .ilp import optimize_program_ilp
from .strategies import VersionConfig, build_version, VERSION_NAMES

__all__ = [
    "interference_graph",
    "connected_components",
    "nest_cost",
    "estimate_nest_io",
    "estimate_nest_io_breakdown",
    "layout_directions",
    "predict_program_io",
    "NestDecision",
    "optimize_nest",
    "choose_layout_for_array",
    "choose_direction_for_array",
    "hyperplane_from_direction",
    "GlobalDecision",
    "ReportEvent",
    "optimize_program",
    "optimize_program_ilp",
    "VersionConfig",
    "build_version",
    "VERSION_NAMES",
]
