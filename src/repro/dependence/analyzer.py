"""Exact dependence extraction on a small parameter instantiation.

For every pair of references to the same array (at least one a write),
independence is first attacked with the GCD and Banerjee tests; surviving
pairs are resolved *exactly* by enumerating the nest's iteration space at
a small parameter binding (``param = depth + 3`` by default) and joining
accesses on the touched element.  Affine accesses with constant
coefficients exhibit all their distance *sign patterns* at small sizes,
so the resulting direction vectors are complete; distance sets are
additionally exact for uniform (equal-access-matrix) pairs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.arrays import ArrayRef
from ..ir.nest import LoopNest
from .banerjee import banerjee_independent
from .dio_test import diophantine_independent
from .gcd_test import gcd_independent
from .vectors import DependenceEdge, direction_of

_DISTANCES_PER_EDGE_CAP = 64


def _small_binding(nest: LoopNest) -> dict[str, int]:
    size = nest.depth + 3
    return {p: size for p in nest.params}


def _is_uniform(r1: ArrayRef, r2: ArrayRef, loop_vars: Sequence[str]) -> bool:
    if r1.access_matrix(loop_vars) != r2.access_matrix(loop_vars):
        return False
    # offsets must differ only by integer constants (params must match)
    for o1, o2 in zip(r1.offset_exprs(loop_vars), r2.offset_exprs(loop_vars)):
        if (o1 - o2).coeffs:
            return False
    return True


def analyze_pairwise(
    nest: LoopNest,
    s1_idx: int,
    r1: ArrayRef,
    r1_writes: bool,
    s2_idx: int,
    r2: ArrayRef,
    r2_writes: bool,
    binding: Mapping[str, int],
    points: Sequence[tuple[dict[str, int], tuple[int, ...]]],
) -> list[DependenceEdge]:
    """Dependences between one ordered reference pair (both orientations)."""
    loop_vars = nest.loop_vars
    if gcd_independent(r1, r2, loop_vars):
        return []
    if diophantine_independent(r1, r2, loop_vars):
        return []
    if banerjee_independent(r1, r2, nest, binding):
        return []

    s1, s2 = nest.body[s1_idx], nest.body[s2_idx]
    # hash-join on touched element
    touch1: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    for env, vec in points:
        if not s1.guarded_on({**binding, **env}):
            continue
        touch1.setdefault(r1.index(env, binding), []).append(vec)

    hits: dict[tuple[str, int, int], set[tuple[int, ...]]] = {}
    for env, vec2 in points:
        if not s2.guarded_on({**binding, **env}):
            continue
        for vec1 in touch1.get(r2.index(env, binding), ()):
            if vec1 == vec2:
                if s1_idx == s2_idx:
                    continue  # same instance of the same statement
                # loop-independent: direction by statement order
                if s1_idx < s2_idx:
                    src, dst, dist = s1_idx, s2_idx, tuple(
                        a - b for a, b in zip(vec2, vec1)
                    )
                    src_writes = r1_writes
                else:
                    src, dst, dist = s2_idx, s1_idx, tuple(
                        a - b for a, b in zip(vec1, vec2)
                    )
                    src_writes = r2_writes
            elif vec1 < vec2:
                src, dst = s1_idx, s2_idx
                dist = tuple(a - b for a, b in zip(vec2, vec1))
                src_writes = r1_writes
            else:
                src, dst = s2_idx, s1_idx
                dist = tuple(a - b for a, b in zip(vec1, vec2))
                src_writes = r2_writes
            dst_writes = r2_writes if src == s1_idx else r1_writes
            if src_writes and dst_writes:
                kind = "output"
            elif src_writes:
                kind = "flow"
            else:
                kind = "anti"
            hits.setdefault((kind, src, dst), set()).add(dist)

    uniform = _is_uniform(r1, r2, loop_vars)
    edges = []
    for (kind, src, dst), dists in hits.items():
        edges.append(
            DependenceEdge(
                r1.array.name,
                src,
                dst,
                kind,
                frozenset(_cap_distances(dists)),
                exact=uniform,
            )
        )
    return edges


def _cap_distances(dists: set[tuple[int, ...]]) -> set[tuple[int, ...]]:
    """Bound the stored distance set while keeping every direction pattern
    represented (legality only needs directions for non-uniform edges)."""
    if len(dists) <= _DISTANCES_PER_EDGE_CAP:
        return dists
    by_dir: dict[tuple, list[tuple[int, ...]]] = {}
    for d in dists:
        by_dir.setdefault(direction_of(d), []).append(d)
    kept: set[tuple[int, ...]] = set()
    per_dir = max(1, _DISTANCES_PER_EDGE_CAP // len(by_dir))
    for ds in by_dir.values():
        kept.update(sorted(ds)[:per_dir])
    return kept


def analyze_nest(
    nest: LoopNest, binding: Mapping[str, int] | None = None
) -> list[DependenceEdge]:
    """All data dependences carried by or within one nest."""
    binding = dict(binding) if binding is not None else _small_binding(nest)
    points = [
        (env, tuple(env[v] for v in nest.loop_vars))
        for env in nest.iterate(binding)
    ]
    refs = list(nest.refs())  # (stmt_idx, ref, is_write)
    edges: list[DependenceEdge] = []
    seen_pairs: set[tuple] = set()
    for a, (i1, r1, w1) in enumerate(refs):
        for i2, r2, w2 in refs[a:]:
            if not (w1 or w2):
                continue
            if r1.array.name != r2.array.name:
                continue
            key = (i1, id(r1), i2, id(r2))
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            edges.extend(
                analyze_pairwise(nest, i1, r1, w1, i2, r2, w2, binding, points)
            )
    return _merge_edges(edges)


def _merge_edges(edges: list[DependenceEdge]) -> list[DependenceEdge]:
    merged: dict[tuple, DependenceEdge] = {}
    for e in edges:
        key = (e.array, e.src_stmt, e.dst_stmt, e.kind)
        if key in merged:
            prev = merged[key]
            merged[key] = DependenceEdge(
                e.array,
                e.src_stmt,
                e.dst_stmt,
                e.kind,
                prev.distances | e.distances,
                exact=prev.exact and e.exact,
            )
        else:
            merged[key] = e
    return list(merged.values())
