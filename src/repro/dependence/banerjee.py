"""Banerjee's bounds independence test (rectangular approximation).

For each array dimension, bound the value of ``s1(I) - s2(I')`` over the
(rectangularized) iteration space; if 0 lies outside ``[min, max]`` the
references are provably independent.  Requires a concrete parameter
binding to evaluate the loop ranges.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.arrays import ArrayRef
from ..ir.nest import LoopNest


def _rect_ranges(
    nest: LoopNest, binding: Mapping[str, int]
) -> dict[str, tuple[int, int]]:
    """Over-approximate each loop's range by a rectangle: evaluate bounds
    at the extreme values of already-ranged outer variables."""
    ranges: dict[str, tuple[int, int]] = {}
    for loop in nest.loops:
        los: list[int] = []
        his: list[int] = []
        # evaluate bounds over corner assignments of outer variables
        outer = [v for v in ranges]

        def corners(idx: int, env: dict[str, int]):
            if idx == len(outer):
                los.append(max(b.eval_lower(env) for b in loop.lowers))
                his.append(min(b.eval_upper(env) for b in loop.uppers))
                return
            v = outer[idx]
            for value in set(ranges[v]):
                env[v] = value
                corners(idx + 1, env)
            del env[v]

        corners(0, dict(binding))
        ranges[loop.var] = (min(los), max(his))
    return ranges


def banerjee_independent(
    r1: ArrayRef,
    r2: ArrayRef,
    nest: LoopNest,
    binding: Mapping[str, int],
) -> bool:
    """True if the bounds test *proves* independence within ``nest``."""
    if r1.array.name != r2.array.name:
        return True
    ranges = _rect_ranges(nest, binding)
    loop_vars = nest.loop_vars
    for s1, s2 in zip(r1.subscripts, r2.subscripts):
        lo = hi = 0
        # difference expr: s1 over vars I, s2 over independent vars I'
        for v in loop_vars:
            vlo, vhi = ranges[v]
            if vlo > vhi:
                return True  # empty iteration space: trivially independent
            for coeff in (s1.coeff(v), -s2.coeff(v)):
                if coeff > 0:
                    lo += coeff * vlo
                    hi += coeff * vhi
                elif coeff < 0:
                    lo += coeff * vhi
                    hi += coeff * vlo
        # parameters/consts evaluate concretely
        env = dict(binding)
        c1 = s1.drop(set(loop_vars)).evaluate(env)
        c2 = s2.drop(set(loop_vars)).evaluate(env)
        lo += c1 - c2
        hi += c1 - c2
        if lo > 0 or hi < 0:
            return True
    return False
