"""Dependence distance/direction vectors."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence


class Direction(Enum):
    """Sign of one distance component (``<`` means the sink iteration is
    strictly later in that loop, Wolfe's convention)."""

    LT = "<"   # distance > 0
    EQ = "="   # distance == 0
    GT = ">"   # distance < 0

    @staticmethod
    def of(value: int) -> "Direction":
        if value > 0:
            return Direction.LT
        if value < 0:
            return Direction.GT
        return Direction.EQ


def direction_of(distance: Sequence[int]) -> tuple[Direction, ...]:
    return tuple(Direction.of(v) for v in distance)


def lex_positive(vec: Sequence[int]) -> bool:
    """True iff the first non-zero component is positive (or all zero —
    a loop-independent dependence, always preserved by statement order)."""
    for v in vec:
        if v != 0:
            return v > 0
    return True


@dataclass(frozen=True)
class DependenceEdge:
    """A dependence between two statements of one nest on one array.

    ``kind`` is flow (write→read), anti (read→write) or output
    (write→write).  ``distances`` are the sink-minus-source iteration
    vectors actually realized; ``exact`` is True when that set is complete
    for all parameter values (uniform dependence), otherwise the set is a
    small-model sample whose *directions* are complete.
    """

    array: str
    src_stmt: int
    dst_stmt: int
    kind: str
    distances: frozenset[tuple[int, ...]]
    exact: bool = False

    def __post_init__(self):
        if self.kind not in ("flow", "anti", "output"):
            raise ValueError(f"bad dependence kind {self.kind!r}")

    @property
    def directions(self) -> frozenset[tuple[Direction, ...]]:
        return frozenset(direction_of(d) for d in self.distances)

    @property
    def loop_carried(self) -> bool:
        return any(any(v != 0 for v in d) for d in self.distances)

    def carried_at_level(self, level: int) -> bool:
        """True if some distance has its first non-zero at ``level``."""
        for d in self.distances:
            nz = next((i for i, v in enumerate(d) if v != 0), None)
            if nz == level:
                return True
        return False

    def __str__(self) -> str:
        ds = sorted(self.distances)
        shown = ", ".join(str(d) for d in ds[:4]) + ("…" if len(ds) > 4 else "")
        return (
            f"{self.kind} dep on {self.array}: S{self.src_stmt}->S{self.dst_stmt} "
            f"distances {{{shown}}}"
        )
