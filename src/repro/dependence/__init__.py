"""Data dependence analysis for affine loop nests.

Loop transformations must preserve every data dependence (paper Section
2.1); the optimizer asks two questions of this package:

1. *What dependences does a nest carry?* — :func:`analyze_nest` returns
   :class:`DependenceEdge` objects carrying exact distance vectors (for
   uniform dependences) and direction-vector sign patterns (always).
2. *Is a candidate loop transformation legal?* —
   :func:`repro.dependence.legality.transform_is_legal` checks that every
   dependence remains lexicographically positive after the transform.

Fast independence disproofs (GCD test, Banerjee bounds test) run first;
remaining pairs are resolved exactly on a small instantiation of the
parameters.  For the affine program class handled here (constant
coefficients, parameters only in offsets/bounds) the *sign patterns* of
dependence distances are already exhibited at small parameter values, so
the small-model directions are the directions — the standard small-model
argument; the instantiation size is chosen per-nest as ``depth + 3``.
"""

from .vectors import DependenceEdge, Direction, direction_of, lex_positive
from .gcd_test import gcd_independent
from .dio_test import diophantine_independent
from .banerjee import banerjee_independent
from .analyzer import analyze_nest, analyze_pairwise
from .legality import transform_is_legal, transformed_distance

__all__ = [
    "DependenceEdge",
    "Direction",
    "direction_of",
    "lex_positive",
    "gcd_independent",
    "diophantine_independent",
    "banerjee_independent",
    "analyze_nest",
    "analyze_pairwise",
    "transform_is_legal",
    "transformed_distance",
]
