"""Legality of linear loop transformations against dependences.

A transformation ``T`` is legal for a nest iff every dependence distance
``d`` stays lexicographically positive after mapping: ``T·d ≻ 0`` (a
zero vector is fine — statement order within an iteration is untouched).

For *exact* edges the stored distance set is complete and the check is
exact.  For non-uniform edges the distances sampled at the small model
carry every realizable sign pattern; we additionally verify the candidate
over the sign patterns with interval arithmetic (each ``<`` component
ranges over ``[1, ∞)``, each ``>`` over ``(-∞, -1]``), which is the
classical conservative direction-vector test.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..linalg import IMat
from .vectors import DependenceEdge, Direction, lex_positive

_INF = float("inf")


def transformed_distance(t: IMat, d: Sequence[int]) -> tuple[int, ...]:
    return t.matvec(d)


def _interval_for(direction: Direction) -> tuple[float, float]:
    if direction is Direction.LT:
        return (1.0, _INF)
    if direction is Direction.GT:
        return (-_INF, -1.0)
    return (0.0, 0.0)


def _row_interval(
    row: Sequence[int], dirs: Sequence[Direction]
) -> tuple[float, float]:
    lo = hi = 0.0
    for c, dr in zip(row, dirs):
        if c == 0:
            continue  # 0 * ±inf is NaN in float arithmetic; the term is 0
        a, b = _interval_for(dr)
        if c >= 0:
            lo += c * a
            hi += c * b
        else:
            lo += c * b
            hi += c * a
    return lo, hi


def _direction_pattern_legal(t: IMat, dirs: Sequence[Direction]) -> bool:
    """Conservatively check ``T d ≻ 0`` for all d matching the pattern."""
    if all(d is Direction.EQ for d in dirs):
        return True
    for row in t.rows:
        lo, hi = _row_interval(row, dirs)
        if lo > 0:
            return True  # strictly positive leading component
        if lo == 0 and hi == 0:
            continue  # identically zero: look at the next row
        return False  # could be negative (or sign-ambiguous) first
    return False  # all rows identically zero but pattern non-EQ


def transform_is_legal(t: IMat, edges: Iterable[DependenceEdge]) -> bool:
    """True iff ``T`` preserves all the given dependences."""
    for edge in edges:
        for d in edge.distances:
            if not lex_positive(transformed_distance(t, d)):
                return False
        if not edge.exact:
            for dirs in edge.directions:
                if not _direction_pattern_legal(t, dirs):
                    return False
    return True
