"""The classic GCD independence test.

Two references ``L1·I + o1`` and ``L2·I' + o2`` can only touch the same
element if, per array dimension, the Diophantine equation

    sum(a_j i_j) - sum(b_j i'_j) = c2 - c1

has an integer solution — which requires gcd(all coefficients) to divide
the constant difference.  When it does not for some dimension, the pair is
provably independent (for every parameter value, since parameters appear
with matching coefficients on both sides and cancel into the tested
constant only when their coefficients differ — handled below).
"""

from __future__ import annotations

from typing import Sequence

from ..ir.arrays import ArrayRef
from ..linalg import gcd_all


def gcd_independent(
    r1: ArrayRef, r2: ArrayRef, loop_vars: Sequence[str]
) -> bool:
    """True if the GCD test *proves* independence of the two references
    (False means "maybe dependent").

    Parameters occurring in subscripts are treated as additional unknowns
    unless their coefficients match on both sides (then they cancel).
    """
    if r1.array.name != r2.array.name:
        return True
    loop_set = set(loop_vars)
    for s1, s2 in zip(r1.subscripts, r2.subscripts):
        coeffs: list[int] = []
        # loop-index unknowns from both sides (distinct instances)
        for v in loop_vars:
            c1, c2 = s1.coeff(v), s2.coeff(v)
            if c1:
                coeffs.append(c1)
            if c2:
                coeffs.append(-c2)
        # symbolic parameters: cancel when equal, otherwise unknowns
        const = s2.const - s1.const
        names = set(s1.names) | set(s2.names)
        for name in names:
            if name in loop_set:
                continue
            c1, c2 = s1.coeff(name), s2.coeff(name)
            if c1 != c2:
                coeffs.append(c1 - c2)
        g = gcd_all(coeffs)
        if g == 0:
            if const != 0:
                return True  # constant subscripts that differ: independent
            continue
        if const % g != 0:
            return True
    return False
