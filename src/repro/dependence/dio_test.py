"""Coupled-subscript independence disproof via exact Diophantine solving.

Where the GCD test looks at each array dimension separately, this test
assembles the *whole* system — one equation per dimension, unknowns
``(I, I')`` — and asks for an integer solution.  Provably independent
when none exists, regardless of loop bounds.  Symbolic parameters with
matching coefficients cancel; any mismatched parameter makes the test
conservatively inconclusive.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.arrays import ArrayRef
from ..linalg import IMat, has_integer_solution


def diophantine_independent(
    r1: ArrayRef, r2: ArrayRef, loop_vars: Sequence[str]
) -> bool:
    """True iff the coupled system proves the references never touch the
    same element (False = maybe dependent)."""
    if r1.array.name != r2.array.name:
        return True
    loop_set = set(loop_vars)
    rows: list[list[int]] = []
    rhs: list[int] = []
    for s1, s2 in zip(r1.subscripts, r2.subscripts):
        for name in set(s1.names) | set(s2.names):
            if name not in loop_set and s1.coeff(name) != s2.coeff(name):
                return False  # mismatched symbolic term: stay conservative
        rows.append(
            [s1.coeff(v) for v in loop_vars]
            + [-s2.coeff(v) for v in loop_vars]
        )
        rhs.append(s2.const - s1.const)
    return not has_integer_solution(IMat(rows), rhs)
