"""Execution engine: runs (transformed, tiled) programs out of core.

Two modes share one code path:

- **real** — data actually moves through the simulated file system and the
  element loops are interpreted, so results can be compared bit-for-bit
  against the in-core reference interpreter (semantic verification);
- **simulate** — only the I/O and compute *accounting* runs (no data, no
  element interpretation), fast enough for the table-scale parameter
  sweeps.

The tiled execution structure is the paper's: tile loops outside, a
read set of data tiles per tile iteration, element loops inside, write
back of modified tiles (Section 3.3).
"""

from .footprint import ref_footprint, nest_footprints
from .interpreter import interpret_program, run_element_loops
from .plan import NestPlan, plan_nest, tiling_band_legal
from .executor import OOCExecutor, RunResult, NestRun
from .codegen import generate_tiled_code

__all__ = [
    "ref_footprint",
    "nest_footprints",
    "interpret_program",
    "run_element_loops",
    "NestPlan",
    "plan_nest",
    "tiling_band_legal",
    "OOCExecutor",
    "RunResult",
    "NestRun",
    "generate_tiled_code",
]
