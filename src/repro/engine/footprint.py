"""Footprint analysis: which array region does a loop sub-space touch?

For an affine reference and a box of variable ranges, each subscript's
min/max follows from interval arithmetic — exact for affine subscripts
over a box.  The engine reads/writes the per-array *union bounding box*
of all its references' footprints, clipped to the declared shape.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.arrays import ArrayRef
from ..ir.nest import LoopNest
from ..runtime.ooc_array import Region

VarRanges = Mapping[str, tuple[int, int]]


def ref_footprint(
    ref: ArrayRef, var_ranges: VarRanges, binding: Mapping[str, int]
) -> Region:
    """Inclusive per-dimension bounds of the reference over the variable
    box (parameters resolved through ``binding``)."""
    out = []
    for sub in ref.subscripts:
        lo = hi = sub.const
        for name, coeff in sub.coeffs:
            if name in var_ranges:
                a, b = var_ranges[name]
            else:
                a = b = binding[name]
            if coeff >= 0:
                lo += coeff * a
                hi += coeff * b
            else:
                lo += coeff * b
                hi += coeff * a
        out.append((lo, hi))
    return tuple(out)


def nest_footprints(
    nest: LoopNest,
    var_ranges: VarRanges,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
) -> dict[str, tuple[Region, bool, bool]]:
    """Per-array ``(region, is_read, is_written)`` over the variable box.

    The region is the union bounding box of all the array's references,
    clipped to the declared shape (affine bounds can push a footprint
    past the array edge on boundary tiles).
    """
    boxes: dict[str, list[tuple[int, int]]] = {}
    read: dict[str, bool] = {}
    written: dict[str, bool] = {}
    for _, ref, is_write in nest.refs():
        name = ref.array.name
        fp = ref_footprint(ref, var_ranges, binding)
        if name in boxes:
            boxes[name] = [
                (min(a, c), max(b, d)) for (a, b), (c, d) in zip(boxes[name], fp)
            ]
        else:
            boxes[name] = list(fp)
        read[name] = read.get(name, False) or not is_write
        written[name] = written.get(name, False) or is_write
    out: dict[str, tuple[Region, bool, bool]] = {}
    for name, box in boxes.items():
        shape = shapes[name]
        clipped = tuple(
            (max(0, lo), min(s - 1, hi)) for (lo, hi), s in zip(box, shape)
        )
        out[name] = (clipped, read[name], written[name])
    return out
