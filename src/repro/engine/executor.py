"""The out-of-core executor: tile loops around read / compute / write-back.

Executes one compute node's share of a program against the simulated
parallel file system, with exact I/O accounting.  Used directly for the
single-node experiments; :mod:`repro.parallel` wraps it per SPMD node.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Mapping, Sequence

import numpy as np

from ..backends import BackendMetrics, StorageBackend, resolve_backend
from ..cache import (
    CacheConfig,
    CacheMetrics,
    DoubleBufferModel,
    PrefetchScheduler,
    TileCache,
    make_policy,
)
from ..cache.tile_cache import CacheEntry
from ..faults import FaultConfig, FaultInjector
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..layout import Layout, row_major
from ..obs import NestIORecord, Observability, active as obs_active
from ..obs import profile as _prof
from ..obs.profile import ProfileConfig, ProfileResult, ProfileSession
from ..runtime import (
    InterleavedChunkedStore,
    IOContext,
    IOStats,
    MachineParams,
    MemoryBudgetExceeded,
    MemoryManager,
    OutOfCoreArray,
    ParallelFileSystem,
)
from ..runtime.ooc_array import Region, region_size, runs_of
from ..runtime.stats import plan_runs
from ..transforms.tiling import TilingSpec, ooc_tiling
from .interpreter import (
    initial_arrays,
    innermost_vectorizable,
    run_element_loops,
    run_element_loops_vectorized,
)
from .plan import NestPlan, plan_nest


@dataclass(frozen=True)
class LinearStoreSpec:
    layout: Layout


@dataclass(frozen=True)
class InterleavedStoreSpec:
    group: str
    block: tuple[int, ...]
    origin: tuple[int, ...] | None = None  # chunk-grid anchor (tile corner)


StoreSpec = LinearStoreSpec | InterleavedStoreSpec


@dataclass
class NestRun:
    nest_name: str
    plan: NestPlan
    stats: IOStats
    tiles_executed: int
    #: per-call trace ``(file_base, offset, length, is_write)`` in issue
    #: order, recorded when the executor was built with ``trace=True``
    #: (the collective planner and event simulator consume it).  In
    #: simulate mode a weighted nest is traced once and ``trace_weight``
    #: carries the repetition count; executed repetitions concatenate.
    trace: list[tuple[int, int, int, bool]] | None = None
    trace_weight: int = 1


@dataclass
class RunResult:
    stats: IOStats
    io_node_load: np.ndarray
    nest_runs: list[NestRun]
    peak_memory: int
    over_budget_tiles: int = 0
    cache_metrics: CacheMetrics | None = None
    #: measured transfer counters (ops / bytes / wall seconds) when the
    #: run used a measuring backend (mmap / chunked / object store);
    #: ``None`` for the in-memory and simulate-only defaults
    backend_metrics: BackendMetrics | None = None
    #: hotspot table + deterministic work delta when the executor ran
    #: with ``profile=ProfileConfig(...)``; ``None`` otherwise (and when
    #: the profile session is driver-owned — the driver finishes it)
    profile: ProfileResult | None = None

    @property
    def serial_time_s(self) -> float:
        return self.stats.total_time_s

    @property
    def overlapped_time_s(self) -> float:
        """Estimated wall time with double-buffered prefetch: the serial
        time minus the prefetch I/O the cost model hides under compute."""
        saved = (
            self.cache_metrics.overlapped_io_s
            if self.cache_metrics is not None
            else 0.0
        )
        return self.stats.total_time_s - saved


class _LinearStore:
    """Adapter giving plain arrays the combined read/write protocol."""

    def __init__(self, arrays: dict[str, OutOfCoreArray]):
        self.arrays = arrays

    def read_many(self, requests, ctx):
        return {
            name: self.arrays[name].read_tile(region, ctx)
            for name, region in requests
        }

    def write_many(self, requests, ctx):
        for name, region, data in requests:
            self.arrays[name].write_tile(region, data, ctx)

    def to_ndarray(self, name):
        return self.arrays[name].to_ndarray()

    def load_ndarray(self, name, values):
        self.arrays[name].load_ndarray(values)

    def estimate_read(self, name, region, params) -> tuple[int, int]:
        """(calls, elements) a read of the region would cost — the exact
        sieve/split planning of ``record_runs``, without recording."""
        offsets, lengths = runs_of(self.arrays[name].addresses(region))
        offsets, lengths = plan_runs(params, offsets, lengths)
        return int(offsets.size), int(lengths.sum())


class _InterleavedStore:
    def __init__(self, store: InterleavedChunkedStore):
        self.store = store

    def read_many(self, requests, ctx):
        return self.store.read_tiles(list(requests), ctx)

    def write_many(self, requests, ctx):
        self.store.write_tiles(list(requests), ctx)

    def to_ndarray(self, name):
        return self.store.to_ndarray(name)

    def load_ndarray(self, name, values):
        self.store.load_ndarray(name, values)

    def estimate_read(self, name, region, params) -> tuple[int, int]:
        """(calls, elements) for a standalone whole-chunk read of the
        region.  Upper bound for combined multi-array requests — a hit
        cannot participate in another request's merged super-run."""
        ids = np.unique(self.store.chunk_ids(name, region))
        offsets, lengths = runs_of(ids)
        bs = self.store._block_slots
        offsets, lengths = plan_runs(params, offsets * bs, lengths * bs)
        return int(offsets.size), int(lengths.sum())


class OOCExecutor:
    """Runs a program out of core under given file layouts and tiling.

    Parameters
    ----------
    program:
        normalized program (perfect nests only).
    layouts:
        file layout per array (default row-major), or full store specs
        via ``storage_spec`` for chunked/interleaved files.
    tiling:
        per-nest :class:`TilingSpec` factory (default: the paper's
        all-but-innermost rule).
    real:
        move actual data and interpret element loops (small sizes /
        verification) vs. accounting only.  Alias for the two default
        backends; ignored when ``backend`` is given.
    backend:
        where array bytes live (:mod:`repro.backends`): a
        :class:`~repro.backends.StorageBackend` instance or a kind
        string (``"memory"``, ``"simulate"``, ``"mmap"``, ``"chunked"``,
        ``"object"``).  ``None`` resolves from ``real``.  Accounted
        ``IOStats`` are identical for every data-carrying backend;
        measuring backends additionally report
        :class:`~repro.backends.BackendMetrics`.
    dtype:
        element dtype carried by the backend files (default float64).
    """

    def __init__(
        self,
        program: Program,
        layouts: Mapping[str, Layout] | None = None,
        *,
        params: MachineParams | None = None,
        binding: Mapping[str, int] | None = None,
        memory_budget: int | None = None,
        real: bool = True,
        backend: StorageBackend | str | None = None,
        dtype=None,
        tiling: Callable[[LoopNest], TilingSpec] | Mapping[str, TilingSpec] = ooc_tiling,
        storage_spec: Mapping[str, StoreSpec] | None = None,
        initial: Mapping[str, np.ndarray] | None = None,
        pfs: ParallelFileSystem | None = None,
        node_slice: tuple[int, int] | None = None,
        vectorize: bool = True,
        tile_sizes: Mapping[str, int] | None = None,
        cache: CacheConfig | None = None,
        trace: bool = False,
        obs: Observability | None = None,
        bounds: Sequence[object] | None = None,
        faults: FaultConfig | None = None,
        profile: ProfileConfig | ProfileSession | None = None,
    ):
        if node_slice is not None:
            rank, n_nodes = node_slice
            if not (0 <= rank < n_nodes):
                raise ValueError(f"bad node slice {node_slice}")
        self.node_slice = node_slice
        # observability (repro.obs): spans, metrics and per-nest I/O
        # records.  With obs=None (the default) no instrumentation path
        # is taken and accounting is bit-identical to pre-obs behavior.
        # Per-array attribution needs the call trace, so an enabled obs
        # turns tracing on (stats are unaffected by tracing).
        self._obs = obs_active(obs)
        self._trace = trace or (
            self._obs is not None and self._obs.config.per_array
        )
        # hotspot profiling (repro.obs.profile): a ProfileConfig makes
        # each run() own a fresh capture (finished into
        # RunResult.profile); a ProfileSession is driver-owned — the
        # executor only activates it around the run, and the driver
        # finishes it.  None (the default) never touches the clock.
        if isinstance(profile, ProfileConfig) and not profile.enabled:
            profile = None
        self._profile = profile
        # precomputed static I/O lower bounds (repro.bounds); None means
        # derive them at obs-finish time against the effective memory
        self._bounds = bounds
        # fault injection (repro.faults): one injector per executor, its
        # RNG stream seeded by plan.seed + rank.  With faults=None (the
        # default) every IOContext takes its vectorized path untouched.
        self._faults_cfg = faults
        self._injector: FaultInjector | None = None
        if faults is not None:
            self._injector = faults.injector(
                node_slice[0] if node_slice else 0
            )
        self.program = program
        self.params = params or MachineParams()
        self.binding = program.binding(binding)
        # storage backend: the boolean `real` is an alias for the two
        # default backends; an explicit backend decides for itself
        # whether data moves (real) or only accounting runs
        self.backend = (
            resolve_backend(None, real) if backend is None
            else resolve_backend(backend)
        )
        self.real = self.backend.real
        self._dtype = dtype
        self.shapes = {
            a.name: a.shape(self.binding) for a in program.arrays
        }
        total_elements = sum(int(np.prod(s)) for s in self.shapes.values())
        self.memory_budget = memory_budget or max(
            64, total_elements // self.params.memory_fraction
        )
        if callable(tiling):
            self._tiling_for = tiling
        else:
            specs = dict(tiling)
            self._tiling_for = lambda nest: specs[nest.name]
        # forced per-nest block sizes (the autotuner's tile knob); None
        # or a missing nest keeps the planner's binary-search choice
        self._tile_sizes = dict(tile_sizes) if tile_sizes else {}

        # build storage
        self.pfs = pfs or ParallelFileSystem(self.params)
        spec_map: dict[str, StoreSpec] = {}
        for a in program.arrays:
            if storage_spec and a.name in storage_spec:
                spec_map[a.name] = storage_spec[a.name]
            elif layouts and a.name in layouts:
                spec_map[a.name] = LinearStoreSpec(layouts[a.name])
            else:
                spec_map[a.name] = LinearStoreSpec(row_major(a.rank))
        self._stores: dict[str, object] = {}
        linear_arrays: dict[str, OutOfCoreArray] = {}
        groups: dict[str, list[tuple[str, InterleavedStoreSpec]]] = {}
        for name, spec in spec_map.items():
            if isinstance(spec, LinearStoreSpec):
                linear_arrays[name] = OutOfCoreArray.create(
                    name, self.shapes[name], spec.layout, self.pfs,
                    backend=self.backend, dtype=self._dtype,
                )
            else:
                groups.setdefault(spec.group, []).append((name, spec))
        linear_store = _LinearStore(linear_arrays)
        for name in linear_arrays:
            self._stores[name] = linear_store
        # concrete linear layouts, kept for the cost-model drift
        # telemetry (predicted I/O needs each array's fast direction)
        self._layouts: dict[str, Layout] = {
            name: spec.layout
            for name, spec in spec_map.items()
            if isinstance(spec, LinearStoreSpec)
        }
        for group, members in groups.items():
            names = [n for n, _ in members]
            shapes = {self.shapes[n] for n in names}
            if len(shapes) != 1:
                raise ValueError(
                    f"interleaved group {group} mixes shapes {shapes}"
                )
            block = members[0][1].block
            store = _InterleavedStore(
                InterleavedChunkedStore(
                    names, next(iter(shapes)), block, self.pfs,
                    backend=self.backend, dtype=self._dtype,
                    file_name=f"group:{group}", origin=members[0][1].origin,
                )
            )
            for n in names:
                self._stores[n] = store

        if self.real:
            data = initial or initial_arrays(program, self.binding)
            for name in self.shapes:
                self._stores[name].load_ndarray(name, data[name])

        self.memory = MemoryManager(self.memory_budget)
        self._over_budget_tiles = 0
        # tile cache + prefetch (repro.cache); the cache budget is carved
        # out of the memory budget, so resident cache tiles plus in-flight
        # compute tiles together stay under the per-node budget and the
        # planner sizes tiles against the remainder only
        self._cache_cfg = cache if cache is not None and cache.enabled else None
        self._plan_budget = self.memory_budget
        self._cache: TileCache | None = None
        self._prefetcher: PrefetchScheduler | None = None
        self._overlap: DoubleBufferModel | None = None
        if self._cache_cfg is not None:
            cfg = self._cache_cfg
            cache_budget = cfg.resolve_budget(self.memory_budget)
            if cache_budget >= self.memory_budget:
                raise ValueError(
                    f"cache budget {cache_budget} must leave memory for "
                    f"compute tiles (budget {self.memory_budget})"
                )
            self._plan_budget = self.memory_budget - cache_budget
            self._cache = TileCache(
                cache_budget, make_policy(cfg.policy), memory=self.memory
            )
            if cfg.prefetch:
                self._prefetcher = PrefetchScheduler(cfg.prefetch_depth)
                self._overlap = DoubleBufferModel(self._cache.metrics)
        # real-mode fast path: vectorize the innermost loop when no
        # dependence is carried by it (scalar fallback otherwise)
        self._vectorizable: dict[str, bool] = {}
        if self.real and vectorize:
            for nest in program.nests:
                self._vectorizable[nest.name] = innermost_vectorizable(nest)

    # -- public API -------------------------------------------------------

    @property
    def injector(self) -> FaultInjector | None:
        """This rank's fault injector (``None`` without ``faults``) —
        the SPMD driver publishes its events and counters, since the
        per-rank executors run without an observability handle."""
        return self._injector

    def array_data(self, name: str) -> np.ndarray:
        if not self.real:
            raise RuntimeError("array contents unavailable in simulate mode")
        return self._stores[name].to_ndarray(name)

    def file_names(self) -> dict[int, str]:
        """Map file base offsets to display names (array name for linear
        stores, ``group:<g>`` for interleaved files) — the attribution
        key for per-array I/O reports from call traces."""
        return {base: name for name, base in self.pfs.files.items()}

    def predicted_io(self) -> dict[str, dict[str, float]]:
        """The optimizer's predicted I/O calls per (nest, array) for this
        program as configured — the prediction side of the cost-model
        drift telemetry (:meth:`repro.obs.Observability.note_predictions`)."""
        # local import: repro.optimizer pulls in strategy modules that
        # import this executor
        from ..optimizer.cost import predict_program_io

        return predict_program_io(self.program, self._layouts, self.binding)

    def predicted_elements(self) -> dict[str, float]:
        """The cost model's element-transfer estimate per nest — the
        "modeled" column of the optimality telemetry
        (:meth:`repro.obs.Observability.note_modeled_elements`)."""
        from ..optimizer.cost import predict_program_elements

        return predict_program_elements(self.program, self.binding)

    def run(self) -> RunResult:
        prof = self._profile
        if prof is None:
            return self._run()
        # executor-owned capture (ProfileConfig) finishes into the
        # result; a driver-owned ProfileSession is only activated here
        owned = ProfileSession(prof) if isinstance(prof, ProfileConfig) \
            else None
        session = owned if owned is not None else prof
        session.activate()
        try:
            result = self._run()
        finally:
            session.deactivate()
        if owned is not None:
            obs = self._obs
            result.profile = owned.finish(
                tracer=obs.tracer if obs is not None else None
            )
            if obs is not None:
                obs.note_profile(result.profile)
                if obs.config.metrics:
                    _prof.publish_work(obs.metrics, result.profile.work)
        return result

    def _run(self) -> RunResult:
        obs = self._obs
        run_span = (
            obs.tracer.begin(
                "executor.run", "execute", program=self.program.name
            )
            if obs is not None and obs.config.wall_time
            else None
        )
        reg = obs.metrics if obs is not None and obs.config.metrics else None
        ctx = IOContext(self.params)
        nest_runs: list[NestRun] = []
        for nest in self.program.nests:
            nest_span = (
                obs.tracer.begin(f"nest {nest.name}", "execute", nest=nest.name)
                if obs is not None and obs.config.wall_time
                else None
            )
            spec = self._tiling_for(nest)
            plan = plan_nest(
                nest, spec, self._plan_budget, self.binding, self.shapes,
                force_block=self._tile_sizes.get(nest.name),
            )
            # with a live cache, weight repetitions are executed (not
            # scaled): the cache warms across repetitions, so repetition
            # stats are not multiples of the first pass.  A fault
            # injector likewise draws per attempt — scaling one pass by
            # the weight would multiply fault counts that never fired.
            if self.real or self._cache is not None or self._injector is not None:
                total = IOStats()
                tiles = 0
                nest_trace: list | None = [] if self._trace else None
                for _ in range(nest.weight):
                    local = IOContext(
                        self.params, trace=self._trace, metrics=reg,
                        faults=self._injector,
                    )
                    tiles = self._run_nest(nest, plan, local)
                    total = total.merge(local.stats)
                    ctx.stats = ctx.stats.merge(local.stats)
                    ctx.io_node_load += local.io_node_load
                    if nest_trace is not None:
                        nest_trace.extend(local.trace)
                nest_runs.append(
                    NestRun(nest.name, plan, total, tiles, nest_trace)
                )
            else:
                local = IOContext(self.params, trace=self._trace, metrics=reg)
                tiles = self._run_nest(nest, plan, local)
                w = nest.weight
                scaled = IOStats(
                    local.stats.read_calls * w,
                    local.stats.write_calls * w,
                    local.stats.elements_read * w,
                    local.stats.elements_written * w,
                    local.stats.io_time_s * w,
                    local.stats.compute_time_s * w,
                )
                ctx.stats = ctx.stats.merge(scaled)
                ctx.io_node_load += local.io_node_load * w
                nest_runs.append(
                    NestRun(
                        nest.name, plan, scaled, tiles, local.trace,
                        trace_weight=w,
                    )
                )
            if nest_span is not None:
                nr = nest_runs[-1]
                obs.tracer.end(
                    nest_span,
                    tiles=nr.tiles_executed,
                    calls=nr.stats.calls,
                    elements=nr.stats.elements_moved,
                    tile_size=plan.tile_size,
                )
        # snapshot the counters: the cache (and its live metrics) outlives
        # this run, so the result must not mutate retroactively if run()
        # is called again; counters stay cumulative over the cache's life
        metrics = (
            dc_replace(self._cache.metrics) if self._cache is not None else None
        )
        if metrics is not None:
            ctx.stats.cache = metrics
        # measured side of the run: a measuring backend's cumulative
        # counters, snapshotted like the cache metrics above
        bmetrics = (
            dc_replace(self.backend.metrics)
            if self.backend.measures else None
        )
        if obs is not None:
            self._finish_obs(obs, run_span, ctx, nest_runs)
        return RunResult(
            ctx.stats,
            ctx.io_node_load,
            nest_runs,
            self.memory.peak,
            self._over_budget_tiles,
            metrics,
            bmetrics,
        )

    def _finish_obs(
        self,
        obs: Observability,
        run_span,
        ctx: IOContext,
        nest_runs: list[NestRun],
    ) -> None:
        """Close out one run's telemetry: per-nest × per-array records
        from the call traces, cache counters, run-level gauges."""
        if obs.config.per_array:
            rank = self.node_slice[0] if self.node_slice else 0
            for rec in nest_records(
                self.params, nest_runs, self.file_names(), node=rank
            ):
                obs.record_nest_io(rec)
            obs.note_predictions(self.predicted_io())
            obs.finalize_drift()
            # optimality: a lone executor owns the whole program, so it
            # can derive (or adopt) bounds itself; rank executors inside
            # the SPMD driver see only their slab and leave bounds to
            # the driver, which knows the node count
            if self.node_slice is None:
                bounds = self._bounds
                if bounds is None:
                    from ..bounds import program_bounds

                    bounds = program_bounds(
                        self.program,
                        binding=self.binding,
                        # effective capacity: pathological tiles may
                        # overrun the nominal budget, and a bound argued
                        # against less memory than the run used is wrong
                        memory_elements=max(
                            self.memory_budget, self.memory.peak
                        ),
                        warm=self._cache is not None,
                    )
                obs.note_bounds(bounds)
                obs.note_modeled_elements(self.predicted_elements())
                obs.finalize_optimality()
        if obs.config.metrics:
            if self._cache is not None:
                self._cache.publish_metrics(obs.metrics)
            obs.metrics.gauge("executor.peak_memory_elements").set(
                self.memory.peak
            )
            obs.metrics.gauge("executor.over_budget_tiles").set(
                self._over_budget_tiles
            )
            if self._injector is not None:
                self._injector.publish_metrics(obs.metrics)
            if self.backend.measures:
                self._publish_backend_metrics(obs, ctx)
        if self._injector is not None and self._injector.events:
            obs.add_fault_events(self._injector.events)
        obs.note_stats(ctx.stats)
        if run_span is not None:
            obs.tracer.end(
                run_span,
                calls=ctx.stats.calls,
                elements=ctx.stats.elements_moved,
                io_time_s=ctx.stats.io_time_s,
            )

    def _publish_backend_metrics(self, obs: Observability, ctx: IOContext) -> None:
        """Measured-vs-predicted gauges for a byte-moving backend.

        ``backend.*`` gauges carry the measured side (operations, bytes,
        wall seconds); ``backend.io_ratio`` divides measured wall time
        by the cost model's modeled I/O seconds — the drift telemetry's
        companion number, but against a real (or realistically priced)
        implementation instead of the model's own trace."""
        g = obs.metrics.gauge
        m = self.backend.metrics
        g("backend.get_ops").set(m.get_ops)
        g("backend.put_ops").set(m.put_ops)
        g("backend.bytes_read").set(m.bytes_read)
        g("backend.bytes_written").set(m.bytes_written)
        g("backend.measured_io_s").set(m.wall_s)
        if ctx.stats.io_time_s > 0:
            g("backend.io_ratio").set(m.wall_s / ctx.stats.io_time_s)

    def close(self) -> None:
        """Release backend resources (mmap handles, temporary chunk
        directories).  A no-op for the in-memory defaults; array data
        is unavailable afterwards."""
        self.backend.close()

    def __enter__(self) -> "OOCExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- internals -----------------------------------------------------------

    def _tile_windows(
        self, nest: LoopNest, plan: NestPlan
    ) -> list[dict[str, tuple[int, int]]]:
        """Enumerate tile windows (per tiled variable) in loop order."""
        from .plan import _whole_ranges

        full = _whole_ranges(nest, self.binding)
        levels = plan.tiled_levels
        if not levels:
            if self.node_slice is not None and self.node_slice[0] != 0:
                return []  # untiled nests run on node 0 only
            return [{}]
        windows: list[dict[str, tuple[int, int]]] = []

        def rec(idx: int, acc: dict[str, tuple[int, int]]):
            if idx == len(levels):
                windows.append(dict(acc))
                return
            loop = nest.loops[levels[idx]]
            lo, hi = full[loop.var]
            if idx == 0 and self.node_slice is not None:
                # SPMD block distribution of the outermost tile loop: node
                # r owns a contiguous slab (no inter-node communication —
                # the paper's parallelization)
                rank, n_nodes = self.node_slice
                extent = hi - lo + 1
                share = -(-extent // n_nodes)
                lo, hi = lo + rank * share, min(hi, lo + (rank + 1) * share - 1)
                if lo > hi:
                    return
            b = max(1, plan.tile_size)
            start = lo
            while start <= hi:
                end = min(hi, start + b - 1)
                acc[loop.var] = (start, end)
                rec(idx + 1, acc)
                del acc[loop.var]
                start = end + 1

        rec(0, {})
        return windows

    def _tile_var_ranges(
        self, nest: LoopNest, windows: Mapping[str, tuple[int, int]]
    ) -> dict[str, tuple[int, int]] | None:
        """Refined per-variable ranges for one tile (None if empty)."""
        ranges: dict[str, tuple[int, int]] = {}
        env_corners: list[dict[str, int]] = [dict(self.binding)]
        for loop in nest.loops:
            los, his = [], []
            for env in env_corners:
                los.append(max(b.eval_lower(env) for b in loop.lowers))
                his.append(min(b.eval_upper(env) for b in loop.uppers))
            lo, hi = min(los), max(his)
            if loop.var in windows:
                wlo, whi = windows[loop.var]
                lo, hi = max(lo, wlo), min(hi, whi)
            if lo > hi:
                return None
            ranges[loop.var] = (lo, hi)
            new_corners = []
            for env in env_corners:
                for val in {lo, hi}:
                    e = dict(env)
                    e[loop.var] = val
                    new_corners.append(e)
            env_corners = new_corners[:16]  # bounded corner expansion
        return ranges

    def _estimate_iterations(
        self, nest: LoopNest, windows: Mapping[str, tuple[int, int]]
    ) -> int:
        env = dict(self.binding)
        total = 1
        for loop in nest.loops:
            lo = max(b.eval_lower(env) for b in loop.lowers)
            hi = min(b.eval_upper(env) for b in loop.uppers)
            if loop.var in windows:
                wlo, whi = windows[loop.var]
                lo, hi = max(lo, wlo), min(hi, whi)
            trips = max(0, hi - lo + 1)
            if trips == 0:
                return 0
            total *= trips
            env[loop.var] = (lo + hi) // 2
        return total

    def _run_nest(self, nest: LoopNest, plan: NestPlan, ctx: IOContext) -> int:
        if self._cache is not None:
            return self._run_nest_cached(nest, plan, ctx)
        return self._run_nest_plain(nest, plan, ctx)

    def _run_nest_plain(self, nest: LoopNest, plan: NestPlan, ctx: IOContext) -> int:
        from .footprint import nest_footprints

        tiles_executed = 0
        for windows in self._tile_windows(nest, plan):
            var_ranges = self._tile_var_ranges(nest, windows)
            if var_ranges is None:
                continue
            fps = _prof.timed(
                "engine.footprints",
                nest_footprints, nest, var_ranges, self.binding, self.shapes,
            )
            fps = {
                name: (region, r, w)
                for name, (region, r, w) in fps.items()
                if region_size(region) > 0
            }
            if not fps:
                continue
            total_fp = sum(region_size(region) for region, _, _ in fps.values())
            allocated = False
            if not plan.over_budget:
                try:
                    self.memory.allocate(total_fp)
                    allocated = True
                except MemoryBudgetExceeded:
                    # the planner sizes tiles against sampled anchors; a
                    # pathological boundary tile may still overshoot —
                    # count it rather than abort (the peak is recorded)
                    self.memory.peak = max(
                        self.memory.peak, self.memory.in_use + total_fp
                    )
                    self._over_budget_tiles += 1

            # the tile's reservation must not outlive a failed transfer:
            # an I/O call that raises (e.g. an injected TransientIOError
            # with the retry budget exhausted) releases the allocation on
            # the way out, so memory accounting never leaks
            try:
                # group by store and read every accessed array's tile (the
                # paper's generated code reads tiles for all arrays, including
                # write-only ones — read-modify-write of the bounding box)
                by_store: dict[int, list[tuple[str, Region]]] = {}
                for name, (region, _, _) in fps.items():
                    by_store.setdefault(id(self._stores[name]), []).append(
                        (name, region)
                    )
                tiles_data: dict[str, np.ndarray | None] = {}
                for sid, requests in by_store.items():
                    store = self._stores[requests[0][0]]
                    tiles_data.update(store.read_many(requests, ctx))

                if self.real:
                    regions = {name: region for name, (region, _, _) in fps.items()}
                    runner = (
                        run_element_loops_vectorized
                        if self._vectorizable.get(nest.name)
                        else run_element_loops
                    )
                    count = _prof.timed(
                        "interp.element_loops",
                        runner, nest, self.binding, windows, tiles_data,
                        regions,
                    )
                    ctx.record_compute(count, len(nest.body))
                else:
                    count = self._estimate_iterations(nest, windows)
                    ctx.record_compute(count, len(nest.body))

                # write back modified arrays
                by_store_w: dict[int, list[tuple[str, Region, np.ndarray | None]]] = {}
                for name, (region, _, written) in fps.items():
                    if written:
                        by_store_w.setdefault(id(self._stores[name]), []).append(
                            (name, region, tiles_data.get(name))
                        )
                for sid, requests in by_store_w.items():
                    store = self._stores[requests[0][0]]
                    store.write_many(requests, ctx)
            finally:
                if allocated:
                    self.memory.free(total_fp)
            tiles_executed += 1
            _prof.WORK.add_loop_iters("tile", 1)
        return tiles_executed

    # -- cached execution (repro.cache) -----------------------------------

    def _run_nest_cached(
        self, nest: LoopNest, plan: NestPlan, ctx: IOContext
    ) -> int:
        """Tile loop with the tile cache between executor and stores.

        Differences from the plain path: reads consult the cache first
        (hits skip the file and record saved calls/volume), writes go
        write-back or write-through per the config, the prefetcher
        fetches upcoming tiles of the statically known walk, and all
        dirty tiles are flushed at the nest boundary — clean data stays
        resident, which is what enables cross-nest reuse.
        """
        from .footprint import nest_footprints

        cache = self._cache
        assert cache is not None
        # the tile-space walk is static: enumerate it up front so the
        # prefetcher knows every upcoming read set
        tiles: list[tuple[dict[str, tuple[int, int]], dict]] = []
        for windows in self._tile_windows(nest, plan):
            var_ranges = self._tile_var_ranges(nest, windows)
            if var_ranges is None:
                continue
            fps = _prof.timed(
                "engine.footprints",
                nest_footprints, nest, var_ranges, self.binding, self.shapes,
            )
            fps = {
                name: (region, r, w)
                for name, (region, r, w) in fps.items()
                if region_size(region) > 0
            }
            if fps:
                tiles.append((windows, fps))
        if self._prefetcher is not None:
            self._prefetcher.begin_nest(
                [
                    [(name, region) for name, (region, _, _) in fps.items()]
                    for _, fps in tiles
                ]
            )

        for t, (windows, fps) in enumerate(tiles):
            total_fp = sum(region_size(region) for region, _, _ in fps.values())
            allocated = False
            if not plan.over_budget:
                try:
                    self.memory.allocate(total_fp)
                    allocated = True
                except MemoryBudgetExceeded:
                    self.memory.peak = max(
                        self.memory.peak, self.memory.in_use + total_fp
                    )
                    self._over_budget_tiles += 1

            # as in the plain path: a read that raises mid-tile (injected
            # fault with retries exhausted) must release the reservation
            try:
                tiles_data = self._read_tiles_cached(fps, ctx)

                compute_before = ctx.stats.compute_time_s
                if self.real:
                    regions = {name: region for name, (region, _, _) in fps.items()}
                    runner = (
                        run_element_loops_vectorized
                        if self._vectorizable.get(nest.name)
                        else run_element_loops
                    )
                    count = _prof.timed(
                        "interp.element_loops",
                        runner, nest, self.binding, windows, tiles_data,
                        regions,
                    )
                    ctx.record_compute(count, len(nest.body))
                else:
                    count = self._estimate_iterations(nest, windows)
                    ctx.record_compute(count, len(nest.body))
                compute_s = ctx.stats.compute_time_s - compute_before

                self._write_tiles_cached(fps, tiles_data, ctx)

                if self._prefetcher is not None:
                    prefetch_io = self._prefetch_tiles(
                        self._prefetcher.requests_after(t), ctx
                    )
                    self._overlap.note_tile(compute_s, prefetch_io)
            finally:
                if allocated:
                    self.memory.free(total_fp)
            _prof.WORK.add_loop_iters("tile", 1)
        # nest boundary: dirty tiles land on disk; clean data stays
        # resident for the next nest (or weight repetition)
        self._write_entries(cache.flush_all(), ctx)
        return len(tiles)

    def _read_tiles_cached(
        self, fps: Mapping[str, tuple], ctx: IOContext
    ) -> dict[str, np.ndarray | None]:
        cache = self._cache
        tiles_data: dict[str, np.ndarray | None] = {}
        miss_by_store: dict[int, list[tuple[str, Region]]] = {}
        for name, (region, _, _) in fps.items():
            resident = cache.peek(name, region)
            prefetch_first_use = resident is not None and resident.prefetched
            entry = cache.lookup(name, region)
            if entry is not None:
                tiles_data[name] = (
                    None if entry.data is None else entry.data.copy()
                )
                # a prefetched tile's first use is prepaid I/O, not
                # avoided I/O — only genuine reuse counts as savings
                if not prefetch_first_use:
                    calls, elems = self._stores[name].estimate_read(
                        name, region, self.params
                    )
                    cache.metrics.read_calls_saved += calls
                    cache.metrics.elements_saved += elems
            else:
                store = self._stores[name]
                if isinstance(store, _LinearStore):
                    # linear stores can read partial regions: serve
                    # whatever overlapping resident tiles cover and
                    # fetch only the remainder
                    tiles_data[name] = self._fetch_linear(
                        store, name, region, ctx
                    )
                    continue
                # interleaved stores transfer whole chunks — exact hits
                # only; overlapping dirty data must reach the file
                # before we read the region from it
                self._write_entries(
                    cache.flush_overlapping(name, region), ctx
                )
                miss_by_store.setdefault(id(store), []).append(
                    (name, region)
                )
        for requests in miss_by_store.values():
            store = self._stores[requests[0][0]]
            got = store.read_many(requests, ctx)
            for name, region in requests:
                tiles_data[name] = got[name]
                self._cache_insert(name, region, got[name], ctx)
        return tiles_data

    def _fetch_linear(
        self,
        store: _LinearStore,
        name: str,
        region: Region,
        ctx: IOContext,
        *,
        prefetched: bool = False,
    ) -> np.ndarray | None:
        """Read one linear-store region through the cache's coverage map.

        Consecutive tiles of the walk overlap (stencil halos, growing
        bounding-box hulls), so the dominant reuse is *partial*: resident
        tiles cover part of the region and only the uncovered remainder
        needs the file.  Punching holes in a contiguous run can increase
        the call count, so the remainder is priced against the full read
        with the exact run planning and only taken when cheaper."""
        cache = self._cache
        arr = store.arrays[name]
        p = self.params
        cov = cache.coverage(name, region)
        if cov is not None:
            mask, entries = cov
            addrs = arr.addresses(region)
            f_off, f_len = plan_runs(p, *runs_of(addrs))
            need = addrs[~mask.ravel()]
            r_off, r_len = plan_runs(p, *runs_of(need))
            per_el = p.element_size / p.io_bandwidth_bps
            t_full = f_off.size * p.io_latency_s + int(f_len.sum()) * per_el
            t_rem = r_off.size * p.io_latency_s + int(r_len.sum()) * per_el
            if t_rem < t_full:
                data = arr.read_tile_partial(region, mask, ctx)
                if data is not None:
                    cache.fill_from(data, region, entries)
                m = cache.metrics
                if not prefetched:
                    m.partial_hits += 1
                m.read_calls_saved += int(f_off.size) - int(r_off.size)
                m.elements_saved += int(f_len.sum()) - int(r_len.sum())
                self._cache_insert(name, region, data, ctx, prefetched=prefetched)
                return data
            # not worth splitting the runs: read the whole region — the
            # dirty overlaps must land on the file first
            self._write_entries(cache.flush_overlapping(name, region), ctx)
        data = arr.read_tile(region, ctx)
        self._cache_insert(name, region, data, ctx, prefetched=prefetched)
        return data

    def _write_tiles_cached(
        self,
        fps: Mapping[str, tuple],
        tiles_data: Mapping[str, np.ndarray | None],
        ctx: IOContext,
    ) -> None:
        cache = self._cache
        writes = [
            (name, region, tiles_data.get(name))
            for name, (region, _, written) in fps.items()
            if written
        ]
        if not writes:
            return
        for name, region, _ in writes:
            # older dirty overlaps must land first (they own cells outside
            # this region); then drop now-stale overlapping entries
            self._write_entries(
                cache.flush_overlapping(name, region, exclude_exact=True), ctx
            )
            cache.invalidate_overlapping(name, region, exclude_exact=True)
        if self._cache_cfg.write_back:
            direct: list[tuple[str, Region, np.ndarray | None]] = []
            for name, region, data in writes:
                if not self._cache_insert(name, region, data, ctx, dirty=True):
                    direct.append((name, region, data))
            self._write_requests(direct, ctx)
        else:
            self._write_requests(writes, ctx)
            for name, region, data in writes:
                self._cache_insert(name, region, data, ctx)

    def _prefetch_tiles(
        self, requests: list[tuple[str, Region]], ctx: IOContext
    ) -> float:
        """Fetch upcoming tiles into the cache; returns the serial I/O
        seconds spent (the overlap model decides how much of that a
        second buffer would hide)."""
        cache = self._cache
        io_before = ctx.stats.io_time_s
        miss_by_store: dict[int, list[tuple[str, Region]]] = {}
        for name, region in requests:
            if cache.peek(name, region) is not None or not cache.fits(region):
                continue
            store = self._stores[name]
            if isinstance(store, _LinearStore):
                self._fetch_linear(store, name, region, ctx, prefetched=True)
                cache.metrics.prefetch_issued += 1
                continue
            self._write_entries(cache.flush_overlapping(name, region), ctx)
            miss_by_store.setdefault(id(store), []).append((name, region))
        for reqs in miss_by_store.values():
            store = self._stores[reqs[0][0]]
            got = store.read_many(reqs, ctx)
            for name, region in reqs:
                self._cache_insert(name, region, got[name], ctx, prefetched=True)
                cache.metrics.prefetch_issued += 1
        return ctx.stats.io_time_s - io_before

    def _cache_insert(
        self,
        name: str,
        region: Region,
        data: np.ndarray | None,
        ctx: IOContext,
        *,
        dirty: bool = False,
        prefetched: bool = False,
    ) -> bool:
        """Offer a tile to the cache; returns whether it became resident
        (a declined *dirty* tile must be written directly by the caller)."""
        cache = self._cache
        if not cache.fits(region):
            return False
        cost_s = 0.0
        if cache.policy.uses_cost:
            calls, elems = self._stores[name].estimate_read(
                name, region, self.params
            )
            p = self.params
            cost_s = calls * p.io_latency_s + (
                elems * p.element_size / p.io_bandwidth_bps
            )
        accepted, evicted = cache.insert(
            name, region, data,
            dirty=dirty, prefetched=prefetched, cost_s=cost_s,
        )
        # evicted dirty tiles must be written back through the stores
        self._write_entries(evicted, ctx)
        return accepted

    def _write_entries(
        self, entries: list[CacheEntry], ctx: IOContext
    ) -> None:
        self._write_requests(
            [(e.name, e.region, e.data) for e in entries], ctx
        )

    def _write_requests(
        self, requests: list[tuple[str, Region, np.ndarray | None]], ctx: IOContext
    ) -> None:
        if not requests:
            return
        by_store: dict[int, list[tuple[str, Region, np.ndarray | None]]] = {}
        for name, region, data in requests:
            by_store.setdefault(id(self._stores[name]), []).append(
                (name, region, data)
            )
        for reqs in by_store.values():
            store = self._stores[reqs[0][0]]
            store.write_many(reqs, ctx)


def nest_records(
    params: MachineParams,
    nest_runs: list[NestRun],
    file_names: Mapping[int, str],
    *,
    node: int = 0,
    path: str = "direct",
) -> list[NestIORecord]:
    """Per-nest × per-array I/O records from recorded call traces.

    Each trace entry is one accounted I/O call, so grouping by
    ``(file_base, direction)`` and scaling by ``trace_weight``
    reproduces the nest's :class:`IOStats` call/element counters
    *exactly* — the invariant the obs report's cross-check relies on.
    ``io_time_s`` is recomputed from the cost model (informational)."""
    out: list[NestIORecord] = []
    for nr in nest_runs:
        if nr.trace is None:
            continue
        w = max(1, nr.trace_weight)
        by_file: dict[int, NestIORecord] = {}
        for base, _off, ln, is_write in nr.trace:
            rec = by_file.get(base)
            if rec is None:
                rec = by_file[base] = NestIORecord(
                    nr.nest_name,
                    file_names.get(base, f"file@{base}"),
                    node=node,
                    path=path,
                )
            if is_write:
                rec.write_calls += w
                rec.elements_written += ln * w
            else:
                rec.read_calls += w
                rec.elements_read += ln * w
        for rec in by_file.values():
            rec.io_time_s = (
                rec.read_calls + rec.write_calls
            ) * params.io_latency_s + (
                rec.elements_read + rec.elements_written
            ) * params.element_size / params.io_bandwidth_bps
            out.append(rec)
    return out
