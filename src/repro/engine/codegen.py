"""Source-level code generation for the tiled out-of-core program.

Produces the paper's target form (Section 3.3's listings): tile loops
outside, PASSION-style tile read calls, element loops inside, write-back
of modified tiles — annotated with the chosen file layout per array.
The output is Fortran-flavored pseudocode meant for humans (and for the
paper's listings); execution goes through :class:`OOCExecutor`.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.nest import LoopNest
from ..ir.program import Program
from ..layout import Layout
from ..transforms.tiling import TilingSpec
from .plan import NestPlan


def _bounds_str(loop) -> tuple[str, str]:
    return loop._bounds_str()


def generate_nest_code(
    nest: LoopNest,
    spec: TilingSpec,
    layouts: Mapping[str, Layout],
    tile_size_name: str = "B",
) -> str:
    lines: list[str] = []
    indent = 0

    def emit(text: str) -> None:
        lines.append("  " * indent + text)

    reads = sorted(nest.arrays())
    writes = sorted({s.lhs.array.name for s in nest.body})

    tiled = [i for i, t in enumerate(spec.tiled) if t]
    # tile loops
    for level in tiled:
        loop = nest.loops[level]
        lo, hi = _bounds_str(loop)
        emit(f"do {loop.var.upper()}T = {lo}, {hi}, {tile_size_name}")
        indent += 1
    emit(f"call passion_read_tiles({', '.join(reads)})   ! one data tile each")
    # element loops
    for level, loop in enumerate(nest.loops):
        lo, hi = _bounds_str(loop)
        if level in tiled:
            t = f"{loop.var.upper()}T"
            emit(
                f"do {loop.var} = max({lo}, {t}), "
                f"min({hi}, {t}+{tile_size_name}-1)"
            )
        else:
            emit(f"do {loop.var} = {lo}, {hi}")
        indent += 1
    for stmt in nest.body:
        emit(str(stmt))
    for _ in nest.loops:
        indent -= 1
        emit("end do")
    emit(f"call passion_write_tiles({', '.join(writes)})")
    for _ in tiled:
        indent -= 1
        emit("end do")
    return "\n".join(lines)


def generate_tiled_code(
    program: Program,
    layouts: Mapping[str, Layout],
    specs: Mapping[str, TilingSpec] | None = None,
    plans: Mapping[str, NestPlan] | None = None,
    obs=None,
) -> str:
    """Full-program listing with layout declarations per array.

    ``obs`` (a :class:`repro.obs.Observability`) wraps the emission in a
    ``codegen`` span; ``None`` records nothing.
    """
    from ..obs import active
    from ..transforms.tiling import ooc_tiling

    obs = active(obs)
    span = (
        obs.tracer.begin("codegen", "compile", program=program.name)
        if obs is not None
        else None
    )
    parts = [f"! out-of-core code for program {program.name}"]
    for a in program.arrays:
        lay = layouts.get(a.name)
        desc = lay.describe() if lay is not None else "row-major (default)"
        parts.append(f"! file layout of {a.name}: {desc}")
    for nest in program.nests:
        if plans and nest.name in plans:
            spec = plans[nest.name].spec
            b = plans[nest.name].tile_size
            parts.append(f"\n! nest {nest.name} (tile size B = {b})")
        else:
            spec = (specs or {}).get(nest.name) or ooc_tiling(nest)
            parts.append(f"\n! nest {nest.name}")
        parts.append(generate_nest_code(nest, spec, layouts))
    out = "\n".join(parts)
    if obs is not None:
        obs.tracer.end(span, n_lines=out.count("\n") + 1)
    return out
