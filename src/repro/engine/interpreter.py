"""Reference interpreter and element-loop execution.

:func:`interpret_program` runs a program in-core on plain numpy arrays —
the semantic ground truth every transformed/tiled/out-of-core execution
is verified against.

:func:`run_element_loops` executes one tile's element iterations against
in-memory data tiles; it is shared by the real-mode out-of-core executor.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Mapping

import numpy as np

from ..ir.arrays import ArrayRef
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..runtime.ooc_array import Region


def _default_init(name: str, shape: tuple[int, ...]) -> np.ndarray:
    """Deterministic, array-specific initial contents so that semantic
    comparisons cannot pass by accident.  Seeded with a stable hash:
    ``hash(str)`` is randomized per process, so two names colliding
    mod the offset modulus would make distinct arrays initialize
    identically in an unlucky process; crc32 mod 10007 separates every
    array name in the suite deterministically."""
    n = int(np.prod(shape))
    seed = zlib.crc32(name.encode("utf-8"))
    base = (np.arange(n, dtype=np.float64) * 0.37 + seed % 10007) % 10007.0
    return (base + 1.0).reshape(shape)


def initial_arrays(
    program: Program, binding: Mapping[str, int]
) -> dict[str, np.ndarray]:
    return {
        a.name: _default_init(a.name, a.shape(binding)) for a in program.arrays
    }


def interpret_nest(
    nest: LoopNest,
    binding: Mapping[str, int],
    storage: Mapping[str, np.ndarray],
) -> None:
    """Execute one nest in-core, mutating ``storage`` (one repetition —
    the caller applies ``nest.weight``)."""

    def load(ref: ArrayRef, env: Mapping[str, int]) -> float:
        return float(storage[ref.array.name][ref.index(env, binding)])

    for env in nest.iterate(binding):
        full = {**binding, **env}
        for stmt in nest.body:
            if stmt.guards and not stmt.guarded_on(full):
                continue
            value = stmt.rhs.evaluate(full, load)
            storage[stmt.lhs.array.name][stmt.lhs.index(env, binding)] = value


def interpret_program(
    program: Program,
    binding: Mapping[str, int] | None = None,
    initial: Mapping[str, np.ndarray] | None = None,
    *,
    apply_weights: bool = True,
) -> dict[str, np.ndarray]:
    """Run the whole program in-core; returns final array contents."""
    b = program.binding(binding)
    storage = {
        k: v.astype(np.float64).copy()
        for k, v in (initial or initial_arrays(program, b)).items()
    }
    for nest in program.nests:
        reps = nest.weight if apply_weights else 1
        for _ in range(reps):
            interpret_nest(nest, b, storage)
    return storage


def iterate_tile(
    nest: LoopNest,
    binding: Mapping[str, int],
    tile_windows: Mapping[str, tuple[int, int]],
) -> Iterator[dict[str, int]]:
    """Enumerate the nest's iteration points clipped to per-variable tile
    windows (variables absent from ``tile_windows`` keep full bounds)."""
    env: dict[str, int] = dict(binding)

    def rec(level: int) -> Iterator[dict[str, int]]:
        if level == nest.depth:
            yield {v: env[v] for v in nest.loop_vars}
            return
        loop = nest.loops[level]
        lo, hi = loop.eval_range(env)
        if loop.var in tile_windows:
            wlo, whi = tile_windows[loop.var]
            lo, hi = max(lo, wlo), min(hi, whi)
        for v in range(lo, hi + 1):
            env[loop.var] = v
            yield from rec(level + 1)
            del env[loop.var]

    return rec(0)


def innermost_vectorizable(nest: LoopNest) -> bool:
    """True when the innermost loop can be executed as one numpy strip:
    no guards, and no dependence carried by the innermost level (checked
    with the exact analyzer).  Elementwise float semantics are identical
    to the scalar interpreter."""
    if any(stmt.guards for stmt in nest.body):
        return False
    from ..dependence import analyze_nest

    level = nest.depth - 1
    for edge in analyze_nest(nest):
        if edge.carried_at_level(level):
            return False
    return True


def _eval_vec(expr, env, vec_var, vec, load):
    """Evaluate an expression tree over a whole innermost strip."""
    from ..ir.expr import BinOp, Call, Const, Ref, UnOp

    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        return load(expr.ref, env, vec_var, vec)
    if isinstance(expr, BinOp):
        a = _eval_vec(expr.left, env, vec_var, vec, load)
        b = _eval_vec(expr.right, env, vec_var, vec, load)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    if isinstance(expr, UnOp):
        return -_eval_vec(expr.operand, env, vec_var, vec, load)
    if isinstance(expr, Call):
        arg = _eval_vec(expr.arg, env, vec_var, vec, load)
        if expr.fn == "sqrt":
            return np.sqrt(np.abs(arg))
        if expr.fn == "exp":
            return np.exp(np.minimum(arg, 50.0))
        return np.abs(arg)
    raise TypeError(f"cannot vectorize {expr!r}")  # pragma: no cover


def _vec_indices(ref, env, vec_var, vec, origin):
    idx = []
    for d, sub in enumerate(ref.subscripts):
        coeff = sub.coeff(vec_var)
        base = sub.drop({vec_var}).evaluate(env) - origin[d]
        idx.append(base + coeff * vec if coeff else np.full(vec.shape, base))
    return tuple(np.asarray(x, dtype=np.intp) for x in idx)


def run_element_loops_vectorized(
    nest: LoopNest,
    binding: Mapping[str, int],
    tile_windows: Mapping[str, tuple[int, int]],
    tiles: Mapping[str, np.ndarray],
    regions: Mapping[str, Region],
) -> int:
    """Vectorized twin of :func:`run_element_loops`: the outer loops run
    in Python, the innermost as numpy strips.  Caller must have checked
    :func:`innermost_vectorizable`."""
    origins = {
        name: tuple(lo for lo, _ in region) for name, region in regions.items()
    }
    inner = nest.loops[-1]

    def load(ref, env, vec_var, vec):
        return tiles[ref.array.name][
            _vec_indices(ref, env, vec_var, vec, origins[ref.array.name])
        ]

    count = 0
    env: dict[str, int] = dict(binding)

    def rec(level: int):
        nonlocal count
        if level == nest.depth - 1:
            lo, hi = inner.eval_range(env)
            if inner.var in tile_windows:
                wlo, whi = tile_windows[inner.var]
                lo, hi = max(lo, wlo), min(hi, whi)
            if lo > hi:
                return
            vec = np.arange(lo, hi + 1, dtype=np.int64)
            count += vec.size
            for stmt in nest.body:
                value = _eval_vec(stmt.rhs, env, inner.var, vec, load)
                name = stmt.lhs.array.name
                tiles[name][
                    _vec_indices(stmt.lhs, env, inner.var, vec, origins[name])
                ] = value
            return
        loop = nest.loops[level]
        lo, hi = loop.eval_range(env)
        if loop.var in tile_windows:
            wlo, whi = tile_windows[loop.var]
            lo, hi = max(lo, wlo), min(hi, whi)
        for v in range(lo, hi + 1):
            env[loop.var] = v
            rec(level + 1)
            del env[loop.var]

    rec(0)
    return count


def run_element_loops(
    nest: LoopNest,
    binding: Mapping[str, int],
    tile_windows: Mapping[str, tuple[int, int]],
    tiles: Mapping[str, np.ndarray],
    regions: Mapping[str, Region],
) -> int:
    """Execute the element loops of one tile against in-memory tiles.

    ``tiles[name]`` holds the data of ``regions[name]``; subscripts are
    rebased by the region origin.  Returns the number of iterations run.
    """
    origins = {
        name: tuple(lo for lo, _ in region) for name, region in regions.items()
    }

    def load(ref: ArrayRef, env: Mapping[str, int]) -> float:
        name = ref.array.name
        idx = ref.index(env, binding)
        o = origins[name]
        return float(tiles[name][tuple(i - b for i, b in zip(idx, o))])

    count = 0
    for env in iterate_tile(nest, binding, tile_windows):
        full = {**binding, **env}
        count += 1
        for stmt in nest.body:
            if stmt.guards and not stmt.guarded_on(full):
                continue
            value = stmt.rhs.evaluate(full, load)
            name = stmt.lhs.array.name
            idx = stmt.lhs.index(env, binding)
            o = origins[name]
            tiles[name][tuple(i - b for i, b in zip(idx, o))] = value
    return count
