"""Tile planning: pick tile sizes fitting the memory budget, legally.

A plan strip-mines the levels marked by the :class:`TilingSpec` (the
tile loops stay in their original relative order, outermost), so tiling
is legal iff the tiled band is *fully permutable* — no dependence with a
negative component at a tiled level.  When the requested spec is illegal
the planner degrades to outermost-only strip-mining, which never changes
execution order.

Tile sizes: one block size ``B`` shared by all tiled levels, maximized by
binary search so the nest's total footprint (every accessed array's tile,
simultaneously resident, as in the paper's even split of memory across a
nest's arrays) fits the per-node budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..dependence import DependenceEdge, Direction, analyze_nest
from ..ir.nest import LoopNest
from ..runtime.ooc_array import region_size
from ..transforms.tiling import TilingSpec
from .footprint import nest_footprints


def tiling_band_legal(
    edges: list[DependenceEdge], spec: TilingSpec
) -> bool:
    """Full-permutability check restricted to the tiled levels."""
    tiled_levels = [i for i, t in enumerate(spec.tiled) if t]
    for e in edges:
        for d in e.distances:
            if any(d[l] < 0 for l in tiled_levels):
                return False
        if not e.exact:
            for dirs in e.directions:
                if any(dirs[l] is Direction.GT for l in tiled_levels):
                    return False
    return True


@dataclass(frozen=True)
class NestPlan:
    nest: LoopNest
    spec: TilingSpec
    tile_size: int
    footprint_elements: int
    degraded: bool = False
    over_budget: bool = False

    @property
    def tiled_levels(self) -> tuple[int, ...]:
        return tuple(i for i, t in enumerate(self.spec.tiled) if t)

    def describe(self) -> str:
        flag = " (degraded to outer-only)" if self.degraded else ""
        return (
            f"{self.nest.name}: tiling {self.spec.describe()} "
            f"B={self.tile_size} footprint={self.footprint_elements}{flag}"
        )


def _whole_ranges(nest: LoopNest, binding: Mapping[str, int]) -> dict[str, tuple[int, int]]:
    """Over-approximate each loop's full range (outer vars at extremes)."""
    ranges: dict[str, tuple[int, int]] = {}
    env_lo: dict[str, int] = dict(binding)
    env_hi: dict[str, int] = dict(binding)
    for loop in nest.loops:
        lo1 = min(b.eval_lower(env_lo) for b in loop.lowers)
        lo2 = min(b.eval_lower(env_hi) for b in loop.lowers)
        hi1 = max(b.eval_upper(env_lo) for b in loop.uppers)
        hi2 = max(b.eval_upper(env_hi) for b in loop.uppers)
        lo, hi = min(lo1, lo2), max(hi1, hi2)
        ranges[loop.var] = (lo, hi)
        env_lo[loop.var] = lo
        env_hi[loop.var] = hi
    return ranges


def _footprint_for_block(
    nest: LoopNest,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
    spec: TilingSpec,
    block: int,
) -> int:
    """Worst-case resident elements if every tiled level is clipped to
    ``block`` iterations.

    With affine (e.g. triangular) bounds the untiled levels' ranges vary
    with the tile anchor, so the window is evaluated at the start, middle
    and end anchors and the maximum footprint taken.
    """
    full = _whole_ranges(nest, binding)
    worst = 0
    for frac in (0.0, 0.5, 1.0):
        var_ranges = {}
        for level, loop in enumerate(nest.loops):
            lo, hi = full[loop.var]
            if spec.tiled[level]:
                extent = hi - lo + 1
                anchor = lo + int(frac * max(0, extent - block))
                var_ranges[loop.var] = (anchor, min(hi, anchor + block - 1))
            else:
                var_ranges[loop.var] = (lo, hi)
        fps = nest_footprints(nest, var_ranges, binding, shapes)
        worst = max(
            worst, sum(region_size(region) for region, _, _ in fps.values())
        )
    return worst


def plan_nest(
    nest: LoopNest,
    spec: TilingSpec,
    memory_budget: int,
    binding: Mapping[str, int],
    shapes: Mapping[str, tuple[int, ...]],
    *,
    edges: list[DependenceEdge] | None = None,
    force_block: int | None = None,
) -> NestPlan:
    """Choose a legal tiling and the largest block size fitting memory.

    ``force_block`` caps the block size at a caller-chosen value (the
    autotuner's tile-size knob).  The cap can only shrink the block the
    binary search would pick, so a forced plan is never less
    memory-safe than the default one.
    """
    if force_block is not None and force_block < 1:
        raise ValueError(f"force_block must be >= 1, got {force_block}")
    degraded = False
    if spec.any_tiled:
        if edges is None:
            edges = analyze_nest(nest)
        if not tiling_band_legal(edges, spec):
            spec = TilingSpec((True,) + (False,) * (nest.depth - 1))
            degraded = True

    if not spec.any_tiled:
        fp = _footprint_for_block(nest, binding, shapes, spec, 1)
        return NestPlan(
            nest, spec, 0, fp, degraded, over_budget=fp > memory_budget
        )

    full = _whole_ranges(nest, binding)
    max_block = max(
        hi - lo + 1
        for level, loop in enumerate(nest.loops)
        if spec.tiled[level]
        for lo, hi in [full[loop.var]]
    )
    lo_b, hi_b = 1, max(1, max_block)
    if _footprint_for_block(nest, binding, shapes, spec, hi_b) <= memory_budget:
        best = hi_b
    else:
        best = 1
        while lo_b <= hi_b:
            mid = (lo_b + hi_b) // 2
            if _footprint_for_block(nest, binding, shapes, spec, mid) <= memory_budget:
                best = mid
                lo_b = mid + 1
            else:
                hi_b = mid - 1
    if force_block is not None:
        best = min(best, force_block)
    fp = _footprint_for_block(nest, binding, shapes, spec, best)
    if fp > memory_budget:
        # Even B=1 does not fit: the untiled inner levels span too much
        # data.  Try tiling every level (when legal); otherwise run over
        # budget and say so — the real constraint the paper's Section 3.3
        # navigates.
        all_spec = TilingSpec((True,) * nest.depth)
        if spec.tiled != all_spec.tiled and tiling_band_legal(
            edges if edges is not None else analyze_nest(nest), all_spec
        ):
            return plan_nest(
                nest, all_spec, memory_budget, binding, shapes, edges=edges,
                force_block=force_block,
            )
        return NestPlan(nest, spec, best, fp, degraded, over_budget=True)
    return NestPlan(nest, spec, best, fp, degraded)
