"""Loop distribution: splitting a nest's body into separate nests.

Distribution is legal when statements are regrouped by the strongly
connected components of the statement dependence graph, emitted in
topological order — statements in a dependence cycle must stay together
(Wolfe).  Dependences come from the exact analyzer.
"""

from __future__ import annotations

import networkx as nx

from ..dependence import analyze_nest
from ..ir.nest import LoopNest


def distribute(nest: LoopNest) -> list[LoopNest]:
    """Split the nest into a maximal legal sequence of smaller nests.

    Returns ``[nest]`` unchanged when the body is a single statement or a
    single dependence cycle.
    """
    if len(nest.body) <= 1:
        return [nest]
    g = nx.DiGraph()
    g.add_nodes_from(range(len(nest.body)))
    for edge in analyze_nest(nest):
        if edge.src_stmt != edge.dst_stmt:
            g.add_edge(edge.src_stmt, edge.dst_stmt)
    components = list(nx.strongly_connected_components(g))
    cond = nx.condensation(g, components)
    order = list(nx.topological_sort(cond))
    # stable order: among independent components keep original textual order
    groups = sorted(
        (sorted(cond.nodes[c]["members"]) for c in order),
        key=lambda member_list: min(member_list),
    )
    # re-apply a valid topological order after the stable sort
    groups = _stable_topological(groups, g)
    if len(groups) == 1:
        return [nest]
    out = []
    for gi, members in enumerate(groups):
        body = [nest.body[m] for m in members]
        out.append(
            LoopNest.make(
                f"{nest.name}.d{gi}", nest.loops, body, nest.params, nest.weight
            )
        )
    return out


def _stable_topological(
    groups: list[list[int]], g: nx.DiGraph
) -> list[list[int]]:
    """Topologically order statement groups, breaking ties by original
    statement position (keeps output deterministic and readable)."""
    remaining = [set(grp) for grp in groups]
    placed: list[list[int]] = []
    used: set[int] = set()
    while remaining:
        for idx, grp in enumerate(remaining):
            preds = {
                p for m in grp for p in g.predecessors(m) if p not in grp
            }
            if preds <= used:
                placed.append(sorted(grp))
                used |= grp
                remaining.pop(idx)
                break
        else:
            # dependence cycle across groups cannot happen (SCC condensation)
            raise AssertionError("no schedulable group found")
    return placed
