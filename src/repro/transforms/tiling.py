"""Tiling policy for out-of-core execution (paper Section 3.3).

Tiling is *mandatory* out of core: the engine executes a nest one data
tile at a time.  What the policy decides is **which loops get tiled**:

- traditional (cache-style) tiling tiles every loop carrying reuse —
  including the innermost one, which shatters file-contiguous runs into
  ``B``-element reads (Figure 3(a), 4 I/O calls per 4x4 tile);
- the paper's out-of-core tiling tiles *all but the innermost* loop, so
  each read covers entire file rows of the tile (Figure 3(b), 2 calls).

The spec is consumed by :mod:`repro.engine.plan`, which strip-mines the
chosen levels to fit the memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir.nest import LoopNest
from ..layout import Layout, LinearLayout


@dataclass(frozen=True)
class TilingSpec:
    """Which loop levels of a nest are tiled (strip-mined)."""

    tiled: tuple[bool, ...]

    def __post_init__(self):
        if not self.tiled:
            raise ValueError("tiling spec needs at least one level")

    @property
    def depth(self) -> int:
        return len(self.tiled)

    @property
    def any_tiled(self) -> bool:
        return any(self.tiled)

    def describe(self) -> str:
        return "".join("T" if t else "." for t in self.tiled)


def traditional_tiling(nest: LoopNest) -> TilingSpec:
    """Tile every loop (the in-core strategy the paper contrasts with)."""
    return TilingSpec((True,) * nest.depth)


def ooc_tiling(nest: LoopNest) -> TilingSpec:
    """Tile all but the innermost loop (the paper's rule)."""
    if nest.depth == 1:
        return TilingSpec((True,))  # a single loop must still be chunked
    return TilingSpec((True,) * (nest.depth - 1) + (False,))


def no_tiling(nest: LoopNest) -> TilingSpec:
    return TilingSpec((False,) * nest.depth)


def levels_carrying_reuse(
    nest: LoopNest, layouts: Mapping[str, Layout] | None = None
) -> tuple[bool, ...]:
    """Which loop levels carry some form of reuse for some reference:
    temporal (zero column in the access matrix) or spatial (the level
    strides along the layout's fastest-varying direction)."""
    layouts = layouts or {}
    out = [False] * nest.depth
    for _, ref, _ in nest.refs():
        l = nest.access_matrix(ref)
        for level in range(nest.depth):
            col = l.col(level)
            if all(v == 0 for v in col):
                out[level] = True  # temporal reuse
                continue
            lay = layouts.get(ref.array.name)
            if isinstance(lay, LinearLayout) and lay.rank == ref.rank:
                g = lay.hyperplane.g
                if sum(a * b for a, b in zip(g, col)) == 0:
                    out[level] = True  # spatial reuse along the layout
    return tuple(out)
