"""Applying a non-singular loop transformation to a perfect nest.

Given ``T``, the new iteration vector is ``I' = T·I``; new loop bounds
come from Fourier–Motzkin elimination on the transformed polytope, and
the body is rewritten with the exact substitution ``I = Q·I'`` where
``Q = T^{-1}``.  We require ``T`` unimodular, which keeps ``Q`` integral —
all matrices produced by the optimizer's completion step are unimodular.
"""

from __future__ import annotations

from typing import Sequence

from ..dependence import analyze_nest, transform_is_legal
from ..ir.affine import AffineExpr
from ..ir.loops import Bound, Loop
from ..ir.nest import LoopNest
from ..linalg import IMat, loop_bounds_for_transform

_NAME_POOL = "uvwxyzabcdefgh"


def transformed_loop_vars(nest: LoopNest) -> tuple[str, ...]:
    """Fresh loop-variable names for the transformed nest (the paper's
    ``u, v`` in the worked example), avoiding clashes with parameters."""
    taken = set(nest.params) | set(nest.loop_vars)
    candidates = list(_NAME_POOL) + [f"t{i}" for i in range(nest.depth)]
    out: list[str] = []
    for cand in candidates:
        if cand in taken:
            continue
        out.append(cand)
        if len(out) == nest.depth:
            break
    return tuple(out)


def apply_loop_transform(
    nest: LoopNest,
    t: IMat,
    *,
    new_vars: Sequence[str] | None = None,
    check_legality: bool = True,
) -> LoopNest:
    """Return the transformed nest (same semantics, new traversal order)."""
    if t.shape != (nest.depth, nest.depth):
        raise ValueError(
            f"transform shape {t.shape} does not match nest depth {nest.depth}"
        )
    if not t.is_unimodular():
        raise ValueError(
            "loop transformation must be unimodular for exact code generation "
            f"(det = {t.det()})"
        )
    if t == IMat.identity(nest.depth):
        return nest
    if check_legality and not transform_is_legal(t, analyze_nest(nest)):
        raise ValueError(f"transformation {t!r} violates dependences of {nest.name}")

    names = tuple(new_vars) if new_vars is not None else transformed_loop_vars(nest)
    tb = loop_bounds_for_transform(nest.constraint_system(), t, names)
    assert tb.exact  # unimodular

    loops = []
    for lb in tb.bounds:
        lowers = [
            Bound(AffineExpr.make(dict(term.coeffs), term.const), term.divisor)
            for term in lb.lowers
        ]
        uppers = [
            Bound(AffineExpr.make(dict(term.coeffs), term.const), term.divisor)
            for term in lb.uppers
        ]
        loops.append(Loop.from_bounds(lb.var, lowers, uppers))

    q = t.inverse_unimodular()
    # old var d = row d of Q applied to the new iteration vector
    substitution = {
        old: AffineExpr.make({nv: q[d, c] for c, nv in enumerate(names)})
        for d, old in enumerate(nest.loop_vars)
    }
    body = tuple(stmt.substituted(substitution) for stmt in nest.body)
    return LoopNest.make(nest.name, loops, body, nest.params, nest.weight)
