"""Loop fusion (paper step 1, used to form perfect nests and merge
compatible neighbors).

Fusion of two adjacent nests is legal iff no element touched by the first
nest at iteration ``p1`` and by the second at ``p2`` (one access a write)
has ``p2 ≺ p1`` — in the fused nest that pair would execute in the wrong
order.  We verify this exactly on a small parameter instantiation (the
same small-model regime as the dependence analyzer).
"""

from __future__ import annotations

from typing import Mapping

from ..ir.nest import LoopNest


def _bounds_match(a: LoopNest, b: LoopNest) -> bool:
    if a.depth != b.depth:
        return False
    rename = dict(zip(b.loop_vars, a.loop_vars))
    for la, lb in zip(a.loops, b.loops):
        if la != lb.renamed(rename):
            return False
    return True


def can_fuse(
    a: LoopNest, b: LoopNest, binding: Mapping[str, int] | None = None
) -> bool:
    """True when the two adjacent nests may be fused."""
    if not _bounds_match(a, b) or a.weight != b.weight:
        return False
    binding = dict(binding) if binding is not None else {
        p: a.depth + 3 for p in set(a.params) | set(b.params)
    }
    shared = a.arrays() & b.arrays()
    if not shared:
        return True
    def touches(nest: LoopNest):
        out: dict[tuple, list[tuple[tuple[int, ...], bool]]] = {}
        for env in nest.iterate(binding):
            full = {**binding, **env}
            vec = tuple(env[v] for v in nest.loop_vars)
            for stmt in nest.body:
                if not stmt.guarded_on(full):
                    continue
                for ref, is_write in stmt.all_refs():
                    if ref.array.name not in shared:
                        continue
                    key = (ref.array.name,) + ref.index(env, binding)
                    out.setdefault(key, []).append((vec, is_write))
        return out

    ta = touches(a)
    tb = touches(b)  # position-wise comparable: loops are pairwise matched

    for key, accesses_a in ta.items():
        for vec_b, write_b in tb.get(key, ()):
            for vec_a, write_a in accesses_a:
                if (write_a or write_b) and vec_b < vec_a:
                    return False
    return True


def fuse(a: LoopNest, b: LoopNest, name: str | None = None) -> LoopNest:
    """Fuse two compatible nests (caller must have checked :func:`can_fuse`)."""
    if not _bounds_match(a, b):
        raise ValueError(f"cannot fuse {a.name} and {b.name}: bounds differ")
    rename = dict(zip(b.loop_vars, a.loop_vars))
    from ..ir.affine import AffineExpr

    substitution = {
        old: AffineExpr.var(new) for old, new in rename.items() if old != new
    }
    body = list(a.body) + [s.substituted(substitution) for s in b.body]
    return LoopNest.make(
        name or f"{a.name}+{b.name}",
        a.loops,
        body,
        tuple(dict.fromkeys(a.params + b.params)),
        a.weight,
    )
