"""Normalization of imperfect loop trees into perfect-nest sequences
(paper Section 3, step (1): loop fusion, loop distribution, code sinking).

The pipeline per loop tree:

1. **Code sinking** — statements sitting between loops are pushed into the
   adjacent inner loop, guarded to run only on its first (or last)
   iteration.  Always legal: execution order is unchanged.
2. **Recursion** — each inner loop child is normalized on its own.
3. **Fusion** — adjacent perfect siblings with matching bounds are fused
   when :func:`repro.transforms.fusion.can_fuse` proves it safe.
4. **Distribution** — remaining siblings become separate nests; legality
   is verified exactly on a small model: distributing the shared outer
   loops over children reorders any conflicting accesses only if a later
   child touches an element *earlier* (by outer-iteration prefix) than an
   earlier child — we check no such pair exists.

The result is validated structurally (each output is a perfect nest) and
the statement multiset is preserved.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.loops import Loop
from ..ir.nest import LoopNest
from ..ir.program import Program
from ..ir.statements import Condition, Statement
from ..ir.tree import LoopNode, StmtNode, TreeNode
from .fusion import can_fuse, fuse


class NormalizationError(ValueError):
    pass


def _sink_statements(node: LoopNode) -> LoopNode:
    """Push statement children into adjacent loop children with guards."""
    loops = node.loop_children()
    if not loops:
        return node
    children = list(node.children)
    new_loops: dict[int, list] = {}
    loop_positions = [k for k, c in enumerate(children) if isinstance(c, LoopNode)]
    for k, c in enumerate(children):
        if not isinstance(c, StmtNode):
            continue
        following = [p for p in loop_positions if p > k]
        if following:
            target = following[0]
            tgt_loop = children[target]
            assert isinstance(tgt_loop, LoopNode)
            guard = Condition.eq(
                _var_expr(tgt_loop.loop.var), tgt_loop.loop.lower
            )
            new_loops.setdefault(target, []).insert(
                0, StmtNode(_add_guard(c.stmt, guard))
            )
        else:
            target = loop_positions[-1]
            tgt_loop = children[target]
            assert isinstance(tgt_loop, LoopNode)
            guard = Condition.eq(
                _var_expr(tgt_loop.loop.var), tgt_loop.loop.upper
            )
            new_loops.setdefault(target, []).append(
                StmtNode(_add_guard(c.stmt, guard))
            )
    out_children: list[TreeNode] = []
    for k, c in enumerate(children):
        if isinstance(c, StmtNode):
            continue
        assert isinstance(c, LoopNode)
        pre = [s for s in new_loops.get(k, []) if _is_entry_guarded(s, c)]
        post = [s for s in new_loops.get(k, []) if not _is_entry_guarded(s, c)]
        out_children.append(
            LoopNode.make(c.loop, pre + list(c.children) + post)
        )
    return LoopNode.make(node.loop, out_children)


def _var_expr(name: str):
    from ..ir.affine import AffineExpr

    return AffineExpr.var(name)


def _add_guard(stmt: Statement, guard: Condition) -> Statement:
    return Statement(stmt.lhs, stmt.rhs, stmt.guards + (guard,))


def _is_entry_guarded(node: StmtNode, loop_node: LoopNode) -> bool:
    g = node.stmt.guards[-1]
    # entry guards reference the loop's lower bound expression
    lower = loop_node.loop.lowers[0].expr
    return g.expr == _var_expr(loop_node.loop.var) - lower


def normalize_tree(
    tree: LoopNode,
    params: Sequence[str] = (),
    weight: int = 1,
    name: str = "t",
    binding: Mapping[str, int] | None = None,
) -> list[LoopNest]:
    """Convert one imperfect loop tree into a sequence of perfect nests."""
    pieces = _normalize(tree, [], params, binding)
    nests = [
        LoopNest.make(f"{name}.{k}", loops, body, tuple(params), weight)
        for k, (loops, body) in enumerate(pieces)
    ]
    # statement multiset must be preserved (modulo loop-variable renaming)
    want = sorted(s.lhs.array.name for s in tree.statements())
    got = sorted(s.lhs.array.name for n in nests for s in n.body)
    if want != got:
        raise NormalizationError(
            f"normalization lost statements: {want} vs {got}"
        )
    return nests


def _normalize(
    node: LoopNode,
    outer: list[Loop],
    params: Sequence[str],
    binding: Mapping[str, int] | None,
) -> list[tuple[list[Loop], list[Statement]]]:
    node = _sink_statements(node)
    loop_children = node.loop_children()
    if not loop_children:
        return [
            (outer + [node.loop], [c.stmt for c in node.stmt_children()])
        ]
    if node.stmt_children():
        raise NormalizationError(
            f"statements left beside loops under {node.loop.var} after sinking"
        )
    # normalize each child under the extended outer chain
    child_pieces: list[list[tuple[list[Loop], list[Statement]]]] = [
        _normalize(c, outer + [node.loop], params, binding)
        for c in loop_children
    ]
    flat = [p for pieces in child_pieces for p in pieces]
    if len(flat) == 1:
        return flat
    # try fusing adjacent pieces (paper Figure 1, first tree)
    fused: list[tuple[list[Loop], list[Statement]]] = [flat[0]]
    for piece in flat[1:]:
        prev = fused[-1]
        a = LoopNest.make("a", prev[0], prev[1], tuple(params))
        b = LoopNest.make("b", piece[0], piece[1], tuple(params))
        if can_fuse(a, b, binding):
            merged = fuse(a, b)
            fused[-1] = (list(merged.loops), list(merged.body))
        else:
            fused.append(piece)
    if len(fused) == 1:
        return fused
    # distribution of the shared outer loops over the remaining pieces
    # (paper Figure 1, second tree); verify exactly on the small model.
    prefix_len = len(outer) + 1
    nests = [
        LoopNest.make(f"g{k}", loops, body, tuple(params))
        for k, (loops, body) in enumerate(fused)
    ]
    if not _distribution_legal(nests, prefix_len, binding):
        raise NormalizationError(
            f"cannot distribute loop {node.loop.var}: dependences would reverse"
        )
    return fused


def _distribution_legal(
    nests: list[LoopNest],
    prefix_len: int,
    binding: Mapping[str, int] | None,
) -> bool:
    """Distribution executes nest ``i`` entirely before nest ``j > i``.
    Originally instances interleave by the shared outer prefix; the
    reordering is safe unless a later nest touches a conflicting element
    at a strictly smaller prefix than an earlier nest."""
    if binding is None:
        depth = max(n.depth for n in nests)
        binding = {p: depth + 3 for n in nests for p in n.params}

    def touches(nest: LoopNest):
        out: dict[tuple, list[tuple[tuple[int, ...], bool]]] = {}
        for env in nest.iterate(binding):
            full = {**binding, **env}
            prefix = tuple(env[v] for v in nest.loop_vars[:prefix_len])
            for stmt in nest.body:
                if not stmt.guarded_on(full):
                    continue
                for ref, is_write in stmt.all_refs():
                    key = (ref.array.name,) + ref.index(env, binding)
                    out.setdefault(key, []).append((prefix, is_write))
        return out

    maps = [touches(n) for n in nests]
    for i in range(len(nests)):
        for j in range(i + 1, len(nests)):
            shared = set(maps[i]) & set(maps[j])
            for key in shared:
                for pa, wa in maps[i][key]:
                    for pb, wb in maps[j][key]:
                        if (wa or wb) and pb < pa:
                            return False
    return True


def normalize_program(
    program: Program, binding: Mapping[str, int] | None = None
) -> Program:
    """Replace the program's loop trees by their perfect-nest sequences,
    appending them before any already-perfect nests."""
    if not program.trees:
        return program
    new_nests: list[LoopNest] = []
    for k, tree in enumerate(program.trees):
        new_nests.extend(
            normalize_tree(
                tree,
                program.params,
                weight=1,
                name=f"{program.name}.t{k}",
                binding=binding or dict(program.default_binding) or None,
            )
        )
    new_nests.extend(program.nests)
    from dataclasses import replace

    return replace(program, nests=tuple(new_nests), trees=())
