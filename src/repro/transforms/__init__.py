"""Loop-level restructuring: linear transformations, fusion, distribution,
code sinking, normalization of imperfect nests, and tiling policy.
"""

from .elementary import (
    permutation_matrix,
    interchange_matrix,
    reversal_matrix,
    skew_matrix,
)
from .loop_transform import apply_loop_transform, transformed_loop_vars
from .fusion import can_fuse, fuse
from .distribution import distribute
from .normalize import normalize_program, normalize_tree
from .tiling import (
    TilingSpec,
    traditional_tiling,
    ooc_tiling,
    no_tiling,
    levels_carrying_reuse,
)

__all__ = [
    "permutation_matrix",
    "interchange_matrix",
    "reversal_matrix",
    "skew_matrix",
    "apply_loop_transform",
    "transformed_loop_vars",
    "can_fuse",
    "fuse",
    "distribute",
    "normalize_program",
    "normalize_tree",
    "TilingSpec",
    "traditional_tiling",
    "ooc_tiling",
    "no_tiling",
    "levels_carrying_reuse",
]
