"""Elementary loop transformation matrices."""

from __future__ import annotations

from typing import Sequence

from ..linalg import IMat


def permutation_matrix(order: Sequence[int]) -> IMat:
    """``T`` such that new loop ``r`` is old loop ``order[r]``: the new
    iteration vector is ``(i_order[0], …)``."""
    k = len(order)
    if sorted(order) != list(range(k)):
        raise ValueError(f"{order} is not a permutation of 0..{k - 1}")
    return IMat([[1 if c == order[r] else 0 for c in range(k)] for r in range(k)])


def interchange_matrix(depth: int, a: int, b: int) -> IMat:
    """Swap loops ``a`` and ``b`` in a nest of the given depth."""
    order = list(range(depth))
    order[a], order[b] = order[b], order[a]
    return permutation_matrix(order)


def reversal_matrix(depth: int, level: int) -> IMat:
    rows = [[1 if c == r else 0 for c in range(depth)] for r in range(depth)]
    rows[level][level] = -1
    return IMat(rows)


def skew_matrix(depth: int, src: int, dst: int, factor: int = 1) -> IMat:
    """New ``i_dst`` = old ``i_dst + factor * i_src``."""
    if src == dst:
        raise ValueError("skew source and destination must differ")
    rows = [[1 if c == r else 0 for c in range(depth)] for r in range(depth)]
    rows[dst][src] = factor
    return IMat(rows)
