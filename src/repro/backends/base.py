"""The storage-backend seam: where accounted I/O meets moved bytes.

The cost model prices every transfer analytically (``IOContext``), and
that accounting is *backend-independent* by design — the same program
under the same layouts issues the same calls whether the bytes live in a
numpy buffer, an mmap'ed POSIX file, a directory of chunk files or a
simulated object store.  What a backend adds is the **measured** side:
how many physical operations the address pattern actually turned into,
how many bytes moved, and how long the moves took.  Comparing the two is
the point — the cost-model drift telemetry (:mod:`repro.obs`) can then
hold predicted I/O against a byte-moving implementation instead of
against itself.

Contract
--------
- A :class:`StorageBackend` is a factory for :class:`BackendFile`
  handles over a *linear element space* (the layout engine has already
  mapped array indices to file slots).
- ``gather``/``scatter`` move data for real backends; simulate-only
  backends raise, exactly like the old ``real=False`` buffer-less file.
- Accounting (``IOStats``) never touches the backend: with any backend,
  folded stats are bit-identical to the in-memory default.
- Backends with ``measures = True`` record :class:`BackendMetrics`
  (operations, bytes, wall seconds) that the executor publishes into
  ``repro.obs`` gauges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


class BackendError(ValueError):
    """Invalid backend configuration or misuse of a backend file."""


#: dtype kinds a backend file may carry (floats, signed/unsigned ints)
_ALLOWED_DTYPE_KINDS = frozenset("fiu")

DEFAULT_DTYPE = np.dtype(np.float64)


def validate_dtype(dtype) -> np.dtype:
    """Normalize and validate an element dtype (default float64).

    Only plain numeric dtypes are allowed — the runtime's tiles, the
    interpreter and the cost model all assume fixed-size scalar
    elements (``MachineParams.element_size`` prices them).
    """
    if dtype is None:
        return DEFAULT_DTYPE
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise BackendError(f"invalid element dtype {dtype!r}") from exc
    if dt.kind not in _ALLOWED_DTYPE_KINDS or dt.itemsize == 0:
        raise BackendError(
            f"unsupported element dtype {dt!r}: backends store plain "
            f"numeric scalars (float/int/uint)"
        )
    return dt


@dataclass
class BackendMetrics:
    """Measured (not modeled) transfer counters for one backend.

    ``get_ops``/``put_ops`` count *physical* operations at the
    backend's own granularity: contiguous-extent accesses for the mmap
    backend, whole chunks for the chunked backend, object GETs/PUTs for
    the object store.  ``wall_read_s``/``wall_write_s`` are measured
    wall-clock seconds except for the simulated object store, where
    they are the store's own latency/bandwidth model (deterministic).
    """

    get_ops: int = 0
    put_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    wall_read_s: float = 0.0
    wall_write_s: float = 0.0

    @property
    def ops(self) -> int:
        return self.get_ops + self.put_ops

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def wall_s(self) -> float:
        return self.wall_read_s + self.wall_write_s

    def add(self, other: "BackendMetrics") -> "BackendMetrics":
        self.get_ops += other.get_ops
        self.put_ops += other.put_ops
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.wall_read_s += other.wall_read_s
        self.wall_write_s += other.wall_write_s
        return self

    @classmethod
    def fold(cls, items: "Iterable[BackendMetrics]") -> "BackendMetrics":
        total = cls()
        for m in items:
            total.add(m)
        return total

    def to_dict(self) -> dict:
        return {
            "get_ops": self.get_ops,
            "put_ops": self.put_ops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "wall_read_s": self.wall_read_s,
            "wall_write_s": self.wall_write_s,
        }

    def __str__(self) -> str:
        return (
            f"ops={self.ops} (g{self.get_ops}/p{self.put_ops}) "
            f"bytes={self.bytes_moved} wall={self.wall_s:.6f}s"
        )


class BackendFile:
    """One linear file of ``n_elements`` scalars inside a backend.

    Subclasses implement :meth:`gather` / :meth:`scatter` over int64
    element-address arrays.  Addresses are produced by the layout
    engine and are always in ``[0, n_elements)``.
    """

    def __init__(self, name: str, n_elements: int, dtype: np.dtype):
        self.name = name
        self.n_elements = int(n_elements)
        self.dtype = dtype

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        raise NotImplementedError

    def close(self) -> None:  # release OS resources (mmap handles etc.)
        pass


class StorageBackend:
    """Factory for backend files plus the backend's measured metrics."""

    #: short identifier ("memory", "simulate", "mmap", "chunked", "object")
    kind: str = "abstract"
    #: whether files carry actual data (``False`` = accounting only)
    real: bool = True
    #: whether this backend records measured :class:`BackendMetrics`
    measures: bool = False

    def __init__(self):
        self.metrics = BackendMetrics()
        self._files: dict[str, BackendFile] = {}

    def open(
        self,
        name: str,
        n_elements: int,
        *,
        dtype=None,
        chunk_elements: int | None = None,
    ) -> BackendFile:
        """Create the named file.  ``chunk_elements`` is the layout's
        tile-footprint hint — chunk-granular backends size their chunks
        from it; linear backends ignore it."""
        if name in self._files:
            raise BackendError(
                f"backend {self.kind!r} already has a file named {name!r}"
            )
        if n_elements < 0:
            raise BackendError(f"negative file size {n_elements}")
        f = self._open(
            name, int(n_elements), validate_dtype(dtype), chunk_elements
        )
        self._files[name] = f
        return f

    def _open(
        self,
        name: str,
        n_elements: int,
        dtype: np.dtype,
        chunk_elements: int | None,
    ) -> BackendFile:
        raise NotImplementedError

    def clone(self) -> "StorageBackend":
        """A fresh backend with the same configuration and no files —
        the SPMD driver gives each rank its own clone so per-rank file
        namespaces (and metrics) stay independent."""
        raise NotImplementedError

    def close(self) -> None:
        for f in self._files.values():
            f.close()
        self._files.clear()

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r} files={len(self._files)}>"


@dataclass
class _Timer:
    """Accumulates wall seconds into one BackendMetrics field pair."""

    metrics: BackendMetrics
    is_write: bool
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self):
        from time import perf_counter

        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        from time import perf_counter

        dt = perf_counter() - self._t0
        if self.is_write:
            self.metrics.wall_write_s += dt
        else:
            self.metrics.wall_read_s += dt
        return False


def resolve_backend(backend, real: bool | None = None) -> StorageBackend:
    """Resolve the executor's ``backend=``/``real=`` pair to an instance.

    - ``backend`` may be a :class:`StorageBackend`, a kind string
      (``"memory"``, ``"simulate"``, ``"mmap"``, ``"chunked"``,
      ``"object"``), or ``None``;
    - with ``backend=None`` the legacy boolean picks the in-memory
      (``real=True``) or simulate-only (``real=False``) backend — the
      exact pre-backend behavior;
    - passing both a backend and a *contradicting* ``real`` flag is an
      error (a simulate-only request cannot run on a data-moving
      backend and vice versa).
    """
    from .chunked import ChunkedBackend
    from .memory import MemoryBackend, SimulateBackend
    from .object_store import SimulatedObjectStore
    from .posix import MmapBackend

    if backend is None:
        return MemoryBackend() if (real is None or real) else SimulateBackend()
    if isinstance(backend, str):
        makers = {
            "memory": MemoryBackend,
            "simulate": SimulateBackend,
            "mmap": MmapBackend,
            "chunked": ChunkedBackend,
            "object": SimulatedObjectStore,
        }
        if backend not in makers:
            raise BackendError(
                f"unknown backend kind {backend!r}; known: {sorted(makers)}"
            )
        backend = makers[backend]()
    if not isinstance(backend, StorageBackend):
        raise BackendError(
            f"backend must be a StorageBackend, kind string or None, "
            f"got {type(backend).__name__}"
        )
    if real is not None and bool(real) != backend.real:
        raise BackendError(
            f"real={real} contradicts backend {backend.kind!r} "
            f"(real={backend.real})"
        )
    return backend
