"""Chunk-per-tile backend: a Zarr/HDF5-style directory of chunk files.

The linear element space of each array file is cut into fixed-size
chunks, and every chunk is **one file on disk**, transferred whole —
the chunked-dataset discipline of Zarr / HDF5 / PASSION chunked files.
The chunk size comes from the layout's blocking (the ``chunk_elements``
hint the runtime passes when the array uses a
:class:`~repro.layout.BlockedLayout`), so one data tile lands in one —
or a handful of — chunks: *chunk-per-tile*.

Measured ``get_ops``/``put_ops`` count whole chunks read/written, and
``bytes_*`` count whole-chunk traffic (reading 3 elements of a 4096-
element chunk moves the whole chunk — the honesty that makes blocked
layouts win here and misaligned ones lose).  Partial-chunk writes are
read-modify-write: one GET plus one PUT.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

from .base import BackendError, BackendFile, StorageBackend, _Timer
from .posix import safe_filename

#: chunk size when the layout gives no blocking hint (a flat 32 KB of
#: float64 — one PFS stripe under the default machine constants)
DEFAULT_CHUNK_ELEMENTS = 4096


class _ChunkedFile(BackendFile):
    """One array as a directory of whole-chunk files."""

    def __init__(self, name, n_elements, dtype, root, backend, chunk_elements):
        super().__init__(name, n_elements, dtype)
        if chunk_elements <= 0:
            raise BackendError(f"chunk_elements must be positive, got {chunk_elements}")
        self.chunk_elements = int(chunk_elements)
        self.root = root
        self._backend = backend
        os.makedirs(root, exist_ok=True)

    @property
    def n_chunks(self) -> int:
        return -(-self.n_elements // self.chunk_elements) if self.n_elements else 0

    def _chunk_path(self, cid: int) -> str:
        return os.path.join(self.root, f"c{cid:08d}.bin")

    def _chunk_len(self, cid: int) -> int:
        return min(self.chunk_elements, self.n_elements - cid * self.chunk_elements)

    def _load_chunk(self, cid: int) -> np.ndarray:
        """Read one whole chunk (missing chunk = zeros, as for a sparse
        dataset that was never written)."""
        m = self._backend.metrics
        path = self._chunk_path(cid)
        ln = self._chunk_len(cid)
        with _Timer(m, is_write=False):
            if os.path.exists(path):
                data = np.fromfile(path, dtype=self.dtype, count=ln)
            else:
                data = np.zeros(ln, dtype=self.dtype)
        m.get_ops += 1
        m.bytes_read += ln * self.dtype.itemsize
        return data

    def _store_chunk(self, cid: int, data: np.ndarray) -> None:
        m = self._backend.metrics
        with _Timer(m, is_write=True):
            data.tofile(self._chunk_path(cid))
        m.put_ops += 1
        m.bytes_written += data.size * self.dtype.itemsize

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        out = np.empty(addresses.shape, dtype=self.dtype)
        cids = addresses // self.chunk_elements
        for cid in np.unique(cids):
            chunk = self._load_chunk(int(cid))
            mask = cids == cid
            out[mask] = chunk[addresses[mask] - int(cid) * self.chunk_elements]
        return out

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        values = np.asarray(values).ravel()
        cids = addresses // self.chunk_elements
        for cid in np.unique(cids):
            cid = int(cid)
            mask = cids == cid
            local = addresses[mask] - cid * self.chunk_elements
            if local.size == self._chunk_len(cid):
                # full-chunk overwrite: no read-modify-write needed
                chunk = np.zeros(self._chunk_len(cid), dtype=self.dtype)
            else:
                chunk = self._load_chunk(cid)
            chunk[local] = values[mask]
            self._store_chunk(cid, chunk)

    def chunks_on_disk(self) -> int:
        return sum(1 for f in os.listdir(self.root) if f.endswith(".bin"))


class ChunkedBackend(StorageBackend):
    """Whole-chunk on-disk storage, chunk shape from the layout blocking."""

    kind = "chunked"
    real = True
    measures = True

    def __init__(
        self,
        root: str | None = None,
        *,
        default_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ):
        super().__init__()
        if default_chunk_elements <= 0:
            raise BackendError(
                f"default_chunk_elements must be positive, "
                f"got {default_chunk_elements}"
            )
        self._owns_root = root is None
        self.root = root or tempfile.mkdtemp(prefix="repro-chunks-")
        os.makedirs(self.root, exist_ok=True)
        self.default_chunk_elements = int(default_chunk_elements)
        self._taken: set[str] = set()

    def _open(self, name, n_elements, dtype, chunk_elements):
        sub = os.path.join(self.root, safe_filename(name, self._taken))
        return _ChunkedFile(
            name, n_elements, dtype, sub, self,
            chunk_elements or self.default_chunk_elements,
        )

    def clone(self) -> "ChunkedBackend":
        return ChunkedBackend(
            default_chunk_elements=self.default_chunk_elements
        )

    def close(self) -> None:
        super().close()
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def describe(self) -> str:
        return f"chunked({self.root}, default={self.default_chunk_elements})"
