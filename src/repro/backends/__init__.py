"""Pluggable storage backends behind the out-of-core runtime.

The runtime's accounting (``IOStats``) is analytic and backend-
independent; a backend decides where the bytes actually live and
records the *measured* side (operations, bytes, wall seconds) so the
cost model can be validated against a byte-moving implementation:

- :class:`MemoryBackend` — numpy buffers (the ``real=True`` default,
  bit-identical to the pre-backend runtime);
- :class:`SimulateBackend` — no data, accounting only (``real=False``);
- :class:`MmapBackend` — real POSIX files via ``np.memmap``, measured
  contiguous-extent operation counts and wall seconds;
- :class:`ChunkedBackend` — Zarr/HDF5-style chunk-per-tile directory
  of whole-chunk files, chunk shape from the layout's blocking;
- :class:`SimulatedObjectStore` — S3-like high-latency/high-bandwidth
  store with per-object GET/PUT accounting and deterministic modeled
  time (:class:`ObjectStoreParams`).

Select a backend with ``OOCExecutor(..., backend="mmap")`` (or an
instance), or keep the legacy ``real=True/False`` aliases.  See
``docs/backends.md``.
"""

from .base import (
    DEFAULT_DTYPE,
    BackendError,
    BackendFile,
    BackendMetrics,
    StorageBackend,
    resolve_backend,
    validate_dtype,
)
from .chunked import DEFAULT_CHUNK_ELEMENTS, ChunkedBackend
from .memory import MemoryBackend, SimulateBackend
from .object_store import ObjectStoreParams, SimulatedObjectStore
from .posix import MmapBackend, contiguous_extents

__all__ = [
    "BackendError",
    "BackendFile",
    "BackendMetrics",
    "StorageBackend",
    "MemoryBackend",
    "SimulateBackend",
    "MmapBackend",
    "ChunkedBackend",
    "SimulatedObjectStore",
    "ObjectStoreParams",
    "resolve_backend",
    "validate_dtype",
    "contiguous_extents",
    "DEFAULT_DTYPE",
    "DEFAULT_CHUNK_ELEMENTS",
]
