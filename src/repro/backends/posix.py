"""POSIX flat-file backend: every array file is a real file on disk.

Files are created in a working directory (a private temporary directory
by default, cleaned up on :meth:`close`) and memory-mapped with
``np.memmap`` — gathers and scatters hit the page cache and, past it,
the disk.  Measured ``get_ops``/``put_ops`` count the **maximal
contiguous extents** an access touches: the ``pread``/``pwrite`` calls
an unmapped POSIX implementation would issue for the same address
pattern, and the unit the chunk-per-tile backend's object counts are
compared against.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile

import numpy as np

from .base import BackendFile, StorageBackend, _Timer


def contiguous_extents(addresses: np.ndarray) -> int:
    """Number of maximal contiguous extents in an address set."""
    if addresses.size == 0:
        return 0
    a = np.sort(addresses, kind="stable")
    return 1 + int(np.count_nonzero(np.diff(a) != 1))


_SAFE = re.compile(r"[^A-Za-z0-9._-]")


def safe_filename(name: str, taken: set[str]) -> str:
    """Filesystem-safe, collision-free translation of an array/file name
    (interleaved groups are named ``group:<g>`` or ``A+B+C``)."""
    base = _SAFE.sub("_", name) or "file"
    candidate, k = base, 1
    while candidate in taken:
        candidate = f"{base}.{k}"
        k += 1
    taken.add(candidate)
    return candidate


class _MmapFile(BackendFile):
    def __init__(self, name, n_elements, dtype, path, backend):
        super().__init__(name, n_elements, dtype)
        self.path = path
        self._backend = backend
        # zero-filled sparse file of exactly n_elements scalars
        self._mm = np.memmap(
            path, dtype=dtype, mode="w+", shape=(max(1, n_elements),)
        )

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        m = self._backend.metrics
        with _Timer(m, is_write=False):
            out = np.asarray(self._mm[addresses])
        m.get_ops += contiguous_extents(addresses)
        m.bytes_read += int(addresses.size) * self.dtype.itemsize
        return out

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        m = self._backend.metrics
        with _Timer(m, is_write=True):
            self._mm[addresses] = values
        m.put_ops += contiguous_extents(addresses)
        m.bytes_written += int(addresses.size) * self.dtype.itemsize

    def flush(self) -> None:
        self._mm.flush()

    def close(self) -> None:
        self._mm.flush()
        # release the map so the directory can be removed on Windows-y
        # filesystems too; the ndarray keeps no other reference
        del self._mm


class MmapBackend(StorageBackend):
    """Flat on-disk files accessed through ``np.memmap``."""

    kind = "mmap"
    real = True
    measures = True

    def __init__(self, root: str | None = None):
        super().__init__()
        self._owns_root = root is None
        self.root = root or tempfile.mkdtemp(prefix="repro-mmap-")
        os.makedirs(self.root, exist_ok=True)
        self._taken: set[str] = set()

    def _open(self, name, n_elements, dtype, chunk_elements):
        path = os.path.join(
            self.root, safe_filename(name, self._taken) + ".dat"
        )
        return _MmapFile(name, n_elements, dtype, path, self)

    def clone(self) -> "MmapBackend":
        # a fresh private directory: clones are independent namespaces
        return MmapBackend()

    def close(self) -> None:
        super().close()
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def describe(self) -> str:
        return f"mmap({self.root})"
