"""The default backends: in-memory buffers and simulate-only files.

These two reproduce the pre-backend ``real=True`` / ``real=False``
behavior of :class:`repro.runtime.file.OOCFile` exactly — same numpy
fancy-indexing data path, same "simulate-only" error on data access —
so every existing execution path stays bit-identical by construction.
"""

from __future__ import annotations

import numpy as np

from .base import BackendFile, StorageBackend


class _MemoryFile(BackendFile):
    def __init__(self, name: str, n_elements: int, dtype: np.dtype):
        super().__init__(name, n_elements, dtype)
        self.buffer = np.zeros(n_elements, dtype=dtype)

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        return self.buffer[addresses]

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        self.buffer[addresses] = values


class MemoryBackend(StorageBackend):
    """Arrays live in ordinary numpy buffers (the ``real=True`` default)."""

    kind = "memory"
    real = True
    measures = False

    def _open(self, name, n_elements, dtype, chunk_elements):
        return _MemoryFile(name, n_elements, dtype)

    def clone(self) -> "MemoryBackend":
        return MemoryBackend()


class _SimulateFile(BackendFile):
    def gather(self, addresses: np.ndarray) -> np.ndarray:
        raise RuntimeError(f"file {self.name} is simulate-only")

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        raise RuntimeError(f"file {self.name} is simulate-only")


class SimulateBackend(StorageBackend):
    """No data at all — cost accounting only (the ``real=False`` path)."""

    kind = "simulate"
    real = False
    measures = False

    def _open(self, name, n_elements, dtype, chunk_elements):
        return _SimulateFile(name, n_elements, dtype)

    def clone(self) -> "SimulateBackend":
        return SimulateBackend()
