"""Simulated object store: S3-like latency/bandwidth, per-object GET/PUT.

Cloud object stores invert the machine balance the 1999 cost model was
built on: per-request latency is *orders of magnitude* higher than a
local syscall (tens of milliseconds per GET) while streaming bandwidth
is plentiful — so minimizing the number of objects touched dominates
minimizing bytes, even more sharply than call-count minimization did on
the Paragon.  This backend models that regime deterministically: data
lives in memory (results stay exact), every whole-object GET/PUT is
accounted per object, and "measured" time is the store's own
latency + size/bandwidth model — reproducible, unlike wall clocks.

Objects partition each file's linear element space at ``object_elements``
granularity, sized from the layout's blocking hint like the chunked
backend — one tile per object when the layout is blocked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import BackendError, BackendFile, StorageBackend


@dataclass(frozen=True)
class ObjectStoreParams:
    """MachineParams-style constants for the simulated store.

    The defaults are cloud-object-store magnitudes: ~30 ms to first
    byte (vs 15 ms per *local* I/O call in :class:`MachineParams`, and
    microseconds for a syscall today) but ~100 MB/s per stream.
    """

    get_latency_s: float = 0.030
    put_latency_s: float = 0.045
    bandwidth_bps: float = 100.0e6
    #: object granularity when no layout blocking hint is given
    default_object_elements: int = 4096

    def __post_init__(self):
        for name in ("get_latency_s", "put_latency_s"):
            v = getattr(self, name)
            if not math.isfinite(v) or v < 0:
                raise BackendError(
                    f"{name} must be finite and non-negative, got {v!r}"
                )
        if not math.isfinite(self.bandwidth_bps) or self.bandwidth_bps <= 0:
            raise BackendError(
                f"bandwidth_bps must be finite and positive, "
                f"got {self.bandwidth_bps!r}"
            )
        if self.default_object_elements <= 0:
            raise BackendError(
                f"default_object_elements must be positive, "
                f"got {self.default_object_elements!r}"
            )

    def get_time(self, nbytes: int) -> float:
        return self.get_latency_s + nbytes / self.bandwidth_bps

    def put_time(self, nbytes: int) -> float:
        return self.put_latency_s + nbytes / self.bandwidth_bps


class _ObjectFile(BackendFile):
    def __init__(self, name, n_elements, dtype, backend, object_elements):
        super().__init__(name, n_elements, dtype)
        if object_elements <= 0:
            raise BackendError(
                f"object_elements must be positive, got {object_elements}"
            )
        self.object_elements = int(object_elements)
        self._backend = backend
        #: object id -> data (created lazily; missing object = zeros)
        self._objects: dict[int, np.ndarray] = {}

    def _obj_len(self, oid: int) -> int:
        return min(
            self.object_elements, self.n_elements - oid * self.object_elements
        )

    def _get(self, oid: int) -> np.ndarray:
        b = self._backend
        ln = self._obj_len(oid)
        data = self._objects.get(oid)
        if data is None:
            data = np.zeros(ln, dtype=self.dtype)
        b.metrics.get_ops += 1
        b.metrics.bytes_read += ln * self.dtype.itemsize
        b.metrics.wall_read_s += b.params.get_time(ln * self.dtype.itemsize)
        b._count(self.name, oid, is_put=False)
        return data

    def _put(self, oid: int, data: np.ndarray) -> None:
        b = self._backend
        self._objects[oid] = data
        b.metrics.put_ops += 1
        b.metrics.bytes_written += data.size * self.dtype.itemsize
        b.metrics.wall_write_s += b.params.put_time(
            data.size * self.dtype.itemsize
        )
        b._count(self.name, oid, is_put=True)

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        out = np.empty(addresses.shape, dtype=self.dtype)
        oids = addresses // self.object_elements
        for oid in np.unique(oids):
            oid = int(oid)
            data = self._get(oid)
            mask = oids == oid
            out[mask] = data[addresses[mask] - oid * self.object_elements]
        return out

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        values = np.asarray(values).ravel()
        oids = addresses // self.object_elements
        for oid in np.unique(oids):
            oid = int(oid)
            mask = oids == oid
            local = addresses[mask] - oid * self.object_elements
            if local.size == self._obj_len(oid):
                data = np.empty(self._obj_len(oid), dtype=self.dtype)
            else:
                # partial-object update: read-modify-write (one GET +
                # one PUT — object stores have no byte-range writes)
                data = self._get(oid).copy()
            data[local] = values[mask]
            self._put(oid, data)


class SimulatedObjectStore(StorageBackend):
    """In-memory object store with cloud-magnitude request pricing."""

    kind = "object"
    real = True
    measures = True

    def __init__(self, params: ObjectStoreParams | None = None):
        super().__init__()
        self.params = params or ObjectStoreParams()
        #: per-object accounting: (file name, object id) -> [gets, puts]
        self.object_counts: dict[tuple[str, int], list[int]] = {}

    def _count(self, file_name: str, oid: int, *, is_put: bool) -> None:
        c = self.object_counts.setdefault((file_name, oid), [0, 0])
        c[1 if is_put else 0] += 1

    @property
    def objects_touched(self) -> int:
        """Distinct (file, object) pairs any GET or PUT ever hit."""
        return len(self.object_counts)

    def _open(self, name, n_elements, dtype, chunk_elements):
        return _ObjectFile(
            name, n_elements, dtype, self,
            chunk_elements or self.params.default_object_elements,
        )

    def clone(self) -> "SimulatedObjectStore":
        return SimulatedObjectStore(self.params)

    def describe(self) -> str:
        p = self.params
        return (
            f"object(get={p.get_latency_s * 1e3:.0f}ms, "
            f"put={p.put_latency_s * 1e3:.0f}ms, "
            f"bw={p.bandwidth_bps / 1e6:.0f}MB/s)"
        )
