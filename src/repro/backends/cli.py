"""``python -m repro.backends`` — run a workload on a concrete backend.

End-to-end driver for the storage backends: build a workload, optimize
it (or take a fixed version), execute it against the chosen backend in
a real directory, and print the accounted stats next to the measured
transfer metrics — optionally verifying contents and stats against the
in-memory reference backend.

Examples::

    python -m repro.backends run --workload mxm --n 16 --backend mmap
    python -m repro.backends run --workload window --backend chunked \
        --root /tmp/chunks --verify
    python -m repro.backends list
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .base import resolve_backend
from .chunked import ChunkedBackend
from .posix import MmapBackend

BACKEND_KINDS = ("memory", "simulate", "mmap", "chunked", "object")


def _build_backend(kind: str, root: str | None):
    if kind == "mmap":
        return MmapBackend(root)
    if kind == "chunked":
        return ChunkedBackend(root)
    return resolve_backend(kind)


def _build_program(workload: str, n: int | None):
    from ..workloads import ANALYTICS, WORKLOADS, build_analytics, build_workload

    if workload in WORKLOADS:
        return build_workload(workload, n) if n else build_workload(workload)
    if workload in ANALYTICS:
        return build_analytics(workload, n) if n else build_analytics(workload)
    known = sorted(WORKLOADS) + sorted(ANALYTICS)
    raise SystemExit(f"unknown workload {workload!r}; known: {known}")


def _run(args) -> int:
    from ..engine import OOCExecutor
    from ..optimizer import build_version

    program = _build_program(args.workload, args.n)
    cfg = build_version(args.version, program)
    backend = _build_backend(args.backend, args.root)
    print(f"workload {args.workload} (version {args.version}) "
          f"on backend {backend.describe()}")
    with OOCExecutor(
        cfg.program, cfg.layouts, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec, backend=backend,
    ) as ex:
        result = ex.run()
        arrays = (
            {a.name: ex.array_data(a.name) for a in cfg.program.arrays}
            if backend.real else {}
        )
    print(f"  stats: {result.stats}")
    if result.backend_metrics is not None:
        m = result.backend_metrics
        print(f"  measured: {m}")
        if result.stats.io_time_s > 0:
            print(
                f"  measured-vs-modeled io: {m.wall_s:.6f}s vs "
                f"{result.stats.io_time_s:.3f}s "
                f"(ratio {m.wall_s / result.stats.io_time_s:.3g})"
            )
    if args.verify:
        if not backend.real:
            raise SystemExit("--verify needs a data-carrying backend")
        with OOCExecutor(
            cfg.program, cfg.layouts, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, backend="memory",
        ) as ref_ex:
            ref = ref_ex.run()
            for name, data in arrays.items():
                expected = ref_ex.array_data(name)
                if not np.array_equal(data, expected):
                    print(f"  VERIFY FAILED: array {name} differs")
                    return 1
        if str(ref.stats) != str(result.stats):
            print("  VERIFY FAILED: accounted stats differ from memory "
                  f"backend ({ref.stats} vs {result.stats})")
            return 1
        print(f"  verified: {len(arrays)} arrays and accounted stats "
              "match the in-memory reference")
    return 0


def _list(_args) -> int:
    for kind in BACKEND_KINDS:
        b = resolve_backend(kind)
        print(f"{kind:<10} real={b.real!s:<5} measures={b.measures!s:<5} "
              f"{b.describe()}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backends",
        description="run workloads against concrete storage backends",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    run_p = sub.add_parser("run", help="execute one workload on a backend")
    run_p.add_argument("--workload", default="mxm")
    run_p.add_argument("--n", type=int, default=None, help="array extent")
    run_p.add_argument("--backend", choices=BACKEND_KINDS, default="mmap")
    run_p.add_argument(
        "--root", default=None,
        help="directory for on-disk backends (default: private tmpdir)",
    )
    run_p.add_argument(
        "--version", default="c-opt",
        help="program version to build (col/row/l-opt/d-opt/c-opt/h-opt)",
    )
    run_p.add_argument(
        "--verify", action="store_true",
        help="re-run on the in-memory backend and compare contents + stats",
    )
    run_p.set_defaults(fn=_run)

    list_p = sub.add_parser("list", help="list available backend kinds")
    list_p.set_defaults(fn=_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
