"""Perfectly nested affine loops — the unit the optimizer works on."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Sequence

from ..linalg import ConstraintSystem, IMat
from .arrays import ArrayRef
from .loops import Loop
from .statements import Statement


@dataclass(frozen=True)
class LoopNest:
    """A perfect nest: loops (outermost first) around a straight-line body.

    ``params`` are the symbolic constants usable in bounds and subscripts
    (e.g. ``("N",)``).  ``weight`` is the number of outer timing-loop
    iterations this nest executes per program run (paper Table 1's *iter*);
    it scales the nest's cost but is not part of the iteration space.
    """

    name: str
    loops: tuple[Loop, ...]
    body: tuple[Statement, ...]
    params: tuple[str, ...] = ()
    weight: int = 1

    @staticmethod
    def make(
        name: str,
        loops: Sequence[Loop],
        body: Sequence[Statement],
        params: Sequence[str] = (),
        weight: int = 1,
    ) -> "LoopNest":
        return LoopNest(name, tuple(loops), tuple(body), tuple(params), weight)

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    def arrays(self) -> set[str]:
        return {name for s in self.body for name in s.arrays()}

    def refs(self) -> Iterator[tuple[int, ArrayRef, bool]]:
        """Yield ``(statement_index, ref, is_write)`` for all references."""
        for idx, stmt in enumerate(self.body):
            for ref, is_write in stmt.all_refs():
                yield idx, ref, is_write

    def refs_to(self, array_name: str) -> list[tuple[ArrayRef, bool]]:
        return [
            (r, w) for _, r, w in self.refs() if r.array.name == array_name
        ]

    def access_matrix(self, ref: ArrayRef) -> IMat:
        return ref.access_matrix(self.loop_vars)

    def constraint_system(self) -> ConstraintSystem:
        """The iteration polytope as linear inequalities (bound divisors are
        cleared exactly by scaling)."""
        sys = ConstraintSystem(self.loop_vars, params=self.params)
        for loop in self.loops:
            for b in loop.lowers:
                # var >= expr/div  =>  div*var - expr >= 0
                coeffs = {loop.var: b.divisor}
                for k, v in b.expr.coeffs:
                    coeffs[k] = coeffs.get(k, 0) - v
                sys.add_ineq(coeffs, -b.expr.const)
            for b in loop.uppers:
                coeffs = {loop.var: -b.divisor}
                for k, v in b.expr.coeffs:
                    coeffs[k] = coeffs.get(k, 0) + v
                sys.add_ineq(coeffs, b.expr.const)
        return sys

    def iterate(self, binding: Mapping[str, int]) -> Iterator[dict[str, int]]:
        """Enumerate iteration points in loop order as variable bindings."""
        env: dict[str, int] = dict(binding)

        def rec(level: int) -> Iterator[dict[str, int]]:
            if level == self.depth:
                yield {v: env[v] for v in self.loop_vars}
                return
            loop = self.loops[level]
            lo, hi = loop.eval_range(env)
            for v in range(lo, hi + 1):
                env[loop.var] = v
                yield from rec(level + 1)
                del env[loop.var]

        return rec(0)

    def estimated_iterations(self, binding: Mapping[str, int]) -> int:
        """Cheap trip-count product estimate (outer vars pinned at their
        range midpoints) — used by the cost model, never for semantics."""
        env = dict(binding)
        total = 1
        for loop in self.loops:
            lo, hi = loop.eval_range(env)
            trips = max(0, hi - lo + 1)
            total *= trips
            env[loop.var] = (lo + hi) // 2 if trips else lo
        return total

    def with_body(self, body: Sequence[Statement]) -> "LoopNest":
        return replace(self, body=tuple(body))

    def with_loops(self, loops: Sequence[Loop]) -> "LoopNest":
        return replace(self, loops=tuple(loops))

    def pretty(self, indent: str = "  ") -> str:
        lines = []
        for d, loop in enumerate(self.loops):
            lines.append(indent * d + str(loop))
        for stmt in self.body:
            lines.append(indent * self.depth + str(stmt))
        for d in range(self.depth - 1, -1, -1):
            lines.append(indent * d + "end do")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"<nest {self.name}: depth {self.depth}, {len(self.body)} stmts>"
