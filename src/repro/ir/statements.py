"""Assignment statements with optional guards.

A guard arises from *code sinking* (paper Section 3, step 1): a statement
that originally sat between two loops is pushed into the inner loop and
predicated so it executes only on the first (or a specific) iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .affine import AffineExpr, Affinable
from .arrays import ArrayRef
from .expr import Expr, wrap


@dataclass(frozen=True)
class Condition:
    """Affine predicate ``expr OP 0`` with OP in {==, >=}."""

    expr: AffineExpr
    op: str = "=="

    def __post_init__(self):
        if self.op not in ("==", ">="):
            raise ValueError(f"unsupported condition operator {self.op!r}")

    @staticmethod
    def eq(lhs: Affinable, rhs: Affinable = 0) -> "Condition":
        return Condition(AffineExpr.of(lhs) - AffineExpr.of(rhs), "==")

    @staticmethod
    def ge(lhs: Affinable, rhs: Affinable = 0) -> "Condition":
        return Condition(AffineExpr.of(lhs) - AffineExpr.of(rhs), ">=")

    def holds(self, env: Mapping[str, int]) -> bool:
        v = self.expr.evaluate(env)
        return v == 0 if self.op == "==" else v >= 0

    def substituted(self, mapping: Mapping[str, AffineExpr]) -> "Condition":
        return Condition(self.expr.substitute(mapping), self.op)

    def __str__(self) -> str:
        return f"{self.expr} {self.op} 0"


@dataclass(frozen=True)
class Statement:
    """``lhs = rhs`` executed at every guarded iteration point."""

    lhs: ArrayRef
    rhs: Expr
    guards: tuple[Condition, ...] = ()

    @staticmethod
    def make(lhs: ArrayRef, rhs, guards: Sequence[Condition] = ()) -> "Statement":
        return Statement(lhs, wrap(rhs), tuple(guards))

    def all_refs(self) -> Iterator[tuple[ArrayRef, bool]]:
        """Yield ``(ref, is_write)`` for every reference in the statement."""
        yield self.lhs, True
        for r in self.rhs.refs():
            yield r, False

    def reads(self) -> list[ArrayRef]:
        return [r for r, w in self.all_refs() if not w]

    def writes(self) -> list[ArrayRef]:
        return [self.lhs]

    def arrays(self) -> set[str]:
        return {r.array.name for r, _ in self.all_refs()}

    def guarded_on(self, env: Mapping[str, int]) -> bool:
        return all(g.holds(env) for g in self.guards)

    def substituted(self, mapping: Mapping[str, AffineExpr]) -> "Statement":
        return Statement(
            self.lhs.substituted(mapping),
            self.rhs.substituted(mapping),
            tuple(g.substituted(mapping) for g in self.guards),
        )

    def __str__(self) -> str:
        body = f"{self.lhs} = {self.rhs}"
        if self.guards:
            conds = " and ".join(str(g) for g in self.guards)
            return f"if ({conds}) {body}"
        return body
