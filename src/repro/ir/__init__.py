"""Affine program intermediate representation.

The optimizer consumes *regular scientific codes*: sequences of loop
nests whose array subscripts and loop bounds are affine functions of the
enclosing loop indices and symbolic loop-invariant constants (the exact
program class of the paper, Section 3.2.1).  This package provides:

- :class:`AffineExpr` — affine forms over named indices/parameters,
- :class:`ArrayDecl` / :class:`ArrayRef` — arrays and references
  ``L·I + o`` with exact access matrices,
- an expression AST (:mod:`repro.ir.expr`) so programs can be *executed*,
  not just analyzed,
- :class:`Loop` / :class:`LoopNest` — perfect nests,
- :class:`LoopTree` nodes — imperfect nests prior to normalization,
- :class:`Program` — arrays + nest sequence + parameters,
- :class:`ProgramBuilder` — a small DSL used by the workload models.
"""

from .affine import AffineExpr, IndexVar
from .arrays import ArrayDecl, ArrayRef
from .expr import BinOp, Call, Const, Expr, Ref, UnOp
from .loops import Loop
from .statements import Condition, Statement
from .nest import LoopNest
from .tree import LoopNode, StmtNode, TreeNode
from .program import Program
from .builder import ProgramBuilder

__all__ = [
    "AffineExpr",
    "IndexVar",
    "ArrayDecl",
    "ArrayRef",
    "Expr",
    "Const",
    "Ref",
    "BinOp",
    "UnOp",
    "Call",
    "Loop",
    "Condition",
    "Statement",
    "LoopNest",
    "TreeNode",
    "LoopNode",
    "StmtNode",
    "Program",
    "ProgramBuilder",
]
