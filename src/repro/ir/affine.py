"""Affine expressions over named loop indices and symbolic parameters.

``3*i - j + N - 1`` is represented exactly as integer coefficients plus an
integer constant.  These appear in loop bounds and array subscripts; all
compiler analyses (access matrices, dependence tests, Fourier–Motzkin)
read their coefficients directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

Affinable = Union["AffineExpr", "IndexVar", int, str]


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff * name) + const`` with integer coefficients."""

    coeffs: tuple[tuple[str, int], ...]
    const: int

    # -- construction ------------------------------------------------------

    @staticmethod
    def make(coeffs: Mapping[str, int] | None = None, const: int = 0) -> "AffineExpr":
        items = tuple(
            sorted((k, int(v)) for k, v in (coeffs or {}).items() if int(v) != 0)
        )
        return AffineExpr(items, int(const))

    @staticmethod
    def of(value: Affinable) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, IndexVar):
            return AffineExpr.make({value.name: 1})
        if isinstance(value, int):
            return AffineExpr.make({}, value)
        if isinstance(value, str):
            return AffineExpr.make({value: 1})
        raise TypeError(f"cannot interpret {value!r} as an affine expression")

    @staticmethod
    def const_expr(value: int) -> "AffineExpr":
        return AffineExpr.make({}, value)

    @staticmethod
    def var(name: str) -> "AffineExpr":
        return AffineExpr.make({name: 1})

    # -- queries -----------------------------------------------------------

    def coeff(self, name: str) -> int:
        for k, v in self.coeffs:
            if k == name:
                return v
        return 0

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(k for k, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def uses_only(self, allowed: set[str]) -> bool:
        return all(k in allowed for k, _ in self.coeffs)

    def evaluate(self, binding: Mapping[str, int]) -> int:
        return sum(v * int(binding[k]) for k, v in self.coeffs) + self.const

    def drop(self, names: set[str]) -> "AffineExpr":
        """The expression with the terms of ``names`` removed."""
        return AffineExpr.make(
            {k: v for k, v in self.coeffs if k not in names}, self.const
        )

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        return AffineExpr.make(
            {mapping.get(k, k): v for k, v in self.coeffs}, self.const
        )

    def substitute(self, binding: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Replace names with affine expressions (exact composition)."""
        out = AffineExpr.const_expr(self.const)
        for k, v in self.coeffs:
            if k in binding:
                out = out + v * binding[k]
            else:
                out = out + AffineExpr.make({k: v})
        return out

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: Affinable) -> "AffineExpr":
        o = AffineExpr.of(other)
        merged = dict(self.coeffs)
        for k, v in o.coeffs:
            merged[k] = merged.get(k, 0) + v
        return AffineExpr.make(merged, self.const + o.const)

    def __radd__(self, other: Affinable) -> "AffineExpr":
        return self.__add__(other)

    def __sub__(self, other: Affinable) -> "AffineExpr":
        return self + (-AffineExpr.of(other))

    def __rsub__(self, other: Affinable) -> "AffineExpr":
        return AffineExpr.of(other) + (-self)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr.make({k: -v for k, v in self.coeffs}, -self.const)

    def __mul__(self, factor: int) -> "AffineExpr":
        if not isinstance(factor, int):
            raise TypeError("affine expressions only scale by integers")
        return AffineExpr.make(
            {k: v * factor for k, v in self.coeffs}, self.const * factor
        )

    __rmul__ = __mul__

    def __str__(self) -> str:
        parts = []
        for k, v in self.coeffs:
            if v == 1:
                parts.append(k)
            elif v == -1:
                parts.append(f"-{k}")
            else:
                parts.append(f"{v}*{k}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out


@dataclass(frozen=True)
class IndexVar:
    """A loop index or symbolic parameter usable in subscript arithmetic:
    ``U[i, j + 1]`` builds :class:`AffineExpr` values via operator overloads."""

    name: str

    def _e(self) -> AffineExpr:
        return AffineExpr.var(self.name)

    def __add__(self, other: Affinable) -> AffineExpr:
        return self._e() + other

    def __radd__(self, other: Affinable) -> AffineExpr:
        return AffineExpr.of(other) + self._e()

    def __sub__(self, other: Affinable) -> AffineExpr:
        return self._e() - other

    def __rsub__(self, other: Affinable) -> AffineExpr:
        return AffineExpr.of(other) - self._e()

    def __neg__(self) -> AffineExpr:
        return -self._e()

    def __mul__(self, factor: int) -> AffineExpr:
        return self._e() * factor

    __rmul__ = __mul__

    def __str__(self) -> str:
        return self.name
