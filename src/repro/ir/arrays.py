"""Array declarations and affine array references ``L·I + o``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..linalg import IMat
from .affine import AffineExpr, Affinable


@dataclass(frozen=True)
class ArrayDecl:
    """An (out-of-core) array: a name and symbolic dimension extents.

    Dimension ``d`` holds indices ``0 .. extent_d - 1``; extents are affine
    in the program parameters (usually just ``N``).  All elements are
    8-byte float64, matching the paper's double-precision arrays.
    """

    name: str
    dims: tuple[AffineExpr, ...]
    element_size: int = 8

    @staticmethod
    def make(name: str, dims: Sequence[Affinable], element_size: int = 8) -> "ArrayDecl":
        return ArrayDecl(
            name, tuple(AffineExpr.of(d) for d in dims), element_size
        )

    @property
    def rank(self) -> int:
        return len(self.dims)

    def shape(self, binding: Mapping[str, int]) -> tuple[int, ...]:
        shape = tuple(d.evaluate(binding) for d in self.dims)
        if any(s <= 0 for s in shape):
            raise ValueError(f"array {self.name} has non-positive extent {shape}")
        return shape

    def size(self, binding: Mapping[str, int]) -> int:
        n = 1
        for s in self.shape(binding):
            n *= s
        return n

    def bytes(self, binding: Mapping[str, int]) -> int:
        return self.size(binding) * self.element_size

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(d) for d in self.dims)})"


@dataclass(frozen=True)
class ArrayRef:
    """A reference ``A(s_1, ..., s_m)`` with affine subscripts.

    The subscripts mix enclosing loop indices and symbolic parameters; the
    classic ``L·I + o`` decomposition is recovered per-nest by
    :meth:`access_matrix` / :meth:`offset_exprs` once the loop variable
    order is known.
    """

    array: ArrayDecl
    subscripts: tuple[AffineExpr, ...]

    def __post_init__(self):
        if len(self.subscripts) != self.array.rank:
            raise ValueError(
                f"{self.array.name} has rank {self.array.rank}, "
                f"got {len(self.subscripts)} subscripts"
            )

    @staticmethod
    def make(array: ArrayDecl, subscripts: Sequence[Affinable]) -> "ArrayRef":
        return ArrayRef(array, tuple(AffineExpr.of(s) for s in subscripts))

    @property
    def rank(self) -> int:
        return self.array.rank

    def access_matrix(self, loop_vars: Sequence[str]) -> IMat:
        """The ``m x k`` access matrix L with respect to the given loop
        variable order (outermost first)."""
        return IMat(
            [[s.coeff(v) for v in loop_vars] for s in self.subscripts]
        )

    def offset_exprs(self, loop_vars: Sequence[str]) -> tuple[AffineExpr, ...]:
        """The offset vector ``o`` — whatever remains after removing the
        loop-index terms (affine in parameters)."""
        loop_set = set(loop_vars)
        return tuple(s.drop(loop_set) for s in self.subscripts)

    def index(
        self, point: Mapping[str, int], binding: Mapping[str, int]
    ) -> tuple[int, ...]:
        """Concrete array index for a concrete iteration point."""
        env = dict(binding)
        env.update(point)
        return tuple(s.evaluate(env) for s in self.subscripts)

    def uses_vars(self, names: set[str]) -> bool:
        return any(k in names for s in self.subscripts for k in s.names)

    def substituted(self, mapping: Mapping[str, AffineExpr]) -> "ArrayRef":
        return ArrayRef(
            self.array, tuple(s.substitute(mapping) for s in self.subscripts)
        )

    def __str__(self) -> str:
        return f"{self.array.name}({', '.join(str(s) for s in self.subscripts)})"
