"""Loop headers with affine bounds.

After a linear loop transformation, a loop's bounds become the max (lower)
or min (upper) of several affine forms, possibly with divisors — e.g.
``do v = max(0, u - N), min(u, N)`` for a skewed nest.  ``Loop`` therefore
stores *sets* of bound terms; the common single-bound case is built with
:meth:`Loop.make`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .affine import AffineExpr, Affinable


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


@dataclass(frozen=True)
class Bound:
    """One affine bound ``expr / divisor`` (divisor > 0).  A lower bound is
    the ceiling of this value, an upper bound the floor."""

    expr: AffineExpr
    divisor: int = 1

    def __post_init__(self):
        if self.divisor <= 0:
            raise ValueError("bound divisor must be positive")

    def eval_lower(self, env: Mapping[str, int]) -> int:
        return _ceil_div(self.expr.evaluate(env), self.divisor)

    def eval_upper(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env) // self.divisor

    def renamed(self, mapping: Mapping[str, str]) -> "Bound":
        return Bound(self.expr.rename(mapping), self.divisor)

    def __str__(self) -> str:
        return str(self.expr) if self.divisor == 1 else f"({self.expr})/{self.divisor}"


@dataclass(frozen=True)
class Loop:
    """``do var = max(lowers), min(uppers)`` with unit step."""

    var: str
    lowers: tuple[Bound, ...]
    uppers: tuple[Bound, ...]

    def __post_init__(self):
        if not self.lowers or not self.uppers:
            raise ValueError(f"loop {self.var} must have lower and upper bounds")

    @staticmethod
    def make(var: str, lower: Affinable, upper: Affinable) -> "Loop":
        return Loop(
            var,
            (Bound(AffineExpr.of(lower)),),
            (Bound(AffineExpr.of(upper)),),
        )

    @staticmethod
    def from_bounds(
        var: str,
        lowers: Sequence[Bound],
        uppers: Sequence[Bound],
    ) -> "Loop":
        return Loop(var, tuple(lowers), tuple(uppers))

    @property
    def simple(self) -> bool:
        return (
            len(self.lowers) == 1
            and len(self.uppers) == 1
            and self.lowers[0].divisor == 1
            and self.uppers[0].divisor == 1
        )

    @property
    def lower(self) -> AffineExpr:
        """The single lower-bound expression (simple loops only)."""
        if len(self.lowers) != 1 or self.lowers[0].divisor != 1:
            raise ValueError(f"loop {self.var} has a compound lower bound")
        return self.lowers[0].expr

    @property
    def upper(self) -> AffineExpr:
        if len(self.uppers) != 1 or self.uppers[0].divisor != 1:
            raise ValueError(f"loop {self.var} has a compound upper bound")
        return self.uppers[0].expr

    def eval_range(self, env: Mapping[str, int]) -> tuple[int, int]:
        lo = max(b.eval_lower(env) for b in self.lowers)
        hi = min(b.eval_upper(env) for b in self.uppers)
        return lo, hi

    def trip_count(self, env: Mapping[str, int]) -> int:
        lo, hi = self.eval_range(env)
        return max(0, hi - lo + 1)

    def renamed(self, mapping: Mapping[str, str]) -> "Loop":
        return Loop(
            mapping.get(self.var, self.var),
            tuple(b.renamed(mapping) for b in self.lowers),
            tuple(b.renamed(mapping) for b in self.uppers),
        )

    def _bounds_str(self) -> tuple[str, str]:
        lo = (
            str(self.lowers[0])
            if len(self.lowers) == 1
            else "max(" + ", ".join(str(b) for b in self.lowers) + ")"
        )
        hi = (
            str(self.uppers[0])
            if len(self.uppers) == 1
            else "min(" + ", ".join(str(b) for b in self.uppers) + ")"
        )
        return lo, hi

    def __str__(self) -> str:
        lo, hi = self._bounds_str()
        return f"do {self.var} = {lo}, {hi}"
