"""A small DSL for writing affine programs that read like the Fortran
sources they model.

Example — the two-nest fragment of the paper's Section 3.1::

    b = ProgramBuilder("motivating", params=("N",), default_binding={"N": 64})
    N = b.param("N")
    U, V, W = (b.array(x, (N, N)) for x in "UVW")
    with b.nest("nest1") as n:
        i, j = n.loop("i", 1, N), n.loop("j", 1, N)
        n.assign(U[i, j], V[j, i] + 1.0)
    with b.nest("nest2") as n:
        i, j = n.loop("i", 1, N), n.loop("j", 1, N)
        n.assign(V[i, j], W[j, i] + 2.0)
    program = b.build()

Array extents are declared as *upper index bounds are 1-based like the
paper's Fortran* by default: an array built with extent expression ``N``
holds indices ``1..N`` internally stored as ``0..N-1``?  No — to stay
unambiguous the IR is entirely explicit: ``b.array("U", (N, N))`` declares
extents ``N+1`` so subscripts ``1..N`` are valid.  (The extra row/column
of a Fortran-style 1-based array is a storage detail that cancels out of
every normalized comparison.)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from .affine import AffineExpr, Affinable, IndexVar
from .arrays import ArrayDecl, ArrayRef
from .expr import Ref, wrap
from .loops import Loop
from .nest import LoopNest
from .program import Program
from .statements import Condition, Statement
from .tree import LoopNode, StmtNode, TreeNode


class ArrayHandle:
    """Wraps an :class:`ArrayDecl` so that ``A[i, j+1]`` builds a reference
    expression directly.  ``shift`` rebases 1-based Fortran subscripts to
    the 0-based storage indices (``A[i, j]`` becomes ``A(i-1, j-1)``), so
    declared extents carry no phantom row/column."""

    def __init__(self, decl: ArrayDecl, shift: int = 0):
        self.decl = decl
        self.shift = shift

    def __getitem__(self, subscripts) -> Ref:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        if self.shift:
            subscripts = tuple(
                AffineExpr.of(s) - self.shift for s in subscripts
            )
        return Ref(ArrayRef.make(self.decl, subscripts))

    @property
    def name(self) -> str:
        return self.decl.name

    def __repr__(self) -> str:
        return f"ArrayHandle({self.decl})"


def _as_array_ref(lhs) -> ArrayRef:
    if isinstance(lhs, Ref):
        return lhs.ref
    if isinstance(lhs, ArrayRef):
        return lhs
    raise TypeError(f"assignment target must be an array reference, got {lhs!r}")


class NestBuilder:
    def __init__(self, name: str, params: tuple[str, ...], weight: int):
        self.name = name
        self.params = params
        self.weight = weight
        self._loops: list[Loop] = []
        self._body: list[Statement] = []

    def loop(self, var: str, lower: Affinable, upper: Affinable) -> IndexVar:
        if any(l.var == var for l in self._loops):
            raise ValueError(f"duplicate loop variable {var}")
        self._loops.append(Loop.make(var, lower, upper))
        return IndexVar(var)

    def assign(self, lhs, rhs, guards: Sequence[Condition] = ()) -> None:
        self._body.append(Statement.make(_as_array_ref(lhs), wrap(rhs), guards))

    def finish(self) -> LoopNest:
        if not self._loops:
            raise ValueError(f"nest {self.name} has no loops")
        if not self._body:
            raise ValueError(f"nest {self.name} has no statements")
        return LoopNest.make(
            self.name, self._loops, self._body, self.params, self.weight
        )


class TreeBuilder:
    """Builds imperfect loop trees with nested ``with`` blocks."""

    def __init__(self, name: str):
        self.name = name
        self._stack: list[list[TreeNode]] = [[]]
        self._loop_stack: list[Loop] = []

    @contextmanager
    def loop(self, var: str, lower: Affinable, upper: Affinable) -> Iterator[IndexVar]:
        self._loop_stack.append(Loop.make(var, lower, upper))
        self._stack.append([])
        try:
            yield IndexVar(var)
        finally:
            children = self._stack.pop()
            loop = self._loop_stack.pop()
            self._stack[-1].append(LoopNode.make(loop, children))

    def assign(self, lhs, rhs, guards: Sequence[Condition] = ()) -> None:
        self._stack[-1].append(
            StmtNode(Statement.make(_as_array_ref(lhs), wrap(rhs), guards))
        )

    def finish(self) -> tuple[TreeNode, ...]:
        if len(self._stack) != 1:
            raise RuntimeError("unbalanced loop blocks in tree builder")
        return tuple(self._stack[0])


class ProgramBuilder:
    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        default_binding: Mapping[str, int] | None = None,
    ):
        self.name = name
        self.params = tuple(params)
        self.default_binding = dict(default_binding or {})
        self._arrays: list[ArrayDecl] = []
        self._nests: list[LoopNest] = []
        self._trees: list[LoopNode] = []
        self._nest_counter = 0

    def param(self, name: str) -> IndexVar:
        if name not in self.params:
            raise KeyError(f"{name} is not a declared parameter")
        return IndexVar(name)

    def array(
        self, name: str, extents: Sequence[Affinable], *, one_based: bool = True
    ) -> ArrayHandle:
        """Declare an array.  With ``one_based`` (default, matching the
        paper's Fortran codes) an extent ``N`` admits subscripts ``1..N``;
        the handle rebases them to the 0-based storage indices so files
        stay fully contiguous (no phantom row/column 0)."""
        if any(a.name == name for a in self._arrays):
            raise ValueError(f"duplicate array {name}")
        decl = ArrayDecl.make(name, [AffineExpr.of(e) for e in extents])
        self._arrays.append(decl)
        return ArrayHandle(decl, shift=1 if one_based else 0)

    @contextmanager
    def nest(self, name: str | None = None, weight: int = 1) -> Iterator[NestBuilder]:
        self._nest_counter += 1
        nb = NestBuilder(name or f"nest{self._nest_counter}", self.params, weight)
        yield nb
        self._nests.append(nb.finish())

    @contextmanager
    def tree(self, name: str | None = None) -> Iterator[TreeBuilder]:
        tb = TreeBuilder(name or f"tree{len(self._trees) + 1}")
        yield tb
        for node in tb.finish():
            if not isinstance(node, LoopNode):
                raise ValueError("top level of a tree must be a loop")
            self._trees.append(node)

    def build(self) -> Program:
        return Program.make(
            self.name,
            self._arrays,
            self._nests,
            self.params,
            self.default_binding,
            self._trees,
        )
