"""Whole programs: arrays + a sequence of nests (or a loop tree)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from .arrays import ArrayDecl
from .nest import LoopNest
from .tree import LoopNode


@dataclass(frozen=True)
class Program:
    """A regular scientific code as the optimizer sees it.

    ``nests`` is the normalized (perfect-nest) form; ``trees`` optionally
    carries the original imperfect form for programs that need step (1)
    of the algorithm.  ``default_binding`` supplies concrete values for
    the parameters (array extent ``N`` etc.) used by execution and cost
    estimation unless overridden.
    """

    name: str
    arrays: tuple[ArrayDecl, ...]
    nests: tuple[LoopNest, ...]
    params: tuple[str, ...] = ()
    default_binding: tuple[tuple[str, int], ...] = ()
    trees: tuple[LoopNode, ...] = ()

    @staticmethod
    def make(
        name: str,
        arrays: Sequence[ArrayDecl],
        nests: Sequence[LoopNest],
        params: Sequence[str] = (),
        default_binding: Mapping[str, int] | None = None,
        trees: Sequence[LoopNode] = (),
    ) -> "Program":
        return Program(
            name,
            tuple(arrays),
            tuple(nests),
            tuple(params),
            tuple(sorted((default_binding or {}).items())),
            tuple(trees),
        )

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array named {name} in program {self.name}")

    def binding(self, overrides: Mapping[str, int] | None = None) -> dict[str, int]:
        b = dict(self.default_binding)
        if overrides:
            b.update(overrides)
        missing = [p for p in self.params if p not in b]
        if missing:
            raise ValueError(f"unbound parameters {missing} for {self.name}")
        return b

    def total_array_bytes(self, overrides: Mapping[str, int] | None = None) -> int:
        b = self.binding(overrides)
        return sum(a.bytes(b) for a in self.arrays)

    def with_nests(self, nests: Sequence[LoopNest]) -> "Program":
        return replace(self, nests=tuple(nests))

    def nest(self, name: str) -> LoopNest:
        for n in self.nests:
            if n.name == name:
                return n
        raise KeyError(f"no nest named {name} in program {self.name}")

    def pretty(self) -> str:
        parts = [f"program {self.name}"]
        for a in self.arrays:
            parts.append(f"  declare {a}")
        for n in self.nests:
            parts.append(f"! nest {n.name} (weight {n.weight})")
            parts.append(n.pretty())
        return "\n".join(parts)
