"""Imperfect loop trees — the *input* form before normalization.

The paper's step (1) converts a sequence of imperfectly nested loops into
perfect nests using loop fusion, loop distribution and code sinking.  The
tree form represents the pre-normalization program: a loop node holds an
ordered mix of statements and nested loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from .loops import Loop
from .statements import Statement

TreeNode = Union["LoopNode", "StmtNode"]


@dataclass(frozen=True)
class StmtNode:
    stmt: Statement

    def arrays(self) -> set[str]:
        return self.stmt.arrays()

    def statements(self) -> Iterator[Statement]:
        yield self.stmt

    def pretty(self, depth: int = 0, indent: str = "  ") -> str:
        return indent * depth + str(self.stmt)


@dataclass(frozen=True)
class LoopNode:
    loop: Loop
    children: tuple[TreeNode, ...]

    @staticmethod
    def make(loop: Loop, children: Sequence[TreeNode]) -> "LoopNode":
        return LoopNode(loop, tuple(children))

    def arrays(self) -> set[str]:
        out: set[str] = set()
        for c in self.children:
            out |= c.arrays()
        return out

    def statements(self) -> Iterator[Statement]:
        for c in self.children:
            yield from c.statements()

    def loop_children(self) -> list["LoopNode"]:
        return [c for c in self.children if isinstance(c, LoopNode)]

    def stmt_children(self) -> list[StmtNode]:
        return [c for c in self.children if isinstance(c, StmtNode)]

    @property
    def is_perfect(self) -> bool:
        """True when the subtree is a perfect nest: each loop has exactly
        one child that is a loop, or only statement children."""
        node: LoopNode = self
        while True:
            loops = node.loop_children()
            stmts = node.stmt_children()
            if not loops:
                return True
            if len(loops) == 1 and not stmts:
                node = loops[0]
                continue
            return False

    def pretty(self, depth: int = 0, indent: str = "  ") -> str:
        lines = [indent * depth + str(self.loop)]
        for c in self.children:
            lines.append(c.pretty(depth + 1, indent))
        lines.append(indent * depth + "end do")
        return "\n".join(lines)
