"""Executable expression AST for statement right-hand sides.

The optimizer only looks at the :class:`~repro.ir.arrays.ArrayRef` leaves,
but the execution engine evaluates the full tree so that transformed
programs can be checked *semantically* against their originals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

from .arrays import ArrayRef

Loader = Callable[[ArrayRef, Mapping[str, int]], float]

Exprish = Union["Expr", ArrayRef, int, float]


class Expr:
    """Base class; subclasses are immutable dataclasses."""

    def evaluate(self, env: Mapping[str, int], load: Loader) -> float:
        raise NotImplementedError

    def refs(self) -> Iterator[ArrayRef]:
        raise NotImplementedError

    def substituted(self, mapping) -> "Expr":
        raise NotImplementedError

    # arithmetic sugar so workload models read like the source codes
    def __add__(self, other: Exprish) -> "Expr":
        return BinOp("+", self, wrap(other))

    def __radd__(self, other: Exprish) -> "Expr":
        return BinOp("+", wrap(other), self)

    def __sub__(self, other: Exprish) -> "Expr":
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other: Exprish) -> "Expr":
        return BinOp("-", wrap(other), self)

    def __mul__(self, other: Exprish) -> "Expr":
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other: Exprish) -> "Expr":
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other: Exprish) -> "Expr":
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other: Exprish) -> "Expr":
        return BinOp("/", wrap(other), self)

    def __neg__(self) -> "Expr":
        return UnOp("-", self)


def wrap(value: Exprish) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, ArrayRef):
        return Ref(value)
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {value!r} in an expression")


@dataclass(frozen=True)
class Const(Expr):
    value: float

    def evaluate(self, env, load):
        return self.value

    def refs(self):
        return iter(())

    def substituted(self, mapping):
        return self

    def __str__(self):
        return f"{self.value:g}"


@dataclass(frozen=True)
class Ref(Expr):
    ref: ArrayRef

    def evaluate(self, env, load):
        return load(self.ref, env)

    def refs(self):
        yield self.ref

    def substituted(self, mapping):
        return Ref(self.ref.substituted(mapping))

    def __str__(self):
        return str(self.ref)


_BINOPS: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BINOPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def evaluate(self, env, load):
        return _BINOPS[self.op](
            self.left.evaluate(env, load), self.right.evaluate(env, load)
        )

    def refs(self):
        yield from self.left.refs()
        yield from self.right.refs()

    def substituted(self, mapping):
        return BinOp(self.op, self.left.substituted(mapping), self.right.substituted(mapping))

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self):
        if self.op != "-":
            raise ValueError(f"unknown unary operator {self.op!r}")

    def evaluate(self, env, load):
        return -self.operand.evaluate(env, load)

    def refs(self):
        yield from self.operand.refs()

    def substituted(self, mapping):
        return UnOp(self.op, self.operand.substituted(mapping))

    def __str__(self):
        return f"(-{self.operand})"


_CALLS: dict[str, Callable[[float], float]] = {
    "sqrt": lambda x: math.sqrt(abs(x)),
    "exp": lambda x: math.exp(min(x, 50.0)),
    "abs": abs,
}


@dataclass(frozen=True)
class Call(Expr):
    """A cheap elementary function — enough to model the math-library
    workloads (``gfunp``, ``emit``) whose statements call intrinsics."""

    fn: str
    arg: Expr

    def __post_init__(self):
        if self.fn not in _CALLS:
            raise ValueError(f"unknown intrinsic {self.fn!r}")

    def evaluate(self, env, load):
        return _CALLS[self.fn](self.arg.evaluate(env, load))

    def refs(self):
        yield from self.arg.refs()

    def substituted(self, mapping):
        return Call(self.fn, self.arg.substituted(mapping))

    def __str__(self):
        return f"{self.fn}({self.arg})"
