"""The parallel time model.

Per compute node, I/O is blocking: the node's busy time is its compute
time plus the serial cost of its I/O calls.  The I/O nodes service all
compute nodes concurrently; each accumulates the latency + transfer
seconds of the requests landing on its stripes.  The run's makespan is
the larger of the two bottlenecks:

    T = max( max_r busy(r),  max_k io_node_load(k) )

With one compute node this reduces (up to stripe spreading) to the
node's serial time; with many nodes it captures the paper's observation
that "scalability was limited only by the number of I/O nodes and the
I/O subsystem bandwidth".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.executor import RunResult


def makespan(results: Sequence[RunResult]) -> float:
    if not results:
        raise ValueError("no node results")
    sizes = {r.io_node_load.size for r in results}
    if len(sizes) > 1:
        raise ValueError(
            f"heterogeneous io_node_load lengths {sorted(sizes)}: every "
            "node must be simulated against the same n_io_nodes"
        )
    node_busy = max(r.stats.total_time_s for r in results)
    io_load = np.zeros_like(results[0].io_node_load)
    for r in results:
        io_load += r.io_node_load
    return float(max(node_busy, io_load.max() if io_load.size else 0.0))
