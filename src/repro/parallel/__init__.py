"""SPMD parallel execution simulation (the paper's Paragon runs).

The codes are parallelized with zero inter-processor communication
(paper Section 4): each compute node owns a contiguous slab of every
nest's outermost tile loop and its slice of the data; the only shared
resource is the parallel file system's fixed pool of I/O nodes, so
scalability is bounded by I/O-node service capacity — exactly the
regime Table 3 measures.
"""

from .spmd import ParallelRun, run_version_parallel, speedup_curve
from .model import makespan

#: re-exported for convenience: the switch that turns on two-phase
#: collective I/O + event simulation in ``run_version_parallel``
from ..collective.planner import CollectiveConfig

__all__ = [
    "CollectiveConfig",
    "ParallelRun",
    "run_version_parallel",
    "speedup_curve",
    "makespan",
]
