"""Running a program version on ``p`` simulated compute nodes."""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Mapping, Sequence

import numpy as np

from ..collective.planner import (
    CollectiveConfig,
    CollectiveReport,
    NestCollectivePlan,
    io_node_loads,
    plan_nest_collective,
)
from ..collective.sim import (
    NET,
    NodeTimeline,
    SimEvent,
    SimOp,
    io_node_of,
    nest_ops,
    simulate,
)
from ..backends import BackendMetrics, StorageBackend, resolve_backend
from ..cache import CacheConfig
from ..engine.executor import NestRun, OOCExecutor, RunResult, nest_records
from ..faults import FaultConfig, FaultInjector
from ..obs import (
    NestIORecord,
    Observability,
    RedistRecord,
    active as obs_active,
)
from ..obs import profile as _prof
from ..obs.profile import ProfileConfig, ProfileResult, ProfileSession
from ..optimizer.strategies import VersionConfig
from ..runtime import IOStats, MachineParams, ParallelFileSystem
from .model import makespan


@dataclass
class ParallelRun:
    version: str
    n_nodes: int
    time_s: float
    node_results: list[RunResult]
    #: per-nest collective decisions + event-sim record; ``None`` for
    #: plain independent runs (``collective`` not passed)
    collective: CollectiveReport | None = None
    #: hotspot table + deterministic work-counter deltas for the whole
    #: driver (all ranks + the collective re-pricing); ``None`` unless
    #: ``profile=ProfileConfig(...)`` was passed
    profile: ProfileResult | None = None

    @property
    def total_io_calls(self) -> int:
        return sum(r.stats.calls for r in self.node_results)

    @property
    def total_stats(self) -> IOStats:
        return IOStats.fold(r.stats for r in self.node_results)

    @property
    def backend_metrics(self) -> BackendMetrics | None:
        """Measured transfer counters folded across ranks (``None``
        unless the run used a measuring backend)."""
        per_rank = [
            r.backend_metrics for r in self.node_results
            if r.backend_metrics is not None
        ]
        return BackendMetrics.fold(per_rank) if per_rank else None


def run_version_parallel(
    cfg: VersionConfig,
    n_nodes: int,
    *,
    params: MachineParams | None = None,
    binding: Mapping[str, int] | None = None,
    memory_per_node: int | None = None,
    collective: CollectiveConfig | None = None,
    obs: Observability | None = None,
    bounds: Sequence[object] | None = None,
    faults: FaultConfig | None = None,
    trace: bool = False,
    real: bool = False,
    backend: StorageBackend | str | None = None,
    profile: ProfileConfig | ProfileSession | None = None,
    cache: CacheConfig | None = None,
    tile_sizes: Mapping[str, int] | None = None,
) -> ParallelRun:
    """Execute a version on ``n_nodes`` (simulate mode by default).

    Every node gets the same per-node memory budget (the paper fixes the
    computation's memory at 1/128th of the out-of-core data *per node*),
    its own contiguous slab of each nest's outer tile loop, and its own
    partition of the files — staggered across the shared I/O nodes.

    With ``collective=CollectiveConfig(...)`` the run is re-priced
    through :mod:`repro.collective`: per nest, two-phase collective I/O
    is planned from the per-node call traces and applied when it beats
    the independent cost (``mode="auto"``), and the makespan comes from
    the event-driven simulator (``simulator="event"``) instead of the
    closed-form aggregate max.  Without it the behavior — stats and
    makespan — is exactly the independent model.

    ``obs`` (a :class:`repro.obs.Observability`) traces per-rank
    execution, emits per-nest × per-array I/O records matching the
    run's folded stats exactly, and — for event-simulated collective
    runs — records the simulated-time timeline.  ``None`` (default)
    records nothing and is bit-identical.

    ``faults`` (a :class:`repro.faults.FaultConfig`) injects the plan's
    faults with the policy's defenses: each rank's executor gets an
    injector seeded ``plan.seed + rank`` for call-indexed faults
    (transient errors, stragglers, retries, hedged reads); the event
    simulator gets the time-indexed faults (latency windows, outages —
    error draws stay on the accounting path, whose trace already
    carries every re-issued attempt); and a two-phase nest whose
    aggregator rank is in ``plan.failed_nodes`` is degraded to
    independent I/O when ``policy.degrade_collective`` is set.
    ``None`` (default) is bit-identical to the pre-fault behavior.

    ``trace=True`` forces per-call tracing in every rank's executor even
    without a collective config or observability — the serving layer
    (:mod:`repro.serve`) re-prices the traced calls on a *shared*
    cluster's I/O-node queues.  Tracing never changes the accounting;
    stats are bit-identical either way.

    ``real``/``backend`` pick the storage backend every rank executes
    against (:mod:`repro.backends`): the default stays simulate-only
    accounting, ``real=True`` moves actual data per rank, and
    ``backend`` (an instance or a kind string) selects a concrete
    byte-moving backend — each rank gets its own clone, so per-rank
    file namespaces and measured metrics stay independent, and
    :attr:`ParallelRun.backend_metrics` folds the measured side across
    ranks.  Accounted stats are identical for every data-carrying
    backend.

    ``profile`` (a :class:`repro.obs.ProfileConfig`) turns on hotspot
    attribution and deterministic work counting for the *whole driver*:
    one session spans every rank's executor plus the collective
    re-pricing, and :attr:`ParallelRun.profile` carries the resulting
    :class:`~repro.obs.ProfileResult`.  Passing an already-active
    :class:`~repro.obs.ProfileSession` nests this run inside a caller's
    capture instead (the caller finishes it).  ``None`` (default)
    records nothing and is bit-identical.

    ``cache``/``tile_sizes`` are the autotuner's executable knobs
    (:mod:`repro.autotune`): a :class:`~repro.cache.CacheConfig` gives
    every rank's executor a tile cache carved out of its memory budget,
    and ``tile_sizes`` forces per-nest block sizes (capped at what the
    planner's binary search would allow, so forced plans stay
    memory-safe).  Both default to ``None`` and are bit-identical off.
    """
    params = params or MachineParams()
    obs = obs_active(obs)
    b = cfg.program.binding(binding)
    total_elements = sum(
        int(np.prod(a.shape(b))) for a in cfg.program.arrays
    )
    budget = memory_per_node or max(
        64, total_elements // params.memory_fraction
    )
    results: list[RunResult] = []
    file_maps: list[dict[int, str]] = []
    # per-array attribution works off the executors' call traces, so an
    # enabled obs forces tracing like the collective planner does
    trace = trace or collective is not None or (
        obs is not None and obs.config.per_array
    )
    stagger = max(1, total_elements // max(1, n_nodes))
    # one backend per rank: clones of a given instance (or fresh
    # resolutions of a kind string / the real flag), so rank-private
    # file namespaces never collide and metrics attribute per rank
    if backend is None:
        rank_backends = [resolve_backend(None, real) for _ in range(n_nodes)]
    elif isinstance(backend, StorageBackend):
        rank_backends = [backend] + [
            backend.clone() for _ in range(n_nodes - 1)
        ]
    else:
        rank_backends = [resolve_backend(backend) for _ in range(n_nodes)]
    # one profile session spans every rank plus the collective
    # re-pricing: a config here is driver-owned (activated, finished,
    # published); a live session is a caller's capture we nest inside
    owned: ProfileSession | None = None
    if isinstance(profile, ProfileConfig):
        owned = ProfileSession(profile) if profile.enabled else None
        session: ProfileSession | None = owned
    else:
        session = profile
    if session is not None:
        session.activate()
    try:
        for rank in range(n_nodes):
            pfs = ParallelFileSystem(params)
            pfs.advance(rank * stagger)
            span = (
                obs.tracer.begin(f"rank {rank}", "execute", rank=rank)
                if obs is not None and obs.config.wall_time
                else None
            )
            ex = OOCExecutor(
                cfg.program,
                cfg.layouts,
                params=params,
                binding=b,
                memory_budget=budget,
                backend=rank_backends[rank],
                tiling=cfg.tiling,
                storage_spec=cfg.storage_spec,
                pfs=pfs,
                node_slice=(rank, n_nodes) if n_nodes > 1 else None,
                trace=trace,
                tile_sizes=tile_sizes,
                cache=cache,
                faults=faults,
            )
            results.append(ex.run())
            if span is not None:
                obs.tracer.end(span, calls=results[-1].stats.calls)
            if obs is not None:
                file_maps.append(ex.file_names())
                if ex.injector is not None:
                    if obs.config.metrics:
                        ex.injector.publish_counters(obs.metrics)
                        ex.injector.publish_metrics(obs.metrics)
                    if ex.injector.events:
                        obs.add_fault_events(ex.injector.events)
                if obs.config.per_array and rank == 0:
                    # the prediction is per-program, identical on every
                    # rank; the drift table compares it to the *summed*
                    # measured I/O
                    obs.note_predictions(ex.predicted_io())
                    obs.note_modeled_elements(ex.predicted_elements())
            if rank_backends[rank].measures:
                # disk-backed rank namespaces are done once the stats
                # and metrics are collected — release mmaps / chunk
                # directories
                ex.close()
        if obs is not None and obs.config.per_array:
            if bounds is None:
                from ..bounds import program_bounds

                # the bound argues against the run's effective per-node
                # capacity: the nominal budget, or the worst rank's peak
                # when pathological tiles overran it
                peak = max((r.peak_memory for r in results), default=0)
                bounds = program_bounds(
                    cfg.program,
                    binding=b,
                    memory_elements=max(budget, peak),
                    n_nodes=n_nodes,
                )
            obs.note_bounds(bounds)
        if collective is None:
            run = ParallelRun(cfg.name, n_nodes, makespan(results), results)
            if obs is not None:
                if obs.config.per_array:
                    for rank, r in enumerate(results):
                        for rec in nest_records(
                            params, r.nest_runs, file_maps[rank],
                            node=rank, path="independent",
                        ):
                            obs.record_nest_io(rec)
                    obs.finalize_drift()
                    obs.finalize_optimality()
                obs.note_stats(run.total_stats)
        else:
            run = _collective_run(
                cfg.name, n_nodes, params, results, collective,
                obs=obs, file_maps=file_maps, faults=faults,
            )
    finally:
        if session is not None:
            session.deactivate()
    if owned is not None:
        run.profile = owned.finish(
            tracer=obs.tracer if obs is not None else None
        )
        if obs is not None:
            obs.note_profile(run.profile)
            if obs.config.metrics:
                _prof.publish_work(obs.metrics, run.profile.work)
    return run


def speedup_curve(
    cfg: VersionConfig,
    node_counts: Sequence[int] = (16, 32, 64, 128),
    *,
    params: MachineParams | None = None,
    binding: Mapping[str, int] | None = None,
    memory_per_node: int | None = None,
    collective: CollectiveConfig | None = None,
    faults: FaultConfig | None = None,
) -> dict[int, float]:
    """Speedups vs. the same version on one node (Table 3's metric).

    ``faults`` applies the same fault plan + resilience policy to the
    one-node baseline and to every scaled run (per-rank injectors are
    seeded ``plan.seed + rank`` as in :func:`run_version_parallel`), so
    the curve answers "how does this version scale *under* this fault
    scenario" rather than comparing a faulted run to a clean baseline.
    """
    base = run_version_parallel(
        cfg, 1, params=params, binding=binding,
        memory_per_node=memory_per_node, collective=collective,
        faults=faults,
    )
    out: dict[int, float] = {}
    for p in node_counts:
        run = run_version_parallel(
            cfg, p, params=params, binding=binding,
            memory_per_node=memory_per_node, collective=collective,
            faults=faults,
        )
        out[p] = base.time_s / run.time_s if run.time_s > 0 else float("inf")
    return out


# -- collective execution ---------------------------------------------------


def _collective_run(
    name: str,
    n_nodes: int,
    params: MachineParams,
    results: list[RunResult],
    config: CollectiveConfig,
    obs: Observability | None = None,
    file_maps: list[dict[int, str]] | None = None,
    faults: FaultConfig | None = None,
) -> ParallelRun:
    """Re-price a traced run nest by nest: keep the recorded independent
    accounting where independent wins, substitute the two-phase plan's
    aggregator calls + redistribution messages where collective wins."""
    report = CollectiveReport(config)
    stats = [IOStats() for _ in range(n_nodes)]
    loads = [np.zeros(params.n_io_nodes) for _ in range(n_nodes)]
    timelines = [NodeTimeline(i) for i in range(n_nodes)]
    # merged file_base -> array name map across the staggered per-rank
    # file systems (rank 0 first; labels only, totals unaffected)
    names: dict[int, str] = {}
    for fm in file_maps or []:
        for base, nm in fm.items():
            names.setdefault(base, nm)
    for j in range(len(results[0].nest_runs)):
        nrs = [r.nest_runs[j] for r in results]
        nest_name = nrs[0].nest_name
        plan = plan_nest_collective(
            params,
            nest_name,
            [nr.trace or [] for nr in nrs],
            weight=max(nr.trace_weight for nr in nrs),
            cb_nodes=config.cb_nodes,
        )
        two_phase = plan is not None and (
            config.mode == "always" or (config.mode == "auto" and plan.wins)
        )
        # resilience degradation: two-phase funnels a nest's I/O through
        # its aggregators, so a failed aggregator rank takes the whole
        # exchange down — fall back to independent I/O for this nest
        degraded = (
            two_phase
            and faults is not None
            and faults.policy.degrade_collective
            and any(
                r in faults.plan.failed_nodes for r in plan.aggregators
            )
        )
        if degraded:
            two_phase = False
            report.degraded.append(nest_name)
            stats[0].degraded_nests += 1
            if obs is not None and obs.config.metrics:
                obs.metrics.counter("faults.degraded_nests").inc()
        if plan is not None:
            report.nest_plans.append(plan)
        report.chosen[nest_name] = two_phase
        if obs is not None:
            # the degraded flag appears only when it fired, so traces
            # recorded with faults=None stay byte-identical
            extra = {"degraded": True} if degraded else {}
            obs.instant(
                f"collective {nest_name}",
                "collective",
                two_phase=two_phase,
                has_plan=plan is not None,
                **extra,
            )
        if two_phase:
            _account_two_phase(params, plan, nrs, stats, loads, timelines)
            if obs is not None and obs.config.per_array:
                _emit_two_phase_records(obs, params, nest_name, plan, names)
        else:
            _account_independent(params, nrs, stats, loads, timelines)
            if obs is not None and obs.config.per_array:
                for rank, nr in enumerate(nrs):
                    for rec in nest_records(
                        params, [nr], names, node=rank, path="independent"
                    ):
                        obs.record_nest_io(rec)
    if any(report.chosen.values()) or report.degraded:
        # degraded nests keep independent accounting but must surface
        # the degraded_nests counter, so the rebuilt stats are used
        node_results = [
            dc_replace(r, stats=s, io_node_load=l)
            for r, s, l in zip(results, stats, loads)
        ]
    else:
        # every nest stayed independent: keep the executor's own
        # accounting verbatim (bit-identical to collective=None)
        node_results = results
    if config.simulator == "event":
        events: list[SimEvent] | None = None
        reg = None
        if obs is not None:
            if obs.config.sim_events:
                events = []
            if obs.config.metrics:
                reg = obs.metrics
        sim_inj: FaultInjector | None = None
        if faults is not None:
            # the sim applies only the plan's *time-indexed* faults
            # (stragglers, latency windows, outages): call-indexed error
            # draws already fired on the accounting path, and the traced
            # timelines carry every re-issued attempt as its own op —
            # drawing errors again here would double-inject them
            sim_plan = dc_replace(
                faults.plan,
                read_error_rate=0.0,
                write_error_rate=0.0,
                error_ops=frozenset(),
            )
            sim_inj = FaultInjector(sim_plan, faults.policy)
        sim = simulate(
            params, timelines, events=events, metrics=reg, faults=sim_inj
        )
        report.sim = sim
        if sim_inj is not None and obs is not None and sim_inj.events:
            obs.add_fault_events(sim_inj.events)
        time_s = sim.makespan_s
        if obs is not None:
            if events:
                obs.add_sim_events(events)
            obs.sim_summary = {
                "makespan_s": sim.makespan_s,
                "waited_requests": sim.waited_requests,
                "wait_time_s": sim.wait_time_s,
                "net_busy_s": sim.net_busy_s,
                "n_events": sim.n_events,
            }
    else:
        time_s = makespan(node_results)
    run = ParallelRun(name, n_nodes, time_s, node_results, collective=report)
    if obs is not None:
        if obs.config.per_array:
            obs.finalize_drift()
            obs.finalize_optimality()
        obs.note_stats(run.total_stats)
    return run


def _emit_two_phase_records(
    obs: Observability,
    params: MachineParams,
    nest_name: str,
    plan: NestCollectivePlan,
    names: dict[int, str],
) -> None:
    """Per-array records for a two-phase nest, mirroring
    :func:`_account_two_phase`'s arithmetic exactly: every aggregator's
    planned calls × weight, attributed to the aggregator's rank."""
    w = plan.weight
    esz = params.element_size
    for access in plan.accesses:
        array = names.get(access.file_base, f"file@{access.file_base}")
        for a_idx, (off, ln) in enumerate(
            zip(access.agg_offsets, access.agg_lengths)
        ):
            n_calls = int(off.size)
            if n_calls == 0:
                continue
            elems = int(ln.sum())
            io_t = (
                n_calls * params.io_latency_s
                + elems * esz / params.io_bandwidth_bps
            ) * w
            obs.record_nest_io(
                NestIORecord(
                    nest=nest_name,
                    array=array,
                    read_calls=0 if access.is_write else n_calls * w,
                    write_calls=n_calls * w if access.is_write else 0,
                    elements_read=0 if access.is_write else elems * w,
                    elements_written=elems * w if access.is_write else 0,
                    io_time_s=io_t,
                    node=plan.aggregators[a_idx],
                    path="two-phase",
                )
            )
    n_msgs = sum(len(a.messages) for a in plan.accesses)
    if n_msgs:
        vols = [v for a in plan.accesses for _, _, v in a.messages]
        obs.record_redist(
            RedistRecord(
                nest=nest_name,
                messages=n_msgs * w,
                elements=sum(vols) * w,
                time_s=sum(params.net_time(v * esz) for v in vols) * w,
            )
        )


def _account_independent(
    params: MachineParams,
    nrs: list[NestRun],
    stats: list[IOStats],
    loads: list[np.ndarray],
    timelines: list[NodeTimeline],
) -> None:
    for rank, nr in enumerate(nrs):
        stats[rank] = stats[rank].merge(nr.stats)
        if nr.trace:
            off = np.array([b + o for b, o, _, _ in nr.trace], dtype=np.int64)
            ln = np.array([l for _, _, l, _ in nr.trace], dtype=np.int64)
            loads[rank] += io_node_loads(params, off, ln) * nr.trace_weight
        timelines[rank].ops.extend(nest_ops(params, nr))


def _account_two_phase(
    params: MachineParams,
    plan: NestCollectivePlan,
    nrs: list[NestRun],
    stats: list[IOStats],
    loads: list[np.ndarray],
    timelines: list[NodeTimeline],
) -> None:
    """Substitute the plan's phases for the recorded independent I/O.

    Per repetition each rank's timeline is: read-phase aggregator calls,
    incoming read-redistribution messages, compute, outgoing
    write-redistribution messages, write-phase aggregator calls.
    Compute itself is untouched — only the data movement changes.
    """
    w = plan.weight
    esz = params.element_size
    rank_of = {a_idx: rank for a_idx, rank in enumerate(plan.aggregators)}
    # pre-split plan content per rank
    agg_io: dict[int, dict[bool, list[tuple[int, int]]]] = {}
    msgs: dict[int, dict[bool, list[int]]] = {}
    for access in plan.accesses:
        for a_idx, (off, ln) in enumerate(
            zip(access.agg_offsets, access.agg_lengths)
        ):
            rank = rank_of[a_idx]
            agg_io.setdefault(rank, {}).setdefault(access.is_write, []).extend(
                (int(o), int(l)) for o, l in zip(off, ln)
            )
        for rank, _a_idx, vol in access.messages:
            msgs.setdefault(rank, {}).setdefault(access.is_write, []).append(vol)

    for rank, nr in enumerate(nrs):
        add = IOStats(compute_time_s=nr.stats.compute_time_s)
        calls = agg_io.get(rank, {})
        for is_write, runs in calls.items():
            n_calls = len(runs)
            elems = sum(l for _, l in runs)
            io_t = n_calls * params.io_latency_s + (
                elems * esz / params.io_bandwidth_bps
            )
            if is_write:
                add.write_calls += n_calls * w
                add.elements_written += elems * w
            else:
                add.read_calls += n_calls * w
                add.elements_read += elems * w
            add.io_time_s += io_t * w
        all_runs = [r for runs in calls.values() for r in runs]
        if all_runs:
            off = np.array([o for o, _ in all_runs], dtype=np.int64)
            ln = np.array([l for _, l in all_runs], dtype=np.int64)
            loads[rank] += io_node_loads(params, off, ln) * w
        for is_write, vols in msgs.get(rank, {}).items():
            add.redist_messages += len(vols) * w
            add.redist_elements += sum(vols) * w
            add.redist_time_s += sum(
                params.net_time(v * esz) for v in vols
            ) * w
        stats[rank] = stats[rank].merge(add)

        # timeline: phases in order, repeated per weight
        compute_rep = nr.stats.compute_time_s / w
        read_io = [
            SimOp(
                "io",
                resource=io_node_of(params, o),
                service_s=params.call_time(l * esz),
            )
            for o, l in calls.get(False, [])
        ]
        write_io = [
            SimOp(
                "io",
                resource=io_node_of(params, o),
                service_s=params.call_time(l * esz),
                is_write=True,
            )
            for o, l in calls.get(True, [])
        ]
        read_net = [
            SimOp("net", resource=NET, service_s=params.net_time(v * esz))
            for v in msgs.get(rank, {}).get(False, [])
        ]
        write_net = [
            SimOp("net", resource=NET, service_s=params.net_time(v * esz))
            for v in msgs.get(rank, {}).get(True, [])
        ]
        for _ in range(w):
            timelines[rank].ops.extend(read_io)
            timelines[rank].ops.extend(read_net)
            if compute_rep > 0.0:
                timelines[rank].ops.append(
                    SimOp("compute", duration_s=compute_rep)
                )
            timelines[rank].ops.extend(write_net)
            timelines[rank].ops.extend(write_io)
