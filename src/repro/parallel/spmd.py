"""Running a program version on ``p`` simulated compute nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..engine.executor import OOCExecutor, RunResult
from ..optimizer.strategies import VersionConfig
from ..runtime import IOStats, MachineParams, ParallelFileSystem
from .model import makespan


@dataclass
class ParallelRun:
    version: str
    n_nodes: int
    time_s: float
    node_results: list[RunResult]

    @property
    def total_io_calls(self) -> int:
        return sum(r.stats.calls for r in self.node_results)

    @property
    def total_stats(self) -> IOStats:
        total = IOStats()
        for r in self.node_results:
            total = total.merge(r.stats)
        return total


def run_version_parallel(
    cfg: VersionConfig,
    n_nodes: int,
    *,
    params: MachineParams | None = None,
    binding: Mapping[str, int] | None = None,
    memory_per_node: int | None = None,
) -> ParallelRun:
    """Execute a version on ``n_nodes`` (simulate mode, no data).

    Every node gets the same per-node memory budget (the paper fixes the
    computation's memory at 1/128th of the out-of-core data *per node*),
    its own contiguous slab of each nest's outer tile loop, and its own
    partition of the files — staggered across the shared I/O nodes.
    """
    params = params or MachineParams()
    b = cfg.program.binding(binding)
    total_elements = sum(
        int(np.prod(a.shape(b))) for a in cfg.program.arrays
    )
    budget = memory_per_node or max(
        64, total_elements // params.memory_fraction
    )
    results: list[RunResult] = []
    stagger = max(1, total_elements // max(1, n_nodes))
    for rank in range(n_nodes):
        pfs = ParallelFileSystem(params)
        pfs.advance(rank * stagger)
        ex = OOCExecutor(
            cfg.program,
            cfg.layouts,
            params=params,
            binding=b,
            memory_budget=budget,
            real=False,
            tiling=cfg.tiling,
            storage_spec=cfg.storage_spec,
            pfs=pfs,
            node_slice=(rank, n_nodes) if n_nodes > 1 else None,
        )
        results.append(ex.run())
    return ParallelRun(cfg.name, n_nodes, makespan(results), results)


def speedup_curve(
    cfg: VersionConfig,
    node_counts: Sequence[int] = (16, 32, 64, 128),
    *,
    params: MachineParams | None = None,
    binding: Mapping[str, int] | None = None,
    memory_per_node: int | None = None,
) -> dict[int, float]:
    """Speedups vs. the same version on one node (Table 3's metric)."""
    base = run_version_parallel(
        cfg, 1, params=params, binding=binding, memory_per_node=memory_per_node
    )
    out: dict[int, float] = {}
    for p in node_counts:
        run = run_version_parallel(
            cfg, p, params=params, binding=binding,
            memory_per_node=memory_per_node,
        )
        out[p] = base.time_s / run.time_s if run.time_s > 0 else float("inf")
    return out
