"""Completion of partial transformation matrices to unimodular matrices.

The optimizer derives only *one* column of the inverse loop transformation
(``q_last``, relation 2 of the paper) or one row of a data transformation
(the layout hyperplane ``g``).  These must be completed to full
non-singular matrices; we complete to *unimodular* matrices (determinant
±1) in the spirit of Bik & Wijshoff's completion method, which keeps the
iteration-space volume intact and makes code generation exact.

:func:`completion_candidates` enumerates a family of alternative
completions so that a caller (the dependence-legality check) can pick the
first legal one.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from .exact import is_primitive
from .hnf import hermite_normal_form, smith_normal_form
from .matrix import IMat


def unimodular_with_column(vec: Sequence[int], position: int) -> IMat:
    """Return a unimodular matrix whose ``position``-th column is ``vec``.

    ``vec`` must be primitive (coordinate gcd 1) — a non-primitive column
    cannot appear in any unimodular matrix.
    """
    v = tuple(int(x) for x in vec)
    if not is_primitive(v):
        raise ValueError(f"column {v} is not primitive; no unimodular completion")
    n = len(v)
    if not 0 <= position < n:
        raise ValueError(f"position {position} out of range for size {n}")
    # Elementary vectors get the canonical order-preserving permutation
    # completion (identity when v = e_position) — keeps the optimizer from
    # shuffling loops that carry no locality information.
    nz = [i for i, x in enumerate(v) if x != 0]
    if len(nz) == 1 and v[nz[0]] == 1:
        src = nz[0]
        cols = [
            tuple(1 if r == c else 0 for r in range(n))
            for c in range(n)
            if c != src
        ]
        cols.insert(position, v)
        return IMat(cols).transpose()
    # Row HNF of the column vector: U @ v == e1 (since gcd(v) == 1).
    h, u = hermite_normal_form(IMat.col_vector(v))
    assert h.col(0) == tuple([1] + [0] * (n - 1))
    base = u.inverse_unimodular()  # first column of `base` is v
    # Move column 0 to `position` by a cyclic permutation of columns.
    order = list(range(n))
    order.pop(0)
    order.insert(position, 0)
    cols = base.cols()
    return IMat([cols[j] for j in order]).transpose()


def unimodular_with_last_column(vec: Sequence[int]) -> IMat:
    """Unimodular matrix whose last column is ``vec`` (the paper's ``q_last``)."""
    return unimodular_with_column(vec, len(tuple(vec)) - 1)


def unimodular_with_row(vec: Sequence[int], position: int) -> IMat:
    """Unimodular matrix whose ``position``-th row is ``vec``."""
    return unimodular_with_column(vec, position).transpose()


def unimodular_with_first_row(vec: Sequence[int]) -> IMat:
    """Unimodular matrix whose first row is ``vec`` (a layout hyperplane)."""
    return unimodular_with_row(vec, 0)


def complete_to_unimodular(cols: Sequence[Sequence[int]]) -> IMat:
    """Complete ``k`` integer columns to an ``n x n`` unimodular matrix whose
    *first* ``k`` columns are exactly the given ones.

    Possible iff the columns generate a direct summand of ``Z^n`` — i.e. the
    Smith normal form of the column matrix has all invariant factors 1.
    Raises ``ValueError`` otherwise.
    """
    a = IMat(cols).transpose()  # n x k
    n, k = a.shape
    if k > n:
        raise ValueError("more columns than rows; cannot complete")
    s, u, v = smith_normal_form(a)
    diag = [s[i, i] for i in range(k)]
    if any(d != 1 for d in diag):
        raise ValueError(
            f"columns do not extend to a unimodular matrix (invariant factors {diag})"
        )
    b = u.inverse_unimodular()  # n x n unimodular; b[:, :k] == a @ v
    v_inv = v.inverse_unimodular()
    # w = b @ blockdiag(v_inv, I): first k columns become a.
    block = [[0] * n for _ in range(n)]
    for i in range(k):
        for j in range(k):
            block[i][j] = v_inv[i, j]
    for i in range(k, n):
        block[i][i] = 1
    w = b @ IMat(block)
    for j in range(k):
        assert w.col(j) == a.col(j)
    return w


def completion_candidates(
    vec: Sequence[int], position: int, *, limit: int = 64
) -> Iterator[IMat]:
    """Yield distinct unimodular matrices having ``vec`` as the
    ``position``-th column, in a deterministic order.

    Variants are generated from the base completion by (a) permuting the
    free columns, (b) flipping their signs, and (c) adding small integer
    multiples of ``vec`` to them — all of which preserve unimodularity and
    the pinned column.  The caller filters for dependence legality.
    """
    base = unimodular_with_column(vec, position)
    n = base.nrows
    free = [j for j in range(n) if j != position]
    pinned = base.col(position)
    seen: set[tuple] = set()
    count = 0

    def emit(mat: IMat) -> Iterator[IMat]:
        nonlocal count
        key = mat.rows
        if key not in seen:
            seen.add(key)
            count += 1
            yield mat

    # (c) shift multiples first: identity shift (base itself) comes first.
    shift_choices = [0]
    for s in range(1, 11):
        shift_choices += [s, -s]
    for perm in itertools.permutations(range(len(free))):
        for signs in itertools.product((1, -1), repeat=len(free)):
            for shifts in itertools.product(shift_choices, repeat=len(free)):
                cols: list[tuple[int, ...] | None] = [None] * n
                cols[position] = pinned
                for slot, (src, sign, shift) in enumerate(
                    zip(perm, signs, shifts)
                ):
                    col = base.col(free[src])
                    cols[free[slot]] = tuple(
                        sign * c + shift * p for c, p in zip(col, pinned)
                    )
                mat = IMat(cols).transpose()  # type: ignore[arg-type]
                yield from emit(mat)
                if count >= limit:
                    return
