"""Hermite and Smith normal forms over the integers.

These are the workhorses of non-unimodular loop transformation code
generation (Ramanujam, Supercomputing'92) and of integer kernel
computation: for a transformation ``T``, the image lattice ``T·Z^k`` is
described by the column HNF, whose diagonal gives the loop step sizes.
"""

from __future__ import annotations

from .matrix import IMat


def hermite_normal_form(a: IMat) -> tuple[IMat, IMat]:
    """Row-style HNF: return ``(H, U)`` with ``H == U @ a``, ``U`` unimodular.

    ``H`` is in row echelon form: each pivot is positive, entries below a
    pivot are zero and entries above it are reduced into ``[0, pivot)``.
    Works for any (possibly rank-deficient, non-square) integer matrix.
    """
    m, n = a.shape
    h = [list(r) for r in a.rows]
    u = [[1 if i == j else 0 for j in range(m)] for i in range(m)]

    def swap(i, j):
        h[i], h[j] = h[j], h[i]
        u[i], u[j] = u[j], u[i]

    def addmul(dst, src, f):
        # row[dst] += f * row[src]
        h[dst] = [x + f * y for x, y in zip(h[dst], h[src])]
        u[dst] = [x + f * y for x, y in zip(u[dst], u[src])]

    def negate(i):
        h[i] = [-x for x in h[i]]
        u[i] = [-x for x in u[i]]

    pivot_row = 0
    for col in range(n):
        # find a row at/after pivot_row with non-zero entry in this column
        nz = [r for r in range(pivot_row, m) if h[r][col] != 0]
        if not nz:
            continue
        # Euclidean elimination within the column
        while True:
            nz = [r for r in range(pivot_row, m) if h[r][col] != 0]
            if len(nz) == 1:
                break
            nz.sort(key=lambda r: abs(h[r][col]))
            r0 = nz[0]
            for r in nz[1:]:
                q = h[r][col] // h[r0][col]
                addmul(r, r0, -q)
        r0 = next(r for r in range(pivot_row, m) if h[r][col] != 0)
        if r0 != pivot_row:
            swap(r0, pivot_row)
        if h[pivot_row][col] < 0:
            negate(pivot_row)
        # reduce the entries above the pivot into [0, pivot)
        p = h[pivot_row][col]
        for r in range(pivot_row):
            q = h[r][col] // p  # floor division gives entries in [0, p)
            if q != 0:
                addmul(r, pivot_row, -q)
        pivot_row += 1
        if pivot_row == m:
            break
    return IMat(h), IMat(u)


def column_hnf(a: IMat) -> tuple[IMat, IMat]:
    """Column-style HNF: return ``(H, U)`` with ``H == a @ U``, ``U``
    unimodular and ``H`` lower triangular with positive diagonal (for full
    row rank ``a``).  For a non-singular square ``a`` this describes the
    lattice ``a·Z^n``: column ``j`` of ``H`` is the lattice step once the
    first ``j-1`` coordinates are fixed.
    """
    ht, ut = hermite_normal_form(a.transpose())
    return ht.transpose(), ut.transpose()


def smith_normal_form(a: IMat) -> tuple[IMat, IMat, IMat]:
    """Smith normal form: return ``(S, U, V)`` with ``S == U @ a @ V``,
    ``U``/``V`` unimodular and ``S`` diagonal with ``S[i,i] | S[i+1,i+1]``.
    """
    m, n = a.shape
    s = [list(r) for r in a.rows]
    u = [[1 if i == j else 0 for j in range(m)] for i in range(m)]
    v = [[1 if i == j else 0 for j in range(n)] for i in range(n)]

    def row_addmul(dst, src, f):
        s[dst] = [x + f * y for x, y in zip(s[dst], s[src])]
        u[dst] = [x + f * y for x, y in zip(u[dst], u[src])]

    def col_addmul(dst, src, f):
        for i in range(m):
            s[i][dst] += f * s[i][src]
        for i in range(n):
            v[i][dst] += f * v[i][src]

    def row_swap(i, j):
        s[i], s[j] = s[j], s[i]
        u[i], u[j] = u[j], u[i]

    def col_swap(i, j):
        for r in s:
            r[i], r[j] = r[j], r[i]
        for r in v:
            r[i], r[j] = r[j], r[i]

    def row_negate(i):
        s[i] = [-x for x in s[i]]
        u[i] = [-x for x in u[i]]

    rank_bound = min(m, n)
    for k in range(rank_bound):
        # move a non-zero pivot (smallest magnitude) into (k, k)
        while True:
            entries = [
                (abs(s[i][j]), i, j)
                for i in range(k, m)
                for j in range(k, n)
                if s[i][j] != 0
            ]
            if not entries:
                return IMat(s), IMat(u), IMat(v)
            _, pi, pj = min(entries)
            if pi != k:
                row_swap(pi, k)
            if pj != k:
                col_swap(pj, k)
            done = True
            for i in range(k + 1, m):
                if s[i][k] != 0:
                    row_addmul(i, k, -(s[i][k] // s[k][k]))
                    if s[i][k] != 0:
                        done = False
            for j in range(k + 1, n):
                if s[k][j] != 0:
                    col_addmul(j, k, -(s[k][j] // s[k][k]))
                    if s[k][j] != 0:
                        done = False
            if done and all(s[i][k] == 0 for i in range(k + 1, m)) and all(
                s[k][j] == 0 for j in range(k + 1, n)
            ):
                # enforce divisibility s[k][k] | s[i][j] for the trailing block
                offender = None
                for i in range(k + 1, m):
                    for j in range(k + 1, n):
                        if s[i][j] % s[k][k] != 0:
                            offender = (i, j)
                            break
                    if offender:
                        break
                if offender is None:
                    break
                # fold the offending row into row k and re-run elimination
                row_addmul(k, offender[0], 1)
        if s[k][k] < 0:
            row_negate(k)
    return IMat(s), IMat(u), IMat(v)
