"""Exact scalar integer helpers used throughout the transformation code."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def gcd_all(values: Iterable[int]) -> int:
    """Non-negative gcd of any iterable of ints; gcd of nothing (or all
    zeros) is 0."""
    g = 0
    for v in values:
        g = math.gcd(g, int(v))
        if g == 1:
            return 1
    return g


def lcm_all(values: Iterable[int]) -> int:
    """Positive lcm of an iterable of non-zero ints (lcm of nothing is 1)."""
    l = 1
    for v in values:
        v = abs(int(v))
        if v == 0:
            raise ValueError("lcm of zero is undefined")
        l = l * v // math.gcd(l, v)
    return l


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)`` and
    ``g >= 0``."""
    a, b = int(a), int(b)
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def is_primitive(vec: Sequence[int]) -> bool:
    """A primitive vector has coordinate gcd 1 (so it extends to a
    unimodular basis)."""
    return gcd_all(vec) == 1


def primitive(vec: Sequence[int]) -> tuple[int, ...]:
    """Scale a non-zero integer vector down to its primitive multiple,
    canonicalized so the first non-zero entry is positive."""
    g = gcd_all(vec)
    if g == 0:
        raise ValueError("zero vector has no primitive multiple")
    out = [int(v) // g for v in vec]
    for v in out:
        if v != 0:
            if v < 0:
                out = [-x for x in out]
            break
    return tuple(out)
