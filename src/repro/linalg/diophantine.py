"""Exact solution of linear Diophantine systems via the Smith normal form.

``A·x = b`` over the integers: with ``S = U·A·V`` diagonal, substitute
``y = V^{-1} x`` to get ``S·y = U·b`` — solvable iff each diagonal entry
divides its right-hand side (and zero rows have zero rhs).  The general
solution is ``x = x0 + lattice(kernel basis)``.

Used by the dependence analyzer as a complete independence disproof for
reference pairs (strictly stronger than the per-dimension GCD test: it
accounts for *coupled* subscripts), and exposed as public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .hnf import smith_normal_form
from .matrix import IMat


@dataclass(frozen=True)
class DiophantineSolution:
    """``x = particular + Z-combinations of basis`` solves ``A·x = b``."""

    particular: tuple[int, ...]
    basis: tuple[tuple[int, ...], ...]

    def sample(self, coefficients: Sequence[int]) -> tuple[int, ...]:
        if len(coefficients) != len(self.basis):
            raise ValueError(
                f"need {len(self.basis)} coefficients, got {len(coefficients)}"
            )
        out = list(self.particular)
        for c, vec in zip(coefficients, self.basis):
            for i, v in enumerate(vec):
                out[i] += int(c) * v
        return tuple(out)


def solve_diophantine(
    a: IMat, b: Sequence[int]
) -> DiophantineSolution | None:
    """All integer solutions of ``A·x = b``, or None when unsolvable."""
    b = [int(v) for v in b]
    if len(b) != a.nrows:
        raise ValueError(f"rhs size {len(b)} != {a.nrows} rows")
    s, u, v = smith_normal_form(a)
    ub = u.matvec(b)
    rank = min(s.shape)
    y = [0] * a.ncols
    for i in range(a.nrows):
        d = s[i, i] if i < rank else 0
        if d == 0:
            if ub[i] != 0:
                return None
            continue
        if ub[i] % d != 0:
            return None
        if i < a.ncols:
            y[i] = ub[i] // d
    x0 = v.matvec(y)
    basis = tuple(
        v.col(j)
        for j in range(a.ncols)
        if j >= rank or s[j, j] == 0
    )
    return DiophantineSolution(tuple(x0), basis)


def has_integer_solution(a: IMat, b: Sequence[int]) -> bool:
    return solve_diophantine(a, b) is not None
