"""Integer null-space computation.

The paper's Claim 1 reduces layout/loop selection to choosing vectors in
``Ker{L q}`` (relation 1) or ``Ker{g L}`` (relation 2).  The kernels are
integer lattices; the paper's rule is to pick the kernel vector "such that
the gcd of its elements is minimum" — in practice the simplest primitive
vector, which corresponds to dimension re-ordering layouts whenever one
exists.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from .exact import gcd_all, primitive
from .hnf import column_hnf
from .matrix import IMat


def kernel_basis(a: IMat) -> list[tuple[int, ...]]:
    """Return a lattice basis of ``{x : a @ x == 0}`` as a list of integer
    column vectors (possibly empty when ``a`` has full column rank)."""
    h, u = column_hnf(a)
    basis = []
    for j in range(a.ncols):
        if all(h[i, j] == 0 for i in range(a.nrows)):
            basis.append(primitive(u.col(j)))
    return basis


def kernel_contains(a: IMat, x: Sequence[int]) -> bool:
    """True iff ``a @ x == 0``."""
    return all(v == 0 for v in a.matvec(x))


def _candidate_score(vec: tuple[int, ...]) -> tuple:
    """Ordering key implementing the paper's min-gcd rule with sensible
    tie-breaks: prefer primitive elementary-like vectors (few non-zeros,
    small magnitude), deterministically."""
    nonzeros = sum(1 for v in vec if v != 0)
    return (
        gcd_all(vec),
        nonzeros,
        sum(abs(v) for v in vec),
        max(abs(v) for v in vec),
        tuple(-v for v in vec),  # prefer lexicographically larger => (1,0) over (0,1)
    )


def min_gcd_kernel_vector(
    a: IMat, *, span: int = 2, prefer: Sequence[Sequence[int]] = ()
) -> tuple[int, ...] | None:
    """Pick the kernel vector the paper's heuristic would pick.

    Enumerates small integer combinations (coefficients in ``[-span, span]``)
    of the kernel lattice basis, normalizes them to primitive vectors, and
    returns the one minimizing :func:`_candidate_score`.  ``prefer`` lists
    vectors that win outright if they lie in the kernel (used to bias
    toward a layout that is already assigned elsewhere).

    Returns ``None`` when the kernel is trivial.
    """
    for p in prefer:
        pv = tuple(int(v) for v in p)
        if any(pv) and kernel_contains(a, pv):
            return primitive(pv)
    basis = kernel_basis(a)
    if not basis:
        return None
    best: tuple[int, ...] | None = None
    best_score: tuple | None = None
    for coeffs in itertools.product(range(-span, span + 1), repeat=len(basis)):
        if not any(coeffs):
            continue
        vec = tuple(
            sum(c * b[i] for c, b in zip(coeffs, basis))
            for i in range(len(basis[0]))
        )
        if not any(vec):
            continue
        vec = primitive(vec)
        score = _candidate_score(vec)
        if best_score is None or score < best_score:
            best, best_score = vec, score
    return best
