"""Immutable exact integer matrices.

``IMat`` stores entries as Python ints (arbitrary precision) in a tuple of
row tuples.  All operations are exact; the fraction-free Bareiss algorithm
computes determinants and adjugates without ever leaving the integers.
Matrices here are loop/data transformation matrices — tiny (rank 1..6) —
so O(n^3) exact algorithms are the right tool; numpy float linear algebra
would silently corrupt unimodularity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

Row = tuple[int, ...]


class IMat:
    """An immutable integer matrix with exact arithmetic.

    Supports ``@`` (matrix and matrix-vector product), ``+``, ``-``,
    scalar ``*``, equality, hashing, and exact ``det`` / ``inverse``.
    """

    __slots__ = ("rows", "nrows", "ncols")

    def __init__(self, rows: Iterable[Sequence[int]]):
        normalized = tuple(tuple(int(v) for v in row) for row in rows)
        if not normalized:
            raise ValueError("matrix must have at least one row")
        width = len(normalized[0])
        if width == 0 or any(len(r) != width for r in normalized):
            raise ValueError("ragged or empty rows in matrix literal")
        self.rows: tuple[Row, ...] = normalized
        self.nrows = len(normalized)
        self.ncols = width

    # -- construction -----------------------------------------------------

    @staticmethod
    def identity(n: int) -> "IMat":
        return IMat([[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @staticmethod
    def zeros(nrows: int, ncols: int) -> "IMat":
        return IMat([[0] * ncols for _ in range(nrows)])

    @staticmethod
    def col_vector(vec: Sequence[int]) -> "IMat":
        return IMat([[int(v)] for v in vec])

    @staticmethod
    def row_vector(vec: Sequence[int]) -> "IMat":
        return IMat([list(vec)])

    @staticmethod
    def diag(entries: Sequence[int]) -> "IMat":
        n = len(entries)
        return IMat(
            [[int(entries[i]) if i == j else 0 for j in range(n)] for i in range(n)]
        )

    # -- basic accessors ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def is_square(self) -> bool:
        return self.nrows == self.ncols

    def __getitem__(self, idx: tuple[int, int]) -> int:
        i, j = idx
        return self.rows[i][j]

    def row(self, i: int) -> Row:
        return self.rows[i]

    def col(self, j: int) -> Row:
        return tuple(r[j] for r in self.rows)

    def cols(self) -> tuple[Row, ...]:
        return tuple(self.col(j) for j in range(self.ncols))

    def transpose(self) -> "IMat":
        return IMat(self.cols())

    @property
    def T(self) -> "IMat":
        return self.transpose()

    def to_lists(self) -> list[list[int]]:
        return [list(r) for r in self.rows]

    # -- arithmetic ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IMat) and self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __add__(self, other: "IMat") -> "IMat":
        self._check_same_shape(other)
        return IMat(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self.rows, other.rows)
            ]
        )

    def __sub__(self, other: "IMat") -> "IMat":
        self._check_same_shape(other)
        return IMat(
            [
                [a - b for a, b in zip(ra, rb)]
                for ra, rb in zip(self.rows, other.rows)
            ]
        )

    def __neg__(self) -> "IMat":
        return IMat([[-v for v in r] for r in self.rows])

    def __mul__(self, scalar: int) -> "IMat":
        return IMat([[v * int(scalar) for v in r] for r in self.rows])

    __rmul__ = __mul__

    def __matmul__(self, other):
        if isinstance(other, IMat):
            if self.ncols != other.nrows:
                raise ValueError(
                    f"shape mismatch: {self.shape} @ {other.shape}"
                )
            bt = other.cols()
            return IMat(
                [
                    [sum(a * b for a, b in zip(row, col)) for col in bt]
                    for row in self.rows
                ]
            )
        # matrix @ vector
        vec = tuple(int(v) for v in other)
        if self.ncols != len(vec):
            raise ValueError(f"shape mismatch: {self.shape} @ vec({len(vec)})")
        return tuple(sum(a * b for a, b in zip(row, vec)) for row in self.rows)

    def matvec(self, vec: Sequence[int]) -> tuple[int, ...]:
        return self.__matmul__(vec)  # type: ignore[return-value]

    def vecmat(self, vec: Sequence[int]) -> tuple[int, ...]:
        """Row-vector product ``vec @ self``."""
        vec = tuple(int(v) for v in vec)
        if len(vec) != self.nrows:
            raise ValueError(f"shape mismatch: vec({len(vec)}) @ {self.shape}")
        return tuple(
            sum(v * self.rows[i][j] for i, v in enumerate(vec))
            for j in range(self.ncols)
        )

    # -- exact solvers -------------------------------------------------------

    def det(self) -> int:
        """Exact determinant via fraction-free Bareiss elimination."""
        if not self.is_square:
            raise ValueError("determinant of a non-square matrix")
        n = self.nrows
        m = [list(r) for r in self.rows]
        sign = 1
        prev = 1
        for k in range(n - 1):
            if m[k][k] == 0:
                for swap in range(k + 1, n):
                    if m[swap][k] != 0:
                        m[k], m[swap] = m[swap], m[k]
                        sign = -sign
                        break
                else:
                    return 0
            for i in range(k + 1, n):
                for j in range(k + 1, n):
                    m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
                m[i][k] = 0
            prev = m[k][k]
        return sign * m[n - 1][n - 1]

    def is_unimodular(self) -> bool:
        return self.is_square and abs(self.det()) == 1

    def is_nonsingular(self) -> bool:
        return self.is_square and self.det() != 0

    def inverse_pair(self) -> tuple["IMat", int]:
        """Return ``(adj, d)`` with exact inverse ``adj / d`` (d = det != 0).

        The adjugate is computed by exact Gauss-Jordan over Fractions and
        rescaled — for rank <= 6 matrices this is plenty fast and avoids a
        hand-rolled cofactor expansion.
        """
        d = self.det()
        if d == 0:
            raise ValueError("matrix is singular")
        n = self.nrows
        aug = [
            [Fraction(v) for v in self.rows[i]]
            + [Fraction(1 if j == i else 0) for j in range(n)]
            for i in range(n)
        ]
        for col in range(n):
            pivot = next(r for r in range(col, n) if aug[r][col] != 0)
            aug[col], aug[pivot] = aug[pivot], aug[col]
            pv = aug[col][col]
            aug[col] = [v / pv for v in aug[col]]
            for r in range(n):
                if r != col and aug[r][col] != 0:
                    f = aug[r][col]
                    aug[r] = [a - f * b for a, b in zip(aug[r], aug[col])]
        adj_rows = []
        for i in range(n):
            row = []
            for j in range(n):
                val = aug[i][n + j] * d
                if val.denominator != 1:
                    raise AssertionError("adjugate must be integral")
                row.append(val.numerator)
            adj_rows.append(row)
        return IMat(adj_rows), d

    def inverse_unimodular(self) -> "IMat":
        """Exact integer inverse — only valid when ``|det| == 1``."""
        adj, d = self.inverse_pair()
        if abs(d) != 1:
            raise ValueError(f"matrix has determinant {d}, not unimodular")
        return adj if d == 1 else -adj

    def inverse_fractions(self) -> list[list[Fraction]]:
        adj, d = self.inverse_pair()
        return [[Fraction(v, d) for v in row] for row in adj.rows]

    def _check_same_shape(self, other: "IMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    # -- presentation --------------------------------------------------------

    def __repr__(self) -> str:
        body = "; ".join(" ".join(str(v) for v in r) for r in self.rows)
        return f"IMat[{body}]"


def identity(n: int) -> IMat:
    return IMat.identity(n)


def from_rows(rows: Iterable[Sequence[int]]) -> IMat:
    return IMat(rows)


def from_cols(cols: Iterable[Sequence[int]]) -> IMat:
    return IMat(cols).transpose()
