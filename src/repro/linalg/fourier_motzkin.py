"""Fourier–Motzkin elimination and loop-bound generation.

A loop nest's iteration space is the set of integer points in a polytope
``{I : A·I + B·p + c >= 0}`` where ``p`` are symbolic parameters (array
extents such as ``N``) that are never eliminated.  After a non-singular
loop transformation ``I' = T·I`` the polytope becomes
``{I' : A·T^-1·I' + ... >= 0}`` and the bounds of each transformed loop are
recovered by eliminating variables innermost-first — exactly the classic
code-generation scheme of Li / Ramanujam cited by the paper.

Everything is exact integer arithmetic: rational coefficients produced by
``T^-1`` are cleared by scaling with ``|det T|``; lower/upper bounds carry
an explicit positive divisor and are evaluated with ceiling/floor
division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .exact import gcd_all
from .hnf import column_hnf
from .matrix import IMat


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


@dataclass(frozen=True)
class Constraint:
    """Linear inequality ``sum(coeffs[v] * v) + const >= 0`` over loop
    variables and parameters, with integer coefficients."""

    coeffs: tuple[tuple[str, int], ...]
    const: int

    @staticmethod
    def make(coeffs: Mapping[str, int], const: int) -> "Constraint":
        items = tuple(
            sorted((k, int(v)) for k, v in coeffs.items() if int(v) != 0)
        )
        const = int(const)
        g = gcd_all(v for _, v in items)
        if g > 1:
            # Integer tightening: sum(c_i v_i) + c >= 0
            #   <=>  sum(c_i/g v_i) >= ceil(-c/g)
            #   <=>  sum(c_i/g v_i) + floor(c/g) >= 0
            items = tuple((k, v // g) for k, v in items)
            const = _floor_div(const, g)
        return Constraint(items, const)

    def coeff(self, var: str) -> int:
        for k, v in self.coeffs:
            if k == var:
                return v
        return 0

    def drop(self, var: str) -> tuple[tuple[str, int], ...]:
        return tuple((k, v) for k, v in self.coeffs if k != var)

    def involves(self, var: str) -> bool:
        return any(k == var for k, _ in self.coeffs)

    def evaluate(self, binding: Mapping[str, int]) -> int:
        return sum(v * binding[k] for k, v in self.coeffs) + self.const

    def is_trivially_true(self) -> bool:
        return not self.coeffs and self.const >= 0

    def is_trivially_false(self) -> bool:
        return not self.coeffs and self.const < 0

    def __str__(self) -> str:
        terms = " + ".join(f"{v}*{k}" for k, v in self.coeffs) or "0"
        return f"{terms} + {self.const} >= 0"


@dataclass(frozen=True)
class BoundTerm:
    """One affine bound ``(sum coeffs·outer + const) / divisor`` — a lower
    bound is the ceiling of this, an upper bound the floor."""

    coeffs: tuple[tuple[str, int], ...]
    const: int
    divisor: int  # > 0

    def eval_lower(self, binding: Mapping[str, int]) -> int:
        num = sum(v * binding[k] for k, v in self.coeffs) + self.const
        return _ceil_div(num, self.divisor)

    def eval_upper(self, binding: Mapping[str, int]) -> int:
        num = sum(v * binding[k] for k, v in self.coeffs) + self.const
        return _floor_div(num, self.divisor)

    def __str__(self) -> str:
        terms = " + ".join(f"{v}*{k}" for k, v in self.coeffs)
        body = f"{terms} + {self.const}" if terms else str(self.const)
        return body if self.divisor == 1 else f"({body})/{self.divisor}"


@dataclass(frozen=True)
class LoopBound:
    """Bounds of one (transformed) loop: ``max(lowers) <= v <= min(uppers)``
    with an optional stride (> 1 only for non-unimodular transformations)."""

    var: str
    lowers: tuple[BoundTerm, ...]
    uppers: tuple[BoundTerm, ...]
    stride: int = 1

    def eval_range(self, binding: Mapping[str, int]) -> tuple[int, int]:
        lo = max(t.eval_lower(binding) for t in self.lowers)
        hi = min(t.eval_upper(binding) for t in self.uppers)
        return lo, hi


class ConstraintSystem:
    """A conjunction of linear inequalities over ordered loop variables
    (outermost first) and never-eliminated symbolic parameters."""

    def __init__(
        self,
        variables: Sequence[str],
        params: Sequence[str] = (),
        constraints: Iterable[Constraint] = (),
    ):
        self.variables = tuple(variables)
        self.params = tuple(params)
        overlap = set(self.variables) & set(self.params)
        if overlap:
            raise ValueError(f"names used as both variable and parameter: {overlap}")
        self.constraints: list[Constraint] = []
        for c in constraints:
            self.add(c)

    def add(self, constraint: Constraint) -> None:
        if constraint.is_trivially_true():
            return
        if constraint not in self.constraints:
            self.constraints.append(constraint)

    def add_ineq(self, coeffs: Mapping[str, int], const: int) -> None:
        self.add(Constraint.make(coeffs, const))

    def add_lower(self, var: str, coeffs: Mapping[str, int], const: int) -> None:
        """Add ``var >= sum(coeffs) + const``."""
        merged = {var: 1}
        for k, v in coeffs.items():
            merged[k] = merged.get(k, 0) - int(v)
        self.add_ineq(merged, -int(const))

    def add_upper(self, var: str, coeffs: Mapping[str, int], const: int) -> None:
        """Add ``var <= sum(coeffs) + const``."""
        merged = {var: -1}
        for k, v in coeffs.items():
            merged[k] = merged.get(k, 0) + int(v)
        self.add_ineq(merged, int(const))

    def copy(self) -> "ConstraintSystem":
        return ConstraintSystem(self.variables, self.params, self.constraints)

    def is_infeasible_trivially(self) -> bool:
        return any(c.is_trivially_false() for c in self.constraints)

    def satisfied(self, binding: Mapping[str, int]) -> bool:
        return all(c.evaluate(binding) >= 0 for c in self.constraints)

    # -- transformation -----------------------------------------------------

    def transformed(
        self, t: IMat, new_variables: Sequence[str]
    ) -> "ConstraintSystem":
        """Return the system over ``I' = T @ I`` (same parameters).

        Substitutes ``I = T^-1 I'`` and clears denominators, so the result
        is exact for rational points; integer exactness of scanning is
        handled by the stride/guard machinery in :func:`loop_bounds_for_transform`.
        """
        if len(new_variables) != len(self.variables):
            raise ValueError("variable count mismatch")
        adj, d = t.inverse_pair()
        sign = 1 if d > 0 else -1
        scale = abs(d)
        out = ConstraintSystem(new_variables, self.params)
        for c in self.constraints:
            # split coefficients into variable part and parameter part
            var_coeffs = [c.coeff(v) for v in self.variables]
            new_var_coeffs = adj.vecmat(var_coeffs)  # row-vector times adj
            coeffs: dict[str, int] = {
                nv: sign * cc for nv, cc in zip(new_variables, new_var_coeffs)
            }
            for k, v in c.coeffs:
                if k in self.params:
                    coeffs[k] = coeffs.get(k, 0) + scale * v
            out.add_ineq(coeffs, scale * c.const)
        return out


def fourier_motzkin(system: ConstraintSystem, var: str) -> ConstraintSystem:
    """Eliminate ``var`` from the system (rational projection)."""
    if var not in system.variables:
        raise ValueError(f"{var} is not an eliminable variable")
    lowers, uppers, rest = [], [], []
    for c in system.constraints:
        a = c.coeff(var)
        if a > 0:
            lowers.append(c)
        elif a < 0:
            uppers.append(c)
        else:
            rest.append(c)
    new_vars = tuple(v for v in system.variables if v != var)
    out = ConstraintSystem(new_vars, system.params, rest)
    for lo in lowers:
        a = lo.coeff(var)
        for up in uppers:
            b = -up.coeff(var)
            # a*var >= -(lo without var);  b*var <= (up without var)
            coeffs: dict[str, int] = {}
            for k, v in lo.drop(var):
                coeffs[k] = coeffs.get(k, 0) + b * v
            for k, v in up.drop(var):
                coeffs[k] = coeffs.get(k, 0) + a * v
            out.add_ineq(coeffs, b * lo.const + a * up.const)
    return out


def bounds_by_level(system: ConstraintSystem) -> list[LoopBound]:
    """Compute per-loop bounds by eliminating variables innermost-first.

    Level ``j``'s bounds may reference variables ``0..j-1`` and parameters.
    """
    levels: list[LoopBound] = []
    current = system
    for var in reversed(system.variables):
        lowers, uppers = [], []
        for c in current.constraints:
            a = c.coeff(var)
            if a == 0:
                continue
            other = c.drop(var)
            if a > 0:
                # a*var + rest + const >= 0  =>  var >= (-rest - const)/a
                lowers.append(
                    BoundTerm(
                        tuple((k, -v) for k, v in other), -c.const, a
                    )
                )
            else:
                # var <= (rest + const)/(-a)
                uppers.append(BoundTerm(other, c.const, -a))
        if not lowers or not uppers:
            raise ValueError(f"loop variable {var} is unbounded in the system")
        levels.append(LoopBound(var, tuple(lowers), tuple(uppers)))
        current = fourier_motzkin(current, var)
    levels.reverse()
    return levels


@dataclass(frozen=True)
class TransformedBounds:
    """Scannable description of a transformed iteration space.

    ``bounds[j]`` bound the j-th new loop; ``strides[j]`` is its step.
    When ``exact`` is False the scan visits a superset lattice and each
    candidate point must pass :meth:`point_is_image` before executing.
    """

    bounds: tuple[LoopBound, ...]
    strides: tuple[int, ...]
    exact: bool
    t: IMat

    def point_is_image(self, point: Sequence[int]) -> bool:
        """True iff ``point`` is ``T @ I`` for an *integer* ``I``."""
        if self.exact:
            return True
        adj, d = self.t.inverse_pair()
        return all(v % d == 0 for v in adj.matvec(point))


def loop_bounds_for_transform(
    system: ConstraintSystem, t: IMat, new_variables: Sequence[str]
) -> TransformedBounds:
    """Bounds + strides scanning ``{T·I : I integer, I in system}``.

    Unimodular ``T`` gives an exact scan with unit strides.  For general
    non-singular ``T`` the image lattice ``T·Z^k`` has column HNF ``H``;
    the j-th loop steps by ``H[j,j]`` and a residual integrality guard
    (``exact=False``) filters the (rare) stragglers from off-diagonal
    congruence coupling.
    """
    new_sys = system.transformed(t, new_variables)
    bounds = tuple(bounds_by_level(new_sys))
    det = t.det()
    if abs(det) == 1:
        return TransformedBounds(bounds, (1,) * len(bounds), True, t)
    h, _ = column_hnf(t)
    strides = tuple(abs(h[j, j]) for j in range(t.nrows))
    # Strides are sound only if lower bounds land on the lattice; keep
    # stride 1 + guard when off-diagonal coupling exists (always sound).
    coupled = any(
        h[i, j] != 0 for i in range(t.nrows) for j in range(t.ncols) if i != j
    )
    if coupled:
        strides = (1,) * len(bounds)
    return TransformedBounds(bounds, strides, False, t)


def iterate_bounds(
    bounds: Sequence[LoopBound],
    binding: Mapping[str, int],
    strides: Sequence[int] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Enumerate the integer points described by per-level bounds, in
    lexicographic order, given concrete parameter values."""
    strides = tuple(strides) if strides is not None else (1,) * len(bounds)
    env = dict(binding)
    point: list[int] = []

    def rec(level: int) -> Iterator[tuple[int, ...]]:
        if level == len(bounds):
            yield tuple(point)
            return
        b = bounds[level]
        lo, hi = b.eval_range(env)
        step = strides[level]
        v = lo
        while v <= hi:
            env[b.var] = v
            point.append(v)
            yield from rec(level + 1)
            point.pop()
            del env[b.var]
            v += step

    return rec(0)


def enumerate_lattice_points(
    system: ConstraintSystem, binding: Mapping[str, int]
) -> list[tuple[int, ...]]:
    """Brute-force reference enumeration (lex order) of the system's integer
    points — used by tests to validate Fourier–Motzkin bounds."""
    bounds = bounds_by_level(system)
    return [p for p in iterate_bounds(bounds, binding) if _valid(system, bounds, p, binding)]


def _valid(
    system: ConstraintSystem,
    bounds: Sequence[LoopBound],
    point: Sequence[int],
    binding: Mapping[str, int],
) -> bool:
    env = dict(binding)
    env.update({b.var: v for b, v in zip(bounds, point)})
    return system.satisfied(env)
