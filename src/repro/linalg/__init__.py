"""Exact integer / rational linear algebra for compiler transformations.

Everything in this package works over the integers (or rationals where
unavoidable) with *exact* arithmetic — loop and data transformation
matrices must be exact, since a rounded entry silently changes program
semantics.  Matrices are small (loop depth / array rank, i.e. 1..6), so
clarity and exactness beat asymptotics.

Public surface:

- :class:`IMat` — immutable exact integer matrix with det / inverse /
  Hermite & Smith normal forms.
- :func:`kernel_basis` — integer basis of the null space.
- :func:`complete_to_unimodular` — Bik–Wijshoff-style completion of a
  partial column set to a full unimodular matrix.
- :class:`ConstraintSystem` / :func:`fourier_motzkin` /
  :func:`loop_bounds` — polyhedral bound generation for transformed
  loop nests.
"""

from .exact import gcd_all, lcm_all, extended_gcd, is_primitive, primitive
from .matrix import IMat, identity, from_rows, from_cols
from .hnf import hermite_normal_form, column_hnf, smith_normal_form
from .kernel import kernel_basis, min_gcd_kernel_vector, kernel_contains
from .completion import (
    complete_to_unimodular,
    unimodular_with_last_column,
    unimodular_with_first_row,
)
from .diophantine import (
    DiophantineSolution,
    has_integer_solution,
    solve_diophantine,
)
from .fourier_motzkin import (
    Constraint,
    ConstraintSystem,
    fourier_motzkin,
    LoopBound,
    loop_bounds_for_transform,
    enumerate_lattice_points,
)

__all__ = [
    "gcd_all",
    "lcm_all",
    "extended_gcd",
    "is_primitive",
    "primitive",
    "IMat",
    "identity",
    "from_rows",
    "from_cols",
    "hermite_normal_form",
    "column_hnf",
    "smith_normal_form",
    "kernel_basis",
    "min_gcd_kernel_vector",
    "kernel_contains",
    "complete_to_unimodular",
    "unimodular_with_last_column",
    "unimodular_with_first_row",
    "DiophantineSolution",
    "has_integer_solution",
    "solve_diophantine",
    "Constraint",
    "ConstraintSystem",
    "fourier_motzkin",
    "LoopBound",
    "loop_bounds_for_transform",
    "enumerate_lattice_points",
]
