"""``syr2k`` — BLAS symmetric rank-2k update (three 2-D arrays, iter 2).

``C := C + A·Bᵀ + B·Aᵀ`` over the upper triangle.  With k innermost the
four reads walk rows (column-major files lose); putting i innermost
gives two reads column locality and the other two *temporal* locality —
a loop transformation captures reuse no layout can, so ``l-opt``/
``c-opt`` beat ``d-opt``.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="BLAS",
    iters=2,
    arrays="three 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("syr2k", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    # BLAS prologue: C := beta * C over the same triangle
    with b.nest("syr2k.scale", weight=META["iters"]) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", i, N)
        nb.assign(C[i, j], C[i, j] * 0.5)
    with b.nest("syr2k.upd", weight=META["iters"]) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", i, N)
        k = nb.loop("k", 1, N)
        nb.assign(
            C[i, j],
            C[i, j] + A[i, k] * B[j, k] + B[i, k] * A[j, k],
        )
    return b.build()
