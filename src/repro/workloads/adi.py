"""``adi`` — Livermore ADI integration (three 1-D, three 3-D arrays,
iter 5).

Alternating-direction sweeps: the forward sweep recurs along rows, the
reverse sweep along columns of the *same* arrays.  Loop transformations
fix each sweep under any fixed layout (``l-opt`` shines); pure layout
transformations hit the conflicting requirement between the sweeps and
leave one direction unoptimized (``d-opt`` ≈ halfway) — the paper's
clearest loop-transformation win.

The third array dimension is the small hard-coded plane index the paper
leaves unscaled.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Livermore",
    iters=5,
    arrays="three 1-D, three 3-D",
)

PLANES = 2  # small hard-coded dimension (paper Section 4)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("adi", params=("N",), default_binding={"N": n})
    N = b.param("N")
    du1 = b.array("DU1", (N,))
    du2 = b.array("DU2", (N,))
    du3 = b.array("DU3", (N,))
    u1 = b.array("U1", (N, N, PLANES))
    u2 = b.array("U2", (N, N, PLANES))
    u3 = b.array("U3", (N, N, PLANES))
    w = META["iters"]
    # x-sweep: recurrence along j (rows); wants row-major-ish access
    with b.nest("adi.x", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 2, N)
        nb.assign(
            u1[i, j, 1],
            u1[i, j - 1, 1] + du1[j] * u2[i, j, 1] + u3[i, j, 1],
        )
    # y-sweep: the same U1 traversed along the other dimension; wants
    # column-major-ish access — the conflicting layout requirement that
    # only a loop transformation can reconcile
    with b.nest("adi.y", weight=w) as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N)
        nb.assign(u1[j, i, 2], u1[j, i - 1, 2] * du2[i])
    # update sweep folding the planes back (reads both, writes plane 1)
    with b.nest("adi.upd", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(
            u2[i, j, 1], u1[i, j, 1] + u1[i, j, 2] + du3[j] * u3[i, j, 1]
        )
    return b.build()
