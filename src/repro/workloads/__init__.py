"""The ten benchmark codes of the paper's evaluation (Table 1).

Each module models its namesake's *access-pattern structure* — the array
counts and dimensionalities of Table 1 and the locality character that
drives its Table 2 behaviour — as an affine program the optimizer can
analyze.  The sources are re-derived, not transcribed: the optimizer
consumes only access matrices and loop bounds, so what must match is the
optimization problem, not the numerics (see DESIGN.md §2).

Every module exposes ``build(n=...) -> Program`` and ``META``.

Alongside the ten paper codes, the ``ANALYTICS`` registry carries the
big-array analytics family (``window``, ``ajoin``, ``pipeline``) used
by the storage-backend benchmarks; see ``registry.py``.
"""

from .registry import (
    ANALYTICS,
    WORKLOADS,
    WorkloadMeta,
    analytics_names,
    build_analytics,
    build_workload,
    workload_names,
)

__all__ = [
    "ANALYTICS",
    "WORKLOADS",
    "WorkloadMeta",
    "analytics_names",
    "build_analytics",
    "build_workload",
    "workload_names",
]
