"""``btrix`` — Spec92 block tridiagonal solver (twenty-five 1-D, four
4-D arrays, iter 2).

Three of the 4-D arrays are row-walked behind a skewed dependence (no
legal loop fix, like ``vpenta``), but the fourth is accessed transposed
— so a *single* fixed layout cannot win: ``row`` fixes three arrays and
breaks the fourth, and only per-array layout selection (``d-opt`` /
``c-opt``) fixes all four.  The twenty-five 1-D coefficient vectors ride
along with temporal or stride-1 locality.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Spec92",
    iters=2,
    arrays="twenty-five 1-D, four 4-D",
)

S = 2  # small hard-coded block dimensions


def build(n: int = 64) -> Program:
    b = ProgramBuilder("btrix", params=("N",), default_binding={"N": n})
    N = b.param("N")
    coeffs = [b.array(f"S{k:02d}", (N,)) for k in range(1, 26)]
    ea = b.array("EA", (N, N, S, S))
    eb = b.array("EB", (N, N, S, S))
    ec = b.array("EC", (N, N, S, S))
    ed = b.array("ED", (N, N, S, S))
    w = META["iters"]

    # coefficient setup touches all twenty-five 1-D arrays
    with b.nest("btrix.coef", weight=w) as nb:
        i = nb.loop("i", 2, N)
        for k, cf in enumerate(coeffs):
            prev = coeffs[k - 1] if k else coeffs[-1]
            nb.assign(cf[i], prev[i - 1] * 0.5 + float(k))

    # forward block elimination: skewed dependence, row walks
    with b.nest("btrix.fwd", weight=w) as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N - 1)
        nb.assign(
            ea[i, j, 1, 1],
            ea[i - 1, j + 1, 1, 1] + eb[i, j, 1, 2] * coeffs[0][i],
        )
        nb.assign(
            ec[i, j, 2, 1],
            ec[i - 1, j + 1, 2, 1] + eb[i, j, 2, 2] * coeffs[1][i],
        )
    # back substitution reads ED transposed: wants the opposite layout
    with b.nest("btrix.bwd", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 2, N)
        nb.assign(
            ed[j, i, 1, 1],
            ed[j - 1, i, 1, 1] + ea[i, j, 1, 1] * coeffs[2][j],
        )
    return b.build()
