"""``mxm`` — Spec92 matrix multiply (three 2-D arrays, iter 3).

The Spec92 kernel's jki ordering leaves i innermost: already ideal for
column-major files (``col`` ≈ ``l-opt`` ≈ ``d-opt``), terrible for
row-major — and the integrated version still wins by *tiling all but
the innermost loop* (pure Section 3.3 effect).
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Spec92",
    iters=3,
    arrays="three 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("mxm", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    # the Spec92 kernel zeroes the result column-block first (ji order,
    # i innermost: column-major friendly like the main kernel)
    with b.nest("mxm.init", weight=META["iters"]) as nb:
        j = nb.loop("j", 1, N)
        i = nb.loop("i", 1, N)
        nb.assign(C[i, j], 0.0)
    with b.nest("mxm.jki", weight=META["iters"]) as nb:
        j = nb.loop("j", 1, N)
        k = nb.loop("k", 1, N)
        i = nb.loop("i", 1, N)
        nb.assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    return b.build()
