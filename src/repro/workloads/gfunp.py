"""``gfunp`` — Hompack polynomial-system Green's function setup (one
1-D, five 2-D arrays, iter 3).

A chain of nests, each writing one array row-wise while reading the
previous one transposed — the paper's motivating pattern iterated: loop
transformations alone or layouts alone each leave a reference per nest
unoptimized; only the combined propagation (``c-opt``) cleans up every
reference, which is why gfunp shows the biggest ``c-opt`` gap in
Table 2.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Hompack",
    iters=3,
    arrays="one 1-D, five 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("gfunp", params=("N",), default_binding={"N": n})
    N = b.param("N")
    wv = b.array("WV", (N,))
    q1 = b.array("Q1", (N, N))
    q2 = b.array("Q2", (N, N))
    q3 = b.array("Q3", (N, N))
    q4 = b.array("Q4", (N, N))
    q5 = b.array("Q5", (N, N))
    w = META["iters"]
    with b.nest("gfunp.g1", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(q1[i, j], q2[j, i] + wv[j])
    with b.nest("gfunp.g2", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(q2[i, j], q3[j, i] * 0.5)
    with b.nest("gfunp.g3", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(q3[i, j], q4[j, i] + q5[i, j])
    return b.build()
