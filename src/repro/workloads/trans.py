"""``trans`` — out-of-core matrix transpose from Nwchem (two 2-D arrays,
iter 3).

``B(i,j) = A(j,i)``: spatial reuses lie in orthogonal directions, so no
loop transformation can help both references (``l-opt`` = ``col`` =
``row``), while a layout transformation fixes everything — the cleanest
data-transformation showcase in the suite.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Nwchem",
    iters=3,
    arrays="two 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("trans", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    with b.nest("trans.t", weight=META["iters"]) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(B[i, j], A[j, i] + 0.0)
    return b.build()
