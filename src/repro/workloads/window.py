"""``window`` — windowed aggregation over a big 2-D array.

The first of the big-array analytics family ("Optimizing I/O for Big
Array Analytics", PAPERS.md): every output cell sums a sliding window
of ``W`` neighbours along the row direction — the array-database
version of a moving average.  The access pattern is a short stencil:
under a row-major file the window is one contiguous run per row
segment, under column-major it shatters into ``W`` strided columns per
tile — layout sensitivity the ten 1999 kernels only show indirectly.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

#: window width (paper-style small constant, like adi's plane count)
W = 4

META = dict(
    source="analytics",
    iters=1,
    arrays="two 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("window", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    S = b.array("S", (N, N))
    w = META["iters"]
    with b.nest("window.init", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(S[i, j], 0.0)
    # sliding-window sum: S[i,j] = sum_{k<W} A[i, j+k] over the valid
    # window anchors (rightmost W-1 columns have no full window)
    with b.nest("window.agg", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N - (W - 1))
        k = nb.loop("k", 0, W - 1)
        nb.assign(S[i, j], S[i, j] + A[i, j + k])
    return b.build()
