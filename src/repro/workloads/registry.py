"""Registry of the ten evaluation codes (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir import Program
from . import adi, btrix, emit, gfunp, htribk, mat, mxm, syr2k, trans, vpenta

_MODULES = {
    "mat": mat,
    "mxm": mxm,
    "adi": adi,
    "vpenta": vpenta,
    "btrix": btrix,
    "emit": emit,
    "syr2k": syr2k,
    "htribk": htribk,
    "gfunp": gfunp,
    "trans": trans,
}


@dataclass(frozen=True)
class WorkloadMeta:
    name: str
    source: str
    iters: int
    arrays: str
    build: Callable[..., Program]


WORKLOADS: dict[str, WorkloadMeta] = {
    name: WorkloadMeta(
        name=name,
        source=mod.META["source"],
        iters=mod.META["iters"],
        arrays=mod.META["arrays"],
        build=mod.build,
    )
    for name, mod in _MODULES.items()
}


def workload_names() -> list[str]:
    return list(WORKLOADS)


def build_workload(name: str, n: int | None = None) -> Program:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {workload_names()}")
    meta = WORKLOADS[name]
    return meta.build(n) if n is not None else meta.build()
