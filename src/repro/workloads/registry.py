"""Registries of the evaluation codes.

``WORKLOADS`` holds exactly the ten paper kernels (Table 1);
``ANALYTICS`` holds the big-array analytics family (windowed
aggregation, array join, multi-stage pipeline) added for the storage
backends.  They share the ``WorkloadMeta`` shape but are kept separate
so the paper-reproduction sweeps stay the paper's ten codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir import Program
from . import (
    adi,
    ajoin,
    btrix,
    emit,
    gfunp,
    htribk,
    mat,
    mxm,
    pipeline,
    syr2k,
    trans,
    vpenta,
    window,
)

_MODULES = {
    "mat": mat,
    "mxm": mxm,
    "adi": adi,
    "vpenta": vpenta,
    "btrix": btrix,
    "emit": emit,
    "syr2k": syr2k,
    "htribk": htribk,
    "gfunp": gfunp,
    "trans": trans,
}

_ANALYTICS_MODULES = {
    "window": window,
    "ajoin": ajoin,
    "pipeline": pipeline,
}


@dataclass(frozen=True)
class WorkloadMeta:
    name: str
    source: str
    iters: int
    arrays: str
    build: Callable[..., Program]


WORKLOADS: dict[str, WorkloadMeta] = {
    name: WorkloadMeta(
        name=name,
        source=mod.META["source"],
        iters=mod.META["iters"],
        arrays=mod.META["arrays"],
        build=mod.build,
    )
    for name, mod in _MODULES.items()
}


ANALYTICS: dict[str, WorkloadMeta] = {
    name: WorkloadMeta(
        name=name,
        source=mod.META["source"],
        iters=mod.META["iters"],
        arrays=mod.META["arrays"],
        build=mod.build,
    )
    for name, mod in _ANALYTICS_MODULES.items()
}


def workload_names() -> list[str]:
    return list(WORKLOADS)


def analytics_names() -> list[str]:
    return list(ANALYTICS)


def build_workload(name: str, n: int | None = None) -> Program:
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {workload_names()}")
    meta = WORKLOADS[name]
    return meta.build(n) if n is not None else meta.build()


def build_analytics(name: str, n: int | None = None) -> Program:
    if name not in ANALYTICS:
        raise KeyError(f"unknown analytics workload {name!r}; "
                       f"known: {analytics_names()}")
    meta = ANALYTICS[name]
    return meta.build(n) if n is not None else meta.build()
