"""``pipeline`` — three-stage analytics pipeline over intermediates.

Big-array analytics workload shaped like a dataflow query plan:

  stage 1 (``pipe.scale``)      T1 = 2·A + A          row-friendly
  stage 2 (``pipe.transpose``)  T2 = T1ᵀ              orientation flip
  stage 3 (``pipe.window``)     S  = window-sum(T2)   row-friendly again

``T1`` and ``T2`` are materialized intermediates that exist only
between stages, so each can take a *different* file layout: stage 1
writes ``T1`` row-wise but stage 2 reads it column-wise, while ``T2``
is produced and consumed row-wise.  The ingest stage runs once per
load while the analysis stages (2 and 3) run ``QUERY_ITERS`` times —
the array-database pattern of many queries over one ingest — so
``T1``'s column-wise reads outweigh its one row-wise write.  A fixed
whole-pipeline layout must compromise somewhere; choosing layouts per
intermediate (what the d-opt/c-opt versions do) recovers the lost
locality.  This is the workload the backend benchmarks use to show
per-stage intermediate layouts beating a fixed layout on real storage.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

#: window width of the final aggregation stage
W = 4

#: how many times the analysis stages run per ingest
QUERY_ITERS = 3

META = dict(
    source="analytics",
    iters=QUERY_ITERS,
    arrays="four 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("pipeline", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    T1 = b.array("T1", (N, N))
    T2 = b.array("T2", (N, N))
    S = b.array("S", (N, N))
    with b.nest("pipe.scale", weight=1) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(T1[i, j], 2.0 * A[i, j] + A[i, j])
    with b.nest("pipe.transpose", weight=QUERY_ITERS) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(T2[i, j], T1[j, i] + 0.0)
    with b.nest("pipe.initwin", weight=QUERY_ITERS) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(S[i, j], 0.0)
    with b.nest("pipe.window", weight=QUERY_ITERS) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N - (W - 1))
        k = nb.loop("k", 0, W - 1)
        nb.assign(S[i, j], S[i, j] + T2[i, j + k])
    return b.build()
