"""``ajoin`` — array join with mismatched key orientations.

Big-array analytics workload: join two 2-D arrays whose "keys" run in
orthogonal directions — ``A`` is stored record-major, ``B`` arrives
transposed (the classic array-database case of joining a matrix with
its co-matrix).  The probe nest reads ``A[i,j]`` against ``B[j,i]``, so
no single loop order is friendly to both operands and the layout
optimizer has to pick which array to re-lay (the same tension as the
1999 ``trans``/``htrib`` kernels, but with a third, written array in
the loop).  A reduction nest then folds the join result along the
column direction, reading ``C`` orthogonally to how it was written.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="analytics",
    iters=1,
    arrays="three 2-D, one 1-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("ajoin", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    D = b.array("D", (N,))
    w = META["iters"]
    # probe: element-wise join of A with the transpose of B
    with b.nest("ajoin.probe", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(C[i, j], A[i, j] * B[j, i])
    with b.nest("ajoin.initred", weight=w) as nb:
        j = nb.loop("j", 1, N)
        nb.assign(D[j], 0.0)
    # fold the join result down columns — orthogonal to how C was written
    with b.nest("ajoin.reduce", weight=w) as nb:
        j = nb.loop("j", 1, N)
        i = nb.loop("i", 1, N)
        nb.assign(D[j], D[j] + C[i, j])
    return b.build()
