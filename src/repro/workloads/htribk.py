"""``htribk`` — Eispack back-transformation of a complex Hermitian
matrix (five 2-D arrays, iter 3).

Form the eigenvectors of the original matrix from those of the reduced
one: a transposed copy-in, a triple-nest accumulation, and a tau-scaled
correction.  Per-array layouts (``d-opt``) fix the conflicting accesses;
fixed-layout loop optimization helps less.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Eispack",
    iters=3,
    arrays="five 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("htribk", params=("N",), default_binding={"N": n})
    N = b.param("N")
    ar = b.array("AR", (N, N))
    ai = b.array("AI", (N, N))
    zr = b.array("ZR", (N, N))
    zi = b.array("ZI", (N, N))
    tau = b.array("TAU", (2, N))
    w = META["iters"]
    with b.nest("htribk.copy", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(zi[i, j], 0.0 - ai[j, i] * tau[2, j])
    with b.nest("htribk.accum", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        k = nb.loop("k", 1, N)
        nb.assign(zr[i, j], zr[i, j] + ar[i, k] * zi[k, j])
    with b.nest("htribk.fix", weight=w) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(zr[i, j], zr[i, j] - tau[1, i] * zi[i, j])
    return b.build()
