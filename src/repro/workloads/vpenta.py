"""``vpenta`` — Spec92/NAS pentadiagonal inversion (seven 2-D, two 3-D
arrays, iter 3).

Each elimination nest walks most arrays along rows behind a skewed
``(1,-1)`` recurrence while reading one coefficient array transposed:
no single loop order serves every reference against fixed layouts
(``l-opt`` stays near ``col``), while per-array layout selection fixes
all of them (``row`` fixes most, ``d-opt`` = ``c-opt`` fix everything).
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Spec92",
    iters=3,
    arrays="seven 2-D, two 3-D",
)

PLANES = 2


def build(n: int = 64) -> Program:
    b = ProgramBuilder("vpenta", params=("N",), default_binding={"N": n})
    N = b.param("N")
    a = b.array("A", (N, N))
    bb = b.array("B", (N, N))
    c = b.array("C", (N, N))
    d = b.array("D", (N, N))
    e = b.array("E", (N, N))
    f = b.array("F", (N, N))
    x = b.array("X", (N, N))
    fx = b.array("FX", (N, N, PLANES))
    fy = b.array("FY", (N, N, PLANES))
    w = META["iters"]
    # forward elimination: skewed recurrence on X, transposed read of B
    with b.nest("vpenta.fwd", weight=w) as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N - 1)
        nb.assign(
            x[i, j],
            x[i - 1, j + 1] + a[i, j] * bb[j, i] + c[i, j],
        )
    # back substitution: same shape over the next array group
    with b.nest("vpenta.bwd", weight=w) as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N - 1)
        nb.assign(
            e[i, j],
            e[i - 1, j + 1] + d[i, j] * f[j, i] + x[i, j],
        )
    # plane update on the 3-D scratch arrays (FY read transposed)
    with b.nest("vpenta.pln", weight=w) as nb:
        i = nb.loop("i", 2, N)
        j = nb.loop("j", 1, N - 1)
        nb.assign(
            fx[i, j, 1],
            fx[i - 1, j + 1, 1] + fy[j, i, 1] * e[i, j],
        )
    return b.build()
