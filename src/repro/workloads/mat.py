"""``mat`` — dense matrix multiply, C = C + A·B (three 2-D arrays, iter 2).

The classic ijk nest with k innermost: under the default column-major
layouts the ``A(i,k)`` row walk is the pathology; loop transformations
(make i innermost) or layout transformations (A row-major) both help,
and the combined approach picks whichever is cheaper globally.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="-",
    iters=2,
    arrays="three 2-D",
)


def build(n: int = 64) -> Program:
    b = ProgramBuilder("mat", params=("N",), default_binding={"N": n})
    N = b.param("N")
    A = b.array("A", (N, N))
    B = b.array("B", (N, N))
    C = b.array("C", (N, N))
    with b.nest("mat.init", weight=META["iters"]) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        nb.assign(C[i, j], 0.0)
    with b.nest("mat.mm", weight=META["iters"]) as nb:
        i = nb.loop("i", 1, N)
        j = nb.loop("j", 1, N)
        k = nb.loop("k", 1, N)
        nb.assign(C[i, j], C[i, j] + A[i, k] * B[k, j])
    return b.build()
