"""``emit`` — Spec92 particle emission kernel (ten 1-D, three 3-D
arrays, iter 2).

The code already walks every 3-D array first-index-fastest: the default
column-major files are optimal, so *no* version can improve on ``col``
(the whole ``l/d/c-opt`` row of Table 2 is 100.0) and ``row`` is the
only way to lose.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder

META = dict(
    source="Spec92",
    iters=2,
    arrays="ten 1-D, three 3-D",
)

PLANES = 2


def build(n: int = 64) -> Program:
    b = ProgramBuilder("emit", params=("N",), default_binding={"N": n})
    N = b.param("N")
    vecs = [b.array(f"V{k}", (N,)) for k in range(1, 11)]
    e1 = b.array("E1", (N, N, PLANES))
    e2 = b.array("E2", (N, N, PLANES))
    e3 = b.array("E3", (N, N, PLANES))
    w = META["iters"]
    with b.nest("emit.field", weight=w) as nb:
        j = nb.loop("j", 1, N)
        i = nb.loop("i", 1, N)
        nb.assign(
            e1[i, j, 1],
            e1[i, j, 1] + e2[i, j, 1] * vecs[0][i] + e3[i, j, 2] * vecs[1][i],
        )
    with b.nest("emit.charge", weight=w) as nb:
        j = nb.loop("j", 1, N)
        i = nb.loop("i", 1, N)
        nb.assign(
            e2[i, j, 2],
            e1[i, j, 1] * vecs[2][i] + e3[i, j, 1] * vecs[3][i],
        )
    with b.nest("emit.tail", weight=w) as nb:
        i = nb.loop("i", 2, N)
        for k in range(4, 10):
            nb.assign(vecs[k][i], vecs[k - 1][i - 1] + vecs[k][i] * 0.5)
    return b.build()
