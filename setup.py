"""Shim so the package installs in environments without the `wheel`
package (offline boxes): `python setup.py develop` / `pip install -e .
--no-build-isolation` both work through this."""

from setuptools import setup

setup()
