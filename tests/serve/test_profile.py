import json

import pytest

from repro.serve import (
    ClusterProfile,
    JobSpec,
    ServeConfigError,
    ServePolicy,
    TenantConfig,
    WorkloadScript,
    demo_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


class TestTenantConfig:
    def test_defaults(self):
        t = TenantConfig("a")
        assert t.weight == 1.0
        assert t.cache_quota_elements == 0
        assert t.memory_budget_elements is None and t.max_inflight is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a", "weight": 0.0},
            {"name": "a", "weight": -1.0},
            {"name": "a", "weight": float("inf")},
            {"name": "a", "memory_budget_elements": 0},
            {"name": "a", "cache_quota_elements": -1},
            {"name": "a", "max_inflight": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeConfigError):
            TenantConfig(**kwargs)

    def test_error_names_the_tenant(self):
        with pytest.raises(ServeConfigError, match="'billing'"):
            TenantConfig("billing", weight=-2.0)


class TestClusterProfile:
    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ServeConfigError, match="duplicate"):
            ClusterProfile(tenants=(TenantConfig("a"), TenantConfig("a")))

    def test_quotas_must_fit_budget(self):
        with pytest.raises(ServeConfigError, match="exceed"):
            ClusterProfile(
                tenants=(
                    TenantConfig("a", cache_quota_elements=60),
                    TenantConfig("b", cache_quota_elements=60),
                ),
                cache_budget_elements=100,
            )

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ServeConfigError):
            ClusterProfile(n_compute_nodes=0)

    def test_tenant_lookup(self):
        p = ClusterProfile(tenants=(TenantConfig("a"), TenantConfig("b")))
        assert p.tenant("a").name == "a"
        assert p.tenant_names == ("a", "b")
        with pytest.raises(ServeConfigError, match="unknown tenant"):
            p.tenant("zz")


class TestServePolicy:
    def test_defaults(self):
        assert ServePolicy().fairness == "wfq"

    def test_validation(self):
        with pytest.raises(ServeConfigError):
            ServePolicy(fairness="lottery")
        with pytest.raises(ServeConfigError):
            ServePolicy(max_job_retries=-1)


class TestJobSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": "", "workload": "adi"},
            {"tenant": "a", "workload": ""},
            {"tenant": "a", "workload": "adi", "version": "nope"},
            {"tenant": "a", "workload": "adi", "n": 0},
            {"tenant": "a", "workload": "adi", "n_nodes": 0},
            {"tenant": "a", "workload": "adi", "arrival_s": -1.0},
            {"tenant": "a", "workload": "adi", "arrival_s": float("nan")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServeConfigError):
            JobSpec(**kwargs)


class TestScenarioSerialization:
    def scenario(self):
        profile = ClusterProfile(
            n_compute_nodes=4,
            tenants=(
                TenantConfig("a", weight=2.0, cache_quota_elements=32),
                TenantConfig("b", memory_budget_elements=4096),
            ),
            cache_budget_elements=128,
        )
        script = WorkloadScript(
            seed=7,
            jobs=(
                JobSpec("a", "adi", n=12),
                JobSpec("b", "trans", n=12, arrival_s=0.5),
            ),
        )
        return profile, script, ServePolicy(fairness="fifo", max_job_retries=2)

    def test_round_trip(self):
        profile, script, policy = self.scenario()
        doc = scenario_to_dict(profile, script, policy)
        doc = json.loads(json.dumps(doc))  # through real JSON
        p2, s2, pol2 = scenario_from_dict(doc)
        assert p2 == profile
        assert s2 == script
        assert pol2 == policy

    def test_load_scenario_file(self, tmp_path):
        profile, script, policy = self.scenario()
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario_to_dict(profile, script, policy)))
        p2, s2, pol2 = load_scenario(str(path))
        assert (p2, s2, pol2) == (profile, script, policy)

    def test_load_scenario_errors_are_named(self, tmp_path):
        with pytest.raises(ServeConfigError, match="not found"):
            load_scenario(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ServeConfigError, match="malformed"):
            load_scenario(str(bad))
        with pytest.raises(ServeConfigError, match="malformed"):
            scenario_from_dict({"jobs": [{"unknown_field": 1}]})


class TestDemoScenario:
    def test_seeded_and_deterministic(self):
        a = demo_scenario(3)
        b = demo_scenario(3)
        assert a == b
        c = demo_scenario(4)
        assert c != a

    def test_shapes(self):
        profile, script, policy = demo_scenario(
            0, n_tenants=2, jobs_per_tenant=4
        )
        assert len(profile.tenants) == 2
        assert len(script.jobs) == 8
        assert policy.fairness == "wfq"
        # arrivals sorted, every job's tenant known
        arrivals = [j.arrival_s for j in script.jobs]
        assert arrivals == sorted(arrivals)
        for j in script.jobs:
            profile.tenant(j.tenant)

    def test_cache_budget_partitioned(self):
        profile, _, _ = demo_scenario(0, cache_budget_elements=1000)
        assert profile.cache_budget_elements == 1000
        quotas = sum(t.cache_quota_elements for t in profile.tenants)
        assert 0 < quotas <= 1000

    def test_validation(self):
        with pytest.raises(ServeConfigError):
            demo_scenario(0, n_tenants=0)
