import pytest

from repro.cache import CacheBudgetError
from repro.serve import SharedTileCache


def R(lo, hi):
    return ((lo, hi),)


class TestQuotaValidation:
    def test_negative_quota_names_tenant(self):
        with pytest.raises(CacheBudgetError, match="'a'"):
            SharedTileCache(100, {"a": -1})

    def test_non_numeric_quota(self):
        with pytest.raises(CacheBudgetError, match="'a'"):
            SharedTileCache(100, {"a": "lots"})

    def test_quotas_exceed_budget(self):
        with pytest.raises(CacheBudgetError, match="exceeding"):
            SharedTileCache(100, {"a": 60, "b": 60})

    def test_zero_budget_rejected(self):
        with pytest.raises(CacheBudgetError):
            SharedTileCache(0, {"a": 0})

    def test_unknown_tenant_rejected(self):
        c = SharedTileCache(100, {"a": 50})
        with pytest.raises(CacheBudgetError, match="unknown tenant"):
            c.lookup("zz", "A", R(0, 9))
        with pytest.raises(CacheBudgetError, match="unknown tenant"):
            c.insert("zz", "A", R(0, 9))


class TestBasics:
    def test_insert_lookup_namespaced(self):
        c = SharedTileCache(100, {"a": 40, "b": 40})
        assert c.insert("a", "A", R(0, 9))
        assert c.lookup("a", "A", R(0, 9)) is not None
        # same array name, other tenant: different namespace
        assert c.lookup("b", "A", R(0, 9)) is None
        assert c.usage("a") == 10 and c.usage("b") == 0
        assert c.tenant_stats["a"].hits == 1
        assert c.tenant_stats["b"].misses == 1

    def test_limit_is_reserved_plus_common_pool(self):
        c = SharedTileCache(100, {"a": 40, "b": 40})
        assert c.common_pool == 20
        assert c.limit("a") == 60

    def test_oversized_tile_declined(self):
        c = SharedTileCache(100, {"a": 40, "b": 40})
        assert not c.insert("a", "A", R(0, 60))  # 61 > limit 60
        assert c.tenant_stats["a"].rejected == 1

    def test_saved_io_priced_at_insert_cost(self):
        c = SharedTileCache(100, {"a": 100})
        c.insert("a", "A", R(0, 9), cost_s=0.25)
        c.lookup("a", "A", R(0, 9))
        c.lookup("a", "A", R(0, 9))
        assert c.tenant_stats["a"].saved_io_s == pytest.approx(0.5)
        assert c.saved_io_s == pytest.approx(0.5)

    def test_own_entries_evicted_when_full(self):
        c = SharedTileCache(30, {"a": 30})
        for i in range(4):  # 4 × 10 elements into a 30-element pool
            assert c.insert("a", "A", R(100 * i, 100 * i + 9))
        assert c.usage("a") == 30
        assert c.tenant_stats["a"].evictions == 1
        # LRU: the oldest tile went
        assert c.lookup("a", "A", R(0, 9)) is None

    def test_invalidate_own_namespace_only(self):
        c = SharedTileCache(100, {"a": 40, "b": 40})
        c.insert("a", "A", R(0, 9))
        c.insert("b", "A", R(0, 9))
        dropped = c.invalidate("a", "A", R(5, 20))
        assert dropped == 1
        assert c.usage("a") == 0 and c.usage("b") == 10
        assert c.lookup("b", "A", R(0, 9)) is not None


class TestIsolation:
    def test_storm_cannot_evict_below_reservation(self):
        """Tenant A's insertion storm may consume the common pool but
        never dig tenant B below its reserved quota."""
        c = SharedTileCache(100, {"a": 30, "b": 50})
        # B fills exactly its reservation
        for i in range(5):
            assert c.insert("b", "B", R(100 * i, 100 * i + 9))
        assert c.usage("b") == 50
        # A storms with far more than the whole cache
        for i in range(50):
            c.insert("a", "A", R(100 * i, 100 * i + 9))
        assert c.usage("b") == 50, "B was evicted below its reservation"
        assert c.tenant_stats["b"].evicted_by_others == 0
        # A got at most reserved(a) + common pool
        assert c.usage("a") <= c.limit("a") == 50

    def test_best_effort_overage_is_evictable(self):
        """What B holds *above* its reservation is fair game for A."""
        c = SharedTileCache(100, {"a": 30, "b": 50})
        for i in range(7):  # 70 elements: 50 reserved + 20 best-effort
            assert c.insert("b", "B", R(100 * i, 100 * i + 9))
        assert c.usage("b") == 70
        for i in range(10):
            c.insert("a", "A", R(100 * i, 100 * i + 9))
        assert c.usage("b") == 50  # trimmed to the reservation, not below
        assert c.tenant_stats["b"].evicted_by_others == 2
        # a may hold its reservation plus the whole common pool
        assert c.usage("a") == c.limit("a") == 50

    def test_insert_declined_when_no_legal_victim(self):
        """With everyone at reservation and no common pool, a full
        cache declines rather than violate isolation."""
        c = SharedTileCache(100, {"a": 50, "b": 50})
        for i in range(5):
            assert c.insert("b", "B", R(100 * i, 100 * i + 9))
        for i in range(5):
            assert c.insert("a", "A", R(100 * i, 100 * i + 9))
        # a is at its limit (50): inserting more must evict a's own
        assert c.insert("a", "A", R(1000, 1009))
        assert c.usage("a") == 50 and c.usage("b") == 50


class TestReporting:
    def test_summary_dict_shape(self):
        c = SharedTileCache(100, {"a": 40})
        c.insert("a", "A", R(0, 9), cost_s=0.1)
        c.lookup("a", "A", R(0, 9))
        s = c.summary_dict()
        assert s["budget_elements"] == 100
        assert s["in_use_elements"] == 10
        assert s["hits"] == 1
        assert s["tenants"]["a"]["usage"] == 10
        assert s["tenants"]["a"]["saved_io_s"] == pytest.approx(0.1)

    def test_publish_metrics(self):
        from repro.obs import MetricsRegistry

        c = SharedTileCache(100, {"a": 40})
        c.insert("a", "A", R(0, 9))
        reg = MetricsRegistry()
        c.publish_metrics(reg)
        d = reg.to_dict()
        assert any(k.startswith("serve.cache") for k in d)
