import json

import pytest

from repro.obs import load_trace
from repro.serve import scenario_to_dict
from repro.serve.cli import main
from repro.serve.profile import (
    ClusterProfile,
    JobSpec,
    ServePolicy,
    TenantConfig,
    WorkloadScript,
)


def small_scenario_doc():
    profile = ClusterProfile(
        n_compute_nodes=2,
        tenants=(TenantConfig("a"), TenantConfig("b")),
    )
    script = WorkloadScript(
        seed=1,
        jobs=(
            JobSpec("a", "trans", n=12),
            JobSpec("b", "trans", n=12, arrival_s=0.001),
        ),
    )
    return scenario_to_dict(profile, script, ServePolicy())


class TestDemoScript:
    def test_prints_parseable_scenario(self, capsys):
        assert main(["demo-script", "--seed", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 2
        assert doc["jobs"] and doc["tenants"]

    def test_deterministic(self, capsys):
        main(["demo-script", "--seed", "5"])
        first = capsys.readouterr().out
        main(["demo-script", "--seed", "5"])
        assert capsys.readouterr().out == first


class TestReplay:
    def test_script_replay(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(small_scenario_doc()))
        assert main(["replay", "--script", str(path)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "admit" in out and "done" in out

    def test_replay_deterministic(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(small_scenario_doc()))
        main(["replay", "--script", str(path)])
        first = capsys.readouterr().out
        main(["replay", "--script", str(path)])
        assert capsys.readouterr().out == first

    def test_fairness_override(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(small_scenario_doc()))
        assert main(
            ["replay", "--script", str(path), "--fairness", "fifo"]
        ) == 0
        assert "policy=fifo" in capsys.readouterr().out

    def test_trace_export(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        scenario.write_text(json.dumps(small_scenario_doc()))
        trace = tmp_path / "trace.json"
        assert main(
            ["replay", "--script", str(scenario), "--trace", str(trace)]
        ) == 0
        assert trace.exists()
        payload = load_trace(str(trace))
        assert "serve" in payload
        assert payload["serve"]["n_jobs"] == 2

    def test_missing_script_errors(self, tmp_path, capsys):
        code = main(["replay", "--script", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_fairness_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["replay", "--demo", "--fairness", "lottery"])
