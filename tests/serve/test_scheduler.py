import pytest

from repro.collective.sim import event_makespan
from repro.faults import FaultConfig, FaultPlan, ResiliencePolicy
from repro.obs import Observability, _payload_report
from repro.optimizer import build_version
from repro.parallel import run_version_parallel
from repro.runtime import IOStats, MachineParams
from repro.serve import (
    ClusterProfile,
    JobScheduler,
    JobSpec,
    ServeConfigError,
    ServePolicy,
    TenantConfig,
    WorkloadScript,
    serve_script,
)
from repro.workloads import build_workload

N = 12
PARAMS = MachineParams()


def profile(n_nodes=2, cache=0, tenants=("a", "b"), **tenant_kw):
    quota = cache // (2 * len(tenants)) if cache else 0
    return ClusterProfile(
        n_compute_nodes=n_nodes,
        params=PARAMS,
        tenants=tuple(
            TenantConfig(t, cache_quota_elements=quota, **tenant_kw)
            for t in tenants
        ),
        cache_budget_elements=cache,
    )


def script(*jobs, seed=0):
    return WorkloadScript(seed=seed, jobs=tuple(jobs))


def standalone(workload, n_nodes=1, n=N, version="c-opt", **kw):
    cfg = build_version(
        version, build_workload(workload, n), params=PARAMS, n_nodes=n_nodes
    )
    return run_version_parallel(cfg, n_nodes, params=PARAMS, **kw)


class TestLifecycle:
    def test_states_in_order(self):
        res = serve_script(
            profile(), script(JobSpec("a", "trans", n=N))
        )
        job = res.jobs[0]
        assert [s for s, _ in job.history] == [
            "queued", "admitted", "optimizing", "executing", "done",
        ]
        assert job.admitted_s == 0.0
        assert job.finish_s == pytest.approx(res.makespan_s)
        assert job.stats is not None and job.stats.calls > 0

    def test_unknown_tenant_rejected_up_front(self):
        with pytest.raises(ServeConfigError, match="unknown tenant"):
            serve_script(profile(), script(JobSpec("zz", "trans", n=N)))

    def test_schedule_log_events(self):
        res = serve_script(profile(), script(JobSpec("a", "trans", n=N)))
        assert [e for _, e, _ in res.schedule] == ["submit", "admit", "done"]


class TestDeterminism:
    def test_identical_schedules_and_stats(self):
        jobs = [
            JobSpec("a", "trans", n=N),
            JobSpec("b", "mxm", n=N, arrival_s=0.001),
            JobSpec("a", "trans", n=N, arrival_s=0.5),
            JobSpec("b", "trans", n=N, arrival_s=0.5),
        ]
        r1 = serve_script(profile(), script(*jobs))
        r2 = serve_script(profile(), script(*jobs))
        assert r1.signature() == r2.signature()
        assert r1.schedule == r2.schedule
        assert r1.summary_dict() == r2.summary_dict()
        assert r1.makespan_s == r2.makespan_s

    def test_cached_run_deterministic(self):
        jobs = [
            JobSpec("a", "trans", n=N),
            JobSpec("a", "trans", n=N, arrival_s=0.001),
        ]
        p = profile(n_nodes=1, cache=4096)
        r1 = serve_script(p, script(*jobs))
        r2 = serve_script(p, script(*jobs))
        assert r1.signature() == r2.signature()
        assert r1.cache.summary_dict() == r2.cache.summary_dict()


class TestExactness:
    def test_single_tenant_stats_match_standalone(self):
        """A served job's folded IOStats are the standalone parallel
        run's, field for field — serving re-prices time, not I/O."""
        res = serve_script(
            profile(), script(JobSpec("a", "trans", n=N, n_nodes=2))
        )
        ref = standalone("trans", n_nodes=2)
        assert res.jobs[0].stats == ref.total_stats
        assert res.total_stats == ref.total_stats

    def test_lone_job_reproduces_event_simulation(self):
        """One job on an idle cluster replays the standalone event-sim
        makespan: persistent queues start empty, so the serve engine's
        arithmetic is the single-run simulator's."""
        res = serve_script(
            profile(), script(JobSpec("a", "trans", n=N, n_nodes=2))
        )
        ref = standalone("trans", n_nodes=2, trace=True)
        sim = event_makespan(PARAMS, ref.node_results)
        assert res.makespan_s == pytest.approx(sim.makespan_s, rel=1e-12)

    def test_tenant_summary_is_exact_fold(self):
        jobs = [
            JobSpec("a", "trans", n=N),
            JobSpec("a", "mxm", n=N, arrival_s=0.1),
            JobSpec("b", "trans", n=N, arrival_s=0.2),
        ]
        res = serve_script(profile(), script(*jobs))
        for name, summary in res.tenants.items():
            fold = IOStats.fold(
                j.stats
                for j in res.jobs
                if j.spec.tenant == name and j.stats is not None
            )
            assert summary.stats == fold


class TestAdmissionControl:
    def test_nodes_serialize_jobs(self):
        res = serve_script(
            profile(n_nodes=1),
            script(
                JobSpec("a", "trans", n=N),
                JobSpec("a", "trans", n=N, arrival_s=0.001),
            ),
        )
        j0, j1 = res.jobs
        assert j1.admitted_s == pytest.approx(j0.finish_s)
        assert j1.queue_delay_s > 0

    def test_max_inflight_serializes(self):
        res = serve_script(
            profile(n_nodes=2, tenants=("a",), max_inflight=1),
            script(
                JobSpec("a", "trans", n=N),
                JobSpec("a", "trans", n=N, arrival_s=0.001),
            ),
        )
        j0, j1 = res.jobs
        assert j1.admitted_s == pytest.approx(j0.finish_s)

    def test_impossible_node_count_rejected(self):
        res = serve_script(
            profile(n_nodes=2), script(JobSpec("a", "trans", n=N, n_nodes=4))
        )
        job = res.jobs[0]
        assert job.state == "failed"
        assert "nodes" in job.error
        assert res.tenants["a"].rejected == 1
        assert res.tenants["a"].failed == 1

    def test_memory_budget_rejects_oversized_job(self):
        res = serve_script(
            profile(tenants=("a", "b"), memory_budget_elements=32),
            script(JobSpec("a", "trans", n=N)),
        )
        job = res.jobs[0]
        assert job.state == "failed"
        assert "memory" in job.error

    def test_unknown_workload_rejected_with_reason(self):
        res = serve_script(
            profile(), script(JobSpec("a", "not-a-workload", n=N))
        )
        assert res.jobs[0].state == "failed"
        assert "failed to build" in res.jobs[0].error


class TestFairness:
    def burst(self, fairness):
        """Tenant a bursts three jobs at t=0; tenant b's single job
        arrives just after.  One node, so admission order is the whole
        game."""
        jobs = [
            JobSpec("a", "trans", n=N),
            JobSpec("a", "trans", n=N),
            JobSpec("a", "trans", n=N),
            JobSpec("b", "trans", n=N, arrival_s=0.001),
        ]
        return serve_script(
            profile(n_nodes=1),
            script(*jobs),
            ServePolicy(fairness=fairness),
        )

    def test_fifo_head_of_line_blocks_tenant_b(self):
        fifo = self.burst("fifo")
        wfq = self.burst("wfq")
        b_fifo = fifo.tenants["b"].max_queue_delay_s
        b_wfq = wfq.tenants["b"].max_queue_delay_s
        # FIFO serves the whole burst first; WFQ interleaves b after
        # one a job, cutting b's worst-case queueing delay
        assert b_wfq < b_fifo
        admits = lambda r: [
            jid for _, e, jid in r.schedule if e == "admit"
        ]
        assert admits(fifo) == [0, 1, 2, 3]
        assert admits(wfq)[1] == 3

    def test_weight_biases_service(self):
        """Double weight ⇒ half the virtual-time charge ⇒ earlier
        re-admission for the heavy tenant."""
        jobs = [
            JobSpec("heavy", "trans", n=N),
            JobSpec("light", "trans", n=N),
            JobSpec("heavy", "trans", n=N),
            JobSpec("light", "trans", n=N),
        ]
        p = ClusterProfile(
            n_compute_nodes=1,
            params=PARAMS,
            tenants=(
                TenantConfig("heavy", weight=100.0),
                TenantConfig("light", weight=1.0),
            ),
        )
        res = serve_script(p, script(*jobs))
        admits = [jid for _, e, jid in res.schedule if e == "admit"]
        # heavy's vtime stays ~0, so both heavy jobs go before light's
        # second job
        assert admits.index(2) < admits.index(3)


class TestFaults:
    def make_calls(self, workload):
        return standalone(workload).total_stats.calls

    def test_crash_looping_tenant_does_not_starve_others(self):
        """An error op scheduled past trans's call count but inside
        adi's fails every adi attempt deterministically; the ok tenant's
        job is admitted and completes with zero queueing."""
        adi_calls = self.make_calls("adi")
        trans_calls = self.make_calls("trans")
        assert trans_calls + 10 < adi_calls, "precondition"
        faults = FaultConfig(
            FaultPlan(error_ops=frozenset({trans_calls + 5})),
            ResiliencePolicy(max_retries=0),
        )
        jobs = [
            JobSpec("flaky", "adi", n=N),
            JobSpec("ok", "trans", n=N),
        ]
        res = JobScheduler(
            profile(n_nodes=1, tenants=("flaky", "ok")),
            ServePolicy(fairness="wfq", max_job_retries=3),
            faults=faults,
        ).run(script(*jobs))
        flaky, ok = res.jobs
        assert flaky.state == "failed"
        assert flaky.attempts == 4  # 1 + 3 retries
        assert res.tenants["flaky"].retries == 3
        assert "fault-injected" in flaky.error
        assert ok.state == "done"
        assert ok.queue_delay_s == pytest.approx(0.0)
        assert res.tenants["ok"].retries == 0

    def test_faulted_run_deterministic(self):
        faults = FaultConfig(
            FaultPlan(seed=9, read_error_rate=0.01),
            ResiliencePolicy(max_retries=0),
        )
        jobs = [
            JobSpec("a", "trans", n=N),
            JobSpec("b", "trans", n=N, arrival_s=0.001),
        ]
        pol = ServePolicy(max_job_retries=2)
        r1 = JobScheduler(profile(), pol, faults=faults).run(script(*jobs))
        r2 = JobScheduler(profile(), pol, faults=faults).run(script(*jobs))
        assert r1.signature() == r2.signature()

    def test_surviving_jobs_carry_fault_counters(self):
        """A retried-but-successful run folds its resilience counters
        into the tenant's stats, exactly."""
        faults = FaultConfig(
            FaultPlan(seed=3, read_error_rate=0.002),
            ResiliencePolicy(max_retries=8),
        )
        res = JobScheduler(
            profile(), faults=faults
        ).run(script(JobSpec("a", "adi", n=N)))
        job = res.jobs[0]
        assert job.state == "done"
        assert job.stats.retries > 0
        assert res.tenants["a"].stats.retries == job.stats.retries


class TestSharedCacheServing:
    def repeat_script(self):
        return script(
            JobSpec("a", "trans", n=N),
            JobSpec("a", "trans", n=N, arrival_s=0.001),
        )

    def test_repeat_job_hits_and_speeds_up(self):
        p_cold = profile(n_nodes=1)
        p_warm = profile(n_nodes=1, cache=8192)
        cold = serve_script(p_cold, self.repeat_script())
        warm = serve_script(p_warm, self.repeat_script())
        assert warm.cache.hits > 0
        assert warm.cache.saved_io_s > 0
        assert warm.jobs[1].cache_hits > 0
        assert warm.makespan_s < cold.makespan_s
        # accounting is untouched: stats identical with and without
        for jc, jw in zip(cold.jobs, warm.jobs):
            assert jc.stats == jw.stats

    def test_summary_carries_cache_section(self):
        res = serve_script(profile(n_nodes=1, cache=8192), self.repeat_script())
        s = res.summary_dict()
        assert s["cache"]["hits"] == res.cache.hits
        assert "tenants" in s["cache"]


class TestObservability:
    def test_report_renders_tenant_section(self):
        obs = Observability()
        res = serve_script(
            profile(),
            script(
                JobSpec("a", "trans", n=N),
                JobSpec("b", "trans", n=N, arrival_s=0.1),
            ),
            obs=obs,
        )
        payload = obs.to_payload()
        assert payload["serve"] == res.summary_dict()
        text = _payload_report(payload)
        assert "serving (repro.serve)" in text
        assert "served makespan" in text
        assert "a" in text and "b" in text

    def test_counters_and_spans(self):
        obs = Observability()
        res = serve_script(
            profile(), script(JobSpec("a", "trans", n=N)), obs=obs
        )
        metrics = obs.metrics.to_dict()
        assert any("serve.jobs_submitted" in k for k in metrics)
        assert any("serve.queue_delay_us" in k for k in metrics)
        # per-tenant virtual-time job span
        names = [s.name for s in obs.tracer.virtual_spans]
        assert any("job 0" in n for n in names)
        assert res.jobs[0].state == "done"

    def test_disabled_obs_identical(self):
        from repro.obs import ObsConfig

        plain = serve_script(profile(), script(JobSpec("a", "trans", n=N)))
        off = Observability(ObsConfig(enabled=False))
        observed = serve_script(
            profile(), script(JobSpec("a", "trans", n=N)), obs=off
        )
        assert plain.signature() == observed.signature()
        assert off.serve_summary is None
