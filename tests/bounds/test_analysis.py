"""Unit tests for the static lower-bound pass: iteration-domain
counting, reference-image under-counts (exact and analytic), nest
classification, and the NestBound model."""

import math

import pytest

from repro.bounds import (
    RULE_COLD,
    RULE_CONTRACTION,
    RULE_REDUCTION,
    RULE_STENCIL,
    RULE_TRANSPOSE,
    NestBound,
    bounds_by_nest,
    classify_nest,
    domain_size,
    find_contraction,
    nest_footprint_counts,
    nest_lower_bound,
    program_bounds,
    ref_image_size,
)
from repro.bounds import analysis
from repro.ir import Program, ProgramBuilder
from repro.workloads import build_analytics, build_workload


def _nest(program: Program, name: str):
    for nest in program.nests:
        if nest.name == name:
            return nest
    raise KeyError(name)


def _shapes(program: Program, binding=None):
    b = program.binding(binding)
    return b, {a.name: a.shape(b) for a in program.arrays}


def _exact_image(nest, ref, binding, shape):
    """Brute-force ground truth: the full in-bounds image over the
    complete iteration domain (no variable pinning)."""
    points = set()
    for env in nest.iterate(binding):
        full = dict(binding)
        full.update(env)
        idx = tuple(s.evaluate(full) for s in ref.subscripts)
        if all(0 <= x < d for x, d in zip(idx, shape)):
            points.add(idx)
    return len(points)


class TestDomainSize:
    def test_rectangular_exact(self):
        p = build_workload("mxm", 12)
        b, _ = _shapes(p)
        nest = _nest(p, "mxm.jki")
        brute = sum(1 for _ in nest.iterate(b))
        assert domain_size(nest, b) == brute == 12 ** 3

    def test_triangular_exact(self):
        p = build_workload("syr2k", 12)
        b, _ = _shapes(p)
        nest = _nest(p, "syr2k.upd")
        brute = sum(1 for _ in nest.iterate(b))
        assert domain_size(nest, b) == brute

    @pytest.mark.parametrize("name", ["adi", "btrix", "vpenta", "window"])
    def test_matches_brute_force(self, name):
        build = build_analytics if name == "window" else build_workload
        p = build(name, 8)
        b, _ = _shapes(p)
        for nest in p.nests:
            assert domain_size(nest, b) == sum(1 for _ in nest.iterate(b))


class TestRefImage:
    def test_exact_enumeration_matches_brute_force(self):
        # rectangular nests: the enumerated image is exact
        for name in ("mxm", "adi", "trans"):
            p = build_workload(name, 10)
            b, shapes = _shapes(p)
            for nest in p.nests:
                for _, ref, _ in nest.refs():
                    got = ref_image_size(nest, ref, b, shapes[ref.array.name])
                    want = _exact_image(nest, ref, b, shapes[ref.array.name])
                    assert got == want, (nest.name, ref)

    def test_triangular_domain_is_safe_undercount(self):
        # syr2k's j range depends on i; pinning the unused i at its
        # midpoint yields a sub-domain, so images under-count — never
        # over-count
        p = build_workload("syr2k", 10)
        b, shapes = _shapes(p)
        for nest in p.nests:
            for _, ref, _ in nest.refs():
                got = ref_image_size(nest, ref, b, shapes[ref.array.name])
                want = _exact_image(nest, ref, b, shapes[ref.array.name])
                assert got <= want, (nest.name, ref)

    def test_constant_row_ref_counts_one_row(self):
        # htribk's copy nest reads tau[2, j] (0-based row 1) against a
        # shape-(2, N) array: a single row, image N — not 2N
        p = build_workload("htribk", 12)
        b, shapes = _shapes(p)
        nest = _nest(p, "htribk.copy")
        reads, _ = nest_footprint_counts(nest, b, shapes)
        assert reads["TAU"] == 12

    def test_fully_out_of_bounds_constant_dim_is_zero(self):
        # a constant subscript past the array extent: the executor
        # clips the region to empty and transfers nothing, so the image
        # must be 0 — per-dimension counting would claim N
        n = 12
        pb = ProgramBuilder("oob", params=("N",), default_binding={"N": n})
        N = pb.param("N")
        A = pb.array("A", (2, N))
        B = pb.array("B", (N,))
        with pb.nest("oob.copy") as nb:
            j = nb.loop("j", 1, N)
            nb.assign(B[j], A[4, j])
        p = pb.build()
        b, shapes = _shapes(p)
        nest = p.nests[0]
        (ref,) = nest.body[0].reads()
        assert ref_image_size(nest, ref, b, shapes["A"]) == 0
        reads, _ = nest_footprint_counts(nest, b, shapes)
        assert reads["A"] == 0

    def test_anti_correlated_clipping(self):
        # A[i, i - (N-1)] over i = 1..N: per-dimension independent
        # counting sees N in-bounds rows and 2 in-bounds columns, but
        # only i = N-1 lands both dimensions in bounds simultaneously
        n = 16
        pb = ProgramBuilder("clip", params=("N",), default_binding={"N": n})
        N = pb.param("N")
        A = pb.array("A", (N, N))
        with pb.nest("clip.diag") as nb:
            i = nb.loop("i", 1, N)
            nb.assign(A[i, i - N + 1], 0.0)
        p = pb.build()
        b, shapes = _shapes(p)
        nest = p.nests[0]
        ref = nest.body[0].lhs
        assert ref_image_size(nest, ref, b, shapes["A"]) == 1

    def test_analytic_path_is_safe_undercount(self, monkeypatch):
        # force the analytic sweep and check it never exceeds the exact
        # image on representative rectangular / triangular / windowed /
        # skewed nests
        monkeypatch.setattr(analysis, "ENUM_CAP", 0)
        for name, build in (
            ("mxm", build_workload),
            ("syr2k", build_workload),
            ("vpenta", build_workload),
            ("htribk", build_workload),
            ("window", build_analytics),
        ):
            p = build(name, 10)
            b, shapes = _shapes(p)
            for nest in p.nests:
                for _, ref, _ in nest.refs():
                    got = ref_image_size(nest, ref, b, shapes[ref.array.name])
                    want = _exact_image(nest, ref, b, shapes[ref.array.name])
                    assert got <= want, (name, nest.name, ref)

    def test_footprint_counts_undercount_union(self):
        # per array, max-over-refs is <= the union of images
        p = build_workload("adi", 10)
        b, shapes = _shapes(p)
        for nest in p.nests:
            reads, writes = nest_footprint_counts(nest, b, shapes)
            union_r: dict[str, set] = {}
            union_w: dict[str, set] = {}
            for env in nest.iterate(b):
                full = dict(b)
                full.update(env)
                for _, ref, is_write in nest.refs():
                    shape = shapes[ref.array.name]
                    idx = tuple(s.evaluate(full) for s in ref.subscripts)
                    if all(0 <= x < d for x, d in zip(idx, shape)):
                        side = union_w if is_write else union_r
                        side.setdefault(ref.array.name, set()).add(idx)
            for name, count in reads.items():
                assert count <= len(union_r.get(name, ()))
            for name, count in writes.items():
                assert count <= len(union_w.get(name, ()))


class TestClassification:
    @pytest.mark.parametrize(
        "workload,nest,rule",
        [
            ("mat", "mat.mm", RULE_CONTRACTION),
            ("mxm", "mxm.jki", RULE_CONTRACTION),
            ("syr2k", "syr2k.upd", RULE_CONTRACTION),
            ("htribk", "htribk.accum", RULE_CONTRACTION),
            ("trans", "trans.t", RULE_TRANSPOSE),
            ("gfunp", "gfunp.g1", RULE_TRANSPOSE),
            ("htribk", "htribk.copy", RULE_TRANSPOSE),
            ("adi", "adi.x", RULE_STENCIL),
            ("mat", "mat.init", RULE_COLD),
        ],
    )
    def test_registry_rules(self, workload, nest, rule):
        p = build_workload(workload, 12)
        got, _ = classify_nest(_nest(p, nest))
        assert got == rule

    def test_analytics_rules(self):
        window = build_analytics("window", 12)
        assert classify_nest(_nest(window, "window.agg"))[0] == RULE_STENCIL
        ajoin = build_analytics("ajoin", 12)
        assert classify_nest(_nest(ajoin, "ajoin.reduce"))[0] == RULE_REDUCTION
        assert classify_nest(_nest(ajoin, "ajoin.initred"))[0] == RULE_COLD

    def test_copy_without_self_accumulation_is_not_contraction(self):
        # htribk.copy multiplies two refs but never accumulates into its
        # own lhs — the Hong–Kung argument does not apply
        p = build_workload("htribk", 12)
        assert find_contraction(_nest(p, "htribk.copy")) is None

    def test_every_nest_classifies(self):
        from repro.bounds import RULES

        for name in ("mat", "mxm", "adi", "vpenta", "btrix", "emit",
                     "syr2k", "htribk", "gfunp", "trans"):
            p = build_workload(name, 12)
            for nest in p.nests:
                rule, detail = classify_nest(nest)
                assert rule in RULES
                assert detail


class TestNestBound:
    def test_cold_formula(self):
        p = build_workload("mxm", 12)
        b, shapes = _shapes(p)
        nest = _nest(p, "mxm.init")
        reads, writes = nest_footprint_counts(nest, b, shapes)
        nb = nest_lower_bound(nest, b, shapes, memory_elements=64)
        assert nb.read_elements == nest.weight * sum(reads.values())
        assert nb.write_elements == nest.weight * sum(writes.values())
        assert nb.bound_elements == nb.read_elements + nb.write_elements

    def test_warm_discounts_aggregate_memory(self):
        p = build_workload("mxm", 12)
        b, shapes = _shapes(p)
        nest = _nest(p, "mxm.jki")
        cold = nest_lower_bound(nest, b, shapes, memory_elements=100)
        warm = nest_lower_bound(
            nest, b, shapes, memory_elements=100, n_nodes=2, warm=True
        )
        assert warm.warm and not cold.warm
        assert warm.write_elements == cold.write_elements
        assert warm.read_elements == max(
            0.0, cold.read_elements - nest.weight * 2 * 100
        )

    def test_hong_kung_term_dominates_with_tiny_memory(self):
        # at M small enough, T/(2*sqrt(2)*sqrt(M)) - 2*p*M beats the
        # O(N^2) footprint for an N^3-op contraction
        p = build_workload("mxm", 64)
        b, shapes = _shapes(p)
        nest = _nest(p, "mxm.jki")
        nb = nest_lower_bound(nest, b, shapes, memory_elements=16)
        ops = domain_size(nest, b)
        hk = nest.weight * ops / (2 * math.sqrt(2) * math.sqrt(16)) - 2 * 16
        assert nb.rule == RULE_CONTRACTION
        assert nb.bound_elements == pytest.approx(hk)
        assert "Hong-Kung term dominates" in nb.detail

    def test_roundtrip(self):
        p = build_workload("adi", 12)
        for nb in program_bounds(p, memory_elements=64):
            assert NestBound.from_dict(nb.to_dict()) == nb

    def test_program_bounds_default_memory_matches_executor(self):
        import numpy as np

        p = build_workload("adi", 24)
        b = p.binding(None)
        total = sum(
            int(np.prod(a.shape(b))) for a in p.arrays
        )
        from repro.runtime import MachineParams

        expected = max(64, total // MachineParams().memory_fraction)
        for nb in program_bounds(p):
            assert nb.memory_elements == expected

    def test_bounds_by_nest_mapping(self):
        p = build_workload("mxm", 12)
        bounds = program_bounds(p, memory_elements=64)
        mapping = bounds_by_nest(bounds)
        assert set(mapping) == {n.name for n in p.nests}
        assert mapping["mxm.jki"]["rule"] == RULE_CONTRACTION
