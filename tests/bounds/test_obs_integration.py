"""Optimality telemetry wired through the observability stack: off is
bit-identical (bounds=None / obs=None), the report section renders with
the exact-totals cross-check, gauges publish, payloads round-trip, and
the CLI subcommand works end to end."""

import json
from dataclasses import replace

import pytest

from repro.bounds import program_bounds
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import (
    IOReport,
    Observability,
    OptimalityRecord,
    build_optimality,
    optimality_totals,
    render_report,
)
from repro.obs.cli import main as obs_main
from repro.optimizer import build_version
from repro.parallel import CollectiveConfig, run_version_parallel
from repro.workloads import build_workload

N = 24
PARAMS = replace(_scaled_params(N), n_io_nodes=4)
N_NODES = 4


def _cfg(workload, version="c-opt"):
    return build_version(version, build_workload(workload, N))


def _stats_fields(stats):
    return (
        stats.read_calls, stats.write_calls,
        stats.elements_read, stats.elements_written,
        stats.io_time_s, stats.compute_time_s,
        stats.redist_messages, stats.redist_elements, stats.redist_time_s,
    )


class TestOffByDefault:
    """Acceptance gate: with bounds=None and obs off, every execution
    path stays bit-identical — pinned on adi and mxm."""

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    @pytest.mark.parametrize("collective", [None, CollectiveConfig()])
    def test_parallel_bit_identical(self, workload, collective):
        cfg = _cfg(workload)
        base = run_version_parallel(
            cfg, N_NODES, params=PARAMS, collective=collective,
        )
        bounds = program_bounds(cfg.program, n_nodes=N_NODES)
        on = run_version_parallel(
            cfg, N_NODES, params=PARAMS, collective=collective,
            obs=Observability(), bounds=bounds,
        )
        assert _stats_fields(on.total_stats) == _stats_fields(
            base.total_stats
        )
        assert str(on.total_stats) == str(base.total_stats)
        assert on.time_s == base.time_s

    @pytest.mark.parametrize("workload", ["adi", "mxm"])
    def test_executor_bit_identical(self, workload):
        cfg = _cfg(workload)
        base = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec,
        ).run()
        on = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=Observability(),
            bounds=program_bounds(cfg.program),
        ).run()
        assert _stats_fields(on.stats) == _stats_fields(base.stats)
        assert str(on.stats) == str(base.stats)


class TestOptimalityView:
    def test_explicit_bounds_are_adopted(self):
        cfg = _cfg("mxm")
        bounds = program_bounds(cfg.program, memory_elements=64)
        obs = Observability()
        OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs, bounds=bounds,
        ).run()
        by_nest = {r.nest: r for r in obs.report.optimality}
        for nb in bounds:
            assert by_nest[nb.nest].bound_elements == nb.bound_elements
            assert by_nest[nb.nest].rule == nb.rule

    def test_gauges_published(self):
        cfg = _cfg("mxm")
        obs = Observability()
        OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs,
        ).run()
        keys = obs.metrics.to_dict()
        assert any(k.startswith("optimality.ratio") for k in keys)
        assert any(k.startswith("optimality.bound_elements") for k in keys)
        assert any(k.startswith("optimality.measured_elements") for k in keys)
        assert "optimality.run_ratio" in keys
        assert keys["optimality.run_ratio"]["value"] >= 1.0

    def test_unexecuted_bound_rows_surface(self):
        obs = Observability()
        obs.note_bounds(program_bounds(_cfg("mxm").program))
        obs.finalize_optimality()
        assert obs.report.optimality
        assert all(r.path == "unexecuted" for r in obs.report.optimality)
        totals = optimality_totals(obs.report.optimality)
        assert all(v == 0 for v in totals.values())

    def test_build_optimality_aggregates_per_nest(self):
        from repro.obs import NestIORecord

        records = [
            NestIORecord("n1", "A", 2, 1, 20, 10, 0.0, node=0),
            NestIORecord("n1", "B", 3, 0, 30, 0, 0.0, node=1),
            NestIORecord("n2", "A", 1, 1, 5, 5, 0.0),
        ]
        bounds = {"n1": {"rule": "cold-footprint", "bound_elements": 40.0}}
        rows = {r.nest: r for r in build_optimality(records, bounds)}
        assert rows["n1"].measured_elements == 60
        assert rows["n1"].ratio == pytest.approx(1.5)
        assert rows["n2"].bound_elements is None and rows["n2"].ratio is None
        totals = optimality_totals(rows.values())
        assert totals["elements_read"] == 55
        assert totals["elements_written"] == 15

    def test_payload_roundtrip_and_render(self):
        cfg = _cfg("adi")
        obs = Observability()
        run = run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        payload = obs.to_payload()
        report = IOReport.from_dict(payload["io_report"])
        assert [r.to_dict() for r in report.optimality] == [
            r.to_dict() for r in obs.report.optimality
        ]
        text = render_report(report, run.total_stats.to_dict())
        assert "optimality (achieved vs I/O lower bound" in text
        assert "optimality measured totals vs folded IOStats: exact match" in text
        assert "run ratio:" in text

    def test_record_roundtrip(self):
        r = OptimalityRecord(
            nest="x", rule="cold-footprint", bound_elements=10.0,
            modeled_elements=12.0, read_calls=1, write_calls=2,
            elements_read=8, elements_written=4, path="direct", detail="d",
        )
        assert OptimalityRecord.from_dict(r.to_dict()) == r
        assert r.measured_elements == 12
        assert r.ratio == pytest.approx(1.2)


class TestCLI:
    def test_bounds_static(self, capsys):
        assert obs_main(
            ["bounds", "--workload", "mxm", "--n", "12", "--static"]
        ) == 0
        out = capsys.readouterr().out
        assert "hong-kung-contraction" in out
        assert "mxm.jki" in out

    def test_bounds_run(self, capsys):
        assert obs_main(
            ["bounds", "--workload", "mxm", "--n", "16", "--nodes", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimality measured totals vs folded IOStats: exact match" in out

    def test_bounds_analytics_workload(self, capsys):
        assert obs_main(
            ["bounds", "--workload", "window", "--n", "12", "--static"]
        ) == 0
        assert "window.agg" in capsys.readouterr().out

    def test_bounds_unknown_workload(self, capsys):
        assert obs_main(
            ["bounds", "--workload", "nope", "--static"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_stdin(self, capsys, monkeypatch):
        import io

        cfg = _cfg("mxm")
        obs = Observability()
        run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(obs.to_payload()))
        )
        assert obs_main(["report", "-"]) == 0
        out = capsys.readouterr().out
        assert "optimality (achieved vs I/O lower bound" in out

    def test_report_stdin_malformed(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("{not json"))
        assert obs_main(["report", "-"]) == 2
        assert "malformed trace JSON in stdin" in capsys.readouterr().err
