"""The acceptance property: for every registry + analytics workload,
under every layout strategy and every execution path, the static lower
bound is <= the measured element transfers, and the optimality view's
measured totals equal the folded IOStats exactly."""

from dataclasses import replace

import pytest

from repro.collective import CollectiveConfig
from repro.engine import OOCExecutor
from repro.experiments.harness import _scaled_params
from repro.obs import Observability, optimality_totals
from repro.optimizer.strategies import VERSION_NAMES, build_version
from repro.parallel import run_version_parallel
from repro.workloads import build_analytics, build_workload
from repro.workloads.registry import analytics_names, workload_names

N = 16
N_NODES = 4
PARAMS = replace(_scaled_params(N), n_io_nodes=4)

ALL_WORKLOADS = tuple(workload_names()) + tuple(analytics_names())


def _program(name):
    build = build_workload if name in workload_names() else build_analytics
    return build(name, N)


def _check(optimality, stats):
    """bound <= measured per nest, and exact totals vs folded stats."""
    assert optimality, "optimality table must be populated"
    for r in optimality:
        assert r.bound_elements is not None, r.nest
        assert r.bound_elements <= r.measured_elements + 1e-9, (
            f"{r.nest}: bound {r.bound_elements} > measured "
            f"{r.measured_elements} (rule {r.rule})"
        )
    totals = optimality_totals(optimality)
    sd = stats.to_dict()
    assert all(totals[k] == sd.get(k) for k in totals), (totals, sd)


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_bound_le_measured_all_versions_all_paths(workload):
    program = _program(workload)
    for version in VERSION_NAMES:
        cfg = build_version(version, program, params=PARAMS)

        obs = Observability()
        result = OOCExecutor(
            cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
            storage_spec=cfg.storage_spec, obs=obs,
        ).run()
        _check(obs.report.optimality, result.stats)

        obs = Observability()
        run = run_version_parallel(cfg, N_NODES, params=PARAMS, obs=obs)
        _check(obs.report.optimality, run.total_stats)

        obs = Observability()
        run = run_version_parallel(
            cfg, N_NODES, params=PARAMS, collective=CollectiveConfig(),
            obs=obs,
        )
        _check(obs.report.optimality, run.total_stats)


@pytest.mark.parametrize("workload", ["adi", "mxm"])
def test_bound_le_measured_with_warm_cache(workload):
    # a live tile cache keeps data resident across repetitions; the
    # warm-discounted bound must still sit under the measured transfers
    from repro.cache import CacheConfig

    program = _program(workload)
    cfg = build_version("c-opt", program, params=PARAMS)
    obs = Observability()
    result = OOCExecutor(
        cfg.program, cfg.layouts, params=PARAMS, tiling=cfg.tiling,
        storage_spec=cfg.storage_spec, obs=obs,
        cache=CacheConfig(budget_fraction=0.5),
    ).run()
    _check(obs.report.optimality, result.stats)
    for b in obs.bounds.values():
        assert b["warm"] is True
