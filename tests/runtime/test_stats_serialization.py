"""IOStats serialization and accumulation: to_dict/from_dict round-trip
(nested cache metrics and redistribution fields included) and fold-vs-
merge equivalence when only some inputs carry cache metrics."""

import json

from repro.cache import CacheMetrics
from repro.runtime import IOContext, IOStats, MachineParams


def _full_stats():
    return IOStats(
        read_calls=10, write_calls=4,
        elements_read=1000, elements_written=400,
        io_time_s=1.25, compute_time_s=0.5,
        cache=CacheMetrics(
            hits=7, misses=3, partial_hits=1, evictions=2,
            dirty_evictions=1, flushed_tiles=1, prefetch_issued=5,
            prefetch_used=4, read_calls_saved=6, elements_saved=600,
            prefetch_io_s=0.1, overlapped_io_s=0.08,
            exposed_prefetch_io_s=0.02,
        ),
        redist_messages=12, redist_elements=300, redist_time_s=0.03,
    )


class TestRoundTrip:
    def test_exact_round_trip_with_cache_and_redist(self):
        s = _full_stats()
        back = IOStats.from_dict(s.to_dict())
        assert back == s
        assert back.cache == s.cache

    def test_round_trip_without_cache(self):
        s = IOStats(read_calls=3, elements_read=30, io_time_s=0.5)
        d = s.to_dict()
        assert "cache" not in d
        assert IOStats.from_dict(d) == s
        assert IOStats.from_dict(d).cache is None

    def test_survives_json(self):
        s = _full_stats()
        back = IOStats.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back == s and back.cache == s.cache

    def test_missing_keys_default(self):
        s = IOStats.from_dict({"read_calls": 2})
        assert s.read_calls == 2
        assert s.write_calls == 0 and s.cache is None

    def test_cache_metrics_round_trip(self):
        m = _full_stats().cache
        assert CacheMetrics.from_dict(m.to_dict()) == m


class TestFoldMergeEquivalence:
    def test_mixed_cache_metrics(self):
        """fold must equal a left-to-right merge chain even when only
        some stats carry cache metrics (cached + uncached node mix)."""
        stats = [
            IOStats(read_calls=1, io_time_s=0.1),
            IOStats(
                read_calls=2, io_time_s=0.2,
                cache=CacheMetrics(hits=5, misses=1, elements_saved=50),
            ),
            IOStats(write_calls=3, io_time_s=0.3),
            IOStats(
                read_calls=4, io_time_s=0.4,
                cache=CacheMetrics(hits=2, misses=2, evictions=1),
            ),
        ]
        chained = stats[0]
        for s in stats[1:]:
            chained = chained.merge(s)
        folded = IOStats.fold(stats)
        assert folded == chained
        assert folded.cache == chained.cache
        assert folded.cache.hits == 7 and folded.cache.misses == 3

    def test_no_cache_anywhere(self):
        stats = [IOStats(read_calls=k) for k in range(5)]
        assert IOStats.fold(stats).cache is None

    def test_fold_does_not_mutate_inputs(self):
        cached = IOStats(cache=CacheMetrics(hits=1))
        IOStats.fold([cached, IOStats(cache=CacheMetrics(hits=2))])
        assert cached.cache.hits == 1


class TestContextReset:
    def test_reset_clears_stats_loads_and_trace(self):
        ctx = IOContext(MachineParams(), trace=True)
        ctx.record_call(0, 0, 16, False)
        ctx.record_compute(100)
        assert ctx.trace and ctx.stats.calls == 1
        ctx.reset()
        assert ctx.trace == []
        assert ctx.stats == IOStats()
        assert not ctx.io_node_load.any()

    def test_reset_keeps_trace_disabled(self):
        ctx = IOContext(MachineParams())
        ctx.record_call(0, 0, 16, False)
        ctx.reset()
        assert ctx.trace is None
