import numpy as np
import pytest

from repro.runtime import IOContext, MachineParams, OutOfCoreArray, ParallelFileSystem
from repro.layout import col_major


class TestCallTrace:
    def test_disabled_by_default(self):
        ctx = IOContext(MachineParams())
        ctx.record_call(0, 0, 4, False)
        assert ctx.trace is None

    def test_records_single_calls(self):
        ctx = IOContext(MachineParams(), trace=True)
        ctx.record_call(100, 5, 4, True)
        assert ctx.trace == [(100, 5, 4, True)]

    def test_records_batched_runs(self):
        params = MachineParams(max_request_bytes=8 * 8)
        ctx = IOContext(params, trace=True)
        ctx.record_runs(0, np.array([0, 50]), np.array([20, 4]), False)
        # 20 splits into 8+8+4
        assert len(ctx.trace) == 4
        assert ctx.trace[0] == (0, 0, 8, False)
        assert ctx.trace[-1] == (0, 50, 4, False)

    def test_trace_matches_stats(self):
        params = MachineParams()
        ctx = IOContext(params, trace=True)
        pfs = ParallelFileSystem(params)
        arr = OutOfCoreArray.create("A", (8, 8), col_major(2), pfs, real=False)
        arr.count_tile_io(((0, 3), (0, 3)), ctx, is_write=False)
        assert len(ctx.trace) == ctx.stats.read_calls
        assert sum(t[2] for t in ctx.trace) == ctx.stats.elements_read

    def test_reset_clears_trace(self):
        ctx = IOContext(MachineParams(), trace=True)
        ctx.record_call(0, 0, 4, False)
        ctx.reset()
        assert ctx.trace == []


class TestRenderTileAccess:
    def test_paper_pattern_a(self):
        from repro.experiments.figure3 import FIGURE3_PARAMS, render_tile_access

        pfs = ParallelFileSystem(FIGURE3_PARAMS)
        v = OutOfCoreArray.create("V", (8, 8), col_major(2), pfs, real=False)
        grid = render_tile_access(v, ((0, 3), (0, 3)), FIGURE3_PARAMS)
        lines = grid.splitlines()
        assert lines[0].split()[:4] == ["1", "2", "3", "4"]
        assert lines[4].split() == ["."] * 8

    def test_calls_numbered_contiguously(self):
        from repro.experiments.figure3 import FIGURE3_PARAMS, render_tile_access

        pfs = ParallelFileSystem(FIGURE3_PARAMS)
        v = OutOfCoreArray.create("V", (8, 8), col_major(2), pfs, real=False)
        grid = render_tile_access(v, ((0, 7), (0, 1)), FIGURE3_PARAMS)
        numbers = {int(x) for x in grid.split() if x != "."}
        assert numbers == {1, 2}
