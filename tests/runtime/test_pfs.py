"""ParallelFileSystem: round-robin striping, stripe-aligned allocation,
and the SPMD stagger that spreads node partitions over I/O nodes."""

import pytest

from repro.runtime import MachineParams, ParallelFileSystem

PARAMS = MachineParams(n_io_nodes=4, stripe_bytes=16 * 8)  # 16 elements
SE = PARAMS.stripe_elements


@pytest.fixture
def pfs():
    return ParallelFileSystem(PARAMS)


class TestIONodeOf:
    def test_round_robin_over_stripes(self, pfs):
        nodes = [pfs.io_node_of(s * SE) for s in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_constant_within_a_stripe(self, pfs):
        assert {pfs.io_node_of(e) for e in range(SE)} == {0}
        assert {pfs.io_node_of(SE + e) for e in range(SE)} == {1}

    def test_wraps_at_n_io_nodes(self, pfs):
        assert pfs.io_node_of(4 * SE) == pfs.io_node_of(0)


class TestAllocate:
    def test_first_file_at_zero(self, pfs):
        assert pfs.allocate("A", 100) == 0

    def test_bases_stripe_aligned(self, pfs):
        pfs.allocate("A", SE + 1)  # not a whole number of stripes
        base_b = pfs.allocate("B", 5)
        assert base_b % SE == 0
        assert base_b == 2 * SE  # rounded up past A's partial stripe

    def test_files_do_not_overlap(self, pfs):
        sizes = {"A": 3 * SE, "B": SE // 2, "C": 7 * SE + 1}
        spans = []
        for name, n in sizes.items():
            base = pfs.allocate(name, n)
            spans.append((base, base + n))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_duplicate_name_rejected(self, pfs):
        pfs.allocate("A", 10)
        with pytest.raises(ValueError, match="already allocated"):
            pfs.allocate("A", 10)

    def test_consecutive_files_start_on_different_io_nodes(self, pfs):
        """Back-to-back placement spreads array starts round-robin."""
        bases = [pfs.allocate(f"f{k}", SE) for k in range(4)]
        assert [pfs.io_node_of(b) for b in bases] == [0, 1, 2, 3]


class TestAdvance:
    def test_stripe_aligned_skip(self, pfs):
        pfs.advance(1)  # rounds up to a whole stripe
        assert pfs.allocate("A", 10) == SE

    def test_zero_is_noop(self, pfs):
        pfs.advance(0)
        assert pfs.allocate("A", 10) == 0

    def test_spmd_stagger_spreads_ranks(self):
        """The SPMD runner's ``advance(rank * stagger)`` lands different
        ranks' identical files on different I/O nodes."""
        total = 4 * SE
        n_nodes = 4
        stagger = total // n_nodes
        first_nodes = []
        for rank in range(n_nodes):
            pfs = ParallelFileSystem(PARAMS)
            pfs.advance(rank * stagger)
            base = pfs.allocate("A", total)
            first_nodes.append(pfs.io_node_of(base))
        assert len(set(first_nodes)) == n_nodes
