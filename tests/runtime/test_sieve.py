import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import IOContext, MachineParams
from repro.runtime.stats import _sieve, plan_runs


def runs_strategy():
    """Disjoint sorted runs: (offsets, lengths)."""
    return st.lists(
        st.tuples(st.integers(1, 30), st.integers(1, 8)),
        min_size=1,
        max_size=10,
    ).map(_normalize_runs)


def _normalize_runs(pairs):
    offsets, lengths = [], []
    cursor = 0
    for gap, length in pairs:
        start = cursor + gap
        offsets.append(start)
        lengths.append(length)
        cursor = start + length
    return np.array(offsets, dtype=np.int64), np.array(lengths, dtype=np.int64)


class TestSieve:
    def test_empty_input(self):
        """Regression: an empty run set used to hit ``offsets[0]`` and
        raise IndexError; it must pass through untouched."""
        empty = np.zeros(0, dtype=np.int64)
        offs, lens = _sieve(empty, empty, max_gap_elems=6)
        assert offs.size == 0 and lens.size == 0

    def test_single_run_passthrough(self):
        """A single run has no gaps to sieve — returned as-is."""
        offs, lens = _sieve(np.array([5]), np.array([7]), max_gap_elems=6)
        assert list(offs) == [5]
        assert list(lens) == [7]

    def test_merges_small_gaps(self):
        offs, lens = _sieve(np.array([0, 10]), np.array([4, 4]), max_gap_elems=6)
        assert list(offs) == [0]
        assert list(lens) == [14]  # spans the gap

    def test_keeps_large_gaps(self):
        offs, lens = _sieve(np.array([0, 100]), np.array([4, 4]), 6)
        assert list(offs) == [0, 100]
        assert list(lens) == [4, 4]

    def test_chain_merge(self):
        offs, lens = _sieve(
            np.array([0, 6, 12, 100]), np.array([4, 4, 4, 4]), 2
        )
        assert list(offs) == [0, 100]
        assert list(lens) == [16, 4]

    def test_unsorted_input_handled(self):
        offs, lens = _sieve(np.array([10, 0]), np.array([4, 4]), 6)
        assert list(offs) == [0]
        assert list(lens) == [14]

    @settings(max_examples=60)
    @given(runs_strategy(), st.integers(0, 20))
    def test_spans_cover_all_runs(self, runs, gap):
        offsets, lengths = runs
        s_off, s_len = _sieve(offsets, lengths, gap)
        # every original element lies inside some sieved span
        for o, l in zip(offsets, lengths):
            assert any(
                so <= o and o + l <= so + sl for so, sl in zip(s_off, s_len)
            )

    @settings(max_examples=60)
    @given(runs_strategy(), st.integers(0, 20))
    def test_spans_disjoint_and_sorted(self, runs, gap):
        offsets, lengths = runs
        s_off, s_len = _sieve(offsets, lengths, gap)
        ends = s_off + s_len
        assert (np.diff(s_off) > 0).all() if s_off.size > 1 else True
        for k in range(s_off.size - 1):
            assert s_off[k + 1] > ends[k] - 1

    @settings(max_examples=60)
    @given(runs_strategy())
    def test_zero_gap_is_identity(self, runs):
        offsets, lengths = runs
        s_off, s_len = _sieve(offsets, lengths, 0)
        np.testing.assert_array_equal(s_off, offsets)
        np.testing.assert_array_equal(s_len, lengths)


class TestSieveInContext:
    def params(self, **kw):
        defaults = dict(
            io_latency_s=1.0,
            io_bandwidth_bps=8.0,
            sieve_gap_bytes=8 * 8,       # 8-element gaps merge
            sieve_buffer_bytes=8 * 32,   # spans capped at 32 elements
            stripe_bytes=1024,
        )
        defaults.update(kw)
        return MachineParams(**defaults)

    def test_read_runs_sieved(self):
        ctx = IOContext(self.params())
        # 4 runs of 2 separated by gaps of 4: merged into one span of 20
        n = ctx.record_runs(
            0, np.array([0, 6, 12, 18]), np.array([2, 2, 2, 2]), False
        )
        assert n == 1
        assert ctx.stats.elements_read == 20  # gap bytes transferred too

    def test_buffer_caps_span(self):
        ctx = IOContext(self.params())
        offsets = np.arange(0, 120, 6)
        lengths = np.full(offsets.size, 2)
        n = ctx.record_runs(0, offsets, lengths, False)
        assert n >= 4  # 114-element span split at the 32-element buffer

    def test_writes_sieve_like_reads(self):
        """Writes are tile-level read-modify-write; gaps are rewritten."""
        r = IOContext(self.params())
        w = IOContext(self.params())
        offsets, lengths = np.array([0, 6]), np.array([2, 2])
        nr = r.record_runs(0, offsets, lengths, False)
        nw = w.record_runs(0, offsets, lengths, True)
        assert nr == nw == 1
        assert w.stats.elements_written == r.stats.elements_read == 8

    def test_disabled_by_default(self):
        ctx = IOContext(MachineParams(io_latency_s=1.0))
        n = ctx.record_runs(0, np.array([0, 6]), np.array([2, 2]), False)
        assert n == 2
        assert ctx.stats.elements_read == 4

    def test_empty_runs_record_nothing(self):
        """Regression: an empty batch (e.g. a fully cache-covered
        partial read) must account zero calls, not crash in the sieve."""
        ctx = IOContext(self.params())
        empty = np.zeros(0, dtype=np.int64)
        assert ctx.record_runs(0, empty, empty, False) == 0
        assert ctx.stats.calls == 0 and ctx.stats.elements_moved == 0

    @settings(max_examples=60)
    @given(runs_strategy())
    def test_plan_runs_matches_recording(self, runs):
        """The pure planner must predict ``record_runs`` exactly — the
        tile cache prices avoided transfers with it."""
        offsets, lengths = runs
        params = self.params()
        p_off, p_len = plan_runs(params, offsets, lengths)
        ctx = IOContext(params)
        n = ctx.record_runs(0, offsets, lengths, False)
        assert n == p_off.size
        assert ctx.stats.elements_read == int(p_len.sum())
