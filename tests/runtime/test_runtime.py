import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import BlockedLayout, col_major, diagonal, row_major
from repro.runtime import (
    IOContext,
    MachineParams,
    MemoryBudgetExceeded,
    MemoryManager,
    OOCFile,
    OutOfCoreArray,
    ParallelFileSystem,
    region_size,
)
from repro.runtime.ooc_array import runs_of


def ctx_and_pfs(**kw):
    params = MachineParams(**kw)
    return IOContext(params), ParallelFileSystem(params)


class TestParams:
    def test_defaults_sane(self):
        p = MachineParams()
        assert p.max_request_elements == 512 * 1024
        assert p.stripe_elements == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(n_io_nodes=0)
        with pytest.raises(ValueError):
            MachineParams(max_request_bytes=4)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -float("inf"), -1.0]
    )
    def test_net_latency_rejected_named(self, bad):
        with pytest.raises(ValueError, match="net_latency_s"):
            MachineParams(net_latency_s=bad)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -float("inf"), -1.0, 0.0]
    )
    def test_net_bandwidth_rejected_named(self, bad):
        with pytest.raises(ValueError, match="net_bandwidth_bps"):
            MachineParams(net_bandwidth_bps=bad)

    def test_net_edge_values_accepted(self):
        # zero latency is legal (an ideal interconnect); the names in
        # the error messages are what the tests above pin
        p = MachineParams(net_latency_s=0.0, net_bandwidth_bps=1.0)
        assert p.net_time(8) == pytest.approx(8.0)

    def test_call_time(self):
        p = MachineParams(io_latency_s=0.01, io_bandwidth_bps=1e6)
        assert p.call_time(1e6) == pytest.approx(1.01)


class TestPFS:
    def test_allocation_stripe_aligned(self):
        params = MachineParams()
        pfs = ParallelFileSystem(params)
        b1 = pfs.allocate("a", 100)
        b2 = pfs.allocate("b", 100)
        assert b1 == 0
        assert b2 == params.stripe_elements

    def test_duplicate_rejected(self):
        _, pfs = ctx_and_pfs()
        pfs.allocate("a", 10)
        with pytest.raises(ValueError):
            pfs.allocate("a", 10)

    def test_io_node_round_robin(self):
        params = MachineParams(n_io_nodes=4)
        pfs = ParallelFileSystem(params)
        se = params.stripe_elements
        assert pfs.io_node_of(0) == 0
        assert pfs.io_node_of(se) == 1
        assert pfs.io_node_of(4 * se) == 0


class TestRunsOf:
    def test_empty(self):
        offs, lens = runs_of(np.array([], dtype=np.int64))
        assert offs.size == 0 and lens.size == 0

    def test_single_run(self):
        offs, lens = runs_of(np.array([5, 6, 7, 8]))
        assert list(offs) == [5] and list(lens) == [4]

    def test_multiple_runs(self):
        offs, lens = runs_of(np.array([1, 2, 10, 11, 12, 20]))
        assert list(offs) == [1, 10, 20]
        assert list(lens) == [2, 3, 1]

    def test_unsorted_input(self):
        offs, lens = runs_of(np.array([7, 5, 6]))
        assert list(offs) == [5] and list(lens) == [3]

    @given(st.sets(st.integers(0, 200), min_size=1, max_size=60))
    def test_runs_partition_addresses(self, addr_set):
        addrs = np.array(sorted(addr_set), dtype=np.int64)
        offs, lens = runs_of(addrs)
        covered = np.concatenate(
            [np.arange(o, o + l) for o, l in zip(offs, lens)]
        )
        assert set(covered) == addr_set
        assert int(lens.sum()) == len(addr_set)


class TestIOContext:
    def test_single_call_accounting(self):
        params = MachineParams(io_latency_s=1.0, io_bandwidth_bps=8.0, element_size=8)
        ctx = IOContext(params)
        ctx.record_call(0, 0, 1, is_write=False)
        assert ctx.stats.read_calls == 1
        assert ctx.stats.elements_read == 1
        assert ctx.stats.io_time_s == pytest.approx(1.0 + 1.0)

    def test_record_runs_splits_long_runs(self):
        params = MachineParams(max_request_bytes=8 * 8)  # 8 elements max
        ctx = IOContext(params)
        n = ctx.record_runs(0, np.array([0]), np.array([20]), False)
        assert n == 3  # 8 + 8 + 4
        assert ctx.stats.elements_read == 20

    def test_record_runs_matches_loop_of_calls(self):
        params = MachineParams(n_io_nodes=4, stripe_bytes=64, io_latency_s=0.5)
        a = IOContext(params)
        b = IOContext(params)
        offsets = np.array([0, 13, 40])
        lengths = np.array([5, 3, 17])
        a.record_runs(100, offsets, lengths, is_write=True)
        for o, l in zip(offsets, lengths):
            b.record_call(100, int(o), int(l), is_write=True)
        assert a.stats.write_calls == b.stats.write_calls
        assert a.stats.io_time_s == pytest.approx(b.stats.io_time_s)
        np.testing.assert_allclose(a.io_node_load, b.io_node_load)

    def test_compute_accounting(self):
        ctx = IOContext(MachineParams(compute_per_element_s=1e-6))
        ctx.record_compute(1000, 2)
        assert ctx.stats.compute_time_s == pytest.approx(2e-3)

    def test_stats_merge_and_str(self):
        ctx = IOContext(MachineParams())
        ctx.record_call(0, 0, 4, False)
        merged = ctx.stats.merge(ctx.stats)
        assert merged.read_calls == 2
        assert "calls=" in str(merged)

    def test_reset(self):
        ctx = IOContext(MachineParams())
        ctx.record_call(0, 0, 4, False)
        ctx.reset()
        assert ctx.stats.calls == 0
        assert ctx.io_node_load.sum() == 0


class TestOOCFile:
    def test_simulate_mode_has_no_buffer(self):
        _, pfs = ctx_and_pfs()
        f = OOCFile("x", 100, pfs, real=False)
        assert not f.real
        with pytest.raises(RuntimeError):
            f.gather(np.array([0]))

    def test_real_roundtrip(self):
        _, pfs = ctx_and_pfs()
        f = OOCFile("x", 10, pfs)
        f.scatter(np.array([2, 3]), np.array([1.5, 2.5]))
        np.testing.assert_array_equal(f.gather(np.array([3, 2])), [2.5, 1.5])


class TestOutOfCoreArray:
    def make(self, layout, shape=(8, 8), real=True, **params):
        ctx, pfs = ctx_and_pfs(**params)
        arr = OutOfCoreArray.create("A", shape, layout, pfs, real=real)
        return arr, ctx

    def test_roundtrip_row_major(self):
        arr, ctx = self.make(row_major(2))
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        arr.load_ndarray(data)
        tile = arr.read_tile(((2, 4), (1, 3)), ctx)
        np.testing.assert_array_equal(tile, data[2:5, 1:4])

    def test_roundtrip_col_major(self):
        arr, ctx = self.make(col_major(2))
        data = np.random.default_rng(0).random((8, 8))
        arr.load_ndarray(data)
        np.testing.assert_array_equal(arr.to_ndarray(), data)

    def test_roundtrip_diagonal(self):
        arr, ctx = self.make(diagonal())
        data = np.random.default_rng(1).random((8, 8))
        arr.load_ndarray(data)
        tile = arr.read_tile(((0, 7), (3, 5)), ctx)
        np.testing.assert_array_equal(tile, data[:, 3:6])

    def test_write_tile(self):
        arr, ctx = self.make(row_major(2))
        patch = np.full((2, 2), 7.0)
        arr.write_tile(((1, 2), (1, 2)), patch, ctx)
        out = arr.to_ndarray()
        np.testing.assert_array_equal(out[1:3, 1:3], patch)
        assert out.sum() == pytest.approx(4 * 7.0)

    def test_region_validation(self):
        arr, ctx = self.make(row_major(2))
        with pytest.raises(ValueError):
            arr.read_tile(((0, 8), (0, 0)), ctx)
        with pytest.raises(ValueError):
            arr.read_tile(((0, 1),), ctx)

    def test_figure3a_call_count(self):
        """Paper Figure 3(a): a 4x4 tile of a column-major array needs 4
        I/O calls (one per column)."""
        arr, ctx = self.make(
            col_major(2),
            max_request_bytes=8 * 8,  # at most 8 elements per call
            io_latency_s=1.0,
        )
        n = arr.count_tile_io(((0, 3), (0, 3)), ctx, is_write=False)
        assert n == 4

    def test_figure3b_call_count(self):
        """Paper Figure 3(b): a 4x16... for the 8x8 array, a 4x8 tile of a
        row-major array = 4 rows of 8 = 4 calls; a 2x8 "all columns" tile
        of the col-major array with 8-element max = 2 calls per... the
        canonical case: full-width tile of the *matching* layout."""
        arr, ctx = self.make(
            col_major(2),
            max_request_bytes=8 * 8,
        )
        # 8 rows x 2 cols of a col-major array: two full columns = 2 runs
        n = arr.count_tile_io(((0, 7), (0, 1)), ctx, is_write=False)
        assert n == 2

    def test_simulate_mode_counts_without_data(self):
        arr, ctx = self.make(row_major(2), real=False)
        out = arr.read_tile(((0, 3), (0, 7)), ctx)
        assert out is None
        assert ctx.stats.read_calls == 1  # 4 rows... row-major full rows 0..3 are contiguous
        assert ctx.stats.elements_read == 32

    def test_file_too_small_rejected(self):
        params = MachineParams()
        pfs = ParallelFileSystem(params)
        f = OOCFile("small", 10, pfs)
        with pytest.raises(ValueError):
            OutOfCoreArray("A", (8, 8), row_major(2), f)

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["row", "col", "diag"]),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    def test_read_write_roundtrip_property(self, lay_name, lo, hi):
        lay = {"row": row_major(2), "col": col_major(2), "diag": diagonal()}[lay_name]
        region = tuple((min(a, b), max(a, b)) for a, b in zip(lo, hi))
        arr, ctx = self.make(lay, shape=(6, 6))
        rng = np.random.default_rng(42)
        base = rng.random((6, 6))
        arr.load_ndarray(base)
        sizes = [h - l + 1 for l, h in region]
        patch = rng.random(sizes)
        arr.write_tile(region, patch, ctx)
        got = arr.read_tile(region, ctx)
        np.testing.assert_array_equal(got, patch)
        # outside the region the original data is intact
        full = arr.to_ndarray()
        mask = np.ones((6, 6), dtype=bool)
        mask[region[0][0] : region[0][1] + 1, region[1][0] : region[1][1] + 1] = False
        np.testing.assert_array_equal(full[mask], base[mask])


class TestRegionSize:
    def test_simple(self):
        assert region_size(((0, 3), (1, 2))) == 8

    def test_empty(self):
        assert region_size(((2, 1),)) == 0


class TestMemoryManager:
    def test_budget_enforced(self):
        mm = MemoryManager(100)
        mm.allocate(60)
        with pytest.raises(MemoryBudgetExceeded):
            mm.allocate(50)
        mm.free(60)
        mm.allocate(100)
        assert mm.peak == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryManager(0)
        mm = MemoryManager(10)
        with pytest.raises(ValueError):
            mm.free(1)
        with pytest.raises(ValueError):
            mm.allocate(-1)

    def test_reset(self):
        mm = MemoryManager(10)
        mm.allocate(5)
        mm.reset()
        assert mm.in_use == 0 and mm.peak == 0
