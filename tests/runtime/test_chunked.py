import numpy as np
import pytest

from repro.runtime import (
    InterleavedChunkedStore,
    IOContext,
    MachineParams,
    OutOfCoreArray,
    ParallelFileSystem,
)
from repro.layout import BlockedLayout, col_major


def make_store(names=("A", "B"), shape=(8, 8), block=(4, 4), real=True, **kw):
    params = MachineParams(**kw)
    ctx = IOContext(params)
    pfs = ParallelFileSystem(params)
    return InterleavedChunkedStore(names, shape, block, pfs, real=real), ctx


class TestInterleavedChunkedStore:
    def test_validation(self):
        params = MachineParams()
        pfs = ParallelFileSystem(params)
        with pytest.raises(ValueError):
            InterleavedChunkedStore((), (8, 8), (4, 4), pfs)
        with pytest.raises(ValueError):
            InterleavedChunkedStore(("A",), (8, 8), (4,), pfs)
        with pytest.raises(ValueError):
            InterleavedChunkedStore(("A",), (8, 8), (0, 4), pfs)

    def test_unknown_array(self):
        store, _ = make_store()
        with pytest.raises(KeyError):
            store.slot_of("Z")

    def test_roundtrip(self):
        store, ctx = make_store()
        rng = np.random.default_rng(3)
        da, db = rng.random((8, 8)), rng.random((8, 8))
        store.load_ndarray("A", da)
        store.load_ndarray("B", db)
        np.testing.assert_array_equal(store.to_ndarray("A"), da)
        np.testing.assert_array_equal(store.to_ndarray("B"), db)

    def test_aligned_tile_is_one_run(self):
        store, ctx = make_store(names=("A",))
        out = store.read_tiles([("A", ((0, 3), (0, 3)))], ctx)
        assert ctx.stats.read_calls == 1
        assert out["A"].shape == (4, 4)

    def test_interleaving_coalesces_coaccessed_tiles(self):
        """Co-accessed aligned tiles of both arrays are adjacent in file:
        the combined read needs a single I/O call (the h-opt mechanism)."""
        store, ctx = make_store()
        store.read_tiles(
            [("A", ((0, 3), (0, 3))), ("B", ((0, 3), (0, 3)))], ctx
        )
        assert ctx.stats.read_calls == 1
        assert ctx.stats.elements_read == 32

    def test_separate_reads_cost_more(self):
        store, ctx = make_store()
        store.read_tiles([("A", ((0, 3), (0, 3)))], ctx)
        store.read_tiles([("B", ((0, 3), (0, 3)))], ctx)
        assert ctx.stats.read_calls == 2

    def test_unaligned_tile_whole_chunk_transfer(self):
        """Chunked I/O moves whole chunks: an unaligned 4x4 tile covers
        four 4x4 chunks — they are file-adjacent, so one 64-element call."""
        store, ctx = make_store(names=("A",))
        store.read_tiles([("A", ((2, 5), (2, 5)))], ctx)
        assert ctx.stats.read_calls == 1
        assert ctx.stats.elements_read == 64  # over-read, by design

    def test_write_tiles_roundtrip(self):
        store, ctx = make_store()
        a = np.full((4, 4), 1.0)
        b = np.full((4, 4), 2.0)
        store.write_tiles(
            [("A", ((4, 7), (4, 7)), a), ("B", ((4, 7), (4, 7)), b)], ctx
        )
        assert ctx.stats.write_calls == 1
        np.testing.assert_array_equal(store.to_ndarray("A")[4:, 4:], a)
        np.testing.assert_array_equal(store.to_ndarray("B")[4:, 4:], b)

    def test_max_request_still_splits(self):
        store, ctx = make_store(max_request_bytes=8 * 8)
        store.read_tiles(
            [("A", ((0, 3), (0, 3))), ("B", ((0, 3), (0, 3)))], ctx
        )
        # 32 contiguous elements at 8 per call = 4 calls
        assert ctx.stats.read_calls == 4

    def test_simulate_mode(self):
        store, ctx = make_store(real=False)
        out = store.read_tiles([("A", ((0, 3), (0, 3)))], ctx)
        assert out["A"] is None
        assert ctx.stats.read_calls == 1

    def test_versus_plain_chunked_array(self):
        """Interleaving beats two independent chunked arrays on co-access."""
        params = MachineParams()
        pfs = ParallelFileSystem(params)
        ctx_plain = IOContext(params)
        a = OutOfCoreArray.create("A", (8, 8), BlockedLayout((4, 4)), pfs)
        b = OutOfCoreArray.create("B", (8, 8), BlockedLayout((4, 4)), pfs)
        a.read_tile(((0, 3), (0, 3)), ctx_plain)
        b.read_tile(((0, 3), (0, 3)), ctx_plain)
        store, ctx_inter = make_store()
        store.read_tiles(
            [("A", ((0, 3), (0, 3))), ("B", ((0, 3), (0, 3)))], ctx_inter
        )
        assert ctx_inter.stats.read_calls < ctx_plain.stats.read_calls
