import pytest

from repro.runtime import MemoryBudgetExceeded, MemoryManager


class TestMemoryManager:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryManager(0)
        with pytest.raises(ValueError):
            MemoryManager(-5)

    def test_allocate_and_free_roundtrip(self):
        mm = MemoryManager(10)
        mm.allocate(4)
        mm.allocate(6)
        assert mm.in_use == 10
        mm.free(6)
        assert mm.in_use == 4

    def test_over_budget_raises_and_leaves_state(self):
        mm = MemoryManager(10)
        mm.allocate(8)
        with pytest.raises(MemoryBudgetExceeded):
            mm.allocate(3)
        assert mm.in_use == 8  # failed allocation must not leak

    def test_free_more_than_allocated(self):
        mm = MemoryManager(10)
        mm.allocate(3)
        with pytest.raises(ValueError, match="freeing more than allocated"):
            mm.free(4)
        assert mm.in_use == 3

    def test_negative_amounts_rejected(self):
        mm = MemoryManager(10)
        with pytest.raises(ValueError):
            mm.allocate(-1)
        mm.allocate(5)
        # a negative free would silently *increase* in_use
        with pytest.raises(ValueError):
            mm.free(-2)
        assert mm.in_use == 5

    def test_zero_size_allocate_is_noop(self):
        mm = MemoryManager(10)
        mm.allocate(0)
        mm.free(0)
        assert mm.in_use == 0 and mm.peak == 0

    def test_peak_tracks_high_water_mark(self):
        mm = MemoryManager(10)
        mm.allocate(7)
        mm.free(7)
        mm.allocate(2)
        assert mm.peak == 7

    def test_peak_across_reset(self):
        mm = MemoryManager(10)
        mm.allocate(9)
        mm.reset()
        assert mm.in_use == 0 and mm.peak == 0
        mm.allocate(3)
        assert mm.peak == 3  # reset starts a fresh high-water mark
