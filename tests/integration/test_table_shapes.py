"""Fast regression pins for the headline results (small N so the plain
test suite guards them; the benchmark suite re-checks at full scale)."""

import pytest

from repro.experiments.harness import (
    ExperimentSettings,
    normalize_row,
    run_table2_row,
    run_table3_block,
)

SETTINGS = ExperimentSettings(n=48, table3_nodes=(4, 8))


@pytest.fixture(scope="module")
def rows():
    return {
        w: normalize_row(run_table2_row(w, SETTINGS))
        for w in ("trans", "adi", "gfunp", "emit")
    }


class TestTable2Shapes:
    def test_trans_layouts_win_loops_dont(self, rows):
        r = rows["trans"]
        assert r["l-opt"] == pytest.approx(100.0, abs=2)
        assert r["d-opt"] < 65
        assert r["c-opt"] == pytest.approx(r["d-opt"], rel=0.05)

    def test_adi_loops_win(self, rows):
        r = rows["adi"]
        assert r["l-opt"] < r["d-opt"]
        assert r["c-opt"] <= r["d-opt"]

    def test_gfunp_combined_wins(self, rows):
        r = rows["gfunp"]
        assert r["c-opt"] < r["l-opt"]
        assert r["c-opt"] < r["d-opt"]

    def test_emit_col_optimal(self, rows):
        r = rows["emit"]
        assert r["l-opt"] == pytest.approx(100.0, abs=2)
        assert r["d-opt"] == pytest.approx(100.0, abs=2)
        assert r["row"] > 100

    def test_combined_never_loses(self, rows):
        for name, r in rows.items():
            assert r["c-opt"] <= 102, (name, r)


class TestTable3Shapes:
    def test_optimized_scales_at_least_as_well(self):
        block = run_table3_block(
            "trans", SETTINGS, versions=("col", "c-opt")
        )
        for p in SETTINGS.table3_nodes:
            assert block["c-opt"][p] >= block["col"][p] * 0.9

    def test_speedup_positive(self):
        block = run_table3_block("gfunp", SETTINGS, versions=("c-opt",))
        assert all(s > 1.0 for s in block["c-opt"].values())
