"""Property-based end-to-end check: *random* affine programs, random
layouts, random tiling — out-of-core execution always matches the
in-core reference interpreter, and the global optimizer's output is
always semantically equivalent to its input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import OOCExecutor, interpret_program
from repro.engine.interpreter import initial_arrays
from repro.ir import ProgramBuilder
from repro.layout import LinearLayout, antidiagonal, col_major, diagonal, row_major
from repro.optimizer import optimize_program
from repro.runtime import MachineParams
from repro.transforms import no_tiling, ooc_tiling, traditional_tiling

SMALL = MachineParams(n_io_nodes=2, stripe_bytes=64, io_latency_s=0.001)

N = 5  # array extent for the random programs

# subscript building blocks over loop variables i, j
SUBSCRIPTS = [
    lambda i, j: (i, j),
    lambda i, j: (j, i),
    lambda i, j: (i, i),
    lambda i, j: (j, j),
    lambda i, j: (i - 1, j),
    lambda i, j: (i, j - 1),
    lambda i, j: (i - 1, j + 1),
    lambda i, j: (N + 1 - i, j),
]

LAYOUTS = [row_major(2), col_major(2), diagonal(), antidiagonal(),
           LinearLayout.from_hyperplane((2, 1))]

TILINGS = [ooc_tiling, traditional_tiling, no_tiling]


@st.composite
def random_programs(draw):
    n_arrays = draw(st.integers(2, 4))
    n_nests = draw(st.integers(1, 3))
    b = ProgramBuilder("rand", params=("N",), default_binding={"N": N})
    Np = b.param("N")
    handles = [
        b.array(f"A{k}", (Np + 2, Np + 2)) for k in range(n_arrays)
    ]
    for nn in range(n_nests):
        with b.nest(f"n{nn}") as nest:
            i = nest.loop("i", 2, Np)
            j = nest.loop("j", 2, Np)
            n_stmts = draw(st.integers(1, 2))
            for _ in range(n_stmts):
                lhs_arr = draw(st.sampled_from(handles))
                lhs_sub = draw(st.sampled_from(SUBSCRIPTS))
                rhs_arr = draw(st.sampled_from(handles))
                rhs_sub = draw(st.sampled_from(SUBSCRIPTS))
                const = draw(st.floats(0.5, 2.0))
                nest.assign(
                    lhs_arr[lhs_sub(i, j)],
                    rhs_arr[rhs_sub(i, j)] * 1.0 + const,
                )
    return b.build()


class TestRandomProgramEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        random_programs(),
        st.integers(0, len(TILINGS) - 1),
        st.data(),
    )
    def test_ooc_execution_matches_interpreter(self, program, tiling_idx, data):
        binding = program.binding()
        layouts = {
            a.name: data.draw(st.sampled_from(LAYOUTS), label=f"layout:{a.name}")
            for a in program.arrays
        }
        init = initial_arrays(program, binding)
        expected = interpret_program(program, initial=init)
        ex = OOCExecutor(
            program,
            layouts,
            params=SMALL,
            real=True,
            tiling=TILINGS[tiling_idx],
            memory_budget=data.draw(
                st.sampled_from([40, 120, 4000]), label="budget"
            ),
            initial=init,
        )
        ex.run()
        for arr in program.arrays:
            np.testing.assert_allclose(
                ex.array_data(arr.name), expected[arr.name],
                rtol=1e-10, atol=1e-10,
            )

    @settings(max_examples=20, deadline=None)
    @given(random_programs())
    def test_optimizer_preserves_semantics(self, program):
        binding = program.binding()
        init = initial_arrays(program, binding)
        expected = interpret_program(program, initial=init)
        decision = optimize_program(program)
        got = interpret_program(decision.program, initial=init)
        for arr in program.arrays:
            np.testing.assert_allclose(
                got[arr.name], expected[arr.name], rtol=1e-10, atol=1e-10
            )

    @settings(max_examples=15, deadline=None)
    @given(random_programs())
    def test_optimized_ooc_execution_matches(self, program):
        """The full pipeline: optimize, then execute out of core with the
        chosen layouts."""
        binding = program.binding()
        init = initial_arrays(program, binding)
        expected = interpret_program(program, initial=init)
        decision = optimize_program(program)
        ex = OOCExecutor(
            decision.program,
            decision.layout_objects(),
            params=SMALL,
            real=True,
            memory_budget=200,
            initial=init,
        )
        ex.run()
        for arr in program.arrays:
            np.testing.assert_allclose(
                ex.array_data(arr.name), expected[arr.name],
                rtol=1e-10, atol=1e-10,
            )
