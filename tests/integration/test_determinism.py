"""The whole pipeline is deterministic: same inputs, bit-identical
outputs — a hard requirement for a simulator used to compare versions."""

import numpy as np
import pytest

from repro.engine import OOCExecutor
from repro.engine.interpreter import initial_arrays
from repro.experiments.harness import ExperimentSettings, run_table2_row
from repro.optimizer import build_version, optimize_program
from repro.parallel import run_version_parallel
from repro.workloads import build_workload

SETTINGS = ExperimentSettings(n=32)


class TestDeterminism:
    def test_optimizer_decisions_stable(self):
        p = build_workload("gfunp", 16)
        d1 = optimize_program(p)
        d2 = optimize_program(p)
        assert d1.layouts == d2.layouts
        assert d1.directions == d2.directions
        assert d1.transforms == d2.transforms

    def test_simulated_times_stable(self):
        t1 = run_table2_row("trans", SETTINGS)
        t2 = run_table2_row("trans", SETTINGS)
        for v in t1:
            assert t1[v] == pytest.approx(t2[v], rel=0, abs=0)

    def test_parallel_run_stable(self):
        cfg = build_version("c-opt", build_workload("adi", 32))
        r1 = run_version_parallel(cfg, 4, params=SETTINGS.params)
        r2 = run_version_parallel(cfg, 4, params=SETTINGS.params)
        assert r1.time_s == r2.time_s
        assert r1.total_io_calls == r2.total_io_calls

    def test_real_execution_stable(self):
        p = build_workload("trans", 6)
        init = initial_arrays(p, p.binding())
        outs = []
        for _ in range(2):
            ex = OOCExecutor(
                p, params=SETTINGS.params, real=True,
                memory_budget=500, initial=init,
            )
            ex.run()
            outs.append(ex.array_data("B"))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_initial_arrays_are_seeded_per_name(self):
        p = build_workload("trans", 6)
        a = initial_arrays(p, p.binding())
        b = initial_arrays(p, p.binding())
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])
        assert not np.array_equal(a["A"], a["B"])  # name-dependent


class TestRunResultSurfaces:
    def test_parallel_run_accessors(self):
        cfg = build_version("col", build_workload("trans", 16))
        run = run_version_parallel(cfg, 2, params=SETTINGS.params)
        assert run.total_io_calls == sum(
            r.stats.calls for r in run.node_results
        )
        assert run.total_stats.calls == run.total_io_calls
        assert run.version == "col"

    def test_program_pretty(self):
        p = build_workload("trans", 8)
        text = p.pretty()
        assert "program trans" in text
        assert "declare A(N, N)" in text
        assert "do i = 1, N" in text

    def test_version_describe(self):
        cfg = build_version("d-opt", build_workload("trans", 8))
        assert "d-opt" in cfg.describe()
        assert "row-major" in cfg.describe()
