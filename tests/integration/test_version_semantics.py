"""The cornerstone guarantee: every experimental version of every
workload — transformed loops, exotic file layouts, tiling, chunked and
interleaved files, SPMD-sliced execution — computes exactly the arrays
the untransformed in-core interpretation computes.
"""

import numpy as np
import pytest

from repro.engine import OOCExecutor, interpret_program
from repro.engine.interpreter import initial_arrays
from repro.optimizer import VERSION_NAMES, build_version
from repro.runtime import MachineParams
from repro.workloads import build_workload, workload_names

SMALL = MachineParams(n_io_nodes=4, stripe_bytes=128, io_latency_s=0.001)

CASES = [
    (workload, version)
    for workload in workload_names()
    for version in VERSION_NAMES
]


@pytest.mark.parametrize(
    "workload,version", CASES, ids=[f"{w}-{v}" for w, v in CASES]
)
def test_version_preserves_semantics(workload, version):
    program = build_workload(workload, 6)
    binding = program.binding()
    init = initial_arrays(program, binding)
    expected = interpret_program(program, initial=init)

    cfg = build_version(version, program, params=SMALL)
    ex = OOCExecutor(
        cfg.program,
        cfg.layouts,
        params=SMALL,
        real=True,
        tiling=cfg.tiling,
        storage_spec=cfg.storage_spec,
        memory_budget=4000,
        initial=init,
    )
    ex.run()
    for arr in program.arrays:
        np.testing.assert_allclose(
            ex.array_data(arr.name),
            expected[arr.name],
            rtol=1e-9,
            atol=1e-9,
            err_msg=f"{workload}/{version}: array {arr.name} diverged",
        )


@pytest.mark.parametrize("workload", workload_names())
def test_tight_memory_still_correct(workload):
    """Same check under a stingy budget (tiny tiles, many passes)."""
    program = build_workload(workload, 5)
    binding = program.binding()
    init = initial_arrays(program, binding)
    expected = interpret_program(program, initial=init)
    cfg = build_version("c-opt", program, params=SMALL)
    total = sum(a.size(binding) for a in program.arrays)
    ex = OOCExecutor(
        cfg.program,
        cfg.layouts,
        params=SMALL,
        real=True,
        tiling=cfg.tiling,
        memory_budget=max(32, total // 4),
        initial=init,
    )
    ex.run()
    for arr in program.arrays:
        np.testing.assert_allclose(
            ex.array_data(arr.name), expected[arr.name],
            rtol=1e-9, atol=1e-9,
            err_msg=f"{workload}: array {arr.name} diverged",
        )
