"""The complete pipeline on the Figure-1 program: imperfect trees in,
verified out-of-core execution and generated code out."""

import numpy as np
import pytest

from repro.engine import OOCExecutor, generate_tiled_code, interpret_program
from repro.engine.interpreter import initial_arrays
from repro.experiments.figure1 import figure1_program
from repro.optimizer import connected_components, optimize_program
from repro.runtime import MachineParams
from repro.transforms import normalize_program

SMALL = MachineParams(n_io_nodes=4, stripe_bytes=128, io_latency_s=0.001)


class TestFullPipeline:
    def test_trees_to_verified_execution(self):
        program = figure1_program()
        binding = program.binding()

        # reference semantics of the imperfect input
        from tests.transforms.test_sinking_edges import interpret_tree

        init = initial_arrays(program, binding)
        expected = {k: v.copy() for k, v in init.items()}
        interpret_tree(program, binding, expected)

        # step 1: normalization
        normalized = normalize_program(program)
        assert not normalized.trees
        got = interpret_program(normalized, initial=init)
        for name in expected:
            np.testing.assert_allclose(got[name], expected[name], err_msg=name)

        # steps 2-3: global optimization
        decision = optimize_program(normalized)
        comps = connected_components(decision.program)
        assert len(comps) == 2  # {U,V,W} and {X,Y}

        # out-of-core execution of the optimized program
        ex = OOCExecutor(
            decision.program,
            decision.layout_objects(),
            params=SMALL,
            real=True,
            memory_budget=200,
            initial=init,
        )
        ex.run()
        for name in expected:
            np.testing.assert_allclose(
                ex.array_data(name), expected[name], err_msg=name
            )

        # code generation renders the whole thing
        code = generate_tiled_code(
            decision.program, decision.layout_objects()
        )
        assert "passion_read_tiles" in code
        for arr in ("U", "V", "W", "X", "Y"):
            assert f"file layout of {arr}:" in code

    def test_optimized_beats_baseline_on_figure1(self):
        # N large enough (vs the budget) that arrays span several tiles —
        # whole-array tiles would make layouts unobservable
        binding = {"N": 16}
        program = normalize_program(figure1_program())
        from repro.layout import col_major

        init = initial_arrays(program, binding)
        base = OOCExecutor(
            program,
            {a.name: col_major(a.rank) for a in program.arrays},
            params=SMALL, real=True, memory_budget=150,
            binding=binding, initial=init,
        ).run()
        decision = optimize_program(program, binding=binding)
        opt = OOCExecutor(
            decision.program, decision.layout_objects(),
            params=SMALL, real=True, memory_budget=150,
            binding=binding, initial=init,
        ).run()
        assert opt.stats.calls < base.stats.calls
