from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import IMat, column_hnf, hermite_normal_form, smith_normal_form


def matrices(max_dim=4, v=8):
    return st.tuples(st.integers(1, max_dim), st.integers(1, max_dim)).flatmap(
        lambda mn: st.lists(
            st.lists(st.integers(-v, v), min_size=mn[1], max_size=mn[1]),
            min_size=mn[0],
            max_size=mn[0],
        ).map(IMat)
    )


def _pivots(h: IMat):
    pivots = []
    for i in range(h.nrows):
        row = h.rows[i]
        nz = [j for j, x in enumerate(row) if x != 0]
        pivots.append(nz[0] if nz else None)
    return pivots


class TestRowHNF:
    @given(matrices())
    def test_factorization_and_unimodularity(self, a):
        h, u = hermite_normal_form(a)
        assert h == u @ a
        assert abs(u.det()) == 1

    @given(matrices())
    def test_echelon_shape(self, a):
        h, _ = hermite_normal_form(a)
        pivots = _pivots(h)
        # zero rows come last, pivot columns strictly increase
        seen_zero = False
        prev = -1
        for p in pivots:
            if p is None:
                seen_zero = True
            else:
                assert not seen_zero
                assert p > prev
                prev = p

    @given(matrices())
    def test_pivot_positivity_and_reduction(self, a):
        h, _ = hermite_normal_form(a)
        for i, p in enumerate(_pivots(h)):
            if p is None:
                continue
            piv = h[i, p]
            assert piv > 0
            for r in range(i):
                assert 0 <= h[r, p] < piv

    def test_known_example(self):
        a = IMat([[2, 4], [3, 5]])
        h, u = hermite_normal_form(a)
        assert h == u @ a
        assert h[1, 0] == 0


class TestColumnHNF:
    @given(matrices())
    def test_factorization(self, a):
        h, u = column_hnf(a)
        assert h == a @ u
        assert abs(u.det()) == 1

    def test_nonsingular_lower_triangular(self):
        a = IMat([[1, 2, 0], [0, 1, 3], [1, 0, 1]])
        h, _ = column_hnf(a)
        assert a.det() != 0
        for i in range(3):
            for j in range(i + 1, 3):
                assert h[i, j] == 0
            assert h[i, i] > 0


class TestSmith:
    @given(matrices(max_dim=3, v=5))
    def test_factorization_and_diagonality(self, a):
        s, u, v = smith_normal_form(a)
        assert s == u @ a @ v
        assert abs(u.det()) == 1
        assert abs(v.det()) == 1
        for i in range(s.nrows):
            for j in range(s.ncols):
                if i != j:
                    assert s[i, j] == 0

    @given(matrices(max_dim=3, v=5))
    def test_divisibility_chain(self, a):
        s, _, _ = smith_normal_form(a)
        diag = [s[i, i] for i in range(min(s.shape))]
        for x, y in zip(diag, diag[1:]):
            if x != 0 and y != 0:
                assert y % x == 0
            if x == 0:
                assert y == 0
        assert all(d >= 0 for d in diag)

    def test_identity(self):
        s, _, _ = smith_normal_form(IMat.identity(3))
        assert s == IMat.identity(3)

    def test_diag_divisibility_example(self):
        s, _, _ = smith_normal_form(IMat([[2, 0], [0, 3]]))
        assert s[0, 0] == 1 and s[1, 1] == 6
