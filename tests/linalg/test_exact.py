import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import extended_gcd, gcd_all, is_primitive, lcm_all, primitive


class TestGcdAll:
    def test_empty(self):
        assert gcd_all([]) == 0

    def test_all_zero(self):
        assert gcd_all([0, 0]) == 0

    def test_simple(self):
        assert gcd_all([4, 6, 8]) == 2

    def test_negative_values(self):
        assert gcd_all([-4, 6]) == 2

    def test_coprime(self):
        assert gcd_all([3, 5]) == 1

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
    def test_divides_all(self, values):
        g = gcd_all(values)
        if g:
            assert all(v % g == 0 for v in values)
        else:
            assert all(v == 0 for v in values)


class TestLcm:
    def test_simple(self):
        assert lcm_all([4, 6]) == 12

    def test_empty(self):
        assert lcm_all([]) == 1

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            lcm_all([2, 0])


class TestExtendedGcd:
    @given(st.integers(-500, 500), st.integers(-500, 500))
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_zero_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0


class TestPrimitive:
    def test_already_primitive(self):
        assert primitive([2, 3]) == (2, 3)

    def test_scales_down(self):
        assert primitive([4, 6]) == (2, 3)

    def test_sign_canonical(self):
        assert primitive([-2, 4]) == (1, -2)

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            primitive([0, 0])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=5))
    def test_result_is_primitive(self, vec):
        if not any(vec):
            return
        assert is_primitive(primitive(vec))
