import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import IMat, from_cols, from_rows, identity


def square_matrices(n_max=4, v=6):
    return st.integers(1, n_max).flatmap(
        lambda n: st.lists(
            st.lists(st.integers(-v, v), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        ).map(IMat)
    )


class TestConstruction:
    def test_identity(self):
        i3 = identity(3)
        assert i3.shape == (3, 3)
        assert i3.det() == 1

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            IMat([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IMat([])

    def test_from_cols_transposes(self):
        m = from_cols([[1, 2], [3, 4]])
        assert m.rows == ((1, 3), (2, 4))

    def test_diag(self):
        d = IMat.diag([2, 3])
        assert d.rows == ((2, 0), (0, 3))


class TestArithmetic:
    def test_matmul(self):
        a = IMat([[1, 2], [3, 4]])
        b = IMat([[0, 1], [1, 0]])
        assert (a @ b).rows == ((2, 1), (4, 3))

    def test_matvec(self):
        a = IMat([[1, 2], [3, 4]])
        assert a.matvec([1, 1]) == (3, 7)

    def test_vecmat(self):
        a = IMat([[1, 2], [3, 4]])
        assert a.vecmat([1, 1]) == (4, 6)

    def test_add_sub_neg(self):
        a = IMat([[1, 2], [3, 4]])
        assert (a + a).rows == ((2, 4), (6, 8))
        assert (a - a).rows == ((0, 0), (0, 0))
        assert (-a).rows == ((-1, -2), (-3, -4))

    def test_scalar_mul(self):
        a = IMat([[1, 2], [3, 4]])
        assert (2 * a).rows == ((2, 4), (6, 8))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            IMat([[1, 2]]) @ IMat([[1, 2]])

    def test_hashable_and_eq(self):
        assert IMat([[1]]) == IMat([[1]])
        assert hash(IMat([[1]])) == hash(IMat([[1]]))
        assert IMat([[1]]) != IMat([[2]])


class TestDeterminant:
    def test_identity(self):
        assert identity(4).det() == 1

    def test_interchange(self):
        assert IMat([[0, 1], [1, 0]]).det() == -1

    def test_singular(self):
        assert IMat([[1, 2], [2, 4]]).det() == 0

    def test_3x3(self):
        assert IMat([[2, 0, 0], [0, 3, 0], [0, 0, 5]]).det() == 30

    def test_needs_pivot_swap(self):
        assert IMat([[0, 2], [3, 0]]).det() == -6

    @given(square_matrices())
    def test_det_of_transpose(self, m):
        assert m.det() == m.transpose().det()

    @given(square_matrices(n_max=3, v=4), square_matrices(n_max=3, v=4))
    def test_det_multiplicative(self, a, b):
        if a.shape != b.shape:
            return
        assert (a @ b).det() == a.det() * b.det()


class TestInverse:
    def test_singular_raises(self):
        with pytest.raises(ValueError):
            IMat([[1, 1], [1, 1]]).inverse_pair()

    def test_unimodular_inverse(self):
        m = IMat([[1, 1], [0, 1]])
        inv = m.inverse_unimodular()
        assert (m @ inv) == identity(2)

    def test_non_unimodular_rejected(self):
        with pytest.raises(ValueError):
            IMat([[2, 0], [0, 1]]).inverse_unimodular()

    @given(square_matrices())
    def test_adjugate_identity(self, m):
        d = m.det()
        if d == 0:
            return
        adj, dd = m.inverse_pair()
        assert dd == d
        assert (m @ adj) == d * identity(m.nrows)

    def test_inverse_fractions(self):
        m = IMat([[2, 0], [0, 4]])
        inv = m.inverse_fractions()
        assert inv[0][0] * 2 == 1
        assert inv[1][1] * 4 == 1
