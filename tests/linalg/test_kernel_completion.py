import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import (
    IMat,
    complete_to_unimodular,
    identity,
    is_primitive,
    kernel_basis,
    kernel_contains,
    min_gcd_kernel_vector,
    unimodular_with_first_row,
    unimodular_with_last_column,
)
from repro.linalg.completion import completion_candidates, unimodular_with_column


def matrices(max_dim=4, v=6):
    return st.tuples(st.integers(1, max_dim), st.integers(1, max_dim)).flatmap(
        lambda mn: st.lists(
            st.lists(st.integers(-v, v), min_size=mn[1], max_size=mn[1]),
            min_size=mn[0],
            max_size=mn[0],
        ).map(IMat)
    )


def primitive_vectors(n_max=4, v=5):
    return st.integers(2, n_max).flatmap(
        lambda n: st.lists(st.integers(-v, v), min_size=n, max_size=n)
    ).filter(lambda vec: any(vec) and is_primitive(vec))


class TestKernelBasis:
    @given(matrices())
    def test_basis_vectors_in_kernel(self, a):
        for b in kernel_basis(a):
            assert kernel_contains(a, b)

    @given(matrices(max_dim=3, v=4))
    def test_basis_dimension_matches_rank(self, a):
        basis = kernel_basis(a)
        # rank-nullity over Q: dim kernel = ncols - rank
        import numpy as np

        rank = np.linalg.matrix_rank(np.array(a.to_lists(), dtype=float))
        assert len(basis) == a.ncols - rank

    def test_full_rank_trivial_kernel(self):
        assert kernel_basis(identity(3)) == []

    def test_paper_relation1_for_U(self):
        # Section 3.2.3: L_U = I, q_last = (0,1) => g in Ker{(0,1)^T col}
        lu_q = IMat.col_vector([0, 1])
        g = min_gcd_kernel_vector(lu_q.transpose())
        assert g == (1, 0)  # row-major for U

    def test_paper_relation1_for_V(self):
        lv_q = IMat.col_vector([1, 0])
        g = min_gcd_kernel_vector(lv_q.transpose())
        assert g == (0, 1)  # column-major for V


class TestMinGcdKernelVector:
    def test_trivial_kernel_returns_none(self):
        assert min_gcd_kernel_vector(identity(2)) is None

    @given(matrices())
    def test_result_in_kernel_and_primitive(self, a):
        vec = min_gcd_kernel_vector(a)
        if vec is not None:
            assert kernel_contains(a, vec)
            assert is_primitive(vec)

    def test_prefer_honored_when_in_kernel(self):
        a = IMat([[0, 0]])  # everything is in the kernel
        assert min_gcd_kernel_vector(a, prefer=[(0, 1)]) == (0, 1)

    def test_prefer_ignored_when_not_in_kernel(self):
        a = IMat([[1, 0]])  # kernel = span{(0,1)}
        assert min_gcd_kernel_vector(a, prefer=[(1, 0)]) == (0, 1)

    def test_prefers_elementary_vector(self):
        # kernel of [1, 0, 0] contains (0,1,0),(0,0,1),(0,1,1)...
        vec = min_gcd_kernel_vector(IMat([[1, 0, 0]]))
        assert vec is not None
        assert sorted(map(abs, vec)) == [0, 0, 1]


class TestCompletion:
    @given(primitive_vectors())
    def test_last_column_completion(self, vec):
        q = unimodular_with_last_column(vec)
        assert q.is_unimodular()
        assert q.col(q.ncols - 1) == tuple(vec)

    @given(primitive_vectors())
    def test_first_row_completion(self, vec):
        d = unimodular_with_first_row(vec)
        assert d.is_unimodular()
        assert d.row(0) == tuple(vec)

    def test_every_position(self):
        vec = (2, 3, 5)
        for pos in range(3):
            m = unimodular_with_column(vec, pos)
            assert m.is_unimodular()
            assert m.col(pos) == vec

    def test_non_primitive_rejected(self):
        with pytest.raises(ValueError):
            unimodular_with_last_column([2, 4])

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            unimodular_with_column([1, 0], 5)

    def test_paper_interchange_example(self):
        # Section 3.2.3: q_last = (1, 0)^T completes to the loop interchange
        q = unimodular_with_last_column([1, 0])
        assert q.is_unimodular()
        assert q.col(1) == (1, 0)

    def test_multi_column_completion(self):
        cols = [(1, 0, 2), (0, 1, 3)]
        w = complete_to_unimodular(cols)
        assert w.is_unimodular()
        assert w.col(0) == cols[0]
        assert w.col(1) == cols[1]

    def test_multi_column_impossible(self):
        with pytest.raises(ValueError):
            complete_to_unimodular([(2, 0), (0, 2)])

    def test_too_many_columns(self):
        with pytest.raises(ValueError):
            complete_to_unimodular([(1, 0), (0, 1), (1, 1)])


class TestCompletionCandidates:
    def test_all_candidates_valid(self):
        pinned = (1, 2)
        count = 0
        for m in itertools.islice(completion_candidates(pinned, 1), 20):
            assert m.is_unimodular()
            assert m.col(1) == pinned
            count += 1
        assert count == 20

    def test_candidates_distinct(self):
        mats = list(itertools.islice(completion_candidates((0, 1), 1), 30))
        assert len({m.rows for m in mats}) == len(mats)

    def test_limit_respected(self):
        mats = list(completion_candidates((1, 0, 0), 2, limit=10))
        assert len(mats) == 10
