import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    Constraint,
    ConstraintSystem,
    IMat,
    fourier_motzkin,
    loop_bounds_for_transform,
)
from repro.linalg.fourier_motzkin import (
    BoundTerm,
    bounds_by_level,
    enumerate_lattice_points,
    iterate_bounds,
)


def rect_system(n=2, lo=0, hi_param=True):
    """0 <= i_k <= N (or <= 5 when hi_param=False)."""
    names = [f"i{k}" for k in range(n)]
    sys = ConstraintSystem(names, params=("N",) if hi_param else ())
    for v in names:
        sys.add_lower(v, {}, lo)
        if hi_param:
            sys.add_upper(v, {"N": 1}, 0)
        else:
            sys.add_upper(v, {}, 5)
    return sys


def brute_force(system, binding, ranges):
    pts = []
    for vals in itertools.product(*ranges):
        env = dict(binding)
        env.update(dict(zip(system.variables, vals)))
        if system.satisfied(env):
            pts.append(vals)
    return pts


class TestConstraint:
    def test_make_normalizes_gcd(self):
        c = Constraint.make({"i": 2, "j": 4}, 6)
        assert c.coeffs == (("i", 1), ("j", 2))
        assert c.const == 3

    def test_make_tightens_const(self):
        # 2i - 3 >= 0  <=>  i >= 1.5  <=>  i >= 2  <=>  i - 2 >= 0
        c = Constraint.make({"i": 2}, -3)
        assert c.coeffs == (("i", 1),)
        assert c.const == -2

    def test_trivial(self):
        assert Constraint.make({}, 1).is_trivially_true()
        assert Constraint.make({}, -1).is_trivially_false()

    def test_evaluate(self):
        c = Constraint.make({"i": 1, "N": -1}, 0)
        assert c.evaluate({"i": 3, "N": 2}) == 1


class TestSystem:
    def test_var_param_overlap_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSystem(["i"], params=("i",))

    def test_duplicate_constraints_deduped(self):
        sys = ConstraintSystem(["i"])
        sys.add_ineq({"i": 1}, 0)
        sys.add_ineq({"i": 1}, 0)
        assert len(sys.constraints) == 1

    def test_satisfied(self):
        sys = rect_system(2)
        assert sys.satisfied({"i0": 0, "i1": 3, "N": 5})
        assert not sys.satisfied({"i0": -1, "i1": 0, "N": 5})


class TestElimination:
    def test_eliminate_removes_var(self):
        sys = rect_system(2)
        out = fourier_motzkin(sys, "i1")
        assert "i1" not in out.variables
        assert all(not c.involves("i1") for c in out.constraints)

    def test_unknown_var(self):
        with pytest.raises(ValueError):
            fourier_motzkin(rect_system(1), "zz")

    def test_projection_sound(self):
        # triangle: 0 <= j <= i <= 5 ; eliminating j keeps 0 <= i <= 5
        sys = ConstraintSystem(["i", "j"])
        sys.add_lower("i", {}, 0)
        sys.add_upper("i", {}, 5)
        sys.add_lower("j", {}, 0)
        sys.add_upper("j", {"i": 1}, 0)
        out = fourier_motzkin(sys, "j")
        for i in range(0, 6):
            assert out.satisfied({"i": i})
        assert not out.satisfied({"i": -1})
        assert not out.satisfied({"i": 6})


class TestBoundsByLevel:
    def test_rectangular(self):
        sys = rect_system(2)
        bounds = bounds_by_level(sys)
        assert [b.var for b in bounds] == ["i0", "i1"]
        env = {"N": 4}
        assert bounds[0].eval_range(env) == (0, 4)
        env["i0"] = 2
        assert bounds[1].eval_range(env) == (0, 4)

    def test_triangular(self):
        sys = ConstraintSystem(["i", "j"], params=("N",))
        sys.add_lower("i", {}, 1)
        sys.add_upper("i", {"N": 1}, 0)
        sys.add_lower("j", {"i": 1}, 0)  # j >= i
        sys.add_upper("j", {"N": 1}, 0)
        bounds = bounds_by_level(sys)
        lo, hi = bounds[1].eval_range({"N": 5, "i": 3})
        assert (lo, hi) == (3, 5)

    def test_unbounded_raises(self):
        sys = ConstraintSystem(["i"])
        sys.add_lower("i", {}, 0)
        with pytest.raises(ValueError):
            bounds_by_level(sys)

    def test_enumeration_matches_brute_force(self):
        sys = ConstraintSystem(["i", "j"])
        sys.add_lower("i", {}, 0)
        sys.add_upper("i", {}, 4)
        sys.add_lower("j", {}, 0)
        sys.add_upper("j", {"i": 1}, 0)  # j <= i
        got = enumerate_lattice_points(sys, {})
        want = brute_force(sys, {}, [range(-1, 6)] * 2)
        assert got == sorted(want)


class TestBoundTerm:
    def test_ceil_floor(self):
        t = BoundTerm((), 5, 2)
        assert t.eval_lower({}) == 3  # ceil(5/2)
        assert t.eval_upper({}) == 2  # floor(5/2)

    def test_negative_numerator(self):
        t = BoundTerm((), -5, 2)
        assert t.eval_lower({}) == -2
        assert t.eval_upper({}) == -3


class TestTransformedBounds:
    def test_interchange_exact(self):
        sys = rect_system(2, hi_param=False)
        t = IMat([[0, 1], [1, 0]])
        tb = loop_bounds_for_transform(sys, t, ["u", "v"])
        assert tb.exact
        pts = list(iterate_bounds(tb.bounds, {}, tb.strides))
        orig = brute_force(sys, {}, [range(0, 6)] * 2)
        assert sorted(pts) == sorted((j, i) for i, j in orig)

    def test_skew_transform(self):
        sys = rect_system(2, hi_param=False)
        t = IMat([[1, 1], [0, 1]])  # u = i + j, v = j
        tb = loop_bounds_for_transform(sys, t, ["u", "v"])
        assert tb.exact
        pts = set(iterate_bounds(tb.bounds, {}, tb.strides))
        orig = brute_force(sys, {}, [range(0, 6)] * 2)
        assert pts == {(i + j, j) for i, j in orig}

    def test_symbolic_interchange(self):
        sys = rect_system(2)
        t = IMat([[0, 1], [1, 0]])
        tb = loop_bounds_for_transform(sys, t, ["u", "v"])
        pts = list(iterate_bounds(tb.bounds, {"N": 3}, tb.strides))
        assert len(pts) == 16

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(
            [
                [[1, 0], [0, 1]],
                [[0, 1], [1, 0]],
                [[1, 1], [0, 1]],
                [[1, 0], [1, 1]],
                [[1, -1], [0, 1]],
                [[2, 1], [1, 1]],
                [[1, 2], [1, 3]],
            ]
        ),
        st.integers(1, 5),
    )
    def test_unimodular_scan_is_bijective(self, rows, n):
        t = IMat(rows)
        sys = ConstraintSystem(["i", "j"])
        for v in ("i", "j"):
            sys.add_lower(v, {}, 0)
            sys.add_upper(v, {}, n)
        tb = loop_bounds_for_transform(sys, t, ["u", "v"])
        pts = [
            p
            for p in iterate_bounds(tb.bounds, {}, tb.strides)
            if tb.point_is_image(p)
        ]
        expected = {
            tuple(t.matvec((i, j)))
            for i in range(n + 1)
            for j in range(n + 1)
        }
        assert set(pts) == expected
        assert len(pts) == len(expected)

    def test_non_unimodular_guarded_scan(self):
        t = IMat([[2, 0], [0, 1]])  # u = 2i: image lattice has stride 2
        sys = ConstraintSystem(["i", "j"])
        for v in ("i", "j"):
            sys.add_lower(v, {}, 0)
            sys.add_upper(v, {}, 3)
        tb = loop_bounds_for_transform(sys, t, ["u", "v"])
        assert not tb.exact
        pts = [
            p
            for p in iterate_bounds(tb.bounds, {}, tb.strides)
            if tb.point_is_image(p)
        ]
        expected = {(2 * i, j) for i in range(4) for j in range(4)}
        assert set(pts) == expected
