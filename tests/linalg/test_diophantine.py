import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    IMat,
    has_integer_solution,
    solve_diophantine,
)


def matrices_and_vectors(max_dim=3, v=6):
    return st.tuples(st.integers(1, max_dim), st.integers(1, max_dim)).flatmap(
        lambda mn: st.tuples(
            st.lists(
                st.lists(st.integers(-v, v), min_size=mn[1], max_size=mn[1]),
                min_size=mn[0],
                max_size=mn[0],
            ).map(IMat),
            st.lists(st.integers(-v, v), min_size=mn[1], max_size=mn[1]),
        )
    )


class TestSolveDiophantine:
    def test_simple_solvable(self):
        sol = solve_diophantine(IMat([[2, 3]]), [7])
        assert sol is not None
        x = sol.particular
        assert 2 * x[0] + 3 * x[1] == 7

    def test_simple_unsolvable(self):
        assert solve_diophantine(IMat([[2, 4]]), [7]) is None

    def test_coupled_system_unsolvable(self):
        # x + y = 0 and x + y = 1 simultaneously: per-row gcd passes,
        # the coupled system does not
        a = IMat([[1, 1], [1, 1]])
        assert solve_diophantine(a, [0, 1]) is None

    def test_rhs_size_checked(self):
        with pytest.raises(ValueError):
            solve_diophantine(IMat([[1, 0]]), [1, 2])

    def test_kernel_dimension(self):
        sol = solve_diophantine(IMat([[1, 1, 1]]), [3])
        assert sol is not None
        assert len(sol.basis) == 2

    def test_sample_enumerates_solutions(self):
        a = IMat([[2, 3]])
        sol = solve_diophantine(a, [7])
        for coeffs in [(-2,), (0,), (5,)]:
            x = sol.sample(coeffs)
            assert a.matvec(x) == (7,)
        with pytest.raises(ValueError):
            sol.sample((1, 2))

    def test_full_rank_unique(self):
        sol = solve_diophantine(IMat([[1, 0], [0, 1]]), [4, -2])
        assert sol.particular == (4, -2)
        assert sol.basis == ()

    @settings(max_examples=80, deadline=None)
    @given(matrices_and_vectors())
    def test_solutions_verify(self, case):
        a, x_true = case
        b = list(a.matvec(x_true))
        sol = solve_diophantine(a, b)
        assert sol is not None  # constructed to be solvable
        assert list(a.matvec(sol.particular)) == b
        for vec in sol.basis:
            assert all(v == 0 for v in a.matvec(vec))

    @settings(max_examples=60, deadline=None)
    @given(matrices_and_vectors())
    def test_unsolvable_means_no_small_solution(self, case):
        a, _ = case
        b = [1] * a.nrows
        if has_integer_solution(a, b):
            return
        # brute force a window: no integer point solves the system
        rng = range(-6, 7)
        import itertools

        for x in itertools.product(rng, repeat=a.ncols):
            assert list(a.matvec(x)) != b


class TestDependenceIntegration:
    def test_coupled_disproof_stronger_than_gcd(self):
        """A(i+j, i+j+1) vs A(i'+j', i'+j'): dimension-wise GCD passes,
        but the coupled system (x = y and x = y + 1) is unsolvable."""
        from repro.dependence import diophantine_independent, gcd_independent
        from repro.ir import ArrayDecl, ArrayRef, IndexVar

        i, j = IndexVar("i"), IndexVar("j")
        decl = ArrayDecl.make("A", [64, 64])
        r1 = ArrayRef.make(decl, [i + j, i + j + 1])
        r2 = ArrayRef.make(decl, [i + j, i + j])
        assert not gcd_independent(r1, r2, ["i", "j"])
        assert diophantine_independent(r1, r2, ["i", "j"])

    def test_analyzer_uses_it(self):
        from repro.dependence import analyze_nest
        from repro.ir import ProgramBuilder

        b = ProgramBuilder("t", params=("N",), default_binding={"N": 6})
        N = b.param("N")
        A = b.array("A", (2 * N, 2 * N))
        with b.nest() as nb:
            i = nb.loop("i", 1, N)
            j = nb.loop("j", 1, N)
            nb.assign(A[i + j, i + j + 1], A[i + j, i + j] + 1.0)
        edges = analyze_nest(b.build().nests[0])
        # the write/read pair is disproven by the coupled system; only the
        # genuine output dependence among write instances remains
        assert all(e.kind == "output" for e in edges)

    def test_mismatched_params_conservative(self):
        from repro.dependence import diophantine_independent
        from repro.ir import ArrayDecl, ArrayRef, IndexVar

        i = IndexVar("i")
        N = IndexVar("N")
        decl = ArrayDecl.make("A", [128])
        r1 = ArrayRef.make(decl, [i + N])
        r2 = ArrayRef.make(decl, [i])
        assert not diophantine_independent(r1, r2, ["i"])
