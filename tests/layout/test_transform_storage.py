import pytest

from repro.ir import ArrayDecl, ArrayRef, IndexVar
from repro.layout import (
    expansion_factor,
    innermost_cost,
    reduce_storage,
    spatial_locality_ok,
    storage_box,
    temporal_locality_ok,
    transform_decl_dims,
    transform_ref,
)
from repro.linalg import IMat

i, j = IndexVar("i"), IndexVar("j")


class TestTransformRef:
    def test_interchange_dims(self):
        a = ArrayDecl.make("A", [8, 8])
        r = ArrayRef.make(a, [i, j + 1])
        out = transform_ref(r, IMat([[0, 1], [1, 0]]))
        assert str(out.subscripts[0]) == "j + 1"
        assert str(out.subscripts[1]) == "i"

    def test_rank_checked(self):
        a = ArrayDecl.make("A", [8, 8])
        r = ArrayRef.make(a, [i, j])
        with pytest.raises(ValueError):
            transform_ref(r, IMat([[1]]))

    def test_diagonal_transform(self):
        a = ArrayDecl.make("A", [8, 8])
        r = ArrayRef.make(a, [i, j])
        out = transform_ref(r, IMat([[1, -1], [0, 1]]))
        assert out.index({"i": 5, "j": 2}, {}) == (3, 2)


class TestTransformDeclDims:
    def test_identity(self):
        assert transform_decl_dims([4, 5], IMat.identity(2)) == ((0, 3), (0, 4))

    def test_diagonal_expands(self):
        box = transform_decl_dims([4, 4], IMat([[1, -1], [0, 1]]))
        assert box[0] == (-3, 3)
        assert box[1] == (0, 3)


class TestClaim1:
    """The worked example of Section 3.2.3, end to end."""

    L_U = IMat([[1, 0], [0, 1]])
    L_V = IMat([[0, 1], [1, 0]])

    def test_U_row_major_with_identity_loop(self):
        # q_last = (0,1): U needs g with g·L·(0,1)^T = 0 → g = (1,0)
        assert spatial_locality_ok((1, 0), self.L_U, (0, 1))
        assert not spatial_locality_ok((0, 1), self.L_U, (0, 1))

    def test_V_col_major_with_identity_loop(self):
        assert spatial_locality_ok((0, 1), self.L_V, (0, 1))
        assert not spatial_locality_ok((1, 0), self.L_V, (0, 1))

    def test_V_nest2_needs_interchange(self):
        # nest 2: L_V2 = I, layout fixed col-major (0,1) → q_last = (1,0)
        L_V2 = IMat([[1, 0], [0, 1]])
        assert spatial_locality_ok((0, 1), L_V2, (1, 0))
        assert not spatial_locality_ok((0, 1), L_V2, (0, 1))

    def test_W_row_major_after_interchange(self):
        L_W = IMat([[0, 1], [1, 0]])
        assert spatial_locality_ok((1, 0), L_W, (1, 0))

    def test_temporal(self):
        # A(i) in nest (i, j): innermost j → L q_last = 0
        L = IMat([[1, 0]])
        assert temporal_locality_ok(L, (0, 1))
        assert not temporal_locality_ok(L, (1, 0))

    def test_innermost_cost_ladder(self):
        L = IMat([[1, 0], [0, 1]])
        assert innermost_cost(None, IMat([[1, 0]]), (0, 1)) == 0
        assert innermost_cost((1, 0), L, (0, 1)) == 1
        assert innermost_cost((0, 1), L, (0, 1)) == 1000


class TestStorageReduction:
    def test_storage_box(self):
        box = storage_box(IMat([[1, 1], [1, 0]]), [(1, 4), (1, 4)])
        assert box == ((2, 8), (1, 4))

    def test_expansion_factor_identity(self):
        assert expansion_factor(IMat.identity(2), [(1, 4), (1, 4)]) == 1.0

    def test_paper_section_3_4_example(self):
        # access matrix [[a, b], [c, 0]] with a=3, b=1, c=2 over u,v in [1,N']
        access = IMat([[3, 1], [2, 0]])
        ranges = [(1, 10), (1, 10)]
        e, new_l, vol = reduce_storage(access, ranges)
        orig_vol = 1
        for lo, hi in storage_box(access, ranges):
            orig_vol *= hi - lo + 1
        assert vol < orig_vol
        assert abs(e.det()) == 1
        # locality: the 0 in column 1 (innermost v) must stay 0
        assert new_l[1, 1] == 0

    def test_reduction_keeps_zero_pattern(self):
        access = IMat([[1, 1], [1, 0]])
        e, new_l, _ = reduce_storage(access, [(1, 8), (1, 8)])
        assert new_l[1, 1] == 0

    def test_identity_when_optimal(self):
        access = IMat.identity(2)
        e, new_l, vol = reduce_storage(access, [(0, 7), (0, 7)])
        assert new_l == access
        assert vol == 64
